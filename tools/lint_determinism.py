#!/usr/bin/env python3
"""Determinism linter for the Rocksteady simulation codebase.

The whole platform promise is that a run is a pure function of its seed:
tests compare event-trace hashes across runs, and experiments must be
reproducible. This lint fails the build if src/ picks up idioms that break
that promise:

  * wall-clock time (time(), gettimeofday, clock_gettime, std::chrono clocks)
  * non-seeded / libc randomness (rand, srand, random_device, mt19937, ...)
  * threads (the simulator is single-threaded by design)
  * pointer-KEYED containers (std::map<T*, ...> / std::unordered_set<T*>):
    iteration order depends on allocation addresses, so any behavior derived
    from it varies run to run.

It also guards the rebalancer's policy hygiene: decision code in
src/rebalance/*.cc must not compare against numeric literals (magic
thresholds drift silently and make planner behavior impossible to reason
about across runs). Every threshold must be a named constexpr constant
(declared in a header or on a `constexpr` line); the literals 0 and 1 are
allowed (empty/first/identity checks, not policy).

It also guards the overload-resilience work: growable containers
(std::deque / std::unordered_map / std::unordered_set) declared as members
in request-path headers (src/rpc, src/cluster, src/migration) accumulate
per-request state, and one forgotten eviction path is an OOM under
sustained load. Such a member must say how it is bounded — a comment within
the four preceding lines (or on the line) mentioning its bound/eviction/
expiry, or an explicit `lint:bounded` marker.

It also guards the engine hot path (see DESIGN.md "Engine performance"):
`std::function<` and `make_shared` in src/sim/ or src/rpc/ re-introduce the
per-event allocator churn the pooled event loop and InlineFunction removed.
Cold-path uses (one-time handler registration) opt out with a
`lint:allow-churn` comment on the line.

A line may opt out with a trailing `lint:allow-nondeterminism` comment and a
reason, e.g. logging a timestamp that never feeds back into simulation state.

Usage: lint_determinism.py <dir-or-file>...   (exit 0 clean, 1 violations)
"""

import re
import sys
from pathlib import Path

SUPPRESS = "lint:allow-nondeterminism"

# (name, regex, message). Patterns are matched per line after comment
# stripping, so words in prose don't trip them.
RULES = [
    ("wall-clock",
     re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get)\s*\("),
     "wall-clock syscall; simulated time must come from Simulator::now()"),
    ("wall-clock",
     re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time(); simulated time must come from Simulator::now()"),
    ("wall-clock",
     re.compile(r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"),
     "std::chrono clock; simulated time must come from Simulator::now()"),
    ("libc-random",
     re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand(); use the seeded rocksteady::Random"),
    ("libc-random",
     re.compile(r"(?<![\w:])random\s*\(\s*\)"),
     "random(); use the seeded rocksteady::Random"),
    ("std-random",
     re.compile(r"std::random_device"),
     "std::random_device is nondeterministic; use the seeded rocksteady::Random"),
    ("std-random",
     re.compile(r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine)"),
     "std <random> engine; use the seeded rocksteady::Random"),
    # Unseeded probability draws: drawing from a default-constructed Random
    # (its fallback seed is not derived from the run seed) or reaching past
    # rocksteady::Random to libc/std distribution machinery. Declarations
    # like `Random rng_;` (seeded later in an init list) and the
    # `explicit Random(uint64_t seed = 1)` constructor itself are fine and
    # must not match.
    ("unseeded-draw",
     re.compile(r"\b[a-z]?rand48\s*\("),
     "rand48-family draw; use the seeded rocksteady::Random"),
    ("unseeded-draw",
     re.compile(r"std::\w+_distribution\b"),
     "std <random> distribution; draw through the seeded rocksteady::Random"),
    ("unseeded-draw",
     re.compile(r"\bRandom\s*(?:\(\s*\)|\{\s*\})\s*\."),
     "draw from a default-constructed Random; plumb the run seed "
     "(e.g. Simulator::rng() or a Config seed) instead"),
    ("threads",
     re.compile(r"std::(?:thread|jthread|async|mutex|condition_variable|atomic)\b"),
     "threading primitive; the simulation kernel is single-threaded"),
    ("threads",
     re.compile(r"\bpthread_\w+\s*\("),
     "pthreads; the simulation kernel is single-threaded"),
    # Pointer KEYS only: iteration order of std::map<T*, ...> (comparator on
    # the address) and of unordered containers hashed on addresses varies run
    # to run. Pointer VALUES (std::map<uint32_t, Segment*>) are fine.
    ("pointer-keyed-container",
     re.compile(r"std::(?:unordered_)?(?:map|multimap)\s*<[^,<>]*\*\s*,"),
     "pointer-keyed map; iteration order depends on allocation addresses"),
    ("pointer-keyed-container",
     re.compile(r"std::(?:unordered_)?(?:set|multiset)\s*<[^,<>]*\*\s*[,>]"),
     "pointer set; iteration order depends on allocation addresses"),
]

LINE_COMMENT = re.compile(r"//.*$")
STRING = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noncode(line: str, in_block_comment: bool):
    """Removes strings and comments so prose can't trigger rules.

    Returns (code, still_in_block_comment). Good enough for lint purposes;
    not a full lexer.
    """
    out = []
    i = 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        if line[i] == '"':
            match = STRING.match(line, i)
            if match:
                i = match.end()
                continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block_comment


# --- Unbounded request-path container members. ---
# Headers on the request path: every RPC can add an entry, so growth must be
# bounded somewhere and the bound must be stated next to the member.
REQUEST_PATH_DIRS = ("rpc", "cluster", "migration")
GROWABLE_MEMBER = re.compile(
    r"std::(?:deque|unordered_map|unordered_set|unordered_multimap|unordered_multiset)\s*<"
    r".*>\s+\w+_\s*(?:;|=|\{)")
BOUND_EVIDENCE = re.compile(
    r"lint:bounded|bound|evict|expir|prune|drain|cap(?:ped|acity)?\b|lru|"
    r"watermark|at most|cleared|removed|erase", re.IGNORECASE)


# --- Allocator churn on the engine hot path. ---
# src/sim/ and src/rpc/ run once per simulated event/message; a std::function
# (heap-boxing captures) or make_shared (control-block allocation) there
# regresses the pooled zero-churn hot path. Registration-time and other cold
# code opts out with `lint:allow-churn` on the line.
HOT_PATH_DIRS = ("sim", "rpc")
CHURN_SUPPRESS = "lint:allow-churn"
CHURN_RULES = [
    ("hot-path-churn",
     re.compile(r"std::function\s*<"),
     "std::function on the engine hot path heap-boxes captures; use "
     "InlineFunction (or mark cold code lint:allow-churn)"),
    ("hot-path-churn",
     re.compile(r"\bmake_shared\b"),
     "make_shared on the engine hot path allocates a control block; use "
     "pooled/intrusive ownership (or mark cold code lint:allow-churn)"),
]


def is_hot_path_file(path: Path) -> bool:
    return path.suffix in (".h", ".hpp", ".cc", ".cpp") and any(
        part in HOT_PATH_DIRS for part in path.parts)


def lint_hot_path_churn(lines):
    """Yields (lineno, name, message) for allocator churn in sim/rpc code."""
    in_block = False
    for i, raw in enumerate(lines):
        if CHURN_SUPPRESS in raw or SUPPRESS in raw:
            _, in_block = strip_noncode(raw, in_block)
            continue
        code, in_block = strip_noncode(raw, in_block)
        if not code.strip():
            continue
        for name, pattern, message in CHURN_RULES:
            if pattern.search(code):
                yield (i + 1, name, message)


# --- Magic policy thresholds in rebalancer decision code. ---
# A comparison against a numeric literal in src/rebalance/*.cc is a policy
# threshold that escaped naming. 0 and 1 are allowed (emptiness, identity,
# first-element checks); a line that itself declares a constexpr constant is
# the naming we want, not a violation.
NUMERIC_LITERAL = r"\d[\d']*(?:\.\d+)?(?:e[-+]?\d+)?[uUlLfF]*"
THRESHOLD_COMPARISON = re.compile(
    r"(?:[<>!=]=|[<>])\s*(" + NUMERIC_LITERAL + r")\b|"
    r"\b(" + NUMERIC_LITERAL + r")\s*(?:[<>!=]=|[<>])")
ALLOWED_THRESHOLD_LITERALS = {"0", "1"}


def is_rebalance_policy_file(path: Path) -> bool:
    return path.suffix == ".cc" and "rebalance" in path.parts


def lint_magic_thresholds(lines):
    """Yields (lineno, message) for literal threshold comparisons."""
    in_block = False
    for i, raw in enumerate(lines):
        if SUPPRESS in raw:
            _, in_block = strip_noncode(raw, in_block)
            continue
        code, in_block = strip_noncode(raw, in_block)
        if "constexpr" in code:
            continue
        for match in THRESHOLD_COMPARISON.finditer(code):
            literal = (match.group(1) or match.group(2)).rstrip("uUlLfF")
            if literal in ALLOWED_THRESHOLD_LITERALS:
                continue
            yield (i + 1,
                   f"comparison against literal {literal} in rebalancer "
                   "policy code; name it as a constexpr threshold "
                   "(see src/rebalance/planner.h)")


def is_request_path_header(path: Path) -> bool:
    return path.suffix in (".h", ".hpp") and any(
        part in REQUEST_PATH_DIRS for part in path.parts)


def lint_unbounded_members(lines):
    """Yields (lineno, message) for growable members with no stated bound."""
    for i, raw in enumerate(lines):
        if not GROWABLE_MEMBER.search(raw):
            continue
        context = lines[max(0, i - 4):i + 1]
        if any(BOUND_EVIDENCE.search(line) for line in context):
            continue
        yield (i + 1,
               "growable container member on the request path with no stated "
               "bound; document the eviction/limit in a nearby comment or "
               "mark it lint:bounded")


def lint_file(path: Path):
    violations = []
    in_block = False
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        violations.append((0, "io", f"cannot read: {e}"))
        return violations
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if SUPPRESS in raw:
            _, in_block = strip_noncode(raw, in_block)
            continue
        code, in_block = strip_noncode(raw, in_block)
        if not code.strip():
            continue
        for name, pattern, message in RULES:
            if pattern.search(code):
                violations.append((lineno, name, message))
    if is_hot_path_file(path):
        for lineno, name, message in lint_hot_path_churn(text.splitlines()):
            violations.append((lineno, name, message))
    if is_request_path_header(path):
        for lineno, message in lint_unbounded_members(text.splitlines()):
            violations.append((lineno, "unbounded-member", message))
    if is_rebalance_policy_file(path):
        for lineno, message in lint_magic_thresholds(text.splitlines()):
            violations.append((lineno, "magic-threshold", message))
    return violations


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    files = []
    for arg in argv[1:]:
        root = Path(arg)
        if root.is_dir():
            for ext in ("*.cc", "*.h", "*.cpp", "*.hpp"):
                files.extend(sorted(root.rglob(ext)))
        else:
            files.append(root)
    total = 0
    for path in files:
        for lineno, name, message in lint_file(path):
            print(f"{path}:{lineno}: [{name}] {message}", file=sys.stderr)
            total += 1
    if total:
        print(
            f"lint_determinism: {total} violation(s). Suppress a line with a "
            f"'{SUPPRESS}' comment and a reason.",
            file=sys.stderr)
        return 1
    print(f"lint_determinism: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
