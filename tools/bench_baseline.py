#!/usr/bin/env python3
"""Runs bench/engine_throughput and records the results in BENCH_engine.json.

The JSON file is the engine's perf trajectory: each entry is one labeled run
(a list of per-scenario results straight from the bench's JSON-lines
output). The first full entry in the file is the baseline; later runs are
reported as speedups against it, and their trace hashes are checked against
it — an engine optimization that changes the event schedule is a determinism
bug, and this runner is the first place it shows up.

Exit status: nonzero if the bench binary is missing or crashes. Perf
regressions only WARN (perf moves for legitimate reasons). Trace-hash
divergence WARNs by default but is a hard failure under --strict-hash: an
engine change that alters the event schedule is a determinism bug, and CI
(ci/check.sh) must fail on it at the first observation rather than relying
on a later gate to notice.

Usage:
  tools/bench_baseline.py --build-dir build --label pre_overhaul
  tools/bench_baseline.py --build-dir build --smoke --strict-hash
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path


def load_trajectory(path: Path) -> dict:
    if path.exists():
        with path.open() as f:
            return json.load(f)
    return {"entries": []}


def first_entry(trajectory: dict, smoke: bool):
    for entry in trajectory["entries"]:
        if entry.get("smoke", False) == smoke:
            return entry
    return None


def scenario_results(entry: dict) -> dict:
    """Maps (scenario, seed) -> result dict for one entry."""
    return {(r["scenario"], r["seed"]): r for r in entry["results"]}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build dir containing bench/engine_throughput")
    parser.add_argument("--label", default="run",
                        help="name for this entry in the trajectory file")
    parser.add_argument("--output", default=None,
                        help="trajectory file (default: <repo>/BENCH_engine.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="short run (~2s): proves the bench works, not perf")
    parser.add_argument("--strict-hash", action="store_true",
                        help="exit nonzero if any trace_hash diverges from "
                             "the baseline entry")
    args = parser.parse_args()

    repo = Path(__file__).resolve().parent.parent
    output = Path(args.output) if args.output else repo / "BENCH_engine.json"
    bench = Path(args.build_dir) / "bench" / "engine_throughput"
    if not bench.exists():
        print(f"bench_baseline: {bench} not built", file=sys.stderr)
        return 1

    cmd = [str(bench)] + (["--smoke"] if args.smoke else [])
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    except subprocess.TimeoutExpired:
        print("bench_baseline: bench timed out", file=sys.stderr)
        return 1
    if proc.returncode != 0:
        print(f"bench_baseline: bench exited {proc.returncode}", file=sys.stderr)
        sys.stderr.write(proc.stderr)
        return 1

    results = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line.startswith("{"):
            results.append(json.loads(line))
    if not results:
        print("bench_baseline: bench produced no results", file=sys.stderr)
        return 1

    trajectory = load_trajectory(output)
    baseline = first_entry(trajectory, args.smoke)
    if baseline is None and args.strict_hash:
        # Without a baseline the hash check is vacuous; failing here keeps
        # the CI gate honest instead of silently passing.
        print("bench_baseline: --strict-hash but the trajectory has no "
              f"{'smoke' if args.smoke else 'full'} baseline entry to "
              "compare against", file=sys.stderr)
        return 1
    entry = {"label": args.label, "smoke": args.smoke, "results": results}

    diverged = 0
    for r in results:
        line = (f"  {r['scenario']:<16} seed {r['seed']:<6} "
                f"{r['events_per_s']:>12,.0f} events/s  "
                f"{r['allocs_per_event']:>8.3f} allocs/event  {r['trace_hash']}")
        print(line)
        if baseline is not None:
            base = scenario_results(baseline).get((r["scenario"], r["seed"]))
            if base is None:
                continue
            if base["events_per_s"] > 0:
                speedup = r["events_per_s"] / base["events_per_s"]
                print(f"    {speedup:.2f}x vs baseline '{baseline['label']}'")
            if base["trace_hash"] != r["trace_hash"]:
                diverged += 1
                severity = "ERROR" if args.strict_hash else "WARNING"
                print(f"    {severity}: trace_hash diverged from baseline "
                      f"'{baseline['label']}' ({base['trace_hash']}) — the "
                      f"event schedule changed",
                      file=sys.stderr)

    trajectory["entries"].append(entry)
    with output.open("w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(f"bench_baseline: appended entry '{args.label}' to {output}")
    if diverged and args.strict_hash:
        print(f"bench_baseline: {diverged} trace hash(es) diverged under "
              "--strict-hash", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
