"""The four semantic rules, evaluated over model.TuFacts.

Rules only see frontend-neutral facts, so the token and libclang frontends
are interchangeable. Suppression markers are matched against the raw source
line (same convention as lint_determinism.py):

  lint:allow-iter-order: <reason>   range-for over an unordered container
                                    whose escape is order-independent
  lint:allow-unchecked: <reason>    deliberately discarded Status

Shard-state and handler findings have no comment escape: the annotation
macros from src/common/annotations.h are the suppression, because they are
what the sharding refactor will read.
"""

from .frontend_tokens import SCHEDULE_ESCAPES
from .model import Finding

ITER_SUPPRESS = "lint:allow-iter-order"
UNCHECKED_SUPPRESS = "lint:allow-unchecked"

RULE_SHARD = "shard-unannotated"
RULE_ITER = "iter-order-escape"
RULE_FLATMAP = "flatmap-iteration"
RULE_UNCHECKED = "unchecked-status"
RULE_HANDLER = "handler-idempotency"

ALL_RULES = (RULE_SHARD, RULE_ITER, RULE_FLATMAP, RULE_UNCHECKED,
             RULE_HANDLER)


def _line_has(raw_lines, line, marker, lookback=2):
    """True if the marker sits on the line or a nearby preceding comment line
    (reasons usually don't fit in a trailing comment)."""
    if not raw_lines or line < 1 or line > len(raw_lines):
        return False
    for k in range(max(0, line - 1 - lookback), line):
        if marker in raw_lines[k]:
            return True
    return False


def _unique_category(index, names):
    """Resolves the range expression's idents against declared container
    names; returns a category only when it is unambiguous."""
    for name in reversed(names):  # Last ident is usually the container.
        cats = index.container_vars.get(name)
        if cats and len(cats) == 1:
            return next(iter(cats))
    return ""


def check_tu(facts, index, raw_lines=None):
    """Returns a list of Findings for one TU."""
    findings = []

    for site in facts.state_sites:
        if site.is_const:
            continue
        if site.annotation:
            continue
        findings.append(Finding(
            rule=RULE_SHARD, file=site.file, line=site.line,
            message=(f"{site.kind} '{site.name}' is mutable static-storage "
                     "state with no shard-safety annotation; mark it "
                     "ROCKSTEADY_SHARD_LOCAL or "
                     "ROCKSTEADY_SHARED_GUARDED(\"why\") "
                     "(src/common/annotations.h)")))

    for rf in facts.range_fors:
        category = rf.direct_category or _unique_category(
            index, rf.container_names)
        if category == "flatmap":
            findings.append(Finding(
                rule=RULE_FLATMAP, file=rf.file, line=rf.line,
                message=(f"iteration over FlatMap64 ({rf.container_text!r}): "
                         "FlatMap64 is iteration-free by design — its probe "
                         "order is hash-layout-dependent; restructure to "
                         "keyed lookups or keep a side list of keys")))
            continue
        if category != "unordered":
            continue
        if _line_has(raw_lines, rf.line, ITER_SUPPRESS):
            continue
        escapes = sorted(rf.body_calls & SCHEDULE_ESCAPES)
        appends = [(recv, m) for recv, m in rf.body_appends
                   if _unique_category(index, [recv]) in ("ordered", "")]
        if not escapes and not appends:
            continue
        leak = ", ".join(escapes + [f"{r}.{m}" for r, m in appends])
        findings.append(Finding(
            rule=RULE_ITER, file=rf.file, line=rf.line,
            message=(f"range-for over unordered container "
                     f"({rf.container_text!r}) leaks iteration order into "
                     f"the schedule via {leak}; iterate a sorted copy of the "
                     "keys, or justify with "
                     f"'{ITER_SUPPRESS}: <why order cannot escape>'")))

    for call in facts.discarded_calls:
        if _line_has(raw_lines, call.line, UNCHECKED_SUPPRESS):
            continue
        findings.append(Finding(
            rule=RULE_UNCHECKED, file=call.file, line=call.line,
            message=(f"result of Status-returning '{call.callee}' is "
                     "discarded; handle it, or state why with "
                     f"'{UNCHECKED_SUPPRESS}: <reason>'")))

    for reg in facts.handler_regs:
        if reg.has_idempotent or reg.has_dedup_guard:
            continue
        findings.append(Finding(
            rule=RULE_HANDLER, file=reg.file, line=reg.line,
            message=(f"handler for Opcode::{reg.opcode} is registered "
                     "without an idempotency review: a retransmission after "
                     "its dedup entry expires re-executes it. Annotate the "
                     "registration ROCKSTEADY_IDEMPOTENT(\"why re-execution "
                     "is safe\") or guard the handler with its own dedup "
                     "check")))

    return findings


def shard_state_inventory(all_facts):
    """The machine-readable inventory of cross-shard mutable state: every
    non-const static-storage site, annotated or not. This is the work-list
    for ROADMAP item 1 (per-shard event lanes)."""
    sites = []
    for facts in all_facts:
        for site in facts.state_sites:
            if site.is_const:
                continue
            sites.append({
                "file": site.file,
                "line": site.line,
                "kind": site.kind,
                "name": site.name,
                "type": site.type_text,
                "annotation": site.annotation or "MISSING",
            })
    sites.sort(key=lambda s: (s["file"], s["line"]))
    return {
        "description": (
            "Mutable static-storage state in src/ — each site must be "
            "per-shard (shard_local) or explicitly shared (shared_guarded) "
            "before the engine is partitioned into per-shard event lanes."),
        "total_sites": len(sites),
        "unannotated": sum(1 for s in sites if s["annotation"] == "MISSING"),
        "sites": sites,
    }
