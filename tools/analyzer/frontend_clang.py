"""libclang (clang.cindex) frontend: the full-AST implementation.

Selected automatically when the Python clang bindings and a libclang shared
library are both present (dev machines, CI images with LLVM); the token
frontend is the fallback everywhere else, and the fixture suite pins both to
the same expected findings wherever both run. Parsing is driven by
compile_commands.json when available (CMAKE_EXPORT_COMPILE_COMMANDS=ON) so
each TU sees its real include paths and defines.
"""

import json
import os

from .model import (DiscardedCall, HandlerReg, RangeFor, StateSite, TuFacts)

_UNORDERED_SPELLINGS = ("unordered_map", "unordered_set",
                        "unordered_multimap", "unordered_multiset")

_LIBCLANG_CANDIDATES = (
    "libclang.so", "libclang-15.so", "libclang-14.so",
    "/usr/lib/llvm-15/lib/libclang.so", "/usr/lib/llvm-14/lib/libclang.so",
    "/usr/lib/x86_64-linux-gnu/libclang-14.so.1",
)


def load_cindex():
    """Returns a configured clang.cindex module, or None."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    for candidate in _LIBCLANG_CANDIDATES:
        try:
            cindex.Config.loaded = False
            cindex.Config.set_library_file(candidate)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    return None


def available():
    return load_cindex() is not None


def _compile_args(path, compile_commands):
    if compile_commands is None:
        return ["-std=c++20", "-I."]
    args = compile_commands.get(os.path.abspath(path))
    return args if args else ["-std=c++20", "-I."]


def load_compile_commands(build_dir):
    """Maps absolute source path -> clang argument list, or None."""
    db = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db):
        return None
    with open(db, encoding="utf-8") as f:
        entries = json.load(f)
    commands = {}
    for entry in entries:
        path = os.path.abspath(os.path.join(entry["directory"],
                                            entry["file"]))
        raw = entry.get("arguments") or entry.get("command", "").split()
        # Strip compiler, -c/-o pairs, and the source file itself.
        args = []
        skip = False
        for arg in raw[1:]:
            if skip:
                skip = False
                continue
            if arg in ("-c", entry["file"], path):
                continue
            if arg == "-o":
                skip = True
                continue
            args.append(arg)
        commands[path] = args
    return commands


def _annotation_from(cindex, cursor):
    for child in cursor.get_children():
        if child.kind == cindex.CursorKind.ANNOTATE_ATTR:
            spelling = child.spelling or ""
            if spelling.startswith("rocksteady::shard_local"):
                return "shard_local", ""
            if spelling.startswith("rocksteady::shared_guarded:"):
                return "shared_guarded", spelling.split(":", 2)[-1]
    return "", ""


def _state_kind(cindex, cursor):
    parent = cursor.semantic_parent
    if parent is None:
        return None
    if parent.kind in (cindex.CursorKind.TRANSLATION_UNIT,
                       cindex.CursorKind.NAMESPACE):
        return "global"
    if parent.kind in (cindex.CursorKind.CLASS_DECL,
                       cindex.CursorKind.STRUCT_DECL,
                       cindex.CursorKind.CLASS_TEMPLATE):
        return "static-member"
    if cursor.storage_class == cindex.StorageClass.STATIC:
        return "local-static"
    return None


def _category_of_type(type_spelling):
    if "FlatMap64" in type_spelling:
        return "flatmap"
    if any(s in type_spelling for s in _UNORDERED_SPELLINGS):
        return "unordered"
    for s in ("vector<", "deque<", "basic_string<", "string"):
        if s in type_spelling:
            return "ordered"
    return ""


def _collect_calls(cursor, cindex, calls, appends):
    for child in cursor.walk_preorder():
        if child.kind == cindex.CursorKind.CALL_EXPR and child.spelling:
            calls.add(child.spelling)
            if child.spelling in ("push_back", "emplace_back", "push_front",
                                  "append"):
                appends.append(("", child.spelling))


def analyze_file(path, index, cindex, compile_commands=None):
    """Builds TuFacts for one file via the clang AST. `index` supplies the
    Status-returning function set for the discard check (the AST itself
    yields the precise result type, used when resolvable)."""
    tu = cindex.Index.create().parse(
        path, args=_compile_args(path, compile_commands),
        options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    facts = TuFacts(file=path)
    abs_path = os.path.abspath(path)

    def here(cursor):
        return (cursor.location.file is not None
                and os.path.abspath(cursor.location.file.name) == abs_path)

    def visit(cursor, parent):
        if cursor.kind == cindex.CursorKind.VAR_DECL and here(cursor) \
                and cursor.is_definition():
            kind = _state_kind(cindex, cursor)
            if kind is not None:
                annotation, why = _annotation_from(cindex, cursor)
                facts.state_sites.append(StateSite(
                    kind=kind, name=cursor.spelling,
                    type_text=cursor.type.spelling, file=path,
                    line=cursor.location.line,
                    is_const=cursor.type.is_const_qualified(),
                    annotation=annotation, why=why))
        elif cursor.kind == cindex.CursorKind.FIELD_DECL and here(cursor):
            # Instance members are per-object, not static storage — but one
            # explicitly annotated SHARED_GUARDED is part of the
            # sharded-execution contract (lane mailboxes, safe horizons,
            # per-lane shards) and belongs in the inventory.
            annotation, why = _annotation_from(cindex, cursor)
            if annotation == "shared_guarded":
                facts.state_sites.append(StateSite(
                    kind="member", name=cursor.spelling,
                    type_text=cursor.type.spelling, file=path,
                    line=cursor.location.line,
                    is_const=cursor.type.is_const_qualified(),
                    annotation=annotation, why=why))
        elif cursor.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT \
                and here(cursor):
            children = list(cursor.get_children())
            if len(children) >= 2:
                range_expr, body = children[-2], children[-1]
                rf = RangeFor(
                    file=path, line=cursor.location.line,
                    container_text=range_expr.type.spelling,
                    container_names=[range_expr.spelling]
                    if range_expr.spelling else [],
                    direct_category=_category_of_type(
                        range_expr.type.spelling))
                _collect_calls(body, cindex, rf.body_calls, rf.body_appends)
                facts.range_fors.append(rf)
        elif cursor.kind == cindex.CursorKind.CALL_EXPR and here(cursor) \
                and parent is not None \
                and parent.kind == cindex.CursorKind.COMPOUND_STMT:
            result = cursor.type.spelling.split("::")[-1]
            if result == "Status" or (cursor.spelling in index.status_fns
                                      and result in ("Status", "int")):
                if cursor.spelling == "Register":
                    pass
                else:
                    facts.discarded_calls.append(DiscardedCall(
                        file=path, line=cursor.location.line,
                        callee=cursor.spelling))
        if cursor.kind == cindex.CursorKind.CALL_EXPR \
                and cursor.spelling == "Register" and here(cursor):
            tokens = [t.spelling for t in cursor.get_tokens()]
            opcode = ""
            for k in range(len(tokens) - 2):
                if tokens[k] == "Opcode" and tokens[k + 1] == "::":
                    opcode = tokens[k + 2]
                    break
            if opcode:
                facts.handler_regs.append(HandlerReg(
                    file=path, line=cursor.location.line, opcode=opcode,
                    has_idempotent="ROCKSTEADY_IDEMPOTENT" in tokens,
                    has_dedup_guard=any("edup" in t for t in tokens)))
        for child in cursor.get_children():
            visit(child, cursor)

    visit(tu.cursor, None)
    return facts
