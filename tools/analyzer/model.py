"""Frontend-neutral facts extracted from one translation unit.

Both frontends (token scanner, libclang) reduce a TU to these records;
rules.py never looks at tokens or cursors, so the two frontends stay
interchangeable and the fixture tests exercise the rules through either.
"""

from dataclasses import dataclass, field


@dataclass
class StateSite:
    """A variable with static storage duration (candidate shared state), or
    an instance member explicitly annotated as lane-shared."""
    kind: str  # 'global' | 'static-member' | 'local-static' | 'member'
    name: str
    type_text: str
    file: str
    line: int
    is_const: bool
    annotation: str = ""  # '' | 'shard_local' | 'shared_guarded'
    why: str = ""


@dataclass
class RangeFor:
    """A range-based for loop."""
    file: str
    line: int
    container_text: str          # Source text of the range expression.
    container_names: list = field(default_factory=list)  # Idents in it.
    direct_category: str = ""    # Category if the range expr names a type.
    body_calls: set = field(default_factory=set)     # Callee identifiers.
    body_appends: list = field(default_factory=list)  # (receiver, method).


@dataclass
class DiscardedCall:
    """A call whose result is discarded at statement level."""
    file: str
    line: int
    callee: str


@dataclass
class HandlerReg:
    """An RpcEndpoint::Register(Opcode::..., handler) site."""
    file: str
    line: int
    opcode: str
    has_idempotent: bool
    has_dedup_guard: bool


@dataclass
class TuFacts:
    file: str
    state_sites: list = field(default_factory=list)
    range_fors: list = field(default_factory=list)
    discarded_calls: list = field(default_factory=list)
    handler_regs: list = field(default_factory=list)


@dataclass
class Index:
    """Cross-file context shared by every TU analysis."""
    # Variable/parameter name -> set of container categories seen for that
    # name anywhere in the analyzed tree ('unordered', 'flatmap', 'ordered',
    # 'sorted'). Names are unqualified; the tree's naming conventions make
    # them effectively unique, and rules only act when the categories are
    # unambiguous.
    container_vars: dict = field(default_factory=dict)
    # Names of functions whose declared return type is Status.
    status_fns: set = field(default_factory=set)


@dataclass(frozen=True)
class Finding:
    rule: str
    file: str
    line: int
    message: str
