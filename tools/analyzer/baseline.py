"""Reviewed-findings baseline: grandfathers known findings out of the gate.

The baseline is a JSON list of {rule, file, line} entries
(tools/analyzer/baseline.json). A finding matches a baseline entry on
(rule, file) with the line within a small drift window, so unrelated edits
above a grandfathered site don't resurrect it; `--write-baseline`
regenerates the file exactly. The tree currently ships an EMPTY baseline —
every real finding was fixed or annotated — and the goal is to keep it that
way.
"""

import json

# A grandfathered site may drift this many lines before it stops matching
# and must be re-reviewed.
LINE_DRIFT = 10


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except FileNotFoundError:
        return []
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline must be a JSON list")
    return entries


def filter_findings(findings, entries):
    """Returns (new_findings, used_entries, stale_entries)."""
    used = [False] * len(entries)
    new = []
    for finding in findings:
        matched = False
        for k, entry in enumerate(entries):
            if used[k]:
                continue
            if entry.get("rule") != finding.rule:
                continue
            if entry.get("file") != finding.file:
                continue
            if abs(int(entry.get("line", 0)) - finding.line) > LINE_DRIFT:
                continue
            used[k] = True
            matched = True
            break
        if not matched:
            new.append(finding)
    stale = [e for k, e in enumerate(entries) if not used[k]]
    return new, [e for k, e in enumerate(entries) if used[k]], stale


def dump(findings, path):
    entries = [{"rule": f.rule, "file": f.file, "line": f.line,
                "note": f.message[:120]} for f in findings]
    with open(path, "w", encoding="utf-8") as f:
        json.dump(entries, f, indent=2)
        f.write("\n")
