"""Semantic shard-safety & determinism analyzer for the Rocksteady tree.

Package layout:
  lexer.py           C++ token stream (comments/strings stripped, lines kept)
  model.py           frontend-neutral facts (state sites, range-fors, calls...)
  frontend_tokens.py token/scope frontend — runs everywhere, no deps
  frontend_clang.py  libclang (clang.cindex) frontend — used when available
  rules.py           the four semantic rules over the model
  baseline.py        reviewed-findings baseline (grandfathering)

tools/analyze.py is the unified driver (these rules + lint_determinism.py).
"""
