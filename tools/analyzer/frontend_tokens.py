"""Token/scope frontend: builds model.TuFacts without a compiler.

This is the always-available fallback behind the libclang frontend. It is
not a parser; it is a set of targeted scans over the token stream plus a
brace-tracking scope machine, tuned to this codebase's style (Google-ish
C++, no macros that hide braces). Where C++ is genuinely ambiguous it
prefers silence over noise — the rules it feeds are hard CI gates.
"""

from .lexer import lex, match_brace, match_paren, skip_template_args
from .model import (DiscardedCall, HandlerReg, Index, RangeFor, StateSite,
                    TuFacts)

# Container spellings -> category used by the iteration-order rule.
CONTAINER_CATEGORIES = {
    "unordered_map": "unordered",
    "unordered_set": "unordered",
    "unordered_multimap": "unordered",
    "unordered_multiset": "unordered",
    "FlatMap64": "flatmap",
    "vector": "ordered",
    "deque": "ordered",
    "string": "ordered",
    "map": "sorted",
    "set": "sorted",
    "multimap": "sorted",
    "multiset": "sorted",
}
_STD_ONLY = {k for k in CONTAINER_CATEGORIES if k != "FlatMap64"}

ANNOTATION_TOKENS = {
    "ROCKSTEADY_SHARD_LOCAL": "shard_local",
    "ROCKSTEADY_SHARED_GUARDED": "shared_guarded",
}

# Calls that feed the event schedule / outbound messages: nondeterministic
# iteration order reaching any of these escapes into the trace. Fail appends
# to the audit report's ordered message list.
SCHEDULE_ESCAPES = {
    "At", "After", "Send", "Call", "EnqueueDispatch", "EnqueueWorker",
    "EnqueueWorkerHeld", "Enqueue", "Fail",
}
APPEND_METHODS = {"push_back", "emplace_back", "push_front", "append"}

_DECL_STOPPERS = {";", "{", "=", ":"}
_STMT_STARTERS = {";", "{", "}", ")", "else", "do", ":", ","}
_NOT_DECL_KEYWORDS = {
    "using", "typedef", "template", "friend", "static_assert", "namespace",
    "class", "struct", "enum", "union", "public", "private", "protected",
    "return", "if", "for", "while", "switch", "case", "default", "goto",
    "operator", "concept", "requires",
}


def _categorize_container_at(tokens, i):
    """If tokens[i] starts a known container type spelling, returns
    (category, index_past_type) else (None, i). Handles `std::` prefixes and
    balanced template args."""
    t = tokens[i]
    if t.kind != "ident":
        return None, i
    j = i
    name = None
    if t.text == "std" and j + 2 < len(tokens) and tokens[j + 1].text == "::":
        cand = tokens[j + 2].text
        if cand in _STD_ONLY:
            name = cand
            j += 3
    elif t.text == "FlatMap64":
        # Bare spelling (it lives in namespace rocksteady, used unqualified).
        name = "FlatMap64"
        j += 1
    if name is None:
        return None, i
    # `std::string` has no template args at use sites; the rest do.
    if j < len(tokens) and tokens[j].text == "<":
        past = skip_template_args(tokens, j)
        if past < 0:
            return None, i
        j = past
    return CONTAINER_CATEGORIES[name], j


def build_index_for_file(text, index: Index):
    """Pass A: records container-typed declaration names and Status-returning
    function names from one file into the shared Index."""
    tokens = lex(text)
    n = len(tokens)
    for i in range(n):
        # Status-returning functions: `Status Name(`, excluding parameter
        # positions (`(Status s` / `, Status s`) and template args.
        t = tokens[i]
        if t.text == "Status" and t.kind == "ident":
            prev = tokens[i - 1].text if i > 0 else ";"
            if prev in ("(", ",", "<", "::"):
                continue
            if i + 2 < n and tokens[i + 1].kind == "ident" and \
                    tokens[i + 2].text == "(":
                index.status_fns.add(tokens[i + 1].text)
            continue
        cat, past = _categorize_container_at(tokens, i)
        if cat is None:
            continue
        # Declarator: optional cv/ref tokens, then the declared name, then a
        # declaration-ish terminator. Covers members, locals, params.
        j = past
        while j < n and tokens[j].text in ("const", "&", "*", "&&"):
            j += 1
        if j < n and tokens[j].kind == "ident":
            nxt = tokens[j + 1].text if j + 1 < n else ";"
            if nxt in (";", "=", "{", ",", ")", ":"):
                index.container_vars.setdefault(tokens[j].text, set()).add(cat)


# --- State sites (the scope machine). ---

def _scan_state_sites(tokens, path, facts):
    """Walks scopes to classify static-storage variable declarations."""
    n = len(tokens)
    scopes = []  # Each entry: 'namespace' | 'class' | 'enum' | 'fn' | 'init'
    stmt = []    # Tokens since the last statement boundary at this depth.
    i = 0
    while i < n:
        t = tokens[i]
        text = t.text
        if text == "{":
            kind = _classify_brace(stmt, scopes)
            if kind != "init":
                _process_stmt(stmt, scopes, path, facts)
                stmt = []
            scopes.append(kind)
            i += 1
            continue
        if text == "}":
            if scopes and scopes[-1] == "init":
                scopes.pop()
                stmt.append(t)  # Keep the surrounding statement alive.
            else:
                if scopes:
                    scopes.pop()
                stmt = []
            i += 1
            continue
        if text == ";":
            _process_stmt(stmt, scopes, path, facts)
            stmt = []
            i += 1
            continue
        stmt.append(t)
        i += 1


def _in_function(scopes):
    return any(s == "fn" for s in scopes)


def _classify_brace(stmt, scopes):
    texts = [t.text for t in stmt]
    if "namespace" in texts:
        return "namespace"
    if ("class" in texts or "struct" in texts or "union" in texts) \
            and "=" not in texts and "(" not in texts[:1]:
        # `struct X {` / `class Y : public Z {`. A `struct X x = {` init has
        # an '='; a function returning a struct has '(' later but also the
        # keyword — returning struct types by keyword is not a style used
        # here, so keyword wins.
        return "class"
    if "enum" in texts:
        return "enum"
    if _in_function(scopes):
        if not texts:
            return "fn"  # Bare block.
        if texts[-1] in ("=", ",", "(", "return") or texts[-1] == "]":
            return "init"
        if texts[-1] == ")" or texts[-1] in ("else", "do", "try", "const",
                                             "noexcept", "mutable", "->"):
            return "fn"  # Control statement body or lambda.
        if texts[-1] == ">":
            return "fn"  # `...) -> RetType {`.
        return "init"  # Uniform-init of a local: `Foo x{...}`.
    # Namespace/class scope.
    if "(" in texts and texts[-1] != "=":
        return "fn"  # Function definition (possibly after a ctor-init list).
    if texts and texts[-1] == "=":
        return "init"
    if texts and texts[-1] == "]":
        return "init"  # `int x[] = {` never reaches here, but arrays do.
    if not texts:
        return "namespace"  # Stray block at namespace scope; harmless.
    return "init"  # `Foo kTable {` style aggregate init.


def _decl_constness(texts, name_pos):
    return "const" in texts[:name_pos + 1] or "constexpr" in texts \
        or "consteval" in texts or "constinit" in texts


def _find_declared_name(stmt):
    """Returns (index, name) of the declared variable in a decl statement."""
    texts = [t.text for t in stmt]
    # Name = last ident before the first top-level '=' / '{' / end, skipping
    # template/paren groups is unnecessary because stmt stops at '{' and ';'.
    stop = len(texts)
    for marker in ("=",):
        if marker in texts:
            stop = min(stop, texts.index(marker))
    k = stop - 1
    while k >= 0:
        if stmt[k].kind == "ident" and texts[k] not in (
                "const", "constexpr", "inline", "static", "thread_local",
                "mutable", "volatile"):
            return k, texts[k]
        k -= 1
    return -1, ""


def _strip_annotations(stmt):
    """Removes annotation-macro tokens (and SHARED_GUARDED's argument group)
    from the statement so the macro's parens don't make a variable declaration
    look like a function signature. Returns (stripped_stmt, annotation_kind).
    """
    annotation = ""
    out = []
    i = 0
    while i < len(stmt):
        kind = ANNOTATION_TOKENS.get(stmt[i].text)
        if kind is None:
            out.append(stmt[i])
            i += 1
            continue
        annotation = kind
        i += 1
        if i < len(stmt) and stmt[i].text == "(":
            close = match_paren(stmt, i)
            i = (close + 1) if close >= 0 else len(stmt)
    return out, annotation


def _process_stmt(stmt, scopes, path, facts):
    stmt, annotation = _strip_annotations(stmt)
    # ':' is not a statement boundary, so the first member after an access
    # specifier arrives as `public : <decl>` — drop the specifier prefix.
    while len(stmt) >= 2 and stmt[0].text in ("public", "private",
                                              "protected") \
            and stmt[1].text == ":":
        stmt = stmt[2:]
    if not stmt:
        return
    texts = [t.text for t in stmt]
    if texts[0] in _NOT_DECL_KEYWORDS or "operator" in texts:
        return
    if "static_assert" in texts:
        return
    scope = scopes[-1] if scopes else "namespace"
    in_fn = _in_function(scopes)
    has_static = "static" in texts
    has_tls = "thread_local" in texts
    # Function declarations, definitions (their signature is the statement
    # preceding the body's '{'), and ctor-init lists all contain a '(' with
    # no '=' before it. At namespace/class scope a variable definition is
    # either parenless or '='-initialized in this tree, so '(' before any
    # '=' means "not a variable". (Bias: a ctor-style namespace-scope
    # variable would be missed — preferable to flagging every parameter.)
    paren = texts.index("(") if "(" in texts else None
    eq = texts.index("=") if "=" in texts else None
    callable_shape = paren is not None and (eq is None or paren < eq)
    if in_fn:
        if not (has_static or has_tls):
            return
        kind = "local-static"  # Ctor-style locals (`static Foo x(1);`) are
        # variables: local function declarations are not a style used here.
    elif scope == "class":
        if not (has_static or has_tls):
            # Plain data members are per-instance, not static storage — but
            # an instance member explicitly marked SHARED_GUARDED is part of
            # the sharded-execution contract (lane mailboxes, safe horizons,
            # per-lane shards) and belongs in the inventory.
            if annotation != "shared_guarded" or callable_shape:
                return
            kind = "member"
        else:
            if callable_shape:
                return  # Static member function.
            kind = "static-member"
    elif scope in ("namespace",) or not scopes:
        if callable_shape:
            return  # Free function / method definition signature.
        if "extern" in texts and "=" not in texts:
            return  # Declaration only; the defining TU owns the site.
        if "using" in texts:
            return
        kind = "global"
    else:
        return  # enum / init contexts.

    name_pos, name = _find_declared_name(stmt)
    if name_pos < 0:
        return
    # `Foo x[N]` arrays: name found is x, fine. Type text = prefix.
    type_text = " ".join(
        texts[:name_pos]).replace(" :: ", "::").replace(" < ", "<").replace(
        " > ", ">").replace(" , ", ", ")
    is_const = _decl_constness(texts, name_pos)
    why = ""
    if annotation == "shared_guarded":
        # ROCKSTEADY_SHARED_GUARDED("why"): the reason string is the token
        # after the macro's '('; the lexer blanks string contents, so recover
        # it from the raw line in the driver if needed — here keep position.
        why = "(see source)"
    facts.state_sites.append(StateSite(
        kind=kind, name=name, type_text=type_text.strip(), file=path,
        line=stmt[0].line, is_const=is_const, annotation=annotation, why=why))


# --- Range-based for loops. ---

def _scan_range_fors(tokens, path, facts):
    n = len(tokens)
    i = 0
    while i < n:
        if tokens[i].text != "for" or tokens[i].kind != "ident":
            i += 1
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            i += 1
            continue
        close = match_paren(tokens, i + 1)
        if close < 0:
            i += 1
            continue
        # Find the range-for ':' at paren depth 1 (not '::', not inside
        # nested parens/templates, not after a ';' — that's a classic for).
        colon = -1
        depth = 0
        classic = False
        for j in range(i + 1, close + 1):
            tj = tokens[j].text
            if tj == "(":
                depth += 1
            elif tj == ")":
                depth -= 1
            elif tj == ";" and depth == 1:
                classic = True
                break
            elif tj == ":" and depth == 1 and colon < 0:
                colon = j
        if classic or colon < 0:
            i += 1
            continue
        range_tokens = tokens[colon + 1:close]
        rf = RangeFor(
            file=path, line=tokens[i].line,
            container_text=" ".join(t.text for t in range_tokens),
            container_names=[t.text for t in range_tokens
                             if t.kind == "ident"])
        # Direct type spelling in the range expression (rare but decisive).
        k = colon + 1
        while k < close:
            cat, past = _categorize_container_at(tokens, k)
            if cat is not None:
                rf.direct_category = cat
                break
            k += 1
        # Body span.
        body_start = close + 1
        if body_start < n and tokens[body_start].text == "{":
            body_end = match_brace(tokens, body_start)
        else:
            body_end = body_start
            while body_end < n and tokens[body_end].text != ";":
                body_end += 1
        for j in range(body_start, min(max(body_end, body_start), n)):
            tj = tokens[j]
            if tj.kind == "ident" and j + 1 < n and tokens[j + 1].text == "(":
                rf.body_calls.add(tj.text)
                if tj.text in APPEND_METHODS and j >= 2 and \
                        tokens[j - 1].text in (".", "->") and \
                        tokens[j - 2].kind == "ident":
                    rf.body_appends.append((tokens[j - 2].text, tj.text))
        facts.range_fors.append(rf)
        i = close + 1


# --- Discarded Status-returning calls. ---

def _chain_start(tokens, i):
    """First token index of the postfix chain ending in the callee at `i`
    (e.g. `cluster_->coordinator().Split` from `Split` back to `cluster_`).
    Steps over member-access operators and balanced call/index groups; an
    identifier is consumed only when reached through an accessor, so a
    declaration's `Status Split(...)` keeps `Split` as its own head."""
    k = i
    while k >= 1 and tokens[k - 1].text in (".", "->", "::"):
        j = k - 2  # Operand to the left of the accessor.
        if j >= 0 and tokens[j].text in (")", "]"):
            depth = 1
            j -= 1
            while j >= 0 and depth > 0:
                tj = tokens[j].text
                if tj in (")", "]"):
                    depth += 1
                elif tj in ("(", "["):
                    depth -= 1
                j -= 1
            # j is now just before the matching open bracket; a call has its
            # callee identifier there.
            if j >= 0 and tokens[j].kind == "ident":
                k = j
            else:
                k = j + 1
        elif j >= 0 and (tokens[j].kind == "ident"
                         or tokens[j].text == "this"):
            k = j
        else:
            break
    return k


def _scan_discarded_calls(tokens, path, facts, status_fns):
    n = len(tokens)
    for i in range(n):
        t = tokens[i]
        if t.kind != "ident" or t.text not in status_fns:
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            continue
        close = match_paren(tokens, i + 1)
        if close < 0 or close + 1 >= n:
            continue
        if tokens[close + 1].text != ";":
            continue  # Result flows onward (or this is a definition).
        head = _chain_start(tokens, i)
        before = tokens[head - 1].text if head >= 1 else ";"
        # `(void) Call();` is a deliberate, visible discard.
        if before == ")" and head >= 3 and tokens[head - 2].text == "void" \
                and tokens[head - 3].text == "(":
            continue
        if before in _STMT_STARTERS:
            facts.discarded_calls.append(
                DiscardedCall(file=path, line=t.line, callee=t.text))


# --- RPC handler registrations. ---

def _scan_handler_regs(tokens, path, facts):
    n = len(tokens)
    for i in range(n):
        if tokens[i].text != "Register" or tokens[i].kind != "ident":
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            continue
        close = match_paren(tokens, i + 1)
        if close < 0:
            continue
        span = tokens[i:close + 1]
        texts = [t.text for t in span]
        opcode = ""
        for j in range(len(texts) - 2):
            if texts[j] == "Opcode" and texts[j + 1] == "::":
                opcode = texts[j + 2]
                break
        if not opcode:
            continue  # Some other Register() overload.
        has_idempotent = "ROCKSTEADY_IDEMPOTENT" in texts
        has_dedup = any(t.kind == "ident" and "edup" in t.text for t in span)
        facts.handler_regs.append(HandlerReg(
            file=path, line=tokens[i].line, opcode=opcode,
            has_idempotent=has_idempotent, has_dedup_guard=has_dedup))


def analyze_file(text, path, index: Index) -> TuFacts:
    """Pass B: extracts all facts from one file."""
    tokens = lex(text)
    facts = TuFacts(file=path)
    _scan_state_sites(tokens, path, facts)
    _scan_range_fors(tokens, path, facts)
    _scan_discarded_calls(tokens, path, facts, index.status_fns)
    _scan_handler_regs(tokens, path, facts)
    return facts
