"""A small C++ lexer: good enough for semantic lint, not a compiler.

Produces a flat token list with line numbers. Comments and string/char
literal *contents* never become tokens (prose cannot trip rules); string
literals are kept as single `str` tokens so call-shape scanning still sees
argument structure. Preprocessor directives are consumed whole (including
backslash continuations) and dropped — the analyzer works on the
un-preprocessed source on purpose: annotation macros must stay visible.
"""

from dataclasses import dataclass

# Longest-first so '>>=' wins over '>>' wins over '>'.
_MULTI_OPS = sorted(
    ["<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
     ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "|=", "&=",
     "^=", ".*"],
    key=len, reverse=True)

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'num' | 'str' | 'char' | 'punct'
    text: str
    line: int


def _skip_raw_string(text, i, line):
    """`i` points at the opening quote of R"delim( ... )delim"."""
    j = text.find("(", i)
    if j < 0:
        return len(text), line
    delim = text[i + 1:j]
    close = ')' + delim + '"'
    end = text.find(close, j)
    if end < 0:
        return len(text), line + text.count("\n", i)
    end += len(close)
    return end, line + text.count("\n", i, end)


def lex(text):
    """Returns a list of Tokens. Never raises on malformed input."""
    tokens = []
    i, line, n = 0, 1, len(text)
    at_line_start = True  # Only whitespace seen since the last newline.
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: swallow the logical line.
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                # Continuation if the line ends with a backslash.
                k = j - 1
                while k >= 0 and text[k] in " \t\r":
                    k -= 1
                line += 1
                i = j + 1
                if k < 0 or text[k] != "\\":
                    break
            at_line_start = True
            continue
        at_line_start = False
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j < 0:
                break
            line += text.count("\n", i, j)
            i = j + 2
            continue
        # Raw strings: R"..." with optional encoding prefix.
        if c in "RuUL":
            raw = False
            for prefix in ('R"', 'u8R"', 'uR"', 'UR"', 'LR"'):
                if text.startswith(prefix, i):
                    start_line = line
                    i, line = _skip_raw_string(text, i + len(prefix) - 1, line)
                    tokens.append(Token("str", '""', start_line))
                    raw = True
                    break
            if raw:
                continue
        if c == '"' or (c in "uUL" and text.startswith('"', i + 1)) or \
                text.startswith('u8"', i):
            start = text.find('"', i)
            j = start + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == '"':
                    break
                if text[j] == "\n":  # Unterminated; bail at newline.
                    break
                j += 1
            tokens.append(Token("str", '""', line))
            i = min(j + 1, n)
            continue
        if c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'" or text[j] == "\n":
                    break
                j += 1
            tokens.append(Token("char", "''", line))
            i = min(j + 1, n)
            continue
        if c in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token("ident", text[i:j], line))
            i = j
            continue
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n and (text[j] in _IDENT_CONT or text[j] in ".'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        for op in _MULTI_OPS:
            if text.startswith(op, i):
                tokens.append(Token("punct", op, line))
                i += len(op)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


def match_paren(tokens, open_index):
    """Index of the ')' matching tokens[open_index] == '(', or -1."""
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def match_brace(tokens, open_index):
    """Index of the '}' matching tokens[open_index] == '{', or -1."""
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def skip_template_args(tokens, open_index):
    """Index just past the '>' matching tokens[open_index] == '<', or -1.

    Treats '>>' as two closing angles (C++11 template termination).
    """
    depth = 0
    i = open_index
    while i < len(tokens):
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{", "}"):
            return -1  # Not template args after all.
        i += 1
    return -1
