#!/usr/bin/env python3
"""Unified static analysis gate: semantic shard-safety/determinism rules
(tools/analyzer/) plus the regex determinism lint (tools/lint_determinism.py).

The semantic pass enforces what regexes cannot see (types, scopes, data
flow), in four rules that gate the move to sharded execution (ROADMAP 1):

  shard-unannotated    every mutable static-storage variable (non-const
                       global, static data member, function-local static)
                       must carry ROCKSTEADY_SHARD_LOCAL or
                       ROCKSTEADY_SHARED_GUARDED("why"); the full inventory
                       of such state is written to build/shard_state.json
  iter-order-escape    range-for over std::unordered_{map,set} whose body
                       schedules events / sends messages / appends to an
                       ordered container: unspecified iteration order would
                       leak into the event trace
  flatmap-iteration    any iteration over FlatMap64 (iteration-free by
                       design; probe order is hash-layout-dependent)
  unchecked-status     a Status-returning call whose result is discarded
                       (suppress per line: lint:allow-unchecked: <reason>)
  handler-idempotency  RPC handlers registered without an idempotency
                       review: annotate ROCKSTEADY_IDEMPOTENT("why") or
                       guard with an explicit dedup check — the per-call_id
                       dedup cache expires, so at-least-once delivery can
                       re-execute any handler

Frontends: libclang (clang.cindex + compile_commands.json) when installed,
otherwise a token/scope frontend with no dependencies. `--frontend` forces
one. Grandfathered findings live in tools/analyzer/baseline.json (currently
empty — keep it that way); `--write-baseline` regenerates it.

Exit status: 0 clean (or all findings baselined), 1 findings, 2 usage.

Usage:
  tools/analyze.py src/
  tools/analyze.py src/ --json build/analysis.json
  tools/analyze.py src/ --baseline tools/analyzer/baseline.json
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import lint_determinism  # noqa: E402
from analyzer import baseline as baseline_mod  # noqa: E402
from analyzer import frontend_clang, frontend_tokens, rules  # noqa: E402
from analyzer.model import Finding, Index  # noqa: E402

SOURCE_EXTS = (".cc", ".cpp", ".h", ".hpp")


def collect_files(paths):
    files = []
    for arg in paths:
        path = Path(arg)
        if path.is_dir():
            for ext in SOURCE_EXTS:
                files.extend(sorted(path.rglob(f"*{ext}")))
        elif path.exists():
            files.append(path)
        else:
            print(f"analyze: no such path: {path}", file=sys.stderr)
            return None
    return files


def run_semantic(files, frontend_choice, build_dir):
    """Returns (findings, all_facts, frontend_name)."""
    index = Index()
    texts = {}
    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        texts[path] = text
        frontend_tokens.build_index_for_file(text, index)

    cindex = None
    if frontend_choice in ("auto", "clang"):
        cindex = frontend_clang.load_cindex()
        if cindex is None and frontend_choice == "clang":
            print("analyze: --frontend=clang requested but clang.cindex / "
                  "libclang is unavailable", file=sys.stderr)
            return None, None, None

    findings = []
    all_facts = []
    frontend_name = "clang" if cindex else "tokens"
    compile_commands = None
    if cindex:
        compile_commands = frontend_clang.load_compile_commands(build_dir)
    for path in files:
        raw_lines = texts[path].splitlines()
        if cindex:
            try:
                facts = frontend_clang.analyze_file(
                    str(path), index, cindex, compile_commands)
            except Exception as e:  # Robustness: fall back per file.
                print(f"analyze: clang frontend failed on {path} ({e}); "
                      "using token frontend", file=sys.stderr)
                facts = frontend_tokens.analyze_file(
                    texts[path], str(path), index)
        else:
            facts = frontend_tokens.analyze_file(texts[path], str(path),
                                                 index)
        all_facts.append(facts)
        findings.extend(rules.check_tu(facts, index, raw_lines))
    return findings, all_facts, frontend_name


def run_regex_lint(files):
    findings = []
    for path in files:
        for lineno, name, message in lint_determinism.lint_file(path):
            findings.append(Finding(rule=name, file=str(path), line=lineno,
                                    message=message))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument("--frontend", choices=("auto", "clang", "tokens"),
                        default="auto")
    parser.add_argument("--build-dir", default=str(REPO / "build"),
                        help="where compile_commands.json and "
                             "shard_state.json live")
    parser.add_argument("--json", default=None,
                        help="also write findings as JSON to this path")
    parser.add_argument("--baseline",
                        default=str(REPO / "tools/analyzer/baseline.json"))
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--shard-state", default=None,
                        help="where to write the mutable-state inventory "
                             "(default: <build-dir>/shard_state.json)")
    parser.add_argument("--no-regex-lint", action="store_true",
                        help="run only the semantic rules (the fixture "
                             "runner drives lint_determinism separately)")
    args = parser.parse_args(argv[1:])

    files = collect_files(args.paths)
    if files is None:
        return 2
    if not files:
        print("analyze: no source files found", file=sys.stderr)
        return 2

    findings, all_facts, frontend_name = run_semantic(
        files, args.frontend, args.build_dir)
    if findings is None:
        return 2
    if not args.no_regex_lint:
        findings.extend(run_regex_lint(files))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    # Shard-state inventory: always written, even when the gate fails —
    # it is the work-list, not a success artifact.
    shard_state_path = Path(args.shard_state) if args.shard_state else \
        Path(args.build_dir) / "shard_state.json"
    inventory = rules.shard_state_inventory(all_facts)
    shard_state_path.parent.mkdir(parents=True, exist_ok=True)
    with shard_state_path.open("w", encoding="utf-8") as f:
        json.dump(inventory, f, indent=2)
        f.write("\n")

    if args.write_baseline:
        baseline_mod.dump(findings, args.baseline)
        print(f"analyze: wrote {len(findings)} finding(s) to "
              f"{args.baseline}")
        return 0

    baselined = []
    if not args.no_baseline:
        entries = baseline_mod.load(args.baseline)
        findings, baselined, stale = baseline_mod.filter_findings(
            findings, entries)
        for entry in stale:
            print(f"analyze: note: stale baseline entry no longer matches: "
                  f"{entry.get('file')}:{entry.get('line')} "
                  f"[{entry.get('rule')}]", file=sys.stderr)

    if args.json:
        payload = {
            "frontend": frontend_name,
            "files_analyzed": len(files),
            "findings": [vars(f) for f in findings],
            "baselined": len(baselined),
            "shard_state": str(shard_state_path),
        }
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    for finding in findings:
        print(f"{finding.file}:{finding.line}: [{finding.rule}] "
              f"{finding.message}", file=sys.stderr)
    suffix = f", {len(baselined)} baselined" if baselined else ""
    if findings:
        print(f"analyze[{frontend_name}]: {len(findings)} finding(s) in "
              f"{len(files)} files{suffix} — see rule docs in "
              "tools/analyze.py / DESIGN.md", file=sys.stderr)
        return 1
    print(f"analyze[{frontend_name}]: {len(files)} files clean{suffix}; "
          f"shard-state inventory: {shard_state_path} "
          f"({inventory['total_sites']} mutable site(s), "
          f"{inventory['unannotated']} unannotated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
