// Integration tests for Rocksteady migration (all modes) and the baseline
// RAMCloud migration: data integrity, ownership handoff, priority pulls,
// side-log commit, and protocol invariants.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "src/cluster/cluster.h"
#include "src/migration/migration_state.h"
#include "src/migration/ramcloud_migration.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  return config;
}

struct MigrationFixture {
  explicit MigrationFixture(uint64_t records = 5'000) : cluster(TestCluster()) {
    EnableMigration(&cluster);
    cluster.CreateTable(kTable, 0);
    cluster.LoadTable(kTable, records, 30, 100);
    num_records = records;
  }

  // Runs a Rocksteady migration of the upper half from master 0 to 1.
  MigrationStats Migrate(const RocksteadyOptions& options) {
    std::optional<MigrationStats> result;
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, options,
                             [&](const MigrationStats& stats) { result = stats; });
    cluster.sim().Run();
    EXPECT_TRUE(result.has_value()) << "migration did not complete";
    return result.value_or(MigrationStats{});
  }

  // Reads every record through the client and checks values.
  void VerifyAllRecords(const std::string& expected_value) {
    int ok = 0;
    int wrong = 0;
    for (uint64_t i = 0; i < num_records; i++) {
      cluster.client(0).Read(kTable, Cluster::MakeKey(i, 30),
                             [&, i](Status s, const std::string& v) {
                               if (s == Status::kOk && v == expected_value) {
                                 ok++;
                               } else {
                                 wrong++;
                               }
                             });
      if (i % 64 == 63) {
        cluster.sim().Run();  // Bound outstanding requests.
      }
    }
    cluster.sim().Run();
    EXPECT_EQ(static_cast<uint64_t>(ok), num_records);
    EXPECT_EQ(wrong, 0);
  }

  Cluster cluster;
  uint64_t num_records = 0;
};

TEST(RocksteadyMigrationTest, MovesAllDataAndOwnership) {
  MigrationFixture f;
  const uint64_t on_source_before = f.cluster.master(0).objects().object_count();
  const MigrationStats stats = f.Migrate(RocksteadyOptions{});

  EXPECT_GT(stats.bytes_pulled, 0u);
  EXPECT_GT(stats.records_pulled, 0u);
  EXPECT_GT(stats.pulls_completed, 1u);
  EXPECT_EQ(stats.rounds, 1u);

  // Ownership: coordinator maps the upper half to master 1.
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(1).id());
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, 0), f.cluster.master(0).id());

  // Source released its copy; target holds it.
  EXPECT_LT(f.cluster.master(0).objects().object_count(), on_source_before);
  EXPECT_EQ(f.cluster.master(0).objects().object_count() +
                f.cluster.master(1).objects().object_count(),
            f.num_records);

  // Lineage dependency registered during migration is dropped at the end.
  EXPECT_TRUE(f.cluster.coordinator().dependencies().empty());

  // The target committed its side logs into the main log.
  bool commit_record = false;
  f.cluster.master(1).objects().log().ForEachEntry(
      [&](LogRef, const LogEntryView& entry) {
        if (entry.type() == LogEntryType::kSideLogCommit) {
          commit_record = true;
        }
      });
  EXPECT_TRUE(commit_record);

  f.VerifyAllRecords(std::string(100, 'v'));
}

TEST(RocksteadyMigrationTest, LazyReplicationReplicatesAtEnd) {
  MigrationFixture f;
  const MigrationStats stats = f.Migrate(RocksteadyOptions{});
  EXPECT_GT(stats.rereplicated_bytes, 0u);
  // Side-log bytes landed on the target's backups.
  uint64_t held_for_target = 0;
  const ServerId target_id = f.cluster.master(1).id();
  for (size_t i = 0; i < f.cluster.num_masters(); i++) {
    for (const auto& segment :
         f.cluster.master(i).backup().GetRecoveryData(target_id, 0)) {
      held_for_target += segment.data.size();
    }
  }
  EXPECT_GE(held_for_target, stats.bytes_pulled);
}

TEST(RocksteadyMigrationTest, WritesDuringMigrationLandAtTarget) {
  MigrationFixture f;
  // Kick off the migration, then issue writes to migrating keys while it
  // runs (the sim interleaves them with pulls).
  bool done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats&) { done = true; });
  // Find keys in the migrating half.
  std::vector<std::string> migrating_keys;
  for (uint64_t i = 0; i < f.num_records && migrating_keys.size() < 20; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) >= kMid) {
      migrating_keys.push_back(key);
    }
  }
  int writes_ok = 0;
  f.cluster.sim().After(50 * kMicrosecond, [&] {
    for (const auto& key : migrating_keys) {
      f.cluster.client(0).Write(kTable, key, "written-during-migration",
                                [&](Status s) { writes_ok += (s == Status::kOk); });
    }
  });
  f.cluster.sim().Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(writes_ok, static_cast<int>(migrating_keys.size()));
  // The fresh writes beat the migrated (older) copies.
  int fresh = 0;
  for (const auto& key : migrating_keys) {
    f.cluster.client(1).Read(kTable, key, [&](Status s, const std::string& v) {
      fresh += (s == Status::kOk && v == "written-during-migration");
    });
  }
  f.cluster.sim().Run();
  EXPECT_EQ(fresh, static_cast<int>(migrating_keys.size()));
}

TEST(RocksteadyMigrationTest, PriorityPullServesEarlyReads) {
  MigrationFixture f(20'000);
  bool done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats&) { done = true; });
  // Immediately read a migrating key; it should complete long before the
  // bulk transfer ends, via PriorityPull + client retry.
  std::string hot_key;
  for (uint64_t i = 0; i < f.num_records; i++) {
    hot_key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, hot_key) >= kMid) {
      break;
    }
  }
  Tick read_completed_at = 0;
  Status read_status = Status::kInvalidState;
  f.cluster.sim().After(20 * kMicrosecond, [&] {
    f.cluster.client(0).Read(kTable, hot_key, [&](Status s, const std::string& v) {
      read_status = s;
      read_completed_at = f.cluster.sim().now();
      EXPECT_EQ(v.size(), 100u);
    });
  });
  Tick migration_end = 0;
  while (!done) {
    f.cluster.sim().RunUntil(f.cluster.sim().now() + kMillisecond);
    if (done) {
      migration_end = f.cluster.sim().now();
    }
    ASSERT_LT(f.cluster.sim().now(), 100 * static_cast<Tick>(kSecond));
  }
  f.cluster.sim().Run();
  EXPECT_EQ(read_status, Status::kOk);
  EXPECT_GT(read_completed_at, 0u);
  EXPECT_LT(read_completed_at, migration_end / 2);
  EXPECT_GE(f.cluster.client(0).retry_later_retries(), 1u);
}

TEST(RocksteadyMigrationTest, AbsentKeyDuringMigrationIsNotFound) {
  MigrationFixture f;
  bool done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats&) { done = true; });
  // A key that hashes into the migrating range but was never written.
  std::string absent;
  for (uint64_t i = 0; i < 100'000; i++) {
    absent = "never-written-" + std::to_string(i);
    if (HashKey(kTable, absent) >= kMid) {
      break;
    }
  }
  Status status = Status::kOk;
  f.cluster.sim().After(20 * kMicrosecond, [&] {
    f.cluster.client(0).Read(kTable, absent,
                             [&](Status s, const std::string&) { status = s; });
  });
  f.cluster.sim().Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(status, Status::kObjectNotFound);
}

TEST(RocksteadyMigrationTest, NoPriorityPullsStillCorrect) {
  MigrationFixture f;
  RocksteadyOptions options;
  options.mode = MigrationMode::kNoPriorityPulls;
  const MigrationStats stats = f.Migrate(options);
  EXPECT_EQ(stats.priority_pull_batches, 0u);
  f.VerifyAllRecords(std::string(100, 'v'));
}

TEST(RocksteadyMigrationTest, SourceOwnsModeUsesTwoRoundsAndIsCorrect) {
  MigrationFixture f;
  RocksteadyOptions options;
  options.mode = MigrationMode::kSourceOwns;
  const MigrationStats stats = f.Migrate(options);
  EXPECT_EQ(stats.rounds, 2u);  // Full pass + post-freeze delta.
  EXPECT_GT(stats.rereplicated_bytes, 0u);  // Synchronous re-replication.
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(1).id());
  f.VerifyAllRecords(std::string(100, 'v'));
}

TEST(RocksteadyMigrationTest, SourceOwnsPreservesWritesDuringRoundOne) {
  MigrationFixture f;
  RocksteadyOptions options;
  options.mode = MigrationMode::kSourceOwns;
  bool done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, options,
                           [&](const MigrationStats&) { done = true; });
  // Overwrite a migrating key while round 1 runs (source still owns it).
  std::string key;
  for (uint64_t i = 0; i < f.num_records; i++) {
    key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) >= kMid) {
      break;
    }
  }
  Status write_status = Status::kInvalidState;
  f.cluster.sim().After(30 * kMicrosecond, [&] {
    f.cluster.client(0).Write(kTable, key, "updated-mid-precopy",
                              [&](Status s) { write_status = s; });
  });
  f.cluster.sim().Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(write_status, Status::kOk);
  // The delta round carried the update to the target.
  std::string value;
  f.cluster.client(1).Read(kTable, key, [&](Status, const std::string& v) { value = v; });
  f.cluster.sim().Run();
  EXPECT_EQ(value, "updated-mid-precopy");
}

TEST(RocksteadyMigrationTest, SyncPriorityPullsServeReads) {
  MigrationFixture f;
  RocksteadyOptions options;
  options.sync_priority_pulls = true;
  bool done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, options,
                           [&](const MigrationStats&) { done = true; });
  std::string key;
  for (uint64_t i = 0; i < f.num_records; i++) {
    key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) >= kMid) {
      break;
    }
  }
  Status status = Status::kInvalidState;
  std::string value;
  f.cluster.sim().After(20 * kMicrosecond, [&] {
    f.cluster.client(0).Read(kTable, key, [&](Status s, const std::string& v) {
      status = s;
      value = v;
    });
  });
  f.cluster.sim().Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(value.size(), 100u);
}

TEST(RocksteadyMigrationTest, SyncReplicationAblationSlowsTransfer) {
  // §4.2: lineage/deferred replication migrates faster than synchronous
  // re-replication because replication bytes leave the migration fast path.
  // The effect needs a worker-constrained target (the paper's target is
  // absorbing half the cluster load); compare transfer (last-pull) times on
  // a small CoreSet.
  auto run = [](bool lazy) {
    ClusterConfig config = TestCluster();
    config.master.num_workers = 2;
    Cluster cluster(config);
    EnableMigration(&cluster);
    cluster.CreateTable(kTable, 0);
    cluster.LoadTable(kTable, 20'000, 30, 100);
    RocksteadyOptions options;
    options.lazy_rereplication = lazy;
    std::optional<MigrationStats> result;
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, options,
                             [&](const MigrationStats& stats) { result = stats; });
    cluster.sim().Run();
    EXPECT_TRUE(result.has_value());
    const MigrationStats stats = result.value_or(MigrationStats{});
    return static_cast<double>(stats.bytes_pulled) /
           static_cast<double>(stats.last_pull_time - stats.start_time);
  };
  const double lazy_rate = run(true);
  const double sync_rate = run(false);
  EXPECT_GT(lazy_rate, sync_rate * 1.1);
}

TEST(RocksteadyMigrationTest, Deterministic) {
  auto run = [] {
    MigrationFixture f(3'000);
    const MigrationStats stats = f.Migrate(RocksteadyOptions{});
    return std::make_tuple(stats.end_time - stats.start_time, stats.bytes_pulled,
                           stats.pulls_completed);
  };
  EXPECT_EQ(run(), run());
}


TEST(RocksteadyMigrationTest, ConcurrentMigrationsToDistinctTargets) {
  // Two tablets leave the same source for two different targets at once.
  MigrationFixture f;
  f.cluster.coordinator().SplitTablet(kTable, 1ull << 62);
  std::optional<MigrationStats> first;
  std::optional<MigrationStats> second;
  StartRocksteadyMigration(&f.cluster, kTable, 1ull << 62, kMid - 1, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats& s) { first = s; });
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 2, RocksteadyOptions{},
                           [&](const MigrationStats& s) { second = s; });
  f.cluster.sim().Run();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, 1ull << 62), f.cluster.master(1).id());
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(2).id());
  f.VerifyAllRecords(std::string(100, 'v'));
}

TEST(RocksteadyMigrationTest, ChainedMigrationsKeepDataIntact) {
  // A tablet hops source -> 1 -> 2 -> back to 0 (the elastic-scaling path).
  MigrationFixture f(3'000);
  auto hop = [&](size_t from, size_t to) {
    std::optional<MigrationStats> stats;
    StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, from, to, RocksteadyOptions{},
                             [&](const MigrationStats& s) { stats = s; });
    f.cluster.sim().Run();
    ASSERT_TRUE(stats.has_value());
  };
  hop(0, 1);
  hop(1, 2);
  hop(2, 0);
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(0).id());
  EXPECT_TRUE(f.cluster.coordinator().dependencies().empty());
  f.VerifyAllRecords(std::string(100, 'v'));
}

TEST(RocksteadyMigrationTest, DeleteOfUnarrivedKeyStaysDeleted) {
  // The fuzz-discovered bug as a targeted regression test: delete a key at
  // the target before its (older) copy arrives via bulk pulls.
  MigrationFixture f(20'000);
  bool done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats&) { done = true; });
  std::string victim;
  for (uint64_t i = f.num_records; i-- > 0;) {
    victim = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, victim) >= kMid) {
      break;  // Likely to be pulled late (no ordering guarantee, but the
              // tombstone must protect it regardless).
    }
  }
  Status remove_status = Status::kInvalidState;
  f.cluster.sim().After(20 * kMicrosecond, [&] {
    f.cluster.client(0).Remove(kTable, victim, [&](Status s) { remove_status = s; });
  });
  f.cluster.sim().Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(remove_status, Status::kOk);
  Status read_status = Status::kOk;
  f.cluster.client(1).Read(kTable, victim,
                           [&](Status s, const std::string&) { read_status = s; });
  f.cluster.sim().Run();
  EXPECT_EQ(read_status, Status::kObjectNotFound);
}

// ------------------------------------------------------------- Baseline.

TEST(BaselineMigrationTest, MovesAllData) {
  MigrationFixture f;
  std::optional<BaselineStats> result;
  StartBaselineMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, BaselineMigrateOptions{},
                         [&](const BaselineStats& stats) { result = stats; });
  f.cluster.sim().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->bytes_transferred, 0u);
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(1).id());
  f.VerifyAllRecords(std::string(100, 'v'));
}

TEST(BaselineMigrationTest, OwnershipStaysAtSourceUntilEnd) {
  MigrationFixture f(20'000);
  bool done = false;
  StartBaselineMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, BaselineMigrateOptions{},
                         [&](const BaselineStats&) { done = true; });
  // Mid-migration, the source still owns and serves the migrating range.
  std::string key;
  for (uint64_t i = 0; i < f.num_records; i++) {
    key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) >= kMid) {
      break;
    }
  }
  Status status = Status::kInvalidState;
  f.cluster.sim().After(50 * kMicrosecond, [&] {
    ASSERT_FALSE(done);  // Baseline is slow; it cannot have finished.
    EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(0).id());
    f.cluster.client(0).Read(kTable, key,
                             [&](Status s, const std::string&) { status = s; });
  });
  f.cluster.sim().Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(status, Status::kOk);
}

TEST(BaselineMigrationTest, SkipKnobsIncreaseRate) {
  // Figure 5's ladder: each skipped phase strictly increases migration rate.
  auto run = [](BaselineMigrateOptions options) {
    MigrationFixture f(20'000);
    std::optional<BaselineStats> result;
    StartBaselineMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, options,
                           [&](const BaselineStats& stats) { result = stats; });
    f.cluster.sim().Run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(BaselineStats{}).RateMBps();
  };
  const double full = run({});
  const double no_rerepl = run({.skip_rereplication = true});
  const double no_replay = run({.skip_rereplication = true, .skip_replay = true});
  const double no_tx =
      run({.skip_rereplication = true, .skip_replay = true, .skip_tx = true});
  const double no_copy = run(
      {.skip_rereplication = true, .skip_replay = true, .skip_tx = true, .skip_copy = true});
  EXPECT_GT(no_rerepl, full * 1.15);
  EXPECT_GT(no_replay, no_rerepl * 1.5);
  EXPECT_GT(no_tx, no_replay);
  EXPECT_GT(no_copy, no_tx * 1.2);
}

TEST(BaselineMigrationTest, CapturesWritesDuringScan) {
  MigrationFixture f(20'000);
  bool done = false;
  StartBaselineMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, BaselineMigrateOptions{},
                         [&](const BaselineStats&) { done = true; });
  std::string key;
  for (uint64_t i = 0; i < f.num_records; i++) {
    key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) >= kMid) {
      break;
    }
  }
  Status write_status = Status::kInvalidState;
  f.cluster.sim().After(100 * kMicrosecond, [&] {
    f.cluster.client(0).Write(kTable, key, "updated-during-baseline",
                              [&](Status s) { write_status = s; });
  });
  f.cluster.sim().Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(write_status, Status::kOk);
  std::string value;
  f.cluster.client(1).Read(kTable, key, [&](Status, const std::string& v) { value = v; });
  f.cluster.sim().Run();
  EXPECT_EQ(value, "updated-during-baseline");
}

}  // namespace
}  // namespace rocksteady
