// Unit tests for log entries, segments, the log, side logs, and the cleaner.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/log/log.h"
#include "src/log/log_cleaner.h"
#include "src/log/log_entry.h"
#include "src/log/segment.h"
#include "src/log/side_log.h"

namespace rocksteady {
namespace {

LogEntryHeader ObjectHeader(TableId table, KeyHash hash, Version version) {
  LogEntryHeader header;
  header.type = LogEntryType::kObject;
  header.table_id = table;
  header.key_hash = hash;
  header.version = version;
  return header;
}

// -------------------------------------------------------------- LogEntry.

TEST(LogEntryTest, RoundTrip) {
  std::vector<uint8_t> buffer(256);
  WriteEntry(buffer.data(), ObjectHeader(7, 0x1234, 42), "key1", "value-bytes");
  LogEntryView view;
  ASSERT_TRUE(ReadEntry(buffer.data(), buffer.size(), &view));
  EXPECT_EQ(view.type(), LogEntryType::kObject);
  EXPECT_EQ(view.table_id(), 7u);
  EXPECT_EQ(view.key_hash(), 0x1234u);
  EXPECT_EQ(view.version(), 42u);
  EXPECT_EQ(view.key, "key1");
  EXPECT_EQ(view.value, "value-bytes");
}

TEST(LogEntryTest, ChecksumDetectsCorruption) {
  std::vector<uint8_t> buffer(256);
  WriteEntry(buffer.data(), ObjectHeader(1, 2, 3), "k", "v");
  buffer[sizeof(LogEntryHeader)] ^= 0xFF;  // Flip a key byte.
  LogEntryView view;
  EXPECT_FALSE(ReadEntry(buffer.data(), buffer.size(), &view));
}

TEST(LogEntryTest, TruncatedBufferRejected) {
  std::vector<uint8_t> buffer(256);
  WriteEntry(buffer.data(), ObjectHeader(1, 2, 3), "key", "a longer value here");
  LogEntryView view;
  EXPECT_FALSE(ReadEntry(buffer.data(), sizeof(LogEntryHeader) + 2, &view));
  EXPECT_FALSE(ReadEntry(buffer.data(), 10, &view));
}

TEST(LogEntryTest, EmptyKeyAndValue) {
  std::vector<uint8_t> buffer(64);
  WriteEntry(buffer.data(), ObjectHeader(1, 2, 3), "", "");
  LogEntryView view;
  ASSERT_TRUE(ReadEntry(buffer.data(), buffer.size(), &view));
  EXPECT_TRUE(view.key.empty());
  EXPECT_TRUE(view.value.empty());
}

// --------------------------------------------------------------- Segment.

TEST(SegmentTest, AppendUntilFull) {
  Segment segment(1, 1024);
  int appended = 0;
  while (segment.AppendEntry(ObjectHeader(1, appended, 1), "key", "0123456789") != SIZE_MAX) {
    appended++;
  }
  EXPECT_GT(appended, 0);
  // Each entry is 40 + 3 + 10 = 53 bytes; 1024 / 53 = 19.
  EXPECT_EQ(appended, 19);
  EXPECT_LE(segment.used(), segment.capacity());
}

TEST(SegmentTest, ForEachVisitsInOrder) {
  Segment segment(1, 4096);
  for (int i = 0; i < 10; i++) {
    segment.AppendEntry(ObjectHeader(1, i, 1), "k" + std::to_string(i), "v");
  }
  std::vector<KeyHash> seen;
  EXPECT_TRUE(segment.ForEach([&](size_t, const LogEntryView& view) {
    seen.push_back(view.key_hash());
    return true;
  }));
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(seen[i], static_cast<KeyHash>(i));
  }
}

TEST(SegmentTest, LiveByteAccounting) {
  Segment segment(1, 4096);
  segment.AppendEntry(ObjectHeader(1, 1, 1), "key", "0123456789");
  EXPECT_EQ(segment.live_bytes(), segment.used());
  segment.SubLive(53);
  EXPECT_EQ(segment.live_bytes(), segment.used() - 53);
}

// ------------------------------------------------------------------- Log.

TEST(LogTest, AppendAndRead) {
  Log log;
  auto ref = log.AppendObject(1, HashKey("a"), "a", "value-a", 1);
  ASSERT_TRUE(ref.ok());
  LogEntryView view;
  ASSERT_TRUE(log.Read(*ref, &view));
  EXPECT_EQ(view.key, "a");
  EXPECT_EQ(view.value, "value-a");
}

TEST(LogTest, RollsToNewSegments) {
  Log log(1024);
  std::vector<LogRef> refs;
  for (int i = 0; i < 100; i++) {
    auto ref = log.AppendObject(1, i, "key" + std::to_string(i), std::string(50, 'x'), 1);
    ASSERT_TRUE(ref.ok());
    refs.push_back(*ref);
  }
  EXPECT_GT(log.segments().size(), 5u);
  // Every reference still readable after rolling.
  for (int i = 0; i < 100; i++) {
    LogEntryView view;
    ASSERT_TRUE(log.Read(refs[i], &view));
    EXPECT_EQ(view.key_hash(), static_cast<KeyHash>(i));
  }
}

TEST(LogTest, OversizeEntryRejected) {
  Log log(256);
  auto ref = log.AppendObject(1, 1, "k", std::string(1000, 'x'), 1);
  EXPECT_FALSE(ref.ok());
  EXPECT_EQ(ref.status(), Status::kNoSpace);
}

TEST(LogTest, InvalidRefReadFails) {
  Log log;
  LogEntryView view;
  EXPECT_FALSE(log.Read(LogRef(), &view));
  EXPECT_FALSE(log.Read(LogRef(999, 0), &view));
}

TEST(LogTest, MarkDeadUpdatesAccounting) {
  Log log;
  auto ref = log.AppendObject(1, 1, "key", "value", 1);
  const uint64_t live_before = log.live_bytes();
  log.MarkDead(*ref);
  EXPECT_LT(log.live_bytes(), live_before);
  EXPECT_GT(log.stats().dead_bytes, 0u);
}

TEST(LogTest, ForEachEntrySeesEverything) {
  Log log(512);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(log.AppendObject(1, i, "k" + std::to_string(i), "v", 1).ok());
  }
  std::set<KeyHash> seen;
  log.ForEachEntry([&](LogRef, const LogEntryView& view) {
    if (view.type() == LogEntryType::kObject) {
      seen.insert(view.key_hash());
    }
  });
  EXPECT_EQ(seen.size(), 50u);
}

TEST(LogTest, AppendObserverFires) {
  Log log;
  int observed = 0;
  log.set_append_observer([&](LogRef, const LogEntryView&) { observed++; });
  log.AppendObject(1, 1, "k", "v", 1);
  log.AppendTombstone(1, 1, "k", 2);
  EXPECT_EQ(observed, 2);
}

TEST(LogTest, HeadPositionAdvances) {
  Log log;
  const auto before = log.HeadPosition();
  log.AppendObject(1, 1, "k", "v", 1);
  const auto after = log.HeadPosition();
  EXPECT_TRUE(after.first > before.first || after.second > before.second);
}

// --------------------------------------------------------------- SideLog.

TEST(SideLogTest, EntriesReadableBeforeCommit) {
  Log log;
  SideLog side(&log);
  auto ref = side.AppendObject(1, 42, "k", "migrated-value", 7);
  ASSERT_TRUE(ref.ok());
  // Rocksteady serves reads of migrated records before sidelog commit.
  LogEntryView view;
  ASSERT_TRUE(log.Read(*ref, &view));
  EXPECT_EQ(view.value, "migrated-value");
}

TEST(SideLogTest, CommitAdoptsSegments) {
  Log log(1024);
  SideLog side(&log);
  std::vector<LogRef> refs;
  for (int i = 0; i < 60; i++) {
    auto ref = side.AppendObject(1, i, "key" + std::to_string(i), std::string(40, 'm'), 1);
    ASSERT_TRUE(ref.ok());
    refs.push_back(*ref);
  }
  const size_t main_segments_before = log.segments().size();
  side.Commit();
  EXPECT_GT(log.segments().size(), main_segments_before);
  EXPECT_EQ(side.pending_entries(), 0u);
  // References remain valid across commit (ids are stable).
  for (const auto& ref : refs) {
    LogEntryView view;
    EXPECT_TRUE(log.Read(ref, &view));
  }
  // The main log carries a commit record naming the side segments.
  bool found_commit = false;
  log.ForEachEntry([&](LogRef, const LogEntryView& view) {
    if (view.type() == LogEntryType::kSideLogCommit) {
      found_commit = true;
    }
  });
  EXPECT_TRUE(found_commit);
}

TEST(SideLogTest, AbortInvalidatesRefs) {
  Log log;
  SideLog side(&log);
  auto ref = side.AppendObject(1, 1, "k", "v", 1);
  ASSERT_TRUE(ref.ok());
  side.Abort();
  LogEntryView view;
  EXPECT_FALSE(log.Read(*ref, &view));
}

TEST(SideLogTest, CommittedEntriesVisibleToIteration) {
  Log log;
  SideLog side(&log);
  side.AppendObject(5, 99, "key", "val", 3);
  side.Commit();
  bool seen = false;
  log.ForEachEntry([&](LogRef, const LogEntryView& view) {
    if (view.type() == LogEntryType::kObject && view.key_hash() == 99) {
      seen = true;
    }
  });
  EXPECT_TRUE(seen);
}

TEST(SideLogTest, MultipleSideLogsShareIdSpace) {
  // Per-core side logs must never produce colliding segment ids.
  Log log(1024);
  SideLog a(&log);
  SideLog b(&log);
  std::set<uint32_t> ids;
  for (int i = 0; i < 30; i++) {
    auto ra = a.AppendObject(1, i, "ka" + std::to_string(i), std::string(60, 'a'), 1);
    auto rb = b.AppendObject(1, 1000 + i, "kb" + std::to_string(i), std::string(60, 'b'), 1);
    ids.insert(ra->segment_id());
    ids.insert(rb->segment_id());
  }
  a.Commit();
  b.Commit();
  std::set<uint32_t> main_ids;
  for (const auto& segment : log.segments()) {
    EXPECT_TRUE(main_ids.insert(segment->id()).second) << "duplicate segment id";
  }
}

// ------------------------------------------------------------ LogCleaner.

TEST(LogCleanerTest, CleansDeadSegments) {
  Log log(1024);
  std::map<KeyHash, LogRef> live;
  // Write 100 objects, then overwrite all of them (first copies all dead).
  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < 100; i++) {
      if (auto it = live.find(i); it != live.end()) {
        log.MarkDead(it->second);
      }
      auto ref = log.AppendObject(1, i, "key" + std::to_string(i), std::string(30, 'x'),
                                  static_cast<Version>(round + 1));
      live[i] = *ref;
    }
  }
  LogCleaner cleaner(&log, [&](LogRef old_ref, const LogEntryView& entry) {
    auto it = live.find(entry.key_hash());
    if (it == live.end() || !(it->second == old_ref)) {
      return false;
    }
    auto moved =
        log.AppendObject(entry.table_id(), entry.key_hash(), entry.key, entry.value,
                         entry.version());
    it->second = *moved;
    return true;
  });
  const size_t segments_before = log.segments().size();
  const uint64_t total_before = log.total_bytes();
  size_t cleaned = 0;
  for (int i = 0; i < 20; i++) {
    cleaned += cleaner.CleanOnce();
  }
  EXPECT_GT(cleaned, 0u);
  EXPECT_LT(log.segments().size(), segments_before + 20);
  EXPECT_LT(log.total_bytes(), total_before);
  // Every live object still readable at its (possibly relocated) ref.
  for (const auto& [hash, ref] : live) {
    LogEntryView view;
    ASSERT_TRUE(log.Read(ref, &view)) << "lost object " << hash;
    EXPECT_EQ(view.version(), 2u);
  }
}

TEST(LogCleanerTest, SelectsEmptiestSegment) {
  Log log(1024);
  // Segment A: all dead. Segment B: all live.
  std::vector<LogRef> dead_refs;
  for (int i = 0; i < 15; i++) {
    auto ref = log.AppendObject(1, i, "key" + std::to_string(i), std::string(20, 'a'), 1);
    dead_refs.push_back(*ref);
  }
  for (auto ref : dead_refs) {
    log.MarkDead(ref);
  }
  for (int i = 100; i < 115; i++) {
    log.AppendObject(1, i, "key" + std::to_string(i), std::string(20, 'b'), 1);
  }
  LogCleaner cleaner(&log, [](LogRef, const LogEntryView&) { return false; });
  const auto victim = cleaner.SelectVictim();
  ASSERT_TRUE(victim.has_value());
  const Segment* segment = log.FindSegment(*victim);
  ASSERT_NE(segment, nullptr);
  EXPECT_EQ(segment->live_bytes(), 0u);
}

TEST(LogCleanerTest, NeverSelectsHead) {
  Log log(1 << 20);  // Everything fits in the (unsealed) head.
  log.AppendObject(1, 1, "k", "v", 1);
  LogCleaner cleaner(&log, [](LogRef, const LogEntryView&) { return false; });
  EXPECT_FALSE(cleaner.SelectVictim().has_value());
}

}  // namespace
}  // namespace rocksteady
