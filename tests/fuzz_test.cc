// Randomized model-checking tests: drive a cluster with random operations
// (reads, writes, removes, migrations, crashes) while maintaining a
// reference map of expected state, and verify the cluster always converges
// to the reference. Complements the targeted integration tests with
// coverage of interleavings nobody thought to write down.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "src/cluster/cluster.h"
#include "src/common/audit.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;

ClusterConfig FuzzCluster(uint64_t seed) {
  ClusterConfig config;
  config.num_masters = 5;
  config.num_clients = 3;
  config.seed = seed;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  return config;
}

// One fuzz episode: random ops interleaved with a random migration; verify
// final state matches the reference exactly.
class FuzzEpisode {
 public:
  explicit FuzzEpisode(uint64_t seed) : cluster_(FuzzCluster(seed)), seed_(seed) {
    EnableMigration(&cluster_);
    cluster_.CreateTable(kTable, 0);
  }

  void Run(int operations, bool with_migration, bool with_crash) {
    Random rng(seed_ * 7 + 13);
    // Seed some initial data.
    for (int i = 0; i < 200; i++) {
      DoWrite(rng);
    }
    cluster_.sim().Run();

    std::optional<KeyHash> migrate_split;
    if (with_migration) {
      migrate_split = 1ull << 63;
      StartRocksteadyMigration(&cluster_, kTable, *migrate_split, ~0ull, 0, 1,
                               RocksteadyOptions{}, nullptr);
    }

    for (int op = 0; op < operations; op++) {
      const uint64_t dice = rng.Uniform(100);
      if (dice < 55) {
        DoWrite(rng);
      } else if (dice < 75) {
        DoRemove(rng);
      } else {
        DoCheckedRead(rng);
      }
      if (op % 16 == 15) {
        // Let some operations complete; keeps interleavings interesting
        // without unbounded outstanding state.
        cluster_.sim().RunUntil(cluster_.sim().now() + 50 * kMicrosecond);
        AuditAll("mid-episode");
      }
    }
    cluster_.sim().Run();
    AuditAll("after operations drained");

    if (with_crash) {
      // Crash a random *backup-only* participant or the migration source is
      // risky for the reference (acked-but-reverted is impossible in our
      // model: acks imply replication). Crash master 2 (never a migration
      // endpoint here) and recover.
      cluster_.master(2).Crash();
      bool recovered = false;
      cluster_.coordinator().HandleCrash(cluster_.master(2).id(), [&] { recovered = true; });
      cluster_.sim().Run();
      ASSERT_TRUE(recovered);
    }

    AuditAll("before convergence check");
    VerifyConverged();
  }

 private:
  std::string KeyFor(uint64_t id) const { return Cluster::MakeKey(id, 30); }

  // Invariant audit of every master's store plus the coordinator's map;
  // the fuzzer's random interleavings are exactly where a broken invariant
  // would first show up.
  void AuditAll(const char* when) {
    AuditReport report;
    cluster_.coordinator().AuditInvariants(&report);
    for (size_t i = 0; i < cluster_.num_masters(); i++) {
      if (cluster_.master(i).crashed()) {
        continue;  // A crashed master's store is intentionally stale.
      }
      cluster_.master(i).objects().AuditInvariants(&report);
    }
    ASSERT_TRUE(report.ok()) << when << ":\n" << report.Summary();
  }

  void DoWrite(Random& rng) {
    const uint64_t id = rng.Uniform(500);
    const std::string key = KeyFor(id);
    const std::string value = "v" + std::to_string(rng.Next() % 100000);
    auto* expected = &reference_;
    cluster_.client(rng.Uniform(cluster_.num_clients()))
        .Write(kTable, key, value, [key, value, expected](Status status) {
          ASSERT_EQ(status, Status::kOk);
          // Completion order is commit order in this single-threaded sim.
          (*expected)[key] = value;
        });
  }

  void DoRemove(Random& rng) {
    const uint64_t id = rng.Uniform(500);
    const std::string key = KeyFor(id);
    auto* expected = &reference_;
    cluster_.client(rng.Uniform(cluster_.num_clients()))
        .Remove(kTable, key, [key, expected](Status status) {
          ASSERT_TRUE(status == Status::kOk || status == Status::kObjectNotFound);
          expected->erase(key);
        });
  }

  void DoCheckedRead(Random& rng) {
    const uint64_t id = rng.Uniform(500);
    const std::string key = KeyFor(id);
    cluster_.client(rng.Uniform(cluster_.num_clients()))
        .Read(kTable, key, [](Status status, const std::string&) {
          ASSERT_TRUE(status == Status::kOk || status == Status::kObjectNotFound);
        });
  }

  void VerifyConverged() {
    int mismatches = 0;
    for (uint64_t id = 0; id < 500; id++) {
      const std::string key = KeyFor(id);
      const auto it = reference_.find(key);
      std::optional<std::string> expected;
      if (it != reference_.end()) {
        expected = it->second;
      }
      cluster_.client(0).Read(
          kTable, key, [&mismatches, expected](Status status, const std::string& value) {
            if (!expected.has_value()) {
              if (status != Status::kObjectNotFound) {
                mismatches++;
              }
            } else if (status != Status::kOk || value != *expected) {
              mismatches++;
            }
          });
      if (id % 32 == 31) {
        cluster_.sim().Run();
      }
    }
    cluster_.sim().Run();
    EXPECT_EQ(mismatches, 0);
  }

  Cluster cluster_;
  uint64_t seed_;
  std::map<std::string, std::string> reference_;
};

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, RandomOpsConverge) {
  FuzzEpisode episode(GetParam());
  episode.Run(600, /*with_migration=*/false, /*with_crash=*/false);
}

TEST_P(FuzzTest, RandomOpsDuringMigrationConverge) {
  FuzzEpisode episode(GetParam());
  episode.Run(600, /*with_migration=*/true, /*with_crash=*/false);
}

TEST_P(FuzzTest, RandomOpsThenCrashConverge) {
  FuzzEpisode episode(GetParam());
  episode.Run(400, /*with_migration=*/true, /*with_crash=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace rocksteady
