// Tests for the invariant-audit layer: clean structures audit clean, and —
// the part that keeps the audits honest — deliberately corrupted state is
// caught, with the status-returning AuditReport naming the violation.
#include <gtest/gtest.h>

#include <string>

#include "src/cluster/cluster.h"
#include "src/common/audit.h"
#include "src/common/dcheck.h"
#include "src/hashtable/hash_table.h"
#include "src/log/log.h"
#include "src/log/side_log.h"
#include "src/store/object_manager.h"
#include "src/store/tablet.h"

namespace rocksteady {
namespace {

bool SummaryContains(const AuditReport& report, const std::string& needle) {
  return report.Summary().find(needle) != std::string::npos;
}

// ------------------------------------------------------------- DCHECK layer.

TEST(DcheckTest, EvaluationMatchesBuildMode) {
  // Enabled builds evaluate the condition (and pass); disabled builds must
  // not evaluate it at all — DCHECK arguments may be expensive.
  int evaluations = 0;
  ROCKSTEADY_DCHECK(++evaluations >= 0);
  ROCKSTEADY_DCHECK_EQ(++evaluations, evaluations);
#if ROCKSTEADY_DCHECK_ENABLED
  EXPECT_EQ(evaluations, 2);
#else
  EXPECT_EQ(evaluations, 0);
#endif
}

#if ROCKSTEADY_DCHECK_ENABLED
TEST(DcheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(ROCKSTEADY_DCHECK(1 == 2), "1 == 2");
  EXPECT_DEATH(ROCKSTEADY_DCHECK_EQ(3, 4), "3 vs 4");
}
#endif

// ------------------------------------------------------------ Clean passes.

TEST(AuditTest, FreshStructuresAuditClean) {
  Log log(4 * 1024);
  HashTable table(4);
  TabletManager tablets;
  AuditReport report;
  log.AuditInvariants(&report);
  table.AuditInvariants(&report, &log);
  tablets.AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(AuditTest, PopulatedObjectManagerAuditsClean) {
  ObjectManager manager(ObjectManagerOptions{.hash_table_log2_buckets = 8,
                                             .segment_size = 4 * 1024});
  manager.tablets().Add(Tablet{1, 0, ~0ull, TabletState::kNormal});
  for (int i = 0; i < 200; i++) {
    const std::string key = "key" + std::to_string(i);
    const KeyHash hash = static_cast<KeyHash>(i) << 40;
    ASSERT_TRUE(manager.Write(1, key, hash, "value", nullptr).ok());
  }
  // Overwrites and removals exercise MarkDead / live-byte accounting.
  for (int i = 0; i < 50; i++) {
    const std::string key = "key" + std::to_string(i);
    const KeyHash hash = static_cast<KeyHash>(i) << 40;
    ASSERT_TRUE(manager.Write(1, key, hash, "updated", nullptr).ok());
  }
  AuditReport report;
  manager.AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(AuditTest, SideLogAuditsCleanBeforeAndAfterCommit) {
  Log log(4 * 1024);
  SideLog side(&log);
  ASSERT_TRUE(side.AppendObject(1, 0x42, "k", "v", 7).ok());
  AuditReport before;
  side.AuditInvariants(&before);
  EXPECT_TRUE(before.ok()) << before.Summary();

  side.Commit();
  AuditReport after;
  side.AuditInvariants(&after);
  log.AuditInvariants(&after);
  EXPECT_TRUE(after.ok()) << after.Summary();
  EXPECT_EQ(side.pending_entries(), 0u);
}

// ---------------------------------------------------------- Failure paths.

TEST(AuditTest, DetectsCorruptEntryChecksum) {
  Log log(4 * 1024);
  ASSERT_TRUE(log.AppendObject(1, 0x42, "key", "value", 1).ok());
  ASSERT_FALSE(log.segments().empty());
  Segment* segment = log.segments().back().get();
  // Flip a value byte of the last entry; its CRC32C no longer matches.
  auto* bytes = const_cast<uint8_t*>(segment->data());
  bytes[segment->used() - 1] ^= 0xff;

  AuditReport report;
  log.AuditInvariants(&report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(SummaryContains(report, "corrupt entry")) << report.Summary();
}

TEST(AuditTest, DetectsOverlappingTabletRanges) {
  TabletManager tablets;
  tablets.Add(Tablet{1, 0, 1'000, TabletState::kNormal});
  tablets.Add(Tablet{1, 500, 2'000, TabletState::kNormal});
  // A different table sharing the range is NOT an overlap.
  tablets.Add(Tablet{2, 0, 2'000, TabletState::kNormal});

  AuditReport report;
  tablets.AuditInvariants(&report);
  ASSERT_EQ(report.violations().size(), 1u) << report.Summary();
  EXPECT_TRUE(SummaryContains(report, "overlap")) << report.Summary();
}

TEST(AuditTest, CrossLayerAuditAcceptsSplitTilingAndCatchesHoles) {
  // Regression: the ownership audit used to assume one contiguous hash
  // range per table per master. After splits, one map range may be tiled by
  // several local tablets (and vice versa) — that must audit clean, while a
  // genuine hole in the owner's local coverage must not.
  ClusterConfig config;
  config.num_masters = 2;
  config.master.hash_table_log2_buckets = 8;
  config.master.segment_size = 64 * 1024;
  Cluster cluster(config);
  cluster.CreateTable(1, 0);
  const KeyHash quarter = KeyHash{1} << 62;
  cluster.coordinator().SplitTablet(1, 2 * quarter);

  // Re-split only the owner's local view: the map holds two ranges, the
  // owner holds four local tablets tiling them. Still clean.
  TabletManager& local = cluster.master(0).objects().tablets();
  local.Split(1, quarter);
  local.Split(1, 3 * quarter);
  AuditReport clean;
  cluster.coordinator().AuditInvariants(&clean);
  EXPECT_TRUE(clean.ok()) << clean.Summary();

  // Punch a hole in the owner's coverage of the upper map range.
  ASSERT_TRUE(local.Remove(1, 3 * quarter, ~KeyHash{0}));
  AuditReport holed;
  cluster.coordinator().AuditInvariants(&holed);
  ASSERT_FALSE(holed.ok());
  EXPECT_TRUE(SummaryContains(holed, "no local tablet")) << holed.Summary();
}

TEST(AuditTest, DetectsInvertedTabletRange) {
  TabletManager tablets;
  tablets.Add(Tablet{1, 1'000, 10, TabletState::kNormal});
  AuditReport report;
  tablets.AuditInvariants(&report);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(SummaryContains(report, "inverted")) << report.Summary();
}

TEST(AuditTest, DetectsDanglingHashTableRef) {
  Log log(4 * 1024);
  HashTable table(4);
  // Reference into a segment the log has never allocated.
  table.Insert(0xabcdef, LogRef(999, 0));
  AuditReport report;
  table.AuditInvariants(&report, &log);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(SummaryContains(report, "dangles")) << report.Summary();
}

TEST(AuditTest, DetectsHashKeyMismatch) {
  Log log(4 * 1024);
  HashTable table(4);
  auto ref = log.AppendObject(1, /*hash=*/0x11, "k", "v", 1);
  ASSERT_TRUE(ref.ok());
  // File the entry under a different hash than the entry carries.
  table.Insert(/*hash=*/0x22, *ref);
  AuditReport report;
  table.AuditInvariants(&report, &log);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(SummaryContains(report, "resolves to entry keyed")) << report.Summary();
}

TEST(AuditTest, ReportAccumulatesMultipleViolations) {
  // Status-returning mode: one pass collects every violation instead of
  // stopping at the first, and Summary() carries them all.
  TabletManager tablets;
  tablets.Add(Tablet{1, 1'000, 10, TabletState::kNormal});   // Inverted.
  tablets.Add(Tablet{2, 0, 1'000, TabletState::kNormal});
  tablets.Add(Tablet{2, 500, 2'000, TabletState::kNormal});  // Overlap.
  AuditReport report;
  tablets.AuditInvariants(&report);
  EXPECT_EQ(report.violations().size(), 2u) << report.Summary();
  EXPECT_TRUE(SummaryContains(report, "inverted"));
  EXPECT_TRUE(SummaryContains(report, "overlap"));
}

// ---------------------------------------------------- Fatal (DebugAudit).

#if ROCKSTEADY_DCHECK_ENABLED
TEST(AuditDeathTest, DebugAuditDiesOnViolation) {
  TabletManager tablets;
  tablets.Add(Tablet{1, 0, 1'000, TabletState::kNormal});
  tablets.Add(Tablet{1, 500, 2'000, TabletState::kNormal});
  EXPECT_DEATH(DebugAudit(tablets, "tablets in test"), "overlap");
}
#else
TEST(AuditTest, DebugAuditIsFreeInRelease) {
  TabletManager tablets;
  tablets.Add(Tablet{1, 0, 1'000, TabletState::kNormal});
  tablets.Add(Tablet{1, 500, 2'000, TabletState::kNormal});
  DebugAudit(tablets, "tablets in test");  // Must not abort.
}
#endif

}  // namespace
}  // namespace rocksteady
