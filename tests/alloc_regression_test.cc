// Allocation regression tests for the engine hot path.
//
// The overhaul's contract is that steady-state event churn is fed entirely
// from pools: the simulator's event slab pool satisfies every schedule from
// its free list, and every hot-path closure fits its InlineFunction buffer.
// These tests pin that down with hard zeros over a measured event window,
// so a regression (a widened closure, a pool leak, a new per-event
// allocation in the pure dispatch loop) fails CI instead of quietly eating
// the 2x throughput win.
//
// This binary links tests/alloc_hook.cc, which replaces global operator
// new/delete with counting wrappers — a whole-binary decision no other test
// opts into (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/inline_function.h"
#include "src/workload/client_actor.h"
#include "src/workload/ycsb.h"
#include "tests/alloc_hook.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;

// A self-rescheduling timer chain: the pure-dispatch load with zero
// application work (same shape as bench/engine_throughput.cc's dispatch
// scenario).
class Chain {
 public:
  Chain(Simulator* sim, Tick period) : sim_(sim), period_(period) {}

  void Start(Tick at) {
    sim_->At(at, [this] { Step(); });
  }

 private:
  void Step() {
    sim_->At(sim_->now() + period_, [this] { Step(); });
  }

  Simulator* sim_;
  Tick period_;
};

TEST(AllocRegressionTest, PureEventLoopIsAllocationFreeInSteadyState) {
  Simulator sim(42);
  std::vector<std::unique_ptr<Chain>> chains;
  for (int i = 0; i < 32; i++) {
    chains.push_back(std::make_unique<Chain>(&sim, /*period=*/100));
    chains.back()->Start(static_cast<Tick>(i));
  }
  // Warm-up: first dispatches allocate the event slab(s).
  sim.RunUntil(100 * kMicrosecond);

  const uint64_t allocs_before = GlobalAllocCount();
  const uint64_t slabs_before = sim.pool_stats().slab_allocations;
  const size_t events_before = sim.events_processed();
  sim.RunUntil(200 * kMicrosecond);
  const size_t events = sim.events_processed() - events_before;

  ASSERT_GT(events, 10'000u);  // The window really exercised the loop.
  // Hard zero: schedule -> dispatch -> free touches no allocator at all.
  EXPECT_EQ(GlobalAllocCount() - allocs_before, 0u);
  EXPECT_EQ(sim.pool_stats().slab_allocations - slabs_before, 0u);
}

TEST(AllocRegressionTest, YcsbSteadyWindowHasZeroPoolMissedAllocations) {
  // Steady-state YCSB-B against 4 masters through the full RPC stack. After
  // warm-up, a >=10k-event window must show zero event-slab growth and zero
  // InlineFunction heap fallbacks: every pooled structure is recycled and
  // every hot-path closure stays inline. (Intrinsic per-op allocations —
  // request/response message objects — are measured and budgeted by
  // bench/engine_throughput.cc, not asserted here.)
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.seed = 42;
  config.master.hash_table_log2_buckets = 15;
  Cluster cluster(config);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, /*num_records=*/4'000, /*key_length=*/12, /*value_length=*/100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = 4'000;
  YcsbWorkload workload_a(ycsb);
  YcsbWorkload workload_b(ycsb);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 75'000;
  ClientActor actor_a(kTable, &cluster.client(0), &workload_a, actor_config);
  ClientActor actor_b(kTable, &cluster.client(1), &workload_b, actor_config);
  actor_a.Start();
  actor_b.Start();

  // Warm-up: pools (event slabs, client retry states, server scratch) reach
  // their steady-state footprint.
  cluster.sim().RunUntil(20 * kMillisecond);

  const uint64_t slabs_before = cluster.sim().pool_stats().slab_allocations;
  const uint64_t fallbacks_before = InlineFunctionHeapFallbacks();
  const size_t events_before = cluster.sim().events_processed();
  cluster.sim().RunUntil(40 * kMillisecond);
  const size_t events = cluster.sim().events_processed() - events_before;

  ASSERT_GT(events, 10'000u);  // The steady window covers >=10k events.
  ASSERT_GT(actor_a.completed() + actor_b.completed(), 0u);
  EXPECT_EQ(cluster.sim().pool_stats().slab_allocations - slabs_before, 0u);
  EXPECT_EQ(InlineFunctionHeapFallbacks() - fallbacks_before, 0u);
}

TEST(AllocRegressionTest, ThreadedLaneSteadyWindowHasZeroSlabGrowthPerLane) {
  // The sharded-lane contract extends the steady-state zeros per lane: each
  // lane's event pool recycles its own events (a cross-lane delivery's Event
  // object is allocated from and freed to the *destination* lane's pool, so
  // no event ever crosses an allocator boundary), and every lane-mode hot
  // path closure — mailbox entries included — stays inline. RunUntil parks
  // the workers at a barrier before returning, so reading the per-lane pool
  // stats here races nothing.
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.seed = 42;
  config.master.hash_table_log2_buckets = 15;
  config.lanes = 4;
  config.lane_threads = true;
  Cluster cluster(config);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, /*num_records=*/4'000, /*key_length=*/12, /*value_length=*/100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = 4'000;
  YcsbWorkload workload_a(ycsb);
  YcsbWorkload workload_b(ycsb);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 75'000;
  ClientActor actor_a(kTable, &cluster.client(0), &workload_a, actor_config);
  ClientActor actor_b(kTable, &cluster.client(1), &workload_b, actor_config);
  actor_a.Start();
  actor_b.Start();

  LaneSet* lanes = cluster.lanes();
  ASSERT_NE(lanes, nullptr);

  // Warm-up: per-lane pools reach their steady-state footprint.
  cluster.RunUntil(20 * kMillisecond);

  std::vector<uint64_t> slabs_before;
  std::vector<uint64_t> outstanding_before;  // live + free: lane pool population.
  for (int l = 0; l < lanes->lanes(); l++) {
    const Simulator::PoolStats stats = lanes->lane_sim(l).pool_stats();
    slabs_before.push_back(stats.slab_allocations);
    outstanding_before.push_back(stats.live_events + stats.free_events);
  }
  const uint64_t fallbacks_before = InlineFunctionHeapFallbacks();
  const size_t events_before = cluster.events_processed();
  cluster.RunUntil(40 * kMillisecond);
  const size_t events = cluster.events_processed() - events_before;

  ASSERT_GT(events, 10'000u);
  ASSERT_GT(actor_a.completed() + actor_b.completed(), 0u);
  for (int l = 0; l < lanes->lanes(); l++) {
    const Simulator::PoolStats stats = lanes->lane_sim(l).pool_stats();
    // Zero slab growth on every lane individually — a lane leaking events to
    // another lane's free list would eventually grow its own slabs.
    EXPECT_EQ(stats.slab_allocations - slabs_before[static_cast<size_t>(l)], 0u)
        << "lane " << l << " grew its event slab pool";
    // Pool-population conservation: events allocated on this lane were freed
    // back to this lane (zero cross-lane allocator traffic).
    EXPECT_EQ(stats.live_events + stats.free_events,
              outstanding_before[static_cast<size_t>(l)])
        << "lane " << l << " pool population drifted";
  }
  EXPECT_EQ(InlineFunctionHeapFallbacks() - fallbacks_before, 0u);
}

}  // namespace
}  // namespace rocksteady
