// End-to-end cluster tests: reads/writes through the full stack (client ->
// dispatch -> worker -> log -> replication -> backups), multigets, index
// scans, tablet map refresh, and baseline latency calibration against the
// paper's Table 1 numbers.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/cluster/cluster.h"
#include "src/workload/client_actor.h"
#include "src/workload/ycsb.h"

namespace rocksteady {
namespace {

ClusterConfig SmallCluster(int masters = 4, int clients = 1) {
  ClusterConfig config;
  config.num_masters = masters;
  config.num_clients = clients;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  return config;
}

TEST(ClusterTest, WriteThenReadThroughRpc) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  Status write_status = Status::kInvalidState;
  cluster.client(0).Write(1, "hello", "world", [&](Status s) { write_status = s; });
  cluster.sim().Run();
  EXPECT_EQ(write_status, Status::kOk);

  std::string value;
  Status read_status = Status::kInvalidState;
  cluster.client(0).Read(1, "hello", [&](Status s, const std::string& v) {
    read_status = s;
    value = v;
  });
  cluster.sim().Run();
  EXPECT_EQ(read_status, Status::kOk);
  EXPECT_EQ(value, "world");
}

TEST(ClusterTest, ReadMissingKey) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  Status status = Status::kOk;
  cluster.client(0).Read(1, "ghost", [&](Status s, const std::string&) { status = s; });
  cluster.sim().Run();
  EXPECT_EQ(status, Status::kObjectNotFound);
}

TEST(ClusterTest, UnloadedReadLatencyNearSixMicroseconds) {
  // §2: "End-to-end read and durable write operations take just 6 us and
  // 15 us respectively on our hardware."
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  cluster.LoadTable(1, 100, 30, 100);
  // Warm the tablet cache first.
  cluster.client(0).Read(1, Cluster::MakeKey(0, 30), [](Status, const std::string&) {});
  cluster.sim().Run();
  const Tick start = cluster.sim().now();
  Tick read_done = 0;
  cluster.client(0).Read(1, Cluster::MakeKey(1, 30),
                         [&](Status s, const std::string& v) {
                           EXPECT_EQ(s, Status::kOk);
                           EXPECT_EQ(v.size(), 100u);
                           read_done = cluster.sim().now();
                         });
  cluster.sim().Run();
  const double read_us = static_cast<double>(read_done - start) / 1'000.0;
  EXPECT_GT(read_us, 3.0);
  EXPECT_LT(read_us, 9.0);

  const Tick wstart = cluster.sim().now();
  Tick write_done = 0;
  cluster.client(0).Write(1, Cluster::MakeKey(1, 30), std::string(100, 'x'),
                          [&](Status s) {
                            EXPECT_EQ(s, Status::kOk);
                            write_done = cluster.sim().now();
                          });
  cluster.sim().Run();
  const double write_us = static_cast<double>(write_done - wstart) / 1'000.0;
  EXPECT_GT(write_us, 8.0);
  EXPECT_LT(write_us, 22.0);
}

TEST(ClusterTest, WritesAreReplicatedToBackups) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  int completed = 0;
  for (int i = 0; i < 20; i++) {
    cluster.client(0).Write(1, "key" + std::to_string(i), "value", [&](Status s) {
      EXPECT_EQ(s, Status::kOk);
      completed++;
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(completed, 20);
  // Three backups each hold the replicated bytes.
  uint64_t replica_bytes = 0;
  for (size_t i = 1; i < cluster.num_masters(); i++) {
    replica_bytes += cluster.master(i).backup().bytes_stored();
  }
  EXPECT_GT(replica_bytes, 20u * 45u * 3u / 2u);
}

TEST(ClusterTest, LoadTableDistributesByHash) {
  Cluster cluster(SmallCluster());
  // Table split across two masters at the hash midpoint.
  cluster.CreateTable(1, 0);
  cluster.coordinator().SplitTablet(1, 1ull << 63);
  // Audit-safe reassignment: installs the upper half on master 1, repoints
  // the map, and drops master 0's mirror. Lower half stays on master 0.
  cluster.coordinator().ReassignTablet(1, 1ull << 63, ~0ull, cluster.master(1).id());
  cluster.LoadTable(1, 1'000, 30, 100);
  const uint64_t on0 = cluster.master(0).objects().object_count();
  const uint64_t on1 = cluster.master(1).objects().object_count();
  EXPECT_EQ(on0 + on1, 1'000u);
  EXPECT_GT(on0, 350u);
  EXPECT_GT(on1, 350u);

  // Every record readable through the data path regardless of owner.
  int ok = 0;
  for (int i = 0; i < 50; i++) {
    cluster.client(0).Read(1, Cluster::MakeKey(static_cast<uint64_t>(i * 17), 30),
                           [&](Status s, const std::string&) { ok += (s == Status::kOk); });
  }
  cluster.sim().Run();
  EXPECT_EQ(ok, 50);
}

TEST(ClusterTest, MultiGetSpansServers) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  cluster.coordinator().SplitTablet(1, 1ull << 63);
  cluster.coordinator().ReassignTablet(1, 1ull << 63, ~0ull, cluster.master(1).id());
  cluster.LoadTable(1, 200, 30, 100);

  std::vector<std::string> keys;
  for (int i = 0; i < 7; i++) {
    keys.push_back(Cluster::MakeKey(static_cast<uint64_t>(i * 29), 30));
  }
  Status status = Status::kInvalidState;
  cluster.client(0).MultiGet(1, keys, [&](Status s) { status = s; });
  cluster.sim().Run();
  EXPECT_EQ(status, Status::kOk);
}

TEST(ClusterTest, IndexScanEndToEnd) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  cluster.coordinator().CreateIndex(1, 1, {{.start_key = "", .end_key = "", .owner = 2}});

  // Write records with secondary keys through the data path so the index
  // updates flow through kIndexInsert.
  int writes_done = 0;
  for (int i = 0; i < 50; i++) {
    char secondary[16];
    std::snprintf(secondary, sizeof(secondary), "name%04d", i);
    cluster.client(0).Write(1, "pk" + std::to_string(i), "record-value",
                            [&](Status s) {
                              EXPECT_EQ(s, Status::kOk);
                              writes_done++;
                            },
                            secondary);
  }
  cluster.sim().Run();
  ASSERT_EQ(writes_done, 50);

  Status status = Status::kInvalidState;
  cluster.client(0).IndexScan(1, 1, "name0010", 4, [&](Status s) { status = s; });
  cluster.sim().Run();
  EXPECT_EQ(status, Status::kOk);
}

TEST(ClusterTest, ClientRefreshAfterOwnershipChange) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  cluster.LoadTable(1, 100, 30, 100);
  // Client caches the initial map.
  Status status = Status::kInvalidState;
  cluster.client(0).Read(1, Cluster::MakeKey(5, 30),
                         [&](Status s, const std::string&) { status = s; });
  cluster.sim().Run();
  ASSERT_EQ(status, Status::kOk);

  // Move the whole table to master 1 behind the client's back (data copied
  // directly; this tests the kWrongServer refresh path, not migration).
  auto& src = cluster.master(0).objects();
  auto& dst = cluster.master(1).objects();
  src.log().ForEachEntry([&](LogRef, const LogEntryView& entry) {
    if (entry.type() == LogEntryType::kObject) {
      dst.Replay(entry, nullptr);
    }
  });
  dst.tablets().Add(Tablet{1, 0, ~0ull, TabletState::kNormal});
  src.tablets().Remove(1, 0, ~0ull);
  cluster.coordinator().UpdateOwnership(1, 0, ~0ull, cluster.master(1).id());

  status = Status::kInvalidState;
  cluster.client(0).Read(1, Cluster::MakeKey(5, 30),
                         [&](Status s, const std::string&) { status = s; });
  cluster.sim().Run();
  EXPECT_EQ(status, Status::kOk);
  EXPECT_GE(cluster.client(0).wrong_server_retries(), 1u);
}

TEST(ClusterTest, YcsbActorDrivesLoad) {
  Cluster cluster(SmallCluster(4, 2));
  cluster.CreateTable(1, 0);
  cluster.LoadTable(1, 10'000, 30, 100);
  YcsbConfig ycsb_config;
  ycsb_config.num_records = 10'000;
  YcsbWorkload workload(ycsb_config);

  LatencyTimeline reads(kSecond / 10, 20);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 20'000;
  actor_config.stop_time = kSecond;
  ClientActor actor(1, &cluster.client(0), &workload, actor_config);
  actor.set_read_latency(&reads);
  actor.Start();
  cluster.sim().Run();

  EXPECT_GT(actor.issued(), 15'000u);
  EXPECT_EQ(actor.issued(), actor.completed() + actor.failed());
  EXPECT_EQ(actor.failed(), 0u);
  const Histogram total = reads.Total();
  EXPECT_GT(total.count(), 10'000u);
  // Median unloaded-ish read latency in single-digit microseconds.
  EXPECT_LT(total.Percentile(0.5), 15'000u);
}

TEST(ClusterTest, Determinism) {
  auto run = [] {
    Cluster cluster(SmallCluster());
    cluster.CreateTable(1, 0);
    cluster.LoadTable(1, 1'000, 30, 100);
    YcsbConfig ycsb_config;
    ycsb_config.num_records = 1'000;
    YcsbWorkload workload(ycsb_config);
    ClientActorConfig actor_config;
    actor_config.ops_per_second = 50'000;
    actor_config.stop_time = kSecond / 5;
    ClientActor actor(1, &cluster.client(0), &workload, actor_config);
    actor.Start();
    cluster.sim().Run();
    return std::make_tuple(actor.issued(), actor.completed(), cluster.sim().now(),
                           cluster.net().total_bytes_sent());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rocksteady
