// Tests for the drain/decommission protocol and the rolling-restart
// orchestrator: lifecycle transitions, planner-driven evacuation, RPC
// idempotency, and crash convergence when either side of a drain dies
// mid-evacuation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/operations.h"
#include "src/common/audit.h"
#include "src/migration/rocksteady_target.h"
#include "src/rebalance/planner.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kQuarter = KeyHash{1} << 62;

ClusterConfig SmallConfig(uint64_t seed = 42) {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.seed = seed;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  return config;
}

// Splits the table into quarters and spreads them across the four masters.
void SpreadQuarters(Cluster& cluster) {
  for (size_t i = 1; i < 4; i++) {
    cluster.coordinator().SplitTablet(kTable, static_cast<KeyHash>(i) * kQuarter);
  }
  const auto tablets = cluster.coordinator().GetTableConfig(kTable);
  for (size_t i = 0; i < tablets.size(); i++) {
    const auto& t = tablets[i];
    const ServerId owner = cluster.master(i % 4).id();
    if (t.owner != owner) {
      cluster.coordinator().ReassignTablet(t.table, t.start_hash, t.end_hash, owner);
    }
  }
}

// Runs the planner until `server` finishes draining (or the deadline hits).
void RunUntilDrained(Cluster& cluster, RebalancePlanner& planner, ServerId server,
                     Tick deadline = kSecond) {
  Simulator& sim = cluster.sim();
  while (sim.now() < deadline &&
         cluster.coordinator().lifecycle(server) == ServerLifecycle::kDraining) {
    sim.RunUntil(sim.now() + 5 * kMillisecond);
  }
  planner.Stop();
  cluster.coordinator().StopFailureDetector();
  sim.Run();
}

uint64_t RangesOwnedBy(Cluster& cluster, ServerId id) {
  uint64_t owned = 0;
  for (const auto& entry : cluster.coordinator().GetAllTablets()) {
    owned += entry.owner == id ? 1 : 0;
  }
  return owned;
}

// ------------------------------------------------------ Lifecycle basics.

TEST(DrainTest, EmptyMasterDecommissionsImmediately) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);  // Everything on master 1.
  const ServerId idle = cluster.master(3).id();
  EXPECT_EQ(cluster.coordinator().lifecycle(idle), ServerLifecycle::kActive);
  EXPECT_EQ(cluster.coordinator().BeginDrain(idle), Status::kOk);
  // Nothing to evacuate: the drain completes inline.
  EXPECT_EQ(cluster.coordinator().lifecycle(idle), ServerLifecycle::kDecommissioned);
  EXPECT_EQ(cluster.coordinator().drains_completed(), 1u);
}

TEST(DrainTest, DrainIsIdempotentAndActivateCancels) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);
  const ServerId victim = cluster.master(0).id();  // Owns the whole table.
  EXPECT_EQ(cluster.coordinator().BeginDrain(victim), Status::kOk);
  EXPECT_EQ(cluster.coordinator().lifecycle(victim), ServerLifecycle::kDraining);
  EXPECT_TRUE(cluster.master(0).draining());
  // Re-draining a draining server is a no-op, not a second drain.
  EXPECT_EQ(cluster.coordinator().BeginDrain(victim), Status::kOk);
  EXPECT_EQ(cluster.coordinator().drains_started(), 1u);
  // An operator can change their mind while tablets remain.
  EXPECT_EQ(cluster.coordinator().ActivateServer(victim), Status::kOk);
  EXPECT_EQ(cluster.coordinator().lifecycle(victim), ServerLifecycle::kActive);
  EXPECT_FALSE(cluster.master(0).draining());
  EXPECT_EQ(cluster.coordinator().ActivateServer(victim), Status::kOk);  // Idempotent.
}

TEST(DrainTest, LastPlacementEligibleMasterRefusesDrain) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);
  // Drain the three empty masters (each completes inline).
  EXPECT_EQ(cluster.coordinator().BeginDrain(cluster.master(1).id()), Status::kOk);
  EXPECT_EQ(cluster.coordinator().BeginDrain(cluster.master(2).id()), Status::kOk);
  EXPECT_EQ(cluster.coordinator().BeginDrain(cluster.master(3).id()), Status::kOk);
  // Draining the only remaining placement-eligible master would strand its
  // tablets with nowhere to go.
  EXPECT_EQ(cluster.coordinator().BeginDrain(cluster.master(0).id()),
            Status::kInvalidState);
  EXPECT_EQ(cluster.coordinator().lifecycle(cluster.master(0).id()),
            ServerLifecycle::kActive);
}

TEST(DrainTest, StandbyOwnsNothingAndCanActivate) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);
  const ServerId spare = cluster.master(3).id();
  EXPECT_EQ(cluster.coordinator().MarkStandby(spare), Status::kOk);
  EXPECT_EQ(cluster.coordinator().lifecycle(spare), ServerLifecycle::kStandby);
  // A standby that owns a range is a contradiction; the request is refused.
  EXPECT_EQ(cluster.coordinator().MarkStandby(cluster.master(0).id()),
            Status::kInvalidState);
  EXPECT_EQ(cluster.coordinator().ActivateServer(spare), Status::kOk);
  EXPECT_EQ(cluster.coordinator().lifecycle(spare), ServerLifecycle::kActive);
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ----------------------------------------------------------- Drain RPCs.

TEST(DrainTest, DrainRpcsRoundTripAndAreIdempotent) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);
  const ServerId victim = cluster.master(0).id();

  auto begin_drain = [&](ServerId id, Status* out) {
    auto request = std::make_unique<BeginDrainRequest>();
    request->server = id;
    cluster.rpc().Call(cluster.master(1).node(), cluster.coordinator().node(),
                       std::move(request),
                       [out](Status s, std::unique_ptr<RpcResponse> response) {
                         *out = s == Status::kOk ? response->status : s;
                       });
  };
  Status first = Status::kInvalidState;
  Status second = Status::kInvalidState;
  begin_drain(victim, &first);
  cluster.sim().Run();
  begin_drain(victim, &second);  // Duplicate delivery of the same intent.
  cluster.sim().Run();
  EXPECT_EQ(first, Status::kOk);
  EXPECT_EQ(second, Status::kOk);
  EXPECT_EQ(cluster.coordinator().drains_started(), 1u);

  // kDrainStatus reports the live lifecycle + work remaining.
  uint8_t lifecycle = 255;
  uint32_t tablets_remaining = 0;
  auto status_request = std::make_unique<DrainStatusRequest>();
  status_request->server = victim;
  cluster.rpc().Call(cluster.master(1).node(), cluster.coordinator().node(),
                     std::move(status_request),
                     [&](Status s, std::unique_ptr<RpcResponse> response) {
                       ASSERT_EQ(s, Status::kOk);
                       const auto& reply = static_cast<const DrainStatusResponse&>(*response);
                       lifecycle = reply.lifecycle;
                       tablets_remaining = reply.tablets_remaining;
                     });
  cluster.sim().Run();
  EXPECT_EQ(lifecycle, static_cast<uint8_t>(ServerLifecycle::kDraining));
  EXPECT_EQ(tablets_remaining, 1u);  // The whole table, still unevacuated.

  // kActivateServer over the wire cancels the drain, idempotently.
  for (int i = 0; i < 2; i++) {
    Status activated = Status::kInvalidState;
    auto activate = std::make_unique<ActivateServerRequest>();
    activate->server = victim;
    cluster.rpc().Call(cluster.master(1).node(), cluster.coordinator().node(),
                       std::move(activate),
                       [&](Status s, std::unique_ptr<RpcResponse> response) {
                         activated = s == Status::kOk ? response->status : s;
                       });
    cluster.sim().Run();
    EXPECT_EQ(activated, Status::kOk);
  }
  EXPECT_EQ(cluster.coordinator().lifecycle(victim), ServerLifecycle::kActive);
}

// ------------------------------------------------- Planner-driven drains.

TEST(DrainTest, PlannerEvacuatesDrainingMaster) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  SpreadQuarters(cluster);
  cluster.LoadTable(kTable, 1'000, 30, 100);

  RebalancePlanner planner(&cluster);
  planner.Start();
  cluster.coordinator().StartFailureDetector();
  const ServerId victim = cluster.master(3).id();
  ASSERT_EQ(cluster.coordinator().BeginDrain(victim), Status::kOk);
  RunUntilDrained(cluster, planner, victim);

  EXPECT_EQ(cluster.coordinator().lifecycle(victim), ServerLifecycle::kDecommissioned);
  EXPECT_EQ(RangesOwnedBy(cluster, victim), 0u);
  EXPECT_GE(planner.stats().drain_migrations_completed, 1u);
  EXPECT_EQ(cluster.coordinator().drains_completed(), 1u);

  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();

  // Every record is still readable after the evacuation moved its data.
  int ok = 0;
  for (int i = 0; i < 100; i++) {
    cluster.client(0).Read(kTable, Cluster::MakeKey(static_cast<uint64_t>(i * 7), 30),
                           [&](Status s, const std::string&) { ok += (s == Status::kOk); });
  }
  cluster.sim().Run();
  EXPECT_EQ(ok, 100);
}

TEST(DrainTest, ConcurrentDrainsNeverTargetDrainingMasters) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  SpreadQuarters(cluster);
  cluster.LoadTable(kTable, 1'000, 30, 100);

  RebalancePlanner planner(&cluster);
  planner.Start();
  cluster.coordinator().StartFailureDetector();
  const ServerId victim_a = cluster.master(2).id();
  const ServerId victim_b = cluster.master(3).id();
  ASSERT_EQ(cluster.coordinator().BeginDrain(victim_a), Status::kOk);
  ASSERT_EQ(cluster.coordinator().BeginDrain(victim_b), Status::kOk);
  RunUntilDrained(cluster, planner, victim_a);
  RunUntilDrained(cluster, planner, victim_b);

  EXPECT_EQ(cluster.coordinator().lifecycle(victim_a), ServerLifecycle::kDecommissioned);
  EXPECT_EQ(cluster.coordinator().lifecycle(victim_b), ServerLifecycle::kDecommissioned);
  // Every range ends on one of the two still-active masters: evacuations
  // never targeted a draining (or decommissioned) peer.
  for (const auto& entry : cluster.coordinator().GetAllTablets()) {
    EXPECT_TRUE(entry.owner == cluster.master(0).id() ||
                entry.owner == cluster.master(1).id())
        << "range landed on server " << entry.owner;
  }
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ---------------------------------------------------- Crash convergence.

TEST(DrainTest, MasterCrashMidDrainConvergesToDecommissioned) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  SpreadQuarters(cluster);
  cluster.LoadTable(kTable, 1'000, 30, 100);
  Simulator& sim = cluster.sim();

  RebalancePlanner planner(&cluster);
  planner.Start();
  cluster.coordinator().StartFailureDetector();
  const ServerId victim = cluster.master(3).id();
  ASSERT_EQ(cluster.coordinator().BeginDrain(victim), Status::kOk);
  // Kill the draining master while the evacuation is (likely) in flight.
  // The server is never restarted: recovery re-homes whatever the drain had
  // not yet moved, after which the empty drain converges to decommissioned
  // on the detector sweep.
  sim.At(sim.now() + 2 * kMillisecond, [&] { cluster.master(3).Crash(); });
  RunUntilDrained(cluster, planner, victim);

  EXPECT_EQ(cluster.coordinator().lifecycle(victim), ServerLifecycle::kDecommissioned);
  EXPECT_EQ(RangesOwnedBy(cluster, victim), 0u);
  EXPECT_TRUE(cluster.coordinator().dependencies().empty());

  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  for (size_t i = 0; i < 3; i++) {
    cluster.master(i).objects().AuditInvariants(&report);
  }
  EXPECT_TRUE(report.ok()) << report.Summary();

  int ok = 0;
  for (int i = 0; i < 100; i++) {
    cluster.client(0).Read(kTable, Cluster::MakeKey(static_cast<uint64_t>(i * 7), 30),
                           [&](Status s, const std::string&) { ok += (s == Status::kOk); });
  }
  sim.Run();
  EXPECT_EQ(ok, 100);
}

TEST(DrainTest, CoordinatorCrashMidDrainResumesFromPersistedFlag) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  SpreadQuarters(cluster);
  cluster.LoadTable(kTable, 1'000, 30, 100);
  Simulator& sim = cluster.sim();

  RebalancePlanner planner(&cluster);
  planner.Start();
  cluster.coordinator().StartFailureDetector();
  const ServerId victim = cluster.master(3).id();
  ASSERT_EQ(cluster.coordinator().BeginDrain(victim), Status::kOk);
  // Coordinator goes down mid-drain. The lifecycle table is part of the
  // quorum-replicated metadata, so the restart resumes the drain rather
  // than forgetting it.
  sim.At(sim.now() + kMillisecond, [&] { cluster.coordinator().Crash(); });
  sim.At(sim.now() + 6 * kMillisecond, [&] {
    cluster.coordinator().Restart();
    EXPECT_EQ(cluster.coordinator().lifecycle(victim), ServerLifecycle::kDraining);
    EXPECT_TRUE(cluster.master(3).draining());  // Master-side latch survived too.
  });
  RunUntilDrained(cluster, planner, victim);

  EXPECT_EQ(cluster.coordinator().lifecycle(victim), ServerLifecycle::kDecommissioned);
  EXPECT_EQ(RangesOwnedBy(cluster, victim), 0u);
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DrainTest, DrainingMasterRejectsInboundMigration) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  SpreadQuarters(cluster);
  cluster.LoadTable(kTable, 200, 30, 100);
  ASSERT_EQ(cluster.coordinator().BeginDrain(cluster.master(3).id()), Status::kOk);
  // An operator-raced migration *into* the draining master must bounce.
  std::optional<MigrationStats> stats;
  StartRocksteadyMigration(&cluster, kTable, 0, kQuarter - 1, 0, 3, RocksteadyOptions{},
                           [&](const MigrationStats& s) { stats = s; });
  cluster.sim().Run();
  // The migration never commits ownership to the draining target.
  EXPECT_EQ(cluster.coordinator().OwnerOf(kTable, 0), cluster.master(0).id());
  EXPECT_EQ(RangesOwnedBy(cluster, cluster.master(3).id()), 1u);  // Only its original quarter.
}

// ------------------------------------------------------ Rolling restart.

TEST(RollingRestartTest, CyclesEveryActiveMasterOnce) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  SpreadQuarters(cluster);
  cluster.LoadTable(kTable, 1'000, 30, 100);
  Simulator& sim = cluster.sim();

  RollingRestartOrchestrator orchestrator(&cluster);
  bool done = false;
  orchestrator.Start([&] { done = true; });
  EXPECT_TRUE(cluster.coordinator().failure_detector_running());
  sim.RunUntil(2 * kSecond);
  cluster.coordinator().StopFailureDetector();
  sim.Run();

  EXPECT_TRUE(done);
  EXPECT_FALSE(orchestrator.running());
  EXPECT_EQ(orchestrator.stats().restarts_started, 4u);
  EXPECT_EQ(orchestrator.stats().restarts_completed, 4u);
  EXPECT_EQ(orchestrator.stats().skipped, 0u);
  for (size_t i = 0; i < cluster.num_masters(); i++) {
    EXPECT_FALSE(cluster.master(i).crashed());
  }

  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  for (size_t i = 0; i < cluster.num_masters(); i++) {
    cluster.master(i).objects().AuditInvariants(&report);
  }
  EXPECT_TRUE(report.ok()) << report.Summary();

  // The restarts re-homed every quarter; all data still served.
  int ok = 0;
  for (int i = 0; i < 100; i++) {
    cluster.client(0).Read(kTable, Cluster::MakeKey(static_cast<uint64_t>(i * 7), 30),
                           [&](Status s, const std::string&) { ok += (s == Status::kOk); });
  }
  sim.Run();
  EXPECT_EQ(ok, 100);
}

TEST(RollingRestartTest, SkipsNonActiveMasters) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);  // Only master 1 owns anything.
  ASSERT_EQ(cluster.coordinator().MarkStandby(cluster.master(3).id()), Status::kOk);
  Simulator& sim = cluster.sim();

  RollingRestartOrchestrator orchestrator(&cluster);
  bool done = false;
  orchestrator.Start([&] { done = true; });
  sim.RunUntil(2 * kSecond);
  cluster.coordinator().StopFailureDetector();
  sim.Run();

  EXPECT_TRUE(done);
  EXPECT_EQ(orchestrator.stats().restarts_completed, 3u);
  EXPECT_EQ(orchestrator.stats().skipped, 1u);  // The standby was left alone.
  EXPECT_EQ(cluster.coordinator().lifecycle(cluster.master(3).id()),
            ServerLifecycle::kStandby);
}

}  // namespace
}  // namespace rocksteady
