// Tests for the workload module: YCSB op mix and skew, open-loop client
// actors (arrival process, backlog behaviour, latency accounting).
#include <gtest/gtest.h>

#include <map>

#include "src/cluster/cluster.h"
#include "src/workload/client_actor.h"
#include "src/workload/ycsb.h"

namespace rocksteady {
namespace {

TEST(YcsbTest, ReadFractionRespected) {
  YcsbConfig config = YcsbConfig::WorkloadB();
  config.num_records = 10'000;
  YcsbWorkload workload(config);
  Random rng(3);
  int reads = 0;
  constexpr int kOps = 100'000;
  for (int i = 0; i < kOps; i++) {
    reads += workload.NextOp(rng).is_read;
  }
  EXPECT_NEAR(static_cast<double>(reads) / kOps, 0.95, 0.01);
}

TEST(YcsbTest, WorkloadVariants) {
  EXPECT_DOUBLE_EQ(YcsbConfig::WorkloadA().read_fraction, 0.5);
  EXPECT_DOUBLE_EQ(YcsbConfig::WorkloadB().read_fraction, 0.95);
  EXPECT_DOUBLE_EQ(YcsbConfig::WorkloadC().read_fraction, 1.0);
}

TEST(YcsbTest, KeysAreValidAndSkewed) {
  YcsbConfig config = YcsbConfig::WorkloadB();
  config.num_records = 1'000;
  YcsbWorkload workload(config);
  Random rng(5);
  std::map<std::string, int> counts;
  for (int i = 0; i < 50'000; i++) {
    const auto op = workload.NextOp(rng);
    EXPECT_EQ(op.key.size(), config.key_length);
    counts[op.key]++;
  }
  // Every generated key is one of the table's keys.
  for (const auto& [key, count] : counts) {
    bool found = false;
    for (uint64_t id = 0; id < config.num_records; id++) {
      if (workload.KeyAt(id) == key) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << key;
    if (counts.size() > 50) {
      break;  // Spot-check a few; the loop above is quadratic.
    }
  }
  // Zipf 0.99: the hottest key gets far more than the uniform share.
  int hottest = 0;
  for (const auto& [key, count] : counts) {
    hottest = std::max(hottest, count);
  }
  EXPECT_GT(hottest, 50'000 / 1'000 * 10);
}

TEST(ClientActorTest, OpenLoopOffersConfiguredRate) {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 1;
  config.master.hash_table_log2_buckets = 12;
  Cluster cluster(config);
  cluster.CreateTable(1, 0);
  cluster.LoadTable(1, 1'000, 30, 100);
  YcsbConfig ycsb = YcsbConfig::WorkloadC();  // Reads only.
  ycsb.num_records = 1'000;
  YcsbWorkload workload(ycsb);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 50'000;
  actor_config.stop_time = kSecond;
  ClientActor actor(1, &cluster.client(0), &workload, actor_config);
  actor.Start();
  cluster.sim().Run();
  // Poisson arrivals at 50K/s for 1 s: within a few percent.
  EXPECT_NEAR(static_cast<double>(actor.issued()), 50'000.0, 2'500.0);
  EXPECT_EQ(actor.failed(), 0u);
  EXPECT_EQ(actor.backlog(), 0u);
}

TEST(ClientActorTest, BacklogFormsWhenServerSlow) {
  // Offer far more load than one server can take; the actor must backlog
  // (not drop), and sojourn latency must reflect the queueing.
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 1;
  config.master.num_workers = 1;
  config.master.hash_table_log2_buckets = 12;
  Cluster cluster(config);
  cluster.CreateTable(1, 0);
  cluster.LoadTable(1, 100, 30, 100);
  YcsbConfig ycsb = YcsbConfig::WorkloadC();
  ycsb.num_records = 100;
  YcsbWorkload workload(ycsb);
  LatencyTimeline reads(kSecond / 10, 10);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 2'000'000;  // >> capacity.
  actor_config.max_outstanding = 4;
  actor_config.stop_time = kSecond / 10;
  ClientActor actor(1, &cluster.client(0), &workload, actor_config);
  actor.set_read_latency(&reads);
  actor.Start();
  cluster.sim().RunUntil(kSecond / 10);
  EXPECT_GT(actor.backlog(), 100u);
  cluster.sim().Run();  // Drain.
  EXPECT_EQ(actor.backlog(), 0u);
  EXPECT_EQ(actor.issued(), actor.completed() + actor.failed());
  // Sojourn latency far exceeds service latency under overload.
  EXPECT_GT(reads.Total().Percentile(0.99), 100'000u);
}

TEST(ClientActorTest, WritesCountedSeparately) {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 1;
  config.master.hash_table_log2_buckets = 12;
  Cluster cluster(config);
  cluster.CreateTable(1, 0);
  cluster.LoadTable(1, 1'000, 30, 100);
  YcsbConfig ycsb = YcsbConfig::WorkloadA();  // 50/50.
  ycsb.num_records = 1'000;
  YcsbWorkload workload(ycsb);
  LatencyTimeline reads(kSecond, 2);
  LatencyTimeline writes(kSecond, 2);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 20'000;
  actor_config.stop_time = kSecond / 2;
  ClientActor actor(1, &cluster.client(0), &workload, actor_config);
  actor.set_read_latency(&reads);
  actor.set_write_latency(&writes);
  actor.Start();
  cluster.sim().Run();
  const uint64_t total_reads = reads.Total().count();
  const uint64_t total_writes = writes.Total().count();
  EXPECT_GT(total_reads, 0u);
  EXPECT_GT(total_writes, 0u);
  EXPECT_NEAR(static_cast<double>(total_reads) / (total_reads + total_writes), 0.5, 0.05);
  // Durable writes are several times slower than reads.
  EXPECT_GT(writes.Total().Percentile(0.5), reads.Total().Percentile(0.5) * 3 / 2);
}

}  // namespace
}  // namespace rocksteady
