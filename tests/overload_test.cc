// Overload-protection and memory-budget tests: admission control / load
// shedding, the migration memory budget (pause -> emergency clean -> resume,
// and graceful abort when the tablet cannot fit), and the log cleaner
// running concurrently with a live migration.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/audit.h"
#include "src/migration/migration_state.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr TableId kChurnTable = 2;
constexpr KeyHash kMid = 1ull << 63;

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  return config;
}

void ExpectCleanAudit(const ObjectManager& objects, const char* what) {
  AuditReport report;
  objects.AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << what << ":\n" << report.Summary();
}

TEST(AdmissionControlTest, QueueBoundsReportFull) {
  Simulator sim(1);
  CoreSet cores(&sim, 1);
  cores.SetQueueBound(Priority::kMigration, 2);
  EXPECT_FALSE(cores.QueueFull(Priority::kMigration));
  // One task occupies the worker; the next two sit in the queue.
  for (int i = 0; i < 3; i++) {
    cores.EnqueueWorker({Priority::kMigration, [] { return Tick{1'000'000}; }, [] {}});
  }
  EXPECT_TRUE(cores.QueueFull(Priority::kMigration));
  EXPECT_FALSE(cores.QueueFull(Priority::kClient));  // Unbounded by default.
  sim.Run();
  EXPECT_FALSE(cores.QueueFull(Priority::kMigration));
}

// Past the client hard limit the master sheds with kRetryLater instead of
// queueing; clients absorb the shed through their seeded-backoff retry loop,
// so every op still completes.
TEST(AdmissionControlTest, ClientShedsPastHardLimitAndAllOpsComplete) {
  ClusterConfig config = TestCluster();
  config.master.num_workers = 1;
  config.master.client_queue_hard_limit = 8;
  Cluster cluster(config);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, 1'000, 30, 100);

  int ok = 0;
  int failed = 0;
  for (int i = 0; i < 400; i++) {
    cluster.client(i % 2).Read(kTable, Cluster::MakeKey(static_cast<uint64_t>(i), 30),
                               [&](Status status, const std::string&) {
                                 (status == Status::kOk ? ok : failed)++;
                               });
  }
  cluster.sim().Run();
  EXPECT_EQ(ok, 400);
  EXPECT_EQ(failed, 0);
  EXPECT_GT(cluster.master(0).client_sheds(), 0u);
  EXPECT_GT(cluster.client(0).retry_later_retries() + cluster.client(1).retry_later_retries(),
            0u);
}

// The memory-budget happy path: the target crosses the high watermark
// mid-migration, pauses pulls, reclaims dead bytes through emergency
// cleaning, resumes below the low watermark, and completes with every
// record intact (both the migrated table and the churned one whose live
// objects the cleaner relocated).
TEST(MemoryBudgetTest, PausesCleansResumesAndCompletes) {
  ClusterConfig config = TestCluster();
  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.CreateTable(kChurnTable, 1);
  cluster.LoadTable(kTable, 5'000, 30, 100);
  // Three generations of the churn table: two thirds of the target's log is
  // dead — exactly the memory emergency cleaning exists to reclaim.
  for (int gen = 0; gen < 3; gen++) {
    cluster.LoadTable(kChurnTable, 3'000, 30, 100);
  }
  MasterServer& target = cluster.master(1);
  const uint64_t base = target.memory_in_use();
  target.set_memory_budget(base + 4 * config.master.segment_size);

  std::optional<MigrationStats> result;
  StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats& stats) { result = stats; });
  cluster.sim().Run();

  ASSERT_TRUE(result.has_value()) << "migration did not complete";
  EXPECT_FALSE(result->aborted_over_budget);
  EXPECT_GE(result->memory_pauses, 1u);
  EXPECT_GE(result->emergency_clean_segments, 1u);
  EXPECT_GE(target.objects().cleaner().emergency_cleans(), 1u);
  EXPECT_EQ(cluster.coordinator().OwnerOf(kTable, kMid), target.id());
  EXPECT_TRUE(cluster.coordinator().dependencies().empty());
  // Cleaning got (and the migration kept) the target under its budget.
  EXPECT_LE(target.memory_in_use(), target.config().memory_budget_bytes);

  ExpectCleanAudit(target.objects(), "target after budgeted migration");
  ExpectCleanAudit(cluster.master(0).objects(), "source after budgeted migration");

  // Every record of both tables is still readable: migration moved the
  // upper half of kTable, and emergency cleaning relocated (not lost) the
  // churn table's live objects.
  int ok = 0;
  int wrong = 0;
  const std::string expected(100, 'v');
  auto check = [&](Status status, const std::string& value) {
    (status == Status::kOk && value == expected ? ok : wrong)++;
  };
  for (uint64_t i = 0; i < 5'000; i++) {
    cluster.client(0).Read(kTable, Cluster::MakeKey(i, 30), check);
    if (i % 64 == 63) {
      cluster.sim().Run();
    }
  }
  for (uint64_t i = 0; i < 3'000; i++) {
    cluster.client(1).Read(kChurnTable, Cluster::MakeKey(i, 30), check);
    if (i % 64 == 63) {
      cluster.sim().Run();
    }
  }
  cluster.sim().Run();
  EXPECT_EQ(ok, 5'000 + 3'000);
  EXPECT_EQ(wrong, 0);
}

// The memory-budget sad path: the tablet cannot fit even after cleaning
// (the target has no dead bytes to reclaim), so the migration aborts
// gracefully along the §3.4 lineage paths — ownership returns to the
// source, and writes the target acked while it owned the range survive via
// its replicated log tail.
TEST(MemoryBudgetTest, TooSmallBudgetAbortsToSourceWithoutLosingAckedWrites) {
  ClusterConfig config = TestCluster();
  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, 5'000, 30, 100);
  MasterServer& source = cluster.master(0);
  MasterServer& target = cluster.master(1);
  // Room for a couple of segments — nowhere near the ~400 KB tablet.
  target.set_memory_budget(target.memory_in_use() + 3 * config.master.segment_size);

  std::optional<MigrationStats> result;
  auto* manager =
      StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                               [&](const MigrationStats& stats) { result = stats; });

  // Writes to migrating keys while the migration runs: some are acked by
  // the target during its ownership window, and none may be lost by the
  // abort. Track which keys were acked with the new value.
  std::vector<std::string> migrating_keys;
  for (uint64_t i = 0; i < 5'000 && migrating_keys.size() < 40; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) >= kMid) {
      migrating_keys.push_back(key);
    }
  }
  const std::string new_value(100, 'W');
  int write_acks = 0;
  for (size_t i = 0; i < migrating_keys.size(); i++) {
    cluster.sim().At(Tick{20'000} + static_cast<Tick>(i) * 10'000, [&, i] {
      cluster.client(0).Write(kTable, migrating_keys[i], new_value, [&](Status status) {
        EXPECT_EQ(status, Status::kOk);
        write_acks++;
      });
    });
  }
  cluster.sim().Run();

  // The migration aborted over budget (done_ is not invoked on abort; the
  // manager's state is the record).
  EXPECT_FALSE(result.has_value());
  EXPECT_TRUE(manager->aborted());
  EXPECT_TRUE(manager->stats().aborted_over_budget);
  EXPECT_GE(manager->stats().memory_pauses, 1u);
  EXPECT_GE(cluster.coordinator().budget_aborts(), 1u);

  // Ownership is back at the source, the dependency row is gone, and the
  // range serves normally again.
  EXPECT_EQ(cluster.coordinator().OwnerOf(kTable, kMid), source.id());
  EXPECT_EQ(cluster.coordinator().OwnerOf(kTable, 0), source.id());
  EXPECT_TRUE(cluster.coordinator().dependencies().empty());

  ExpectCleanAudit(source.objects(), "source after budget abort");
  ExpectCleanAudit(target.objects(), "target after budget abort");
  {
    AuditReport report;
    manager->AuditInvariants(&report);
    EXPECT_TRUE(report.ok()) << "manager after budget abort:\n" << report.Summary();
  }

  // Every write was acked, and every acked write survives the abort.
  EXPECT_EQ(static_cast<size_t>(write_acks), migrating_keys.size());
  int ok = 0;
  int wrong = 0;
  for (const std::string& key : migrating_keys) {
    cluster.client(0).Read(kTable, key, [&](Status status, const std::string& value) {
      (status == Status::kOk && value == new_value ? ok : wrong)++;
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(static_cast<size_t>(ok), migrating_keys.size());
  EXPECT_EQ(wrong, 0);
}

// Satellite of §3.1.3's claim that migration never constrains the cleaner:
// cost-benefit cleaning keeps running on BOTH ends while a migration is in
// flight. No relocated object may be lost, no audit may fail, and the
// migration must complete normally.
TEST(CleanerTest, CleanOnceRunsConcurrentlyWithMigration) {
  ClusterConfig config = TestCluster();
  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  // Two generations: half the source's log is dead, so the cleaner has real
  // work (and real relocations) to do during the migration.
  cluster.LoadTable(kTable, 5'000, 30, 100);
  cluster.LoadTable(kTable, 5'000, 30, 100);

  std::optional<MigrationStats> result;
  StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats& stats) { result = stats; });

  // Drive CleanOnce on both ends every 50 us for the duration of the run.
  std::function<void()> kick = [&] {
    if (result.has_value()) {
      return;
    }
    cluster.master(0).objects().RunCleaner(1);
    cluster.master(1).objects().RunCleaner(1);
    cluster.sim().After(50 * kMicrosecond, kick);
  };
  cluster.sim().After(10 * kMicrosecond, kick);
  cluster.sim().Run();

  ASSERT_TRUE(result.has_value()) << "migration did not complete";
  // The cleaner genuinely ran against the migration's source.
  EXPECT_GT(cluster.master(0).objects().cleaner().segments_cleaned(), 0u);

  ExpectCleanAudit(cluster.master(0).objects(), "source after concurrent cleaning");
  ExpectCleanAudit(cluster.master(1).objects(), "target after concurrent cleaning");

  // No object lost: every record reads back with the latest value, whether
  // it was migrated, relocated by the cleaner, or both.
  int ok = 0;
  int wrong = 0;
  const std::string expected(100, 'v');
  for (uint64_t i = 0; i < 5'000; i++) {
    cluster.client(0).Read(kTable, Cluster::MakeKey(i, 30),
                           [&](Status status, const std::string& value) {
                             (status == Status::kOk && value == expected ? ok : wrong)++;
                           });
    if (i % 64 == 63) {
      cluster.sim().Run();
    }
  }
  cluster.sim().Run();
  EXPECT_EQ(ok, 5'000);
  EXPECT_EQ(wrong, 0);
}

// The source rejects pulls at dispatch once its migration queue is past its
// bound; the target's controller counts the rejection, backs off, and the
// migration still completes.
TEST(AdmissionControlTest, SourceShedsPullsUnderTinyBoundAndMigrationCompletes) {
  ClusterConfig config = TestCluster();
  config.master.num_workers = 1;
  config.master.migration_queue_bound = 1;
  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, 5'000, 30, 100);

  std::optional<MigrationStats> result;
  StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats& stats) { result = stats; });
  cluster.sim().Run();

  ASSERT_TRUE(result.has_value()) << "migration did not complete";
  // With one worker and eight partitions the bound must have tripped; the
  // controller absorbed every rejection.
  EXPECT_GT(cluster.master(0).migration_pull_rejects(), 0u);
  EXPECT_GE(result->pull_rejections, 1u);
  EXPECT_GE(result->pacing_backoffs, 1u);
  EXPECT_EQ(cluster.coordinator().OwnerOf(kTable, kMid), cluster.master(1).id());
}

}  // namespace
}  // namespace rocksteady
