// Cross-shard determinism suite for sharded event lanes (LaneSet).
//
// The lane engine's core promise: a run's trace is a pure function of its
// seed — never of the lane count or of whether lanes execute on real worker
// threads. This drives full cluster scenarios (plain YCSB-B, YCSB-B with a
// mid-run Rocksteady migration, YCSB-B under injected fabric faults) at
// lanes {1, 2, 4} x threads {off, on} across 20 seeds and asserts every
// digest — trace hash, event count, end time, client/migration/fault
// counters, final object placement — is bit-identical.
//
// Lane-mode traces are their own hash domain (per-node RNG streams replace
// the shared simulator stream), so these hashes are not compared against
// legacy single-queue runs; sim_determinism_test continues to pin those.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/audit.h"
#include "src/migration/rocksteady_target.h"
#include "src/sim/fault_injector.h"
#include "src/sim/lane_set.h"
#include "src/workload/client_actor.h"
#include "src/workload/ycsb.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;
constexpr uint64_t kRecords = 1'000;

enum class Scenario { kYcsb, kMigration, kFaults };

struct LaneDigest {
  uint64_t trace_hash = 0;
  size_t events = 0;
  Tick end_time = 0;
  uint64_t windows = 0;
  uint64_t client_completed = 0;
  uint64_t client_failed = 0;
  uint64_t records_pulled = 0;
  uint64_t source_objects = 0;
  uint64_t target_objects = 0;
  uint64_t injected_drops = 0;
  uint64_t injected_duplicates = 0;
  uint64_t retransmissions = 0;

  friend bool operator==(const LaneDigest&, const LaneDigest&) = default;
};

LaneDigest RunLaneScenario(Scenario kind, uint64_t seed, int lanes, bool threads) {
  // The injector must outlive the cluster's network.
  FaultInjector injector({.seed = seed * 1'000 + 7,
                          .drop_probability = 0.01,
                          .duplicate_probability = 0.005,
                          .max_extra_delay_ns = 2 * kMicrosecond});

  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  config.seed = seed;
  config.lanes = lanes;
  config.lane_threads = threads;
  Cluster cluster(config);
  if (kind == Scenario::kFaults) {
    // Per-sender fault streams: each node's drop/duplicate/delay draws
    // depend only on that node's send order, which the canonical merge keeps
    // lane-count- and thread-invariant.
    injector.EnablePerSenderStreams(1 + cluster.num_masters() + cluster.num_clients());
    cluster.net().SetFaultInjector(&injector);
  }
  if (kind != Scenario::kYcsb) {
    EnableMigration(&cluster);
  }
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 40'000;
  actor_config.stop_time = 30 * kMillisecond;
  std::vector<std::unique_ptr<ClientActor>> actors;
  for (size_t c = 0; c < cluster.num_clients(); c++) {
    actors.push_back(
        std::make_unique<ClientActor>(kTable, &cluster.client(c), &workload, actor_config));
    actors.back()->Start();
  }

  std::optional<MigrationStats> stats;
  if (kind != Scenario::kYcsb) {
    // Safe-point kickoff: the lane-mode home for cross-cutting control
    // actions. Placement depends only on the global event timeline.
    cluster.AtSafePoint(10 * kMillisecond, [&] {
      StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                               [&](const MigrationStats& s) { stats = s; });
    });
  }
  cluster.Run();

  AuditReport report;
  cluster.master(0).objects().AuditInvariants(&report);
  cluster.master(1).objects().AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();

  LaneDigest digest;
  digest.trace_hash = cluster.trace_hash();
  digest.events = cluster.events_processed();
  digest.end_time = cluster.now();
  digest.windows = cluster.lanes() != nullptr ? cluster.lanes()->windows_run() : 0;
  for (const auto& actor : actors) {
    digest.client_completed += actor->completed();
    digest.client_failed += actor->failed();
  }
  digest.records_pulled = stats ? stats->records_pulled : 0;
  digest.source_objects = cluster.master(0).objects().object_count();
  digest.target_objects = cluster.master(1).objects().object_count();
  digest.injected_drops = cluster.net().injected_drops();
  digest.injected_duplicates = cluster.net().injected_duplicates();
  digest.retransmissions = cluster.rpc().retransmissions();
  return digest;
}

const char* ScenarioName(Scenario kind) {
  switch (kind) {
    case Scenario::kYcsb:
      return "ycsb";
    case Scenario::kMigration:
      return "migration";
    case Scenario::kFaults:
      return "faults";
  }
  return "?";
}

class LaneDeterminismTest : public testing::TestWithParam<std::tuple<Scenario, uint64_t>> {};

TEST_P(LaneDeterminismTest, HashesIdenticalAcrossLaneCountsAndThreads) {
  const auto [kind, seed] = GetParam();
  const LaneDigest reference = RunLaneScenario(kind, seed, 1, false);
  // The scenario actually exercised the machinery.
  EXPECT_GT(reference.events, 1'000u);
  EXPECT_GT(reference.client_completed, 0u);
  if (kind != Scenario::kYcsb) {
    EXPECT_GT(reference.records_pulled, 0u);
    EXPECT_EQ(reference.source_objects + reference.target_objects, kRecords);
  }
  if (kind == Scenario::kFaults) {
    EXPECT_GT(reference.injected_drops, 0u);
    EXPECT_GT(reference.retransmissions, 0u);
  }
  for (const int lanes : {2, 4}) {
    const LaneDigest unthreaded = RunLaneScenario(kind, seed, lanes, false);
    EXPECT_EQ(unthreaded, reference) << "lanes=" << lanes << " unthreaded diverged";
    const LaneDigest threaded = RunLaneScenario(kind, seed, lanes, true);
    EXPECT_EQ(threaded, reference) << "lanes=" << lanes << " threaded diverged";
  }
}

std::string LaneParamName(const testing::TestParamInfo<std::tuple<Scenario, uint64_t>>& info) {
  return std::string(ScenarioName(std::get<0>(info.param))) + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaneDeterminismTest,
                         testing::Combine(testing::Values(Scenario::kYcsb, Scenario::kMigration,
                                                          Scenario::kFaults),
                                          testing::Range(uint64_t{0}, uint64_t{20})),
                         LaneParamName);

// Two different seeds must diverge (guards against a degenerate lane hash).
TEST(LaneDeterminismTest, DifferentSeedsDiverge) {
  const LaneDigest a = RunLaneScenario(Scenario::kYcsb, 42, 4, false);
  const LaneDigest b = RunLaneScenario(Scenario::kYcsb, 43, 4, false);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

// Same-timestamp cross-lane deliveries tie-break on canonical sequence — the
// order the single-lane engine would have scheduled them (sender dispatch
// order), never on lane index or mailbox drain order.
TEST(LaneTieBreakTest, SameTimestampCrossLaneOrderFollowsCanonicalSeq) {
  std::vector<std::string> reference;
  for (const int lanes : {1, 2, 3}) {
    for (const bool threads : {false, true}) {
      LaneSet::Config config;
      config.lanes = lanes;
      config.threads = threads;
      config.lookahead = 100;
      config.seed = 1;
      LaneSet set(config);
      auto lane = [&](int l) -> Simulator& { return set.lane_sim(l % lanes); };
      std::vector<std::string> order;
      // Root-context setup: two senders on (nominally) different lanes, one
      // receiver on a third. The t=5 sender dispatches before the t=10
      // sender, so its same-timestamp delivery must run first — even though
      // it comes from the higher lane index and is posted second here.
      lane(1).At(10, [&] {
        set.PostCrossLane(&lane(1), 2 % lanes, 150, [&] { order.push_back("from-t10"); });
      });
      lane(2).At(5, [&] {
        set.PostCrossLane(&lane(2), 2 % lanes, 150, [&] { order.push_back("from-t5"); });
      });
      // A root-scheduled event at the same timestamp was seq-stamped at
      // setup, before either cross op — it must run first of the three.
      lane(2).At(150, [&] { order.push_back("root-t150"); });
      set.Run();
      ASSERT_EQ(order.size(), 3u) << "lanes=" << lanes << " threads=" << threads;
      EXPECT_EQ(order[0], "root-t150");
      EXPECT_EQ(order[1], "from-t5");
      EXPECT_EQ(order[2], "from-t10");
      if (reference.empty()) {
        reference = order;
      } else {
        EXPECT_EQ(order, reference) << "lanes=" << lanes << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace rocksteady
