// Test-only global allocation counter.
//
// Linking tests/alloc_hook.cc into a binary replaces the global operator
// new/delete with counting wrappers; these accessors read the totals. The
// hook is deliberately NOT part of any rocksteady library: replacing the
// global allocator is a whole-binary decision that only the allocation
// regression test and the engine throughput bench opt into.
#ifndef ROCKSTEADY_TESTS_ALLOC_HOOK_H_
#define ROCKSTEADY_TESTS_ALLOC_HOOK_H_

#include <cstdint>

namespace rocksteady {

// Number of global operator new invocations (all forms) since process start.
uint64_t GlobalAllocCount();

// Total bytes requested through global operator new since process start.
uint64_t GlobalAllocBytes();

}  // namespace rocksteady

#endif  // ROCKSTEADY_TESTS_ALLOC_HOOK_H_
