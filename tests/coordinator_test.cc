// Tests for the coordinator: tablet map operations, the lineage dependency
// registry, index configuration, server directory, and the RPC surface
// clients use to refresh their maps.
#include <gtest/gtest.h>

#include <memory>

#include "src/cluster/cluster.h"

namespace rocksteady {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 1;
  config.master.hash_table_log2_buckets = 10;
  return config;
}

TEST(CoordinatorTest, CreateTableInstallsTabletOnOwner) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(7, 2);
  EXPECT_EQ(cluster.coordinator().OwnerOf(7, 0), cluster.master(2).id());
  EXPECT_EQ(cluster.coordinator().OwnerOf(7, ~0ull), cluster.master(2).id());
  const Tablet* tablet = cluster.master(2).objects().tablets().Find(7, 123);
  ASSERT_NE(tablet, nullptr);
  EXPECT_EQ(tablet->state, TabletState::kNormal);
  // Other masters know nothing of it.
  EXPECT_EQ(cluster.master(0).objects().tablets().Find(7, 123), nullptr);
}

TEST(CoordinatorTest, SplitMirrorsOnOwner) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  ASSERT_EQ(cluster.coordinator().SplitTablet(1, 1ull << 63), Status::kOk);
  const auto config = cluster.coordinator().GetTableConfig(1);
  ASSERT_EQ(config.size(), 2u);
  EXPECT_EQ(config[0].start_hash, 0u);
  EXPECT_EQ(config[0].end_hash, (1ull << 63) - 1);
  EXPECT_EQ(config[1].start_hash, 1ull << 63);
  // The owning master's tablet manager saw the same split.
  EXPECT_EQ(cluster.master(0).objects().tablets().tablets().size(), 2u);
}

TEST(CoordinatorTest, SplitUnknownTableFails) {
  Cluster cluster(SmallCluster());
  EXPECT_EQ(cluster.coordinator().SplitTablet(42, 100), Status::kTableNotFound);
}

TEST(CoordinatorTest, UpdateOwnershipRequiresExactRange) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  cluster.coordinator().SplitTablet(1, 1000);
  EXPECT_EQ(cluster.coordinator().UpdateOwnership(1, 0, 500, cluster.master(1).id()),
            Status::kTableNotFound);  // Not a tablet boundary.
  // Protocol callers install the tablet on the new owner *before* repointing
  // the map — the cross-layer audit checks exactly this order.
  cluster.master(1).objects().tablets().Add(Tablet{1, 0, 999, TabletState::kNormal});
  EXPECT_EQ(cluster.coordinator().UpdateOwnership(1, 0, 999, cluster.master(1).id()),
            Status::kOk);
  cluster.master(0).objects().tablets().Remove(1, 0, 999);
  EXPECT_EQ(cluster.coordinator().OwnerOf(1, 42), cluster.master(1).id());
  EXPECT_EQ(cluster.coordinator().OwnerOf(1, 2000), cluster.master(0).id());
}

TEST(CoordinatorTest, GetTableConfigSortedByHash) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  cluster.coordinator().SplitTablet(1, 3ull << 62);
  cluster.coordinator().SplitTablet(1, 1ull << 62);
  cluster.coordinator().SplitTablet(1, 2ull << 62);
  const auto config = cluster.coordinator().GetTableConfig(1);
  ASSERT_EQ(config.size(), 4u);
  for (size_t i = 1; i < config.size(); i++) {
    EXPECT_GT(config[i].start_hash, config[i - 1].start_hash);
    EXPECT_EQ(config[i].start_hash, config[i - 1].end_hash + 1);
  }
}

TEST(CoordinatorTest, DependencyRegistryRoundTrip) {
  Cluster cluster(SmallCluster());
  MigrationDependency dependency;
  dependency.source = cluster.master(0).id();
  dependency.target = cluster.master(1).id();
  dependency.table = 1;
  dependency.start_hash = 1ull << 63;
  dependency.end_hash = ~0ull;
  dependency.target_log_segment = 7;
  dependency.target_log_offset = 4096;
  cluster.coordinator().RegisterDependency(dependency);

  auto by_source = cluster.coordinator().FindDependencyBySource(cluster.master(0).id());
  ASSERT_TRUE(by_source.has_value());
  EXPECT_EQ(by_source->target_log_segment, 7u);
  EXPECT_EQ(by_source->target_log_offset, 4096u);
  auto by_target = cluster.coordinator().FindDependencyByTarget(cluster.master(1).id());
  ASSERT_TRUE(by_target.has_value());
  EXPECT_FALSE(cluster.coordinator().FindDependencyBySource(cluster.master(1).id()).has_value());

  cluster.coordinator().DropDependency(cluster.master(0).id(), cluster.master(1).id(), 1);
  EXPECT_FALSE(cluster.coordinator().FindDependencyBySource(cluster.master(0).id()).has_value());
  EXPECT_TRUE(cluster.coordinator().dependencies().empty());
}

TEST(CoordinatorTest, AliveServersExcludesCrashedAndSelf) {
  Cluster cluster(SmallCluster());
  EXPECT_EQ(cluster.coordinator().AliveServers().size(), 4u);
  EXPECT_EQ(cluster.coordinator().AliveServers(cluster.master(0).id()).size(), 3u);
  cluster.master(2).Crash();
  const auto alive = cluster.coordinator().AliveServers();
  EXPECT_EQ(alive.size(), 3u);
  for (ServerId id : alive) {
    EXPECT_NE(id, cluster.master(2).id());
  }
}

TEST(CoordinatorTest, IndexConfigResolvesOwnersAndInstallsIndexlets) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  cluster.coordinator().CreateIndex(1, 1,
                                    {{.start_key = "", .end_key = "m", .owner = 3},
                                     {.start_key = "m", .end_key = "", .owner = 4}});
  const auto* config = cluster.coordinator().GetIndexConfig(1, 1);
  ASSERT_NE(config, nullptr);
  ASSERT_EQ(config->size(), 2u);
  EXPECT_EQ((*config)[0].owner_node, cluster.master(2).node());
  EXPECT_EQ((*config)[1].owner_node, cluster.master(3).node());
  EXPECT_NE(cluster.master(2).FindIndexlet(1, 1, "apple"), nullptr);
  EXPECT_EQ(cluster.master(2).FindIndexlet(1, 1, "zebra"), nullptr);
  EXPECT_NE(cluster.master(3).FindIndexlet(1, 1, "zebra"), nullptr);
  EXPECT_EQ(cluster.coordinator().GetIndexConfig(1, 2), nullptr);
  EXPECT_EQ(cluster.coordinator().GetIndexConfig(9, 1), nullptr);
}

TEST(CoordinatorTest, GetTableConfigRpcFromClient) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  cluster.coordinator().SplitTablet(1, 1ull << 63);

  auto request = std::make_unique<GetTableConfigRequest>();
  request->table = 1;
  std::vector<TabletConfigEntry> got;
  cluster.rpc().Call(cluster.client(0).node(), cluster.coordinator().node(), std::move(request),
                     [&](Status status, std::unique_ptr<RpcResponse> response) {
                       ASSERT_EQ(status, Status::kOk);
                       got = static_cast<GetTableConfigResponse&>(*response).tablets;
                     });
  cluster.sim().Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].owner_node, cluster.master(0).node());

  // Unknown table: kTableNotFound status on the response.
  auto missing = std::make_unique<GetTableConfigRequest>();
  missing->table = 99;
  Status missing_status = Status::kOk;
  cluster.rpc().Call(cluster.client(0).node(), cluster.coordinator().node(), std::move(missing),
                     [&](Status, std::unique_ptr<RpcResponse> response) {
                       missing_status = response->status;
                     });
  cluster.sim().Run();
  EXPECT_EQ(missing_status, Status::kTableNotFound);
}

TEST(CoordinatorTest, UpdateOwnershipRpc) {
  Cluster cluster(SmallCluster());
  cluster.CreateTable(1, 0);
  // Install the range on the new owner first so the ownership flip keeps
  // the cross-layer audit true (same order as a real migration commit).
  cluster.master(3).objects().tablets().Add(Tablet{1, 0, ~0ull, TabletState::kNormal});
  auto request = std::make_unique<UpdateOwnershipRequest>();
  request->table = 1;
  request->start_hash = 0;
  request->end_hash = ~0ull;
  request->new_owner = cluster.master(3).id();
  Status status = Status::kInvalidState;
  cluster.rpc().Call(cluster.master(3).node(), cluster.coordinator().node(), std::move(request),
                     [&](Status s, std::unique_ptr<RpcResponse> response) {
                       status = s == Status::kOk ? response->status : s;
                     });
  cluster.sim().Run();
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(cluster.coordinator().OwnerOf(1, 5), cluster.master(3).id());
  cluster.master(0).objects().tablets().Remove(1, 0, ~0ull);
}

}  // namespace
}  // namespace rocksteady
