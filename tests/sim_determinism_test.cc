// End-to-end determinism harness: the simulation's core promise is that a
// run is a pure function of its seed. This runs a full YCSB-B Rocksteady
// migration scenario twice with the same seed and asserts the event traces
// are byte-identical (same trace hash, same event count, same final state);
// a different seed must diverge.
#include <gtest/gtest.h>

#include <optional>

#include "src/cluster/cluster.h"
#include "src/common/audit.h"
#include "src/migration/rocksteady_target.h"
#include "src/workload/client_actor.h"
#include "src/workload/ycsb.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;
constexpr uint64_t kRecords = 2'000;

struct RunDigest {
  uint64_t trace_hash = 0;
  size_t events = 0;
  Tick end_time = 0;
  uint64_t records_pulled = 0;
  uint64_t priority_pull_records = 0;
  uint64_t client_completed = 0;
  uint64_t client_failed = 0;
  uint64_t source_objects = 0;
  uint64_t target_objects = 0;

  friend bool operator==(const RunDigest&, const RunDigest&) = default;
};

// One full scenario: load a table, offer YCSB-B load against it, migrate the
// upper half mid-run, drain everything.
RunDigest RunScenario(uint64_t seed) {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 1;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  config.seed = seed;
  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 50'000;
  actor_config.stop_time = kSecond / 10;
  ClientActor actor(kTable, &cluster.client(0), &workload, actor_config);
  actor.Start();

  std::optional<MigrationStats> stats;
  cluster.sim().At(kSecond / 100, [&] {
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                             [&](const MigrationStats& s) { stats = s; });
  });
  cluster.sim().Run();
  EXPECT_TRUE(stats.has_value()) << "migration did not complete";

  // The migrated cluster must also be *consistent*, not just deterministic.
  AuditReport report;
  cluster.master(0).objects().AuditInvariants(&report);
  cluster.master(1).objects().AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();

  RunDigest digest;
  digest.trace_hash = cluster.sim().trace_hash();
  digest.events = cluster.sim().events_processed();
  digest.end_time = cluster.sim().now();
  digest.records_pulled = stats ? stats->records_pulled : 0;
  digest.priority_pull_records = stats ? stats->priority_pull_records : 0;
  digest.client_completed = actor.completed();
  digest.client_failed = actor.failed();
  digest.source_objects = cluster.master(0).objects().object_count();
  digest.target_objects = cluster.master(1).objects().object_count();
  return digest;
}

TEST(SimDeterminismTest, IdenticalSeedsProduceIdenticalTraces) {
  const RunDigest first = RunScenario(42);
  const RunDigest second = RunScenario(42);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first, second);
  // The scenario actually exercised the machinery.
  EXPECT_GT(first.events, 10'000u);
  EXPECT_GT(first.records_pulled, 0u);
  EXPECT_GT(first.client_completed, 0u);
  EXPECT_EQ(first.source_objects + first.target_objects, kRecords);
}

TEST(SimDeterminismTest, DifferentSeedsDiverge) {
  // Guards against a degenerate hash (e.g. constant) passing the test above.
  const RunDigest first = RunScenario(42);
  const RunDigest other = RunScenario(43);
  EXPECT_NE(first.trace_hash, other.trace_hash);
}

}  // namespace
}  // namespace rocksteady
