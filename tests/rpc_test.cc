// Tests for the RPC layer: dispatch integration, timing, timeouts, crash
// behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "src/rpc/rpc_system.h"
#include "src/sim/fault_injector.h"

namespace rocksteady {
namespace {

struct Fixture {
  Simulator sim{7};
  CostModel costs;
  Network net{&sim, &costs};
  RpcSystem rpc{&sim, &net, &costs};
};

TEST(RpcTest, RoundTripThroughDispatch) {
  Fixture f;
  CoreSet server_cores(&f.sim, 2);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);

  server->Register(Opcode::kRead, [](RpcContext context) {
    auto& request = context.As<ReadRequest>();
    auto response = std::make_unique<ReadResponse>();
    response->value = "value-for-" + request.key;
    context.reply(std::move(response));
  });

  std::string got;
  auto request = std::make_unique<ReadRequest>();
  request->key = "k1";
  f.rpc.Call(client->node(), server->node(), std::move(request),
             [&](Status status, std::unique_ptr<RpcResponse> response) {
               ASSERT_EQ(status, Status::kOk);
               got = static_cast<ReadResponse&>(*response).value;
             });
  f.sim.Run();
  EXPECT_EQ(got, "value-for-k1");
}

TEST(RpcTest, LatencyIncludesDispatchAndNetwork) {
  Fixture f;
  CoreSet server_cores(&f.sim, 2);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  server->Register(Opcode::kRead, [](RpcContext context) {
    context.reply(std::make_unique<ReadResponse>());
  });
  Tick completed_at = 0;
  f.rpc.Call(client->node(), server->node(), std::make_unique<ReadRequest>(),
             [&](Status, std::unique_ptr<RpcResponse>) { completed_at = f.sim.now(); });
  f.sim.Run();
  // At minimum: two propagation delays + dispatch rx + dispatch tx.
  const Tick floor = 2 * f.costs.net_propagation_ns + f.costs.dispatch_per_rpc_ns +
                     f.costs.dispatch_tx_ns;
  EXPECT_GE(completed_at, floor);
  EXPECT_LT(completed_at, floor + 5'000);
}

TEST(RpcTest, ConcurrentCallsSerializeOnDispatch) {
  Fixture f;
  CoreSet server_cores(&f.sim, 4);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  int handled = 0;
  server->Register(Opcode::kRead, [&](RpcContext context) {
    handled++;
    context.reply(std::make_unique<ReadResponse>());
  });
  int completed = 0;
  for (int i = 0; i < 10; i++) {
    f.rpc.Call(client->node(), server->node(), std::make_unique<ReadRequest>(),
               [&](Status status, std::unique_ptr<RpcResponse>) {
                 EXPECT_EQ(status, Status::kOk);
                 completed++;
               });
  }
  f.sim.Run();
  EXPECT_EQ(handled, 10);
  EXPECT_EQ(completed, 10);
}

TEST(RpcTest, TimeoutFiresWhenServerDown) {
  Fixture f;
  CoreSet server_cores(&f.sim, 1);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  server->Register(Opcode::kRead, [](RpcContext context) {
    context.reply(std::make_unique<ReadResponse>());
  });
  f.net.SetNodeDown(server->node(), true);
  Status got = Status::kOk;
  bool fired = false;
  f.rpc.Call(client->node(), server->node(), std::make_unique<ReadRequest>(),
             [&](Status status, std::unique_ptr<RpcResponse> response) {
               got = status;
               fired = true;
               EXPECT_EQ(response, nullptr);
             },
             /*timeout=*/kMillisecond);
  f.sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(got, Status::kServerDown);
  EXPECT_EQ(f.sim.now(), kMillisecond);
}

TEST(RpcTest, NoTimeoutAfterResponse) {
  Fixture f;
  CoreSet server_cores(&f.sim, 1);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  server->Register(Opcode::kRead, [](RpcContext context) {
    context.reply(std::make_unique<ReadResponse>());
  });
  int callbacks = 0;
  f.rpc.Call(client->node(), server->node(), std::make_unique<ReadRequest>(),
             [&](Status status, std::unique_ptr<RpcResponse>) {
               callbacks++;
               EXPECT_EQ(status, Status::kOk);
             },
             /*timeout=*/kMillisecond);
  f.sim.Run();
  EXPECT_EQ(callbacks, 1);  // The timeout must not double-fire.
}

TEST(RpcTest, HaltedServerNeverReplies) {
  Fixture f;
  CoreSet server_cores(&f.sim, 1);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  server->Register(Opcode::kRead, [](RpcContext context) {
    context.reply(std::make_unique<ReadResponse>());
  });
  server_cores.Halt();  // NIC up, cores dead.
  Status got = Status::kOk;
  f.rpc.Call(client->node(), server->node(), std::make_unique<ReadRequest>(),
             [&](Status status, std::unique_ptr<RpcResponse>) { got = status; },
             /*timeout=*/kMillisecond);
  f.sim.Run();
  EXPECT_EQ(got, Status::kServerDown);
}

TEST(RpcTest, RetransmitDeliversThroughRequestDrop) {
  Fixture f;
  FaultInjector injector({.seed = 3});
  f.net.SetFaultInjector(&injector);
  CoreSet server_cores(&f.sim, 1);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  server->Register(Opcode::kRead, [](RpcContext context) {
    context.reply(std::make_unique<ReadResponse>());
  });
  injector.DropNext(client->node(), server->node(), 1);  // Lose the request.
  Status got = Status::kServerDown;
  f.rpc.Call(client->node(), server->node(), std::make_unique<ReadRequest>(),
             [&](Status status, std::unique_ptr<RpcResponse>) { got = status; },
             /*timeout=*/kMillisecond);
  f.sim.Run();
  EXPECT_EQ(got, Status::kOk);
  EXPECT_GE(f.rpc.retransmissions(), 1u);
  EXPECT_EQ(f.net.injected_drops(), 1u);
}

TEST(RpcTest, DuplicateRequestExecutesHandlerOnce) {
  Fixture f;
  FaultInjector injector({.seed = 3});
  f.net.SetFaultInjector(&injector);
  CoreSet server_cores(&f.sim, 1);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  int executions = 0;
  server->Register(Opcode::kWrite, [&](RpcContext context) {
    executions++;
    context.reply(std::make_unique<WriteResponse>());
  });
  injector.DuplicateNext(client->node(), server->node(), 1);
  int callbacks = 0;
  f.rpc.Call(client->node(), server->node(), std::make_unique<WriteRequest>(),
             [&](Status status, std::unique_ptr<RpcResponse>) {
               EXPECT_EQ(status, Status::kOk);
               callbacks++;
             },
             /*timeout=*/kMillisecond);
  f.sim.Run();
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(callbacks, 1);
  EXPECT_GE(server->duplicates_suppressed() + server->responses_replayed(), 1u);
  EXPECT_EQ(f.net.injected_duplicates(), 1u);
}

// Regression (the classic at-least-once hazard): the server applies a write,
// but the *response* is lost. The client retransmits; the server must replay
// its cached response instead of applying the write a second time.
TEST(RpcTest, LostResponseDoesNotDoubleApplyWrite) {
  Fixture f;
  FaultInjector injector({.seed = 3});
  f.net.SetFaultInjector(&injector);
  CoreSet server_cores(&f.sim, 1);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  int applied = 0;
  server->Register(Opcode::kWrite, [&](RpcContext context) {
    applied++;
    context.reply(std::make_unique<WriteResponse>());
  });
  injector.DropNext(server->node(), client->node(), 1);  // Lose the response.
  Status got = Status::kServerDown;
  int callbacks = 0;
  f.rpc.Call(client->node(), server->node(), std::make_unique<WriteRequest>(),
             [&](Status status, std::unique_ptr<RpcResponse>) {
               got = status;
               callbacks++;
             },
             /*timeout=*/kMillisecond);
  f.sim.Run();
  EXPECT_EQ(applied, 1);  // Executed exactly once despite the retransmission.
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(got, Status::kOk);
  EXPECT_GE(server->responses_replayed(), 1u);
  EXPECT_GE(f.rpc.retransmissions(), 1u);
}

TEST(RpcTest, ServerToServerCallsChargeBothDispatches) {
  Fixture f;
  CoreSet a_cores(&f.sim, 1);
  CoreSet b_cores(&f.sim, 1);
  RpcEndpoint* a = f.rpc.CreateEndpoint(&a_cores);
  RpcEndpoint* b = f.rpc.CreateEndpoint(&b_cores);
  b->Register(Opcode::kRead,
              [](RpcContext context) { context.reply(std::make_unique<ReadResponse>()); });
  bool done = false;
  f.rpc.Call(a->node(), b->node(), std::make_unique<ReadRequest>(),
             [&](Status, std::unique_ptr<RpcResponse>) { done = true; });
  f.sim.Run();
  EXPECT_TRUE(done);
  // Caller's dispatch polled the response off its NIC.
  EXPECT_GE(a_cores.total_dispatch_busy(), f.costs.dispatch_per_rpc_ns);
  EXPECT_GE(b_cores.total_dispatch_busy(),
            f.costs.dispatch_per_rpc_ns + f.costs.dispatch_tx_ns);
}

// Regression: the dedup cache must stay bounded under sustained traffic.
// Completed entries expire through the completion fifo once past the
// retention horizon, so the cache holds at most one retention window's worth
// of calls regardless of how long the workload runs.
TEST(RpcTest, DedupCacheStaysBoundedUnderSustainedTraffic) {
  Fixture f;
  CoreSet server_cores(&f.sim, 1);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  server->Register(Opcode::kWrite, [](RpcContext context) {
    context.reply(std::make_unique<WriteResponse>());
  });
  // One write per millisecond across ten retention horizons.
  const Tick spacing = kMillisecond;
  const int calls = static_cast<int>(10 * f.costs.rpc_dedup_retention_ns / spacing);
  int completed = 0;
  for (int i = 0; i < calls; i++) {
    f.sim.At(static_cast<Tick>(i) * spacing, [&] {
      f.rpc.Call(client->node(), server->node(), std::make_unique<WriteRequest>(),
                 [&](Status status, std::unique_ptr<RpcResponse>) {
                   EXPECT_EQ(status, Status::kOk);
                   completed++;
                 });
    });
  }
  f.sim.Run();
  EXPECT_EQ(completed, calls);
  // At most one retention window of entries (plus the handful whose expiry
  // the final prune had not reached yet), not all `calls` of them.
  const size_t window = static_cast<size_t>(f.costs.rpc_dedup_retention_ns / spacing);
  EXPECT_LE(server->dedup_size(), window + 8);
  EXPECT_LT(server->dedup_size(), static_cast<size_t>(calls) / 2);
}

// Regression: an execution wiped by a crash leaves a dedup entry that never
// completes (no reply, so no completion-fifo record). The creation-time
// fifo must expire it after the retention horizon — without that, every
// crash leaks entries for the lifetime of the process.
TEST(RpcTest, DedupCacheExpiresCrashOrphanedEntries) {
  Fixture f;
  CoreSet server_cores(&f.sim, 1);
  RpcEndpoint* server = f.rpc.CreateEndpoint(&server_cores);
  RpcEndpoint* client = f.rpc.CreateEndpoint(nullptr);
  // The handler swallows the request: models work in flight when the server
  // dies (the reply never happens).
  server->Register(Opcode::kWrite, [](RpcContext) {});
  server->Register(Opcode::kRead, [](RpcContext context) {
    context.reply(std::make_unique<ReadResponse>());
  });
  f.rpc.Call(client->node(), server->node(), std::make_unique<WriteRequest>(),
             [](Status, std::unique_ptr<RpcResponse>) {}, /*timeout=*/kMillisecond);
  f.sim.Run();
  EXPECT_EQ(server->dedup_size(), 1u);  // Undone entry parked in the cache.
  // Crash-restart bumps the core epoch: the entry is now orphaned, not
  // in flight.
  server_cores.Halt();
  server_cores.Restart();
  // Well past the retention horizon, any delivery triggers the prune.
  f.sim.After(2 * f.costs.rpc_dedup_retention_ns, [&] {
    f.rpc.Call(client->node(), server->node(), std::make_unique<ReadRequest>(),
               [](Status status, std::unique_ptr<RpcResponse>) {
                 EXPECT_EQ(status, Status::kOk);
               });
  });
  f.sim.Run();
  EXPECT_LE(server->dedup_size(), 1u);  // Orphan expired; only the fresh call remains.
}

}  // namespace
}  // namespace rocksteady
