// Unit tests for the hash table, including the bucket-range scan primitive
// Rocksteady's partitioned Pulls rely on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/hash.h"
#include "src/hashtable/hash_table.h"

namespace rocksteady {
namespace {

LogRef Ref(uint32_t segment, uint32_t offset) { return LogRef(segment, offset); }

TEST(HashTableTest, InsertLookupRemove) {
  HashTable table(8);
  EXPECT_TRUE(table.Insert(42, Ref(1, 100)));
  EXPECT_TRUE(table.Lookup(42) == Ref(1, 100));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.Remove(42));
  EXPECT_FALSE(table.Lookup(42).valid());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.Remove(42));
}

TEST(HashTableTest, InsertReplacesExisting) {
  HashTable table(8);
  EXPECT_TRUE(table.Insert(42, Ref(1, 100)));
  EXPECT_FALSE(table.Insert(42, Ref(2, 200)));  // Replace, not new.
  EXPECT_TRUE(table.Lookup(42) == Ref(2, 200));
  EXPECT_EQ(table.size(), 1u);
}

TEST(HashTableTest, MissingKeyReturnsInvalid) {
  HashTable table(8);
  EXPECT_FALSE(table.Lookup(12345).valid());
}

TEST(HashTableTest, HandlesBucketOverflowChains) {
  // Put 100 entries into a 2-bucket table: forces long overflow chains.
  HashTable table(1);
  for (uint64_t i = 0; i < 100; i++) {
    EXPECT_TRUE(table.Insert(i, Ref(1, static_cast<uint32_t>(i))));
  }
  EXPECT_EQ(table.size(), 100u);
  EXPECT_GT(table.MaxChainLength(), 1u);
  for (uint64_t i = 0; i < 100; i++) {
    ASSERT_TRUE(table.Lookup(i).valid()) << i;
    EXPECT_EQ(table.Lookup(i).offset(), i);
  }
  // Remove half; the rest must survive the slot shuffling.
  for (uint64_t i = 0; i < 100; i += 2) {
    EXPECT_TRUE(table.Remove(i));
  }
  for (uint64_t i = 0; i < 100; i++) {
    EXPECT_EQ(table.Lookup(i).valid(), i % 2 == 1) << i;
  }
}

TEST(HashTableTest, ReplaceIsConditional) {
  HashTable table(8);
  table.Insert(7, Ref(1, 10));
  EXPECT_FALSE(table.Replace(7, Ref(9, 9), Ref(2, 20)));  // Wrong expected.
  EXPECT_TRUE(table.Lookup(7) == Ref(1, 10));
  EXPECT_TRUE(table.Replace(7, Ref(1, 10), Ref(2, 20)));
  EXPECT_TRUE(table.Lookup(7) == Ref(2, 20));
  EXPECT_FALSE(table.Replace(99, Ref(1, 1), Ref(2, 2)));  // Absent key.
}

TEST(HashTableTest, BucketOfUsesTopBits) {
  HashTable table(4);  // 16 buckets.
  EXPECT_EQ(table.BucketOf(0), 0u);
  EXPECT_EQ(table.BucketOf(~0ull), 15u);
  EXPECT_EQ(table.BucketOf(1ull << 60), 1u);
  // Contiguous hash ranges map to contiguous bucket ranges.
  EXPECT_LE(table.BucketOf(0x1000000000000000ull), table.BucketOf(0x2000000000000000ull));
}

TEST(HashTableTest, ScanVisitsExactlyRangeOnce) {
  HashTable table(6);  // 64 buckets.
  constexpr uint64_t kEntries = 2'000;
  for (uint64_t i = 0; i < kEntries; i++) {
    table.Insert(Mix64(i), Ref(1, static_cast<uint32_t>(i)));
  }
  // Scan the two halves separately; union must be everything, no overlap.
  std::set<KeyHash> first_half;
  std::set<KeyHash> second_half;
  size_t cursor = table.ScanBuckets(
      32, 0, [&](KeyHash h, LogRef) { first_half.insert(h); }, [] { return true; });
  EXPECT_EQ(cursor, 32u);
  cursor = table.ScanBuckets(
      64, 32, [&](KeyHash h, LogRef) { second_half.insert(h); }, [] { return true; });
  EXPECT_EQ(cursor, 64u);
  EXPECT_EQ(first_half.size() + second_half.size(), kEntries);
  for (KeyHash h : first_half) {
    EXPECT_EQ(second_half.count(h), 0u);
    EXPECT_LT(table.BucketOf(h), 32u);
  }
}

TEST(HashTableTest, ScanPausesAtBucketBoundary) {
  HashTable table(4);
  for (uint64_t i = 0; i < 500; i++) {
    table.Insert(Mix64(i), Ref(1, static_cast<uint32_t>(i)));
  }
  // Budget-limited scan: stop after each bucket once >= 50 entries seen.
  std::set<KeyHash> seen;
  size_t cursor = 0;
  int scans = 0;
  while (cursor < 16) {
    size_t batch = 0;
    cursor = table.ScanBuckets(
        16, cursor, [&](KeyHash h, LogRef) { seen.insert(h); batch++; },
        [&] { return batch < 50; });
    scans++;
    ASSERT_LT(scans, 100);
  }
  EXPECT_EQ(seen.size(), 500u);
  EXPECT_GT(scans, 1);  // The budget actually paused the scan.
}

TEST(HashTableTest, ScanOfEmptyRange) {
  HashTable table(4);
  int visited = 0;
  const size_t cursor = table.ScanBuckets(
      8, 0, [&](KeyHash, LogRef) { visited++; }, [] { return true; });
  EXPECT_EQ(cursor, 8u);
  EXPECT_EQ(visited, 0);
}

TEST(HashTableTest, RemoveIfFiltersCorrectly) {
  HashTable table(8);
  for (uint64_t i = 0; i < 100; i++) {
    table.Insert(i, Ref(static_cast<uint32_t>(i % 3 + 1), 0));
  }
  const size_t removed = table.RemoveIf([](KeyHash, LogRef ref) { return ref.segment_id() == 2; });
  EXPECT_EQ(removed, 33u);
  EXPECT_EQ(table.size(), 67u);
  for (uint64_t i = 0; i < 100; i++) {
    EXPECT_EQ(table.Lookup(i).valid(), i % 3 != 1);
  }
}

TEST(HashTableTest, ForEachSeesAll) {
  HashTable table(10);
  for (uint64_t i = 0; i < 5'000; i++) {
    table.Insert(Mix64(i + 1), Ref(1, static_cast<uint32_t>(i)));
  }
  size_t count = 0;
  table.ForEach([&](KeyHash, LogRef) { count++; });
  EXPECT_EQ(count, 5'000u);
}

TEST(HashTableTest, LargeScaleInsertLookup) {
  HashTable table(16);
  constexpr uint64_t kEntries = 100'000;
  for (uint64_t i = 0; i < kEntries; i++) {
    table.Insert(Mix64(i), Ref(1 + static_cast<uint32_t>(i >> 16),
                               static_cast<uint32_t>(i & 0xFFFF)));
  }
  EXPECT_EQ(table.size(), kEntries);
  for (uint64_t i = 0; i < kEntries; i += 97) {
    const LogRef ref = table.Lookup(Mix64(i));
    ASSERT_TRUE(ref.valid());
    EXPECT_EQ(ref.offset(), i & 0xFFFF);
  }
}

// Property-style sweep: across table sizes, scans partitioned into P pieces
// cover everything exactly once — the invariant Rocksteady's parallel Pull
// partitioning depends on.
class HashTablePartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(HashTablePartitionTest, PartitionedScansCoverExactly) {
  const int partitions = GetParam();
  HashTable table(8);  // 256 buckets.
  constexpr uint64_t kEntries = 3'000;
  for (uint64_t i = 0; i < kEntries; i++) {
    table.Insert(Mix64(i * 31 + 7), Ref(1, static_cast<uint32_t>(i)));
  }
  std::set<KeyHash> seen;
  const size_t buckets = table.num_buckets();
  for (int p = 0; p < partitions; p++) {
    const size_t begin = buckets * p / partitions;
    const size_t end = buckets * (p + 1) / partitions;
    table.ScanBuckets(
        end, begin,
        [&](KeyHash h, LogRef) {
          EXPECT_TRUE(seen.insert(h).second) << "entry visited twice";
        },
        [] { return true; });
  }
  EXPECT_EQ(seen.size(), kEntries);
}

INSTANTIATE_TEST_SUITE_P(Partitions, HashTablePartitionTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 64));

}  // namespace
}  // namespace rocksteady
