// Unit tests for the discrete-event kernel: event ordering, the
// dispatch/worker core model (priorities, non-preemption, crash semantics),
// and the bandwidth-limited network.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/core_set.h"
#include "src/sim/cost_model.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace rocksteady {
namespace {

// -------------------------------------------------------------- Simulator.

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(300, [&] { order.push_back(3); });
  sim.At(100, [&] { order.push_back(1); });
  sim.At(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
}

TEST(SimulatorTest, EqualTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.At(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] {
    fired++;
    sim.After(5, [&] { fired++; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 15u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { fired++; });
  sim.At(20, [&] { fired++; });
  sim.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, DeterministicRngPerSeed) {
  Simulator a(99);
  Simulator b(99);
  EXPECT_EQ(a.rng().Next(), b.rng().Next());
}

#if ROCKSTEADY_DCHECK_ENABLED

TEST(SimulatorDeathTest, SchedulingInThePastIsFatal) {
  Simulator sim;
  sim.At(100, [] {});
  sim.RunUntil(100);
  EXPECT_DEATH(sim.At(50, [] {}), "t >= now_");
}

TEST(SimulatorDeathTest, RunUntilPastIsFatal) {
  Simulator sim;
  sim.RunUntil(100);
  EXPECT_DEATH(sim.RunUntil(50), "t >= now_");
}

#else  // !ROCKSTEADY_DCHECK_ENABLED

TEST(SimulatorTest, SchedulingInThePastClampsToNow) {
  // Release builds clamp instead of aborting: the event runs at now(), and
  // critically it runs *after* work already queued for the current tick —
  // it must not jump the FIFO order.
  Simulator sim;
  std::vector<int> order;
  sim.At(100, [&] {
    sim.At(100, [&] { order.push_back(1); });
    sim.At(40, [&] { order.push_back(2); });  // Past: clamped to 100.
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, RunUntilPastIsNoOp) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { fired++; });
  sim.RunUntil(100);
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_EQ(sim.RunUntil(50), 0u);  // Clock never rewinds.
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_EQ(fired, 1);
}

#endif  // ROCKSTEADY_DCHECK_ENABLED

TEST(SimulatorTest, TraceHashMatchesForIdenticalRuns) {
  auto run = [] {
    Simulator sim(7);
    for (int i = 0; i < 50; i++) {
      sim.After(sim.rng().Uniform(1'000), [&sim] {
        if (sim.rng().Uniform(4) == 0) {
          sim.After(10, [] {});
        }
      });
    }
    sim.Run();
    return sim.trace_hash();
  };
  const uint64_t first = run();
  EXPECT_EQ(first, run());
}

TEST(SimulatorTest, TraceHashDetectsDivergence) {
  Simulator a;
  Simulator b;
  a.At(10, [] {});
  b.At(11, [] {});  // Same structure, different timing.
  a.Run();
  b.Run();
  EXPECT_NE(a.trace_hash(), b.trace_hash());
}

// ---------------------------------------------------------------- CoreSet.

TEST(CoreSetTest, DispatchSerializes) {
  Simulator sim;
  CoreSet cores(&sim, 2);
  std::vector<Tick> times;
  cores.EnqueueDispatch(100, [&] { times.push_back(sim.now()); });
  cores.EnqueueDispatch(100, [&] { times.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 100u);
  EXPECT_EQ(times[1], 200u);  // Second waits for the first.
}

TEST(CoreSetTest, IdleWorkerRunsImmediately) {
  Simulator sim;
  CoreSet cores(&sim, 2);
  Tick done_at = 0;
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{500}; },
                       [&] { done_at = sim.now(); }});
  sim.Run();
  EXPECT_EQ(done_at, 500u);
}

TEST(CoreSetTest, TasksQueueWhenWorkersBusy) {
  Simulator sim;
  CoreSet cores(&sim, 1);
  std::vector<Tick> completions;
  for (int i = 0; i < 3; i++) {
    cores.EnqueueWorker({Priority::kClient, [] { return Tick{100}; },
                         [&] { completions.push_back(sim.now()); }});
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<Tick>{100, 200, 300}));
}

TEST(CoreSetTest, StrictPriorityOrdering) {
  Simulator sim;
  CoreSet cores(&sim, 1);
  std::vector<std::string> order;
  // Fill the only worker, then queue low before high; high must run first.
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{100}; }, {}});
  cores.EnqueueWorker(
      {Priority::kMigration, [] { return Tick{10}; }, [&] { order.push_back("migration"); }});
  cores.EnqueueWorker(
      {Priority::kClient, [] { return Tick{10}; }, [&] { order.push_back("client"); }});
  cores.EnqueueWorker({Priority::kPriorityPull, [] { return Tick{10}; },
                       [&] { order.push_back("priority_pull"); }});
  sim.Run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"priority_pull", "client", "migration"}));
}

TEST(CoreSetTest, NonPreemptive) {
  // A long low-priority task started before a high-priority arrival is not
  // interrupted (§3.1: running tasks are never preempted).
  Simulator sim;
  CoreSet cores(&sim, 1);
  std::vector<std::string> order;
  cores.EnqueueWorker(
      {Priority::kMigration, [] { return Tick{10'000}; }, [&] { order.push_back("long_low"); }});
  sim.At(100, [&] {
    cores.EnqueueWorker(
        {Priority::kClient, [] { return Tick{10}; }, [&] { order.push_back("high"); }});
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"long_low", "high"}));
}

TEST(CoreSetTest, ParallelWorkers) {
  Simulator sim;
  CoreSet cores(&sim, 4);
  int done = 0;
  for (int i = 0; i < 4; i++) {
    cores.EnqueueWorker({Priority::kClient, [] { return Tick{100}; }, [&] { done++; }});
  }
  sim.Run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.now(), 100u);  // All four ran concurrently.
}

TEST(CoreSetTest, WorkRunsAtStartTime) {
  // The work() closure runs when the task is picked up, not at completion.
  Simulator sim;
  CoreSet cores(&sim, 1);
  Tick work_ran_at = ~0ull;
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{100}; }, {}});
  cores.EnqueueWorker({Priority::kClient,
                       [&] {
                         work_ran_at = sim.now();
                         return Tick{50};
                       },
                       {}});
  sim.Run();
  EXPECT_EQ(work_ran_at, 100u);
}

TEST(CoreSetTest, UtilizationAccounting) {
  Simulator sim;
  CoreSet cores(&sim, 2);
  UtilizationTimeline util(1'000, 4);
  cores.set_worker_util(&util);
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{1'000}; }, {}});
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{500}; }, {}});
  sim.Run();
  EXPECT_DOUBLE_EQ(util.ActiveCores(0), 1.5);
  EXPECT_EQ(cores.total_worker_busy(), 1'500u);
}

TEST(CoreSetTest, HaltDropsQueuedWork) {
  Simulator sim;
  CoreSet cores(&sim, 1);
  int done = 0;
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{100}; }, [&] { done++; }});
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{100}; }, [&] { done++; }});
  sim.At(50, [&] { cores.Halt(); });
  sim.Run();
  // First task was in flight at Halt(): its completion is stale; second was
  // queued: dropped.
  EXPECT_EQ(done, 0);
}

TEST(CoreSetTest, RestartAcceptsNewWork) {
  Simulator sim;
  CoreSet cores(&sim, 1);
  int done = 0;
  cores.Halt();
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{10}; }, [&] { done++; }});
  sim.Run();
  EXPECT_EQ(done, 0);
  cores.Restart();
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{10}; }, [&] { done++; }});
  sim.Run();
  EXPECT_EQ(done, 1);
}

// ---------------------------------------------------------------- Network.

TEST(NetworkTest, DeliveryIncludesSerializationAndPropagation) {
  Simulator sim;
  CostModel costs;
  costs.net_bandwidth_bps = 1e9;  // 1 GB/s for round numbers.
  costs.net_propagation_ns = 1'000;
  costs.net_per_message_ns = 0;
  Network net(&sim, &costs);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  Tick delivered_at = 0;
  net.Send(a, b, 1'000, [&] { delivered_at = sim.now(); });  // 1 KB at 1 GB/s = 1 us.
  sim.Run();
  EXPECT_EQ(delivered_at, 2'000u);  // 1 us serialization + 1 us propagation.
}

TEST(NetworkTest, EgressLinkSerializesMessages) {
  Simulator sim;
  CostModel costs;
  costs.net_bandwidth_bps = 1e9;
  costs.net_propagation_ns = 0;
  costs.net_per_message_ns = 0;
  Network net(&sim, &costs);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  std::vector<Tick> deliveries;
  for (int i = 0; i < 3; i++) {
    net.Send(a, b, 1'000, [&] { deliveries.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(deliveries, (std::vector<Tick>{1'000, 2'000, 3'000}));
}

TEST(NetworkTest, DistinctSourcesDontShareEgress) {
  Simulator sim;
  CostModel costs;
  costs.net_bandwidth_bps = 1e9;
  costs.net_propagation_ns = 0;
  costs.net_per_message_ns = 0;
  Network net(&sim, &costs);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const NodeId c = net.AddNode();
  std::vector<Tick> deliveries;
  net.Send(a, c, 1'000, [&] { deliveries.push_back(sim.now()); });
  net.Send(b, c, 1'000, [&] { deliveries.push_back(sim.now()); });
  sim.Run();
  EXPECT_EQ(deliveries, (std::vector<Tick>{1'000, 1'000}));
}

TEST(NetworkTest, DownNodeDropsTraffic) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  int delivered = 0;
  net.SetNodeDown(b, true);
  net.Send(a, b, 100, [&] { delivered++; });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  net.SetNodeDown(b, false);
  net.Send(a, b, 100, [&] { delivered++; });
  sim.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, InFlightMessagesToCrashedNodeDropped) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  int delivered = 0;
  net.Send(a, b, 1'000'000, [&] { delivered++; });  // In flight for a while.
  sim.At(1, [&] { net.SetNodeDown(b, true); });
  sim.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, ByteAccounting) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.Send(a, b, 100, [] {});
  net.Send(b, a, 250, [] {});
  sim.Run();
  EXPECT_EQ(net.total_bytes_sent(), 350u);
  EXPECT_EQ(net.total_messages(), 2u);
}

// -------------------------------------------------------------- CostModel.

TEST(CostModelTest, SerializationScalesWithBytes) {
  CostModel costs;
  EXPECT_EQ(costs.Serialization(0), 0u);
  // 5 GB/s: 5,000 bytes take 1 us.
  EXPECT_EQ(costs.Serialization(5'000), 1'000u);
}

TEST(CostModelTest, ReplayCostExceedsPullCost) {
  // Figure 15: target replay is 1.8-2.4x more expensive than source pull
  // processing for small records.
  CostModel costs;
  const size_t records = 100;
  const size_t bytes = records * 128;
  const double ratio = static_cast<double>(costs.ReplayCost(records, bytes)) /
                       static_cast<double>(costs.PullCost(records, bytes));
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);
}

TEST(CostModelTest, SourceSideScalabilityMatchesPaper) {
  // 16 cores' worth of pull processing should move roughly 5.7 GB/s of
  // 128 B records (Figure 15), and replay about 3 GB/s.
  CostModel costs;
  const size_t records_per_batch = 145;  // ~20 KB batches, 128 B payloads.
  const size_t batch_bytes = records_per_batch * 138;
  const double pull_ns = static_cast<double>(costs.PullCost(records_per_batch, batch_bytes));
  const double pull_rate_16 = 16.0 * batch_bytes / pull_ns;  // GB/s.
  EXPECT_GT(pull_rate_16, 4.5);
  EXPECT_LT(pull_rate_16, 7.5);
  const double replay_ns = static_cast<double>(costs.ReplayCost(records_per_batch, batch_bytes));
  const double replay_rate_16 = 16.0 * batch_bytes / replay_ns;
  EXPECT_GT(replay_rate_16, 2.2);
  EXPECT_LT(replay_rate_16, 4.0);
}


TEST(CoreSetTest, HeldTaskOccupiesWorkerUntilFinished) {
  Simulator sim;
  CoreSet cores(&sim, 1);
  std::vector<std::string> order;
  std::function<void(Tick)> finish_held;
  cores.EnqueueWorkerHeld({Priority::kClient, [&](std::function<void(Tick)> finish) {
                             finish_held = std::move(finish);
                           }});
  // Another task queues behind the held worker.
  cores.EnqueueWorker(
      {Priority::kClient, [] { return Tick{10}; }, [&] { order.push_back("queued"); }});
  sim.Run();
  EXPECT_TRUE(order.empty());  // Still held.
  // Release with 100 ns of trailing work.
  sim.After(0, [&] { finish_held(100); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"queued"}));
}

TEST(CoreSetTest, HeldTaskChargesBusyTime) {
  Simulator sim;
  CoreSet cores(&sim, 1);
  std::function<void(Tick)> finish_held;
  cores.EnqueueWorkerHeld({Priority::kClient, [&](std::function<void(Tick)> finish) {
                             finish_held = std::move(finish);
                           }});
  sim.At(500, [&] { finish_held(250); });
  sim.Run();
  EXPECT_EQ(cores.total_worker_busy(), 750u);  // Held 0..500 plus 250 extra.
}

TEST(CoreSetTest, HaltCancelsHeldTask) {
  Simulator sim;
  CoreSet cores(&sim, 1);
  std::function<void(Tick)> finish_held;
  cores.EnqueueWorkerHeld({Priority::kClient, [&](std::function<void(Tick)> finish) {
                             finish_held = std::move(finish);
                           }});
  cores.Halt();
  sim.At(10, [&] { finish_held(0); });  // Stale epoch: must be ignored.
  sim.Run();
  cores.Restart();
  int ran = 0;
  cores.EnqueueWorker({Priority::kClient, [] { return Tick{1}; }, [&] { ran++; }});
  sim.Run();
  EXPECT_EQ(ran, 1);
}

TEST(NetworkTest, SmallMessagesBypassBulkQueue) {
  // A tiny response must not wait behind a large bulk transfer on the same
  // egress (packet interleaving, §2.4's transport-integration point).
  Simulator sim;
  CostModel costs;
  costs.net_bandwidth_bps = 1e9;
  costs.net_propagation_ns = 0;
  costs.net_per_message_ns = 0;
  Network net(&sim, &costs);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  Tick bulk_at = 0;
  Tick small_at = 0;
  net.Send(a, b, 1'000'000, [&] { bulk_at = sim.now(); });  // 1 ms of serialization.
  net.Send(a, b, 100, [&] { small_at = sim.now(); });
  sim.Run();
  EXPECT_LT(small_at, 10'000u);     // Did not wait for the bulk message.
  EXPECT_GE(bulk_at, 1'000'000u);   // Bulk paid its full serialization.
}

TEST(NetworkTest, BulkMessagesStillQueueTogether) {
  Simulator sim;
  CostModel costs;
  costs.net_bandwidth_bps = 1e9;
  costs.net_propagation_ns = 0;
  costs.net_per_message_ns = 0;
  Network net(&sim, &costs);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  std::vector<Tick> deliveries;
  for (int i = 0; i < 3; i++) {
    net.Send(a, b, 100'000, [&] { deliveries.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(deliveries, (std::vector<Tick>{100'000, 200'000, 300'000}));
}

TEST(CostModelTest, DilationPreservesUtilizationRatios) {
  CostModel base;
  CostModel dilated = base;
  dilated.Dilate(10.0);
  EXPECT_EQ(dilated.dispatch_per_rpc_ns, base.dispatch_per_rpc_ns * 10);
  EXPECT_DOUBLE_EQ(dilated.net_bandwidth_bps, base.net_bandwidth_bps / 10.0);
  // Cost x rate products (utilization) are invariant.
  EXPECT_EQ(dilated.ReadCost(100), base.ReadCost(100) * 10);
  EXPECT_EQ(dilated.Serialization(5'000), base.Serialization(5'000) * 10);
}

}  // namespace
}  // namespace rocksteady
