// Fixture: unchecked-status rule.
//
// A Status-returning call whose result hits `;` unused is a swallowed
// failure. Deliberate discards are visible as `(void)Call()` or carry a
// `lint:allow-unchecked: <reason>` comment.

namespace rocksteady {

enum class Status { kOk, kError };

Status Flush();
Status Append(int value);

class WriteAheadLog {
 public:
  Status Sync();
};

Status Checkpoint() {
  Flush();  // expect-finding:unchecked-status

  WriteAheadLog log;
  log.Sync();  // expect-finding:unchecked-status

  (void)Flush();  // Visible deliberate discard: silent.

  const Status kept = Append(1);
  if (kept == Status::kError) {
    return kept;
  }

  // lint:allow-unchecked: fixture negative case — fire-and-forget by design
  Append(2);

  return Flush();  // Result flows to the caller: silent.
}

}  // namespace rocksteady
