// Fixture: lane-shared instance members enter the shard-state inventory.
//
// An instance data member annotated ROCKSTEADY_SHARED_GUARDED is part of
// the sharded-execution contract (mailboxes, safe horizons, per-lane
// shards): it must appear in shard_state.json with kind "member" and must
// NOT be flagged — the annotation is the contract. Plain members stay out
// of the inventory entirely. run_fixture_tests.py's InventoryTests assert
// the inventory side; the expect-finding machinery asserts the silence.
#include "src/common/annotations.h"

#include <cstdint>
#include <vector>

namespace rocksteady {

class LaneMailbox {
 public:
  void Post(uint64_t value) { entries_.push_back(value); }

  static int g_posts;  // expect-finding:shard-unannotated

 private:
  // Written by the source lane, drained by the destination lane, with a
  // barrier between — the canonical lane-shared member shape.
  ROCKSTEADY_SHARED_GUARDED("src writes in phase A, dst drains in phase C")
  std::vector<uint64_t> entries_;

  // Per-instance scratch: not shared state, not inventoried.
  uint64_t cursor_ = 0;
};

}  // namespace rocksteady
