// Fixture: shard-safety annotation rule (shard-unannotated).
//
// Every mutable static-storage declaration must carry an annotation from
// src/common/annotations.h; const/constexpr data and function signatures
// must stay silent. `// expect-finding:<rule>` marks the exact line the
// analyzer must flag; every unmarked construct must NOT be flagged.
#include "src/common/annotations.h"

namespace rocksteady {

int g_unannotated_counter = 0;  // expect-finding:shard-unannotated

ROCKSTEADY_SHARD_LOCAL int g_per_shard_counter = 0;

ROCKSTEADY_SHARED_GUARDED("written once at startup, read-only afterwards")
int g_shared_config = 0;

const int kLimit = 8;
constexpr double kRatio = 0.5;

int Bump(int step) {
  static int calls = 0;  // expect-finding:shard-unannotated
  static const int kStride = 2;
  return calls += step * kStride;
}

int Drain(int step) {
  ROCKSTEADY_SHARD_LOCAL static int drained = 0;
  return drained += step;
}

class Counters {
 public:
  static int g_total;  // expect-finding:shard-unannotated
  static constexpr int kMax = 16;
  static int Snapshot(int scale);

  int per_instance_ = 0;
};

// Free-function signatures (and their parameters) are not state sites.
void Configure(int knob, double ratio);

int Twice(int value) { return value + value; }

}  // namespace rocksteady
