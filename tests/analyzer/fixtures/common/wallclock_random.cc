// Fixture: base determinism rule families (lint_determinism.py).
//
// Covers wall-clock, libc-random, std-random, unseeded-draw, threads and
// pointer-keyed-container, plus the lint:allow-nondeterminism escape. None
// of this is meant to compile together sensibly — it only needs to lex.
#include <chrono>
#include <ctime>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_set>

namespace rocksteady {

struct Widget {};

struct Random {
  unsigned long long Next();
};

void Work();

void NondeterministicSoup() {
  struct timeval {
    long tv_sec;
    long tv_usec;
  } tv;
  gettimeofday(&tv, nullptr);  // expect-finding:wall-clock
  time(nullptr);  // expect-finding:wall-clock
  auto t0 = std::chrono::steady_clock::now();  // expect-finding:wall-clock
  (void)t0;

  srand(42);  // expect-finding:libc-random
  int r = rand();  // expect-finding:libc-random
  long q = random();  // expect-finding:libc-random
  (void)r;
  (void)q;

  std::random_device rd;  // expect-finding:std-random
  std::mt19937 gen(rd());  // expect-finding:std-random
  (void)gen;

  double d = drand48();  // expect-finding:unseeded-draw
  std::uniform_int_distribution<int> dist(0, 9);  // expect-finding:unseeded-draw
  auto v = Random().Next();  // expect-finding:unseeded-draw
  (void)d;
  (void)dist;
  (void)v;

  std::thread worker(Work);  // expect-finding:threads
  std::mutex mu;  // expect-finding:threads
  pthread_mutex_t raw_lock;
  pthread_mutex_init(&raw_lock, nullptr);  // expect-finding:threads

  std::map<Widget*, int> by_address;  // expect-finding:pointer-keyed-container
  std::unordered_set<Widget*> seen;  // expect-finding:pointer-keyed-container
  (void)by_address;
  (void)seen;

  int ok = rand();  // lint:allow-nondeterminism: fixture negative case
  (void)ok;
}

}  // namespace rocksteady
