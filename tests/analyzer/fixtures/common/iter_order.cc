// Fixture: iteration-order rules (iter-order-escape, flatmap-iteration).
//
// Range-for over an unordered container is fine until its body feeds the
// event schedule (Send/At/After/...) or appends to an ordered container —
// then the unspecified iteration order leaks into the trace. FlatMap64 is
// iteration-free by design, so ANY iteration over it is a finding.
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rocksteady {

template <typename V>
class FlatMap64 {};

class Scheduler {
 public:
  void Send(int node, int message);
  void After(int delay);
};

class Tracker {
 public:
  int SumCounts() {
    int total = 0;
    // No escape: a sum is order-independent, so this must stay silent.
    for (const auto& [id, count] : counts_) {
      total += count;
    }
    return total;
  }

  void BroadcastCounts() {
    for (const auto& [id, count] : counts_) {  // expect-finding:iter-order-escape
      scheduler_.Send(id, count);
    }
  }

  void BroadcastSuppressed() {
    // lint:allow-iter-order: fixture negative case — order cannot escape here
    for (const auto& [id, count] : counts_) {
      scheduler_.Send(id, count);
    }
  }

  void BroadcastOrdered() {
    // std::map iterates in key order: deterministic, must stay silent.
    for (const auto& [id, count] : ordered_counts_) {
      scheduler_.Send(id, count);
    }
  }

  void CollectMembers() {
    for (int member : members_) {  // expect-finding:iter-order-escape
      order_.push_back(member);
    }
  }

  int SumSlots() {
    int total = 0;
    for (const auto& slot : slots_) {  // expect-finding:flatmap-iteration
      total += 1;
    }
    return total;
  }

 private:
  std::unordered_map<int, int> counts_;
  std::map<int, int> ordered_counts_;
  std::unordered_set<int> members_;
  std::vector<int> order_;
  FlatMap64<int> slots_;
  Scheduler scheduler_;
};

}  // namespace rocksteady
