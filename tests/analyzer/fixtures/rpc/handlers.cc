// Fixture: handler-idempotency rule.
//
// The per-call_id dedup cache expires, so at-least-once delivery can
// re-execute any handler. A registration must either carry
// ROCKSTEADY_IDEMPOTENT("why re-execution is safe") or guard itself with an
// explicit dedup check.
#include "src/common/annotations.h"

namespace rocksteady {

enum class Opcode { kEcho, kStore, kEvict };

struct RpcContext {};

class Endpoint {
 public:
  template <typename Fn>
  void Register(Opcode opcode, Fn handler);
};

class DedupCache {
 public:
  bool Seen(unsigned long long call_id);
};

void InstallHandlers(Endpoint* endpoint, DedupCache* cache) {
  endpoint->Register(Opcode::kEcho, [](RpcContext) {});  // expect-finding:handler-idempotency

  endpoint->Register(Opcode::kStore,
                     ROCKSTEADY_IDEMPOTENT("re-storing the same value is a no-op")
                     [](RpcContext) {});

  endpoint->Register(Opcode::kEvict, [dedup_cache = cache](RpcContext) {
    if (dedup_cache->Seen(7)) {
      return;
    }
  });
}

}  // namespace rocksteady
