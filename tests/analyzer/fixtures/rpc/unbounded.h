// Fixture: unbounded-member rule (lint_determinism.py).
//
// Growable containers declared as members in request-path headers must say
// how they are bounded within the four preceding lines (or on the line).
// The expectation marker for the positive case sits five lines above the
// member (outside the evidence window) because the rule name itself would
// otherwise read as bound evidence.
#pragma once

#include <deque>
#include <unordered_map>

namespace rocksteady {

struct Call {};

class SessionTable {
 public:
  void Tick();

 private:
  // expect-finding[+5]:unbounded-member
  //
  //
  //
  //
  std::deque<Call> pending_;

  // Entries are erased when the owning session closes (fixture negative case).
  std::unordered_map<unsigned long long, Call> by_id_;

  std::deque<Call> replay_;  // lint:bounded — replay window holds at most one epoch
};

}  // namespace rocksteady
