// Fixture: hot-path-churn rule (lint_determinism.py).
//
// This file sits under a path containing "rpc", so the hot-path allocator
// rules apply: std::function heap-boxes captures and make_shared allocates
// a control block, both banned on the per-event path. Cold code opts out
// with lint:allow-churn.
#include <functional>
#include <memory>

namespace rocksteady {

struct Event {};

void Dispatch() {
  std::function<void()> callback;  // expect-finding:hot-path-churn
  auto event = std::make_shared<Event>();  // expect-finding:hot-path-churn
  (void)callback;
  (void)event;
}

void RegisterColdPath() {
  std::function<void()> saved;  // lint:allow-churn — one-time registration (fixture negative case)
  (void)saved;
}

}  // namespace rocksteady
