// Fixture: magic-threshold rule (lint_determinism.py).
//
// Decision code under src/rebalance/*.cc must not compare against numeric
// literals other than 0 and 1; thresholds must be named constexpr constants.

namespace rocksteady {

constexpr double kSplitLoadFraction = 0.6;
constexpr int kMaxTablets = 64;

int PlanSplits(double load, int tablets, int backlog) {
  if (load > 0.8) {  // expect-finding:magic-threshold
    return tablets + 1;
  }
  if (backlog >= 100) {  // expect-finding:magic-threshold
    return tablets + 1;
  }
  if (load > kSplitLoadFraction && tablets < kMaxTablets) {
    return tablets + 1;
  }
  if (tablets == 0) {
    return 1;
  }
  return tablets > 1 ? tablets : 1;
}

}  // namespace rocksteady
