#!/usr/bin/env python3
"""Fixture tests for the static-analysis stack (tools/analyze.py).

Each fixture under tests/analyzer/fixtures/ is a small C++ file annotated
with `// expect-finding:<rule>` comments. For every fixture the runner
computes the analyzer's actual findings (semantic rules from
tools/analyzer/ plus the regex lint from tools/lint_determinism.py) and
asserts the (line, rule) multiset matches the expectations exactly — no
missing findings, no extras. `expect-finding[+N]:<rule>` expects the
finding N lines below the marker, for rules whose evidence window would
otherwise read the marker itself (unbounded-member).

Fixture directory names matter: lint_determinism routes rule families by
path parts (rpc/ → hot-path + request-path rules, rebalance/ →
magic-threshold), so fixtures live in subdirectories named after the
source trees whose rules they exercise.

Runs with stdlib unittest (works under pytest too):

  python3 tests/analyzer/run_fixture_tests.py
"""

import re
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO = TESTS_DIR.parent.parent
sys.path.insert(0, str(REPO / "tools"))

import lint_determinism  # noqa: E402
from analyzer import frontend_tokens, rules  # noqa: E402
from analyzer.model import Index  # noqa: E402

FIXTURES = TESTS_DIR / "fixtures"
FIXTURE_EXTS = (".cc", ".h", ".cpp", ".hpp")
EXPECT = re.compile(r"expect-finding(?:\[\+(\d+)\])?:([\w-]+)")

SEMANTIC_RULES = {
    "shard-unannotated", "iter-order-escape", "flatmap-iteration",
    "unchecked-status", "handler-idempotency",
}
REGEX_RULES = {
    "wall-clock", "libc-random", "std-random", "unseeded-draw", "threads",
    "pointer-keyed-container", "hot-path-churn", "unbounded-member",
    "magic-threshold",
}


def fixture_files():
    return sorted(p for p in FIXTURES.rglob("*") if p.suffix in FIXTURE_EXTS)


def expected_findings(path):
    expected = []
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        for match in EXPECT.finditer(line):
            offset = int(match.group(1)) if match.group(1) else 0
            expected.append((lineno + offset, match.group(2)))
    return sorted(expected)


def actual_findings(path):
    """Runs both analysis passes over one fixture in isolation (per-file
    Index, so Status functions declared in one fixture don't leak into
    another)."""
    text = path.read_text(encoding="utf-8")
    index = Index()
    frontend_tokens.build_index_for_file(text, index)
    facts = frontend_tokens.analyze_file(text, str(path), index)
    found = [(finding.line, finding.rule)
             for finding in rules.check_tu(facts, index, text.splitlines())]
    found.extend((lineno, name)
                 for lineno, name, _ in lint_determinism.lint_file(path))
    return sorted(found)


class FixtureTests(unittest.TestCase):
    """One generated test per fixture file: exact finding-set equality."""
    maxDiff = None


def _add_fixture_case(path):
    name = "test_" + re.sub(r"\W+", "_", str(path.relative_to(FIXTURES)))

    def case(self, path=path):
        self.assertEqual(expected_findings(path), actual_findings(path),
                         f"finding mismatch in {path} "
                         "(left=expected, right=actual)")

    setattr(FixtureTests, name, case)


for _path in fixture_files():
    _add_fixture_case(_path)


class FixtureSuiteSanity(unittest.TestCase):
    """Guards the suite itself: fixtures present, every rule family
    exercised at least once."""

    def test_fixtures_exist(self):
        self.assertGreaterEqual(len(fixture_files()), 7)

    def test_every_rule_family_is_covered(self):
        covered = set()
        for path in fixture_files():
            covered.update(rule for _, rule in expected_findings(path))
        self.assertEqual(
            (SEMANTIC_RULES | REGEX_RULES) - covered, set(),
            "rule families with no positive fixture case")

    def test_expectations_name_real_rules(self):
        for path in fixture_files():
            for _, rule in expected_findings(path):
                self.assertIn(rule, SEMANTIC_RULES | REGEX_RULES,
                              f"{path} expects unknown rule {rule!r}")


class InventoryTests(unittest.TestCase):
    """shard_state.json contents: lane-shared instance members are
    inventoried (kind 'member', always annotated), and the real lane
    structures in src/ actually appear there."""

    @staticmethod
    def _inventory_for(paths):
        all_facts = []
        for path in paths:
            text = path.read_text(encoding="utf-8")
            index = Index()
            frontend_tokens.build_index_for_file(text, index)
            all_facts.append(
                frontend_tokens.analyze_file(text, str(path), index))
        return rules.shard_state_inventory(all_facts)

    def test_fixture_member_is_inventoried(self):
        inventory = self._inventory_for(
            [FIXTURES / "common" / "lane_shared_members.cc"])
        by_name = {s["name"]: s for s in inventory["sites"]}
        self.assertIn("entries_", by_name)
        self.assertEqual(by_name["entries_"]["kind"], "member")
        self.assertEqual(by_name["entries_"]["annotation"], "shared_guarded")
        # Plain per-instance members stay out of the inventory.
        self.assertNotIn("cursor_", by_name)
        # Members only enter the inventory via the annotation, so they can
        # never add unannotated sites.
        self.assertEqual(
            [s["name"] for s in inventory["sites"]
             if s["annotation"] == "MISSING"], ["g_posts"])

    def test_lane_structures_appear_in_src_inventory(self):
        # The sharded-execution structures themselves: cross-lane mailboxes,
        # the safe-horizon window bound, the canonical seq counter, worker
        # slots, and the per-lane shards in Network/RpcSystem/FaultInjector.
        inventory = self._inventory_for([
            REPO / "src" / "sim" / "lane_set.h",
            REPO / "src" / "sim" / "network.h",
            REPO / "src" / "rpc" / "rpc_system.h",
            REPO / "src" / "sim" / "fault_injector.h",
        ])
        members = {s["name"] for s in inventory["sites"]
                   if s["kind"] == "member"}
        for required in ("mail_", "window_end_", "next_seq_", "slots_",
                         "pools_", "counters_", "pending_lanes_",
                         "sender_rng_"):
            self.assertIn(required, members,
                          f"lane structure {required!r} missing from the "
                          "shard-state inventory")
        self.assertEqual(inventory["unannotated"], 0,
                         "unannotated mutable state in the lane headers")


class DriverTests(unittest.TestCase):
    """tools/analyze.py end to end: exit codes, JSON output, baseline."""

    def _run(self, args):
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "analyze.py"), *args],
            capture_output=True, text=True)

    def test_fixtures_fail_the_gate(self):
        with tempfile.TemporaryDirectory() as tmp:
            proc = self._run([str(FIXTURES), "--frontend", "tokens",
                              "--no-baseline", "--build-dir", tmp,
                              "--json", f"{tmp}/findings.json"])
            self.assertEqual(proc.returncode, 1, proc.stderr)
            self.assertTrue(Path(tmp, "findings.json").exists())
            self.assertTrue(Path(tmp, "shard_state.json").exists())

    def test_clean_file_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            clean = Path(tmp) / "clean.cc"
            clean.write_text(
                "namespace rocksteady {\n"
                "constexpr int kAnswer = 42;\n"
                "int Twice(int value) { return value + value; }\n"
                "}  // namespace rocksteady\n", encoding="utf-8")
            proc = self._run([str(clean), "--frontend", "tokens",
                              "--no-baseline", "--build-dir", tmp])
            self.assertEqual(proc.returncode, 0,
                             proc.stderr + proc.stdout)

    def test_baseline_grandfathers_known_findings(self):
        with tempfile.TemporaryDirectory() as tmp:
            dirty = Path(tmp) / "dirty.cc"
            dirty.write_text(
                "namespace rocksteady {\n"
                "int g_mutable = 0;\n"
                "}  // namespace rocksteady\n", encoding="utf-8")
            baseline = Path(tmp) / "baseline.json"
            wrote = self._run([str(dirty), "--frontend", "tokens",
                               "--build-dir", tmp,
                               "--baseline", str(baseline),
                               "--write-baseline"])
            self.assertEqual(wrote.returncode, 0, wrote.stderr)
            gated = self._run([str(dirty), "--frontend", "tokens",
                               "--build-dir", tmp,
                               "--baseline", str(baseline)])
            self.assertEqual(gated.returncode, 0, gated.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
