// Counting replacements for the global allocator (see alloc_hook.h).
//
// Counters are relaxed atomics: the threaded-lane regression tests allocate
// from worker threads (message objects), and the tests only compare totals
// at barriers where the workers are parked. Every operator new form funnels
// through Count() + malloc; deletes go straight to free. Works under
// ASan/UBSan: the sanitizer intercepts the underlying malloc/free, so
// poisoning and leak detection still function.
#include "tests/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace rocksteady {
namespace {

std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void* Count(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountAligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

uint64_t GlobalAllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }
uint64_t GlobalAllocBytes() { return g_alloc_bytes.load(std::memory_order_relaxed); }

}  // namespace rocksteady

void* operator new(std::size_t size) { return rocksteady::Count(size); }
void* operator new[](std::size_t size) { return rocksteady::Count(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  rocksteady::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  rocksteady::g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  rocksteady::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  rocksteady::g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return rocksteady::CountAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return rocksteady::CountAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
