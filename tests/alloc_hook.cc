// Counting replacements for the global allocator (see alloc_hook.h).
//
// The simulation is single-threaded by design, so plain counters suffice.
// Every operator new form funnels through Count() + malloc; deletes go
// straight to free. Works under ASan/UBSan: the sanitizer intercepts the
// underlying malloc/free, so poisoning and leak detection still function.
#include "tests/alloc_hook.h"

#include <cstdlib>
#include <new>

namespace rocksteady {
namespace {

uint64_t g_alloc_count = 0;
uint64_t g_alloc_bytes = 0;

void* Count(std::size_t size) {
  g_alloc_count++;
  g_alloc_bytes += size;
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountAligned(std::size_t size, std::size_t align) {
  g_alloc_count++;
  g_alloc_bytes += size;
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

uint64_t GlobalAllocCount() { return g_alloc_count; }
uint64_t GlobalAllocBytes() { return g_alloc_bytes; }

}  // namespace rocksteady

void* operator new(std::size_t size) { return rocksteady::Count(size); }
void* operator new[](std::size_t size) { return rocksteady::Count(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  rocksteady::g_alloc_count++;
  rocksteady::g_alloc_bytes += size;
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  rocksteady::g_alloc_count++;
  rocksteady::g_alloc_bytes += size;
  return std::malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return rocksteady::CountAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return rocksteady::CountAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
