// Failure-injection tests: distributed crash recovery and Rocksteady's
// lineage rule (§3.4) — crashes of a migration source or target mid-flight.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/cluster/cluster.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_masters = 5;
  config.num_clients = 2;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  return config;
}

struct RecoveryFixture {
  explicit RecoveryFixture(uint64_t records = 3'000) : cluster(TestCluster()) {
    EnableMigration(&cluster);
    cluster.CreateTable(kTable, 0);
    cluster.LoadTable(kTable, records, 30, 100);
    num_records = records;
  }

  void CrashAndRecover(size_t master_index) {
    cluster.master(master_index).Crash();
    bool recovered = false;
    cluster.coordinator().HandleCrash(cluster.master(master_index).id(),
                                      [&] { recovered = true; });
    cluster.sim().Run();
    EXPECT_TRUE(recovered);
  }

  // Counts records readable with the expected value via a client.
  int CountCorrect(const std::map<std::string, std::string>& overrides,
                   const std::string& default_value) {
    int correct = 0;
    for (uint64_t i = 0; i < num_records; i++) {
      const std::string key = Cluster::MakeKey(i, 30);
      const std::string expected =
          overrides.count(key) ? overrides.at(key) : default_value;
      cluster.client(0).Read(kTable, key, [&, expected](Status s, const std::string& v) {
        correct += (s == Status::kOk && v == expected);
      });
      if (i % 64 == 63) {
        cluster.sim().Run();
      }
    }
    cluster.sim().Run();
    return correct;
  }

  Cluster cluster;
  uint64_t num_records = 0;
};

TEST(RecoveryTest, CrashWithoutMigrationRestoresAllData) {
  RecoveryFixture f;
  // A few fresh durable writes before the crash (they exist only via
  // replication, not the bulk-load seed).
  std::map<std::string, std::string> overrides;
  int writes = 0;
  for (uint64_t i = 0; i < 20; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    overrides[key] = "fresh-write-" + std::to_string(i);
    f.cluster.client(0).Write(kTable, key, overrides[key], [&](Status s) {
      EXPECT_EQ(s, Status::kOk);
      writes++;
    });
  }
  f.cluster.sim().Run();
  ASSERT_EQ(writes, 20);

  f.CrashAndRecover(0);

  // Ownership moved off the crashed server.
  EXPECT_NE(f.cluster.coordinator().OwnerOf(kTable, 0), f.cluster.master(0).id());
  EXPECT_NE(f.cluster.coordinator().OwnerOf(kTable, ~0ull), f.cluster.master(0).id());

  EXPECT_EQ(f.CountCorrect(overrides, std::string(100, 'v')),
            static_cast<int>(f.num_records));
}

TEST(RecoveryTest, RemovesSurviveRecovery) {
  RecoveryFixture f(500);
  int ops = 0;
  f.cluster.client(0).Remove(kTable, Cluster::MakeKey(7, 30), [&](Status s) {
    EXPECT_EQ(s, Status::kOk);
    ops++;
  });
  f.cluster.sim().Run();
  ASSERT_EQ(ops, 1);
  f.CrashAndRecover(0);
  Status status = Status::kOk;
  f.cluster.client(0).Read(kTable, Cluster::MakeKey(7, 30),
                           [&](Status s, const std::string&) { status = s; });
  f.cluster.sim().Run();
  EXPECT_EQ(status, Status::kObjectNotFound);
}

TEST(RecoveryTest, TargetCrashMidMigrationFallsBackToSource) {
  RecoveryFixture f;
  bool migration_done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats&) { migration_done = true; });

  // Let the migration get going, write to migrating keys at the *target*
  // (ownership moved there), then crash the target.
  std::map<std::string, std::string> overrides;
  f.cluster.sim().RunUntil(f.cluster.sim().now() + 100 * kMicrosecond);
  int writes = 0;
  for (uint64_t i = 0; i < f.num_records && writes < 0 + 10; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) >= kMid) {
      overrides[key] = "written-at-target";
      f.cluster.client(0).Write(kTable, key, overrides[key], [](Status) {});
      writes++;
    }
  }
  f.cluster.sim().RunUntil(f.cluster.sim().now() + 300 * kMicrosecond);
  ASSERT_FALSE(migration_done) << "crash must hit mid-migration";
  ASSERT_FALSE(f.cluster.coordinator().dependencies().empty());

  f.CrashAndRecover(1);

  // §3.4: ownership returns to the source...
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(0).id());
  EXPECT_TRUE(f.cluster.coordinator().dependencies().empty());
  // ...and the target's log tail (the fresh writes) reached the source via
  // its backups' replicas, so nothing is lost.
  EXPECT_EQ(f.CountCorrect(overrides, std::string(100, 'v')),
            static_cast<int>(f.num_records));
}

TEST(RecoveryTest, SourceCrashMidMigrationRecoversEverything) {
  RecoveryFixture f;
  bool migration_done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats&) { migration_done = true; });
  std::map<std::string, std::string> overrides;
  f.cluster.sim().RunUntil(f.cluster.sim().now() + 100 * kMicrosecond);
  int writes = 0;
  for (uint64_t i = 0; i < f.num_records && writes < 10; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) >= kMid) {
      overrides[key] = "target-write-before-source-crash";
      f.cluster.client(0).Write(kTable, key, overrides[key], [](Status) {});
      writes++;
    }
  }
  f.cluster.sim().RunUntil(f.cluster.sim().now() + 300 * kMicrosecond);
  ASSERT_FALSE(migration_done) << "crash must hit mid-migration";

  f.CrashAndRecover(0);

  // The migrating range was re-homed somewhere alive, and every record —
  // including writes the target serviced during migration — survives.
  EXPECT_NE(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(0).id());
  EXPECT_TRUE(f.cluster.coordinator().dependencies().empty());
  EXPECT_EQ(f.CountCorrect(overrides, std::string(100, 'v')),
            static_cast<int>(f.num_records));
}

// §3.4 corner: the target dies while a PriorityPull batch is outstanding —
// clients are parked on records that will now never arrive from this target.
// Recovery must fall back to the source and the parked reads must retry
// their way to the correct values.
TEST(RecoveryTest, TargetCrashDuringPriorityPullBatch) {
  RecoveryFixture f;
  bool migration_done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats&) { migration_done = true; });
  // Let ownership transfer, then read migrated-range keys the target cannot
  // have yet: each miss batches into a PriorityPull.
  f.cluster.sim().RunUntil(f.cluster.sim().now() + 50 * kMicrosecond);
  int reads_issued = 0;
  int reads_ok = 0;
  for (uint64_t i = 0; i < f.num_records && reads_issued < 8; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) >= kMid) {
      f.cluster.client(0).Read(kTable, key, [&](Status s, const std::string& v) {
        reads_ok += (s == Status::kOk && v == std::string(100, 'v'));
      });
      reads_issued++;
    }
  }
  // A few microseconds in, the batch is in flight / being replayed.
  f.cluster.sim().RunUntil(f.cluster.sim().now() + 10 * kMicrosecond);
  ASSERT_FALSE(migration_done) << "crash must hit mid-migration";

  f.CrashAndRecover(1);

  // Ownership fell back to the source and the parked reads completed there.
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(0).id());
  EXPECT_TRUE(f.cluster.coordinator().dependencies().empty());
  EXPECT_EQ(reads_ok, reads_issued);
  EXPECT_EQ(f.CountCorrect({}, std::string(100, 'v')), static_cast<int>(f.num_records));
}

// §3.4 corner: the source dies *after* every record has been pulled but
// while the target is still lazily re-replicating its side logs — the window
// where the migrated data exists only in the target's DRAM plus the
// source's (pre-migration) backup replicas.
TEST(RecoveryTest, SourceCrashDuringLazyRereplication) {
  RecoveryFixture f;
  bool migration_done = false;
  auto* manager =
      StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                               [&](const MigrationStats&) { migration_done = true; });
  // Step until the pulls finish and the replication epilogue begins.
  const Tick limit = f.cluster.sim().now() + 50 * kMillisecond;
  while (!migration_done &&
         manager->phase() != RocksteadyMigrationManager::Phase::kReplicating &&
         f.cluster.sim().now() < limit) {
    f.cluster.sim().RunUntil(f.cluster.sim().now() + 2 * kMicrosecond);
  }
  ASSERT_EQ(static_cast<int>(manager->phase()),
            static_cast<int>(RocksteadyMigrationManager::Phase::kReplicating))
      << "crash must hit the re-replication window";

  f.CrashAndRecover(0);

  // The migrating range stays off the crashed source and every record is
  // readable: the pulled data survives in the target, the rest re-homes
  // from the source's backups.
  EXPECT_NE(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(0).id());
  EXPECT_TRUE(f.cluster.coordinator().dependencies().empty());
  EXPECT_EQ(f.CountCorrect({}, std::string(100, 'v')), static_cast<int>(f.num_records));
}

// §3.4 corner: the (quorum-replicated) coordinator crash-restarts in the
// middle of a migration. Registration / ownership / drop RPCs are idempotent
// and re-driven, so the migration must ride through and complete.
TEST(RecoveryTest, CoordinatorRestartMidMigration) {
  RecoveryFixture f;
  bool migration_done = false;
  StartRocksteadyMigration(&f.cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats&) { migration_done = true; });
  f.cluster.sim().RunUntil(f.cluster.sim().now() + 100 * kMicrosecond);
  ASSERT_FALSE(migration_done);
  f.cluster.coordinator().Crash();
  f.cluster.sim().At(f.cluster.sim().now() + 5 * kMillisecond,
                     [&] { f.cluster.coordinator().Restart(); });
  f.cluster.sim().Run();

  EXPECT_TRUE(migration_done);
  EXPECT_EQ(f.cluster.coordinator().OwnerOf(kTable, kMid), f.cluster.master(1).id());
  EXPECT_TRUE(f.cluster.coordinator().dependencies().empty());
  EXPECT_EQ(f.CountCorrect({}, std::string(100, 'v')), static_cast<int>(f.num_records));
}

TEST(RecoveryTest, ReadsDuringRecoveryEventuallySucceed) {
  RecoveryFixture f(500);
  f.cluster.master(0).Crash();
  bool recovered = false;
  f.cluster.coordinator().HandleCrash(f.cluster.master(0).id(), [&] { recovered = true; });
  // Issue a read immediately — before recovery completes. It must retry its
  // way to success (kServerDown timeout -> refresh -> kRetryLater -> OK).
  Status status = Status::kInvalidState;
  std::string value;
  f.cluster.client(0).Read(kTable, Cluster::MakeKey(3, 30),
                           [&](Status s, const std::string& v) {
                             status = s;
                             value = v;
                           });
  f.cluster.sim().Run();
  EXPECT_TRUE(recovered);
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(value, std::string(100, 'v'));
}

TEST(RecoveryTest, RecoverySpreadsTabletsAcrossSurvivors) {
  RecoveryFixture f(2'000);
  // Pre-split the table into 4 tablets all owned by master 0.
  f.cluster.coordinator().SplitTablet(kTable, 1ull << 62);
  f.cluster.coordinator().SplitTablet(kTable, 2ull << 62);
  f.cluster.coordinator().SplitTablet(kTable, 3ull << 62);
  f.CrashAndRecover(0);
  std::set<ServerId> owners;
  for (const auto& entry : f.cluster.coordinator().GetAllTablets()) {
    if (entry.table == kTable) {
      owners.insert(entry.owner);
    }
  }
  EXPECT_GE(owners.size(), 2u);  // Round-robin re-homing.
  EXPECT_EQ(owners.count(f.cluster.master(0).id()), 0u);
}

}  // namespace
}  // namespace rocksteady
