// The operational scenario matrix as chaos suites: every (scenario, seed)
// pair runs on a lossy fabric with the full operations stack live and must
// finish with zero lost acked writes, clean invariant audits, converged
// operations (drains decommissioned, restarts completed), and a
// bit-identical digest when replayed.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "bench/scenario_harness.h"

namespace rocksteady {
namespace {

class ScenarioMatrixTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(ScenarioMatrixTest, ChaosInvariantsAndReplay) {
  const size_t index = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  const ScenarioSpec& spec = ScenarioMatrix()[index];

  const ScenarioResult first = RunScenario(spec, seed);
  EXPECT_GT(first.digest.acked_writes, 0u) << spec.name << " seed " << seed;
  EXPECT_EQ(first.mismatches, 0u) << spec.name << " seed " << seed
                                  << ": acked writes lost:\n" << first.mismatch_detail;
  EXPECT_TRUE(first.audits_ok) << spec.name << " seed " << seed << ":\n"
                               << first.audit_summary;
  EXPECT_TRUE(first.operations_converged)
      << spec.name << " seed " << seed << ": drain/restart did not converge";
  // Every phase saw traffic (a phase with zero ops means the load curve or
  // the phase windows are misconfigured, and its p99.9 would be vacuous).
  for (const auto& phase : first.digest.phases) {
    EXPECT_GT(phase.ops, 0u) << spec.name << " phase " << phase.name;
  }

  // Determinism gate: the same (scenario, seed) replays bit-identically.
  const ScenarioResult second = RunScenario(spec, seed);
  EXPECT_TRUE(first.digest == second.digest)
      << spec.name << " seed " << seed << ": replay diverged (trace "
      << first.digest.trace_hash << " vs " << second.digest.trace_hash << ", events "
      << first.digest.events_processed << " vs " << second.digest.events_processed << ")";
}

std::string ScenarioParamName(
    const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>>& info) {
  return ScenarioMatrix()[std::get<0>(info.param)].name + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioMatrixTest,
                         ::testing::Combine(::testing::Range<size_t>(0, 5),
                                            ::testing::Range<uint64_t>(0, 20)),
                         ScenarioParamName);

}  // namespace
}  // namespace rocksteady
