// Unit tests for tablets and the ObjectManager (read/write/remove, replay
// semantics, version horizons, cleaner integration).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/store/object_manager.h"
#include "src/store/tablet.h"

namespace rocksteady {
namespace {

ObjectManagerOptions SmallOptions() {
  ObjectManagerOptions options;
  options.hash_table_log2_buckets = 10;
  options.segment_size = 4096;
  return options;
}

// ---------------------------------------------------------------- Tablets.

TEST(TabletTest, ContainsChecksRangeAndTable) {
  Tablet tablet{.table_id = 1, .start_hash = 100, .end_hash = 200};
  EXPECT_TRUE(tablet.Contains(1, 100));
  EXPECT_TRUE(tablet.Contains(1, 200));
  EXPECT_TRUE(tablet.Contains(1, 150));
  EXPECT_FALSE(tablet.Contains(1, 99));
  EXPECT_FALSE(tablet.Contains(1, 201));
  EXPECT_FALSE(tablet.Contains(2, 150));
}

TEST(TabletManagerTest, FindLocatesOwningTablet) {
  TabletManager tablets;
  tablets.Add({.table_id = 1, .start_hash = 0, .end_hash = 999});
  tablets.Add({.table_id = 1, .start_hash = 1000, .end_hash = 1999});
  tablets.Add({.table_id = 2, .start_hash = 0, .end_hash = ~0ull});
  EXPECT_EQ(tablets.Find(1, 500)->start_hash, 0u);
  EXPECT_EQ(tablets.Find(1, 1500)->start_hash, 1000u);
  EXPECT_EQ(tablets.Find(2, 12345)->table_id, 2u);
  EXPECT_EQ(tablets.Find(1, 5000), nullptr);
  EXPECT_EQ(tablets.Find(3, 0), nullptr);
}

TEST(TabletManagerTest, SplitAtArbitraryHash) {
  // Lazy partitioning: a split is metadata-only and can happen at any hash.
  TabletManager tablets;
  tablets.Add({.table_id = 1, .start_hash = 0, .end_hash = ~0ull});
  ASSERT_EQ(tablets.Split(1, 1ull << 63), Status::kOk);
  ASSERT_EQ(tablets.tablets().size(), 2u);
  const Tablet* low = tablets.Find(1, 0);
  const Tablet* high = tablets.Find(1, ~0ull);
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  EXPECT_EQ(low->end_hash, (1ull << 63) - 1);
  EXPECT_EQ(high->start_hash, 1ull << 63);
  // Splitting again at the same point is a no-op.
  EXPECT_EQ(tablets.Split(1, 1ull << 63), Status::kOk);
  EXPECT_EQ(tablets.tablets().size(), 2u);
}

TEST(TabletManagerTest, SplitMissingTableFails) {
  TabletManager tablets;
  EXPECT_EQ(tablets.Split(9, 100), Status::kTableNotFound);
}

TEST(TabletManagerTest, RemoveExactRange) {
  TabletManager tablets;
  tablets.Add({.table_id = 1, .start_hash = 0, .end_hash = 999});
  EXPECT_FALSE(tablets.Remove(1, 0, 500));  // Not an exact match.
  EXPECT_TRUE(tablets.Remove(1, 0, 999));
  EXPECT_EQ(tablets.Find(1, 10), nullptr);
}

// ------------------------------------------------------------ ObjectManager.

TEST(ObjectManagerTest, WriteReadRoundTrip) {
  ObjectManager om(SmallOptions());
  const KeyHash h = HashKey("alice");
  auto version = om.Write(1, "alice", h, "in wonderland");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);
  auto read = om.Read(1, "alice", h);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "in wonderland");
  EXPECT_EQ(read->version, 1u);
}

TEST(ObjectManagerTest, OverwriteBumpsVersion) {
  ObjectManager om(SmallOptions());
  const KeyHash h = HashKey("k");
  om.Write(1, "k", h, "v1");
  auto v2 = om.Write(1, "k", h, "v2");
  ASSERT_TRUE(v2.ok());
  EXPECT_GT(*v2, 1u);
  auto read = om.Read(1, "k", h);
  EXPECT_EQ(read->value, "v2");
  EXPECT_EQ(read->version, *v2);
}

TEST(ObjectManagerTest, ReadMissingKey) {
  ObjectManager om(SmallOptions());
  EXPECT_EQ(om.Read(1, "ghost", HashKey("ghost")).status(), Status::kObjectNotFound);
}

TEST(ObjectManagerTest, RemoveDeletesAndIsIdempotent) {
  ObjectManager om(SmallOptions());
  const KeyHash h = HashKey("k");
  om.Write(1, "k", h, "v");
  ASSERT_TRUE(om.Remove(1, "k", h).ok());
  EXPECT_EQ(om.Read(1, "k", h).status(), Status::kObjectNotFound);
  EXPECT_EQ(om.Remove(1, "k", h).status(), Status::kObjectNotFound);
}

TEST(ObjectManagerTest, WriteAfterRemoveGetsHigherVersion) {
  ObjectManager om(SmallOptions());
  const KeyHash h = HashKey("k");
  auto v1 = om.Write(1, "k", h, "v1");
  om.Remove(1, "k", h);
  auto v2 = om.Write(1, "k", h, "v2");
  EXPECT_GT(*v2, *v1);  // Versions never move backwards, even through deletes.
}

TEST(ObjectManagerTest, ReadByHashIgnoresKey) {
  ObjectManager om(SmallOptions());
  const KeyHash h = HashKey("indexed-key");
  om.Write(1, "indexed-key", h, "payload");
  auto read = om.ReadByHash(1, h);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "payload");
  EXPECT_EQ(read->key, "indexed-key");
}

TEST(ObjectManagerTest, ReadWrongTableFails) {
  ObjectManager om(SmallOptions());
  const KeyHash h = HashKey("k");
  om.Write(1, "k", h, "v");
  EXPECT_FALSE(om.Read(2, "k", h).ok());
  EXPECT_FALSE(om.ReadByHash(2, h).ok());
}

TEST(ObjectManagerTest, ManyObjectsSurviveSegmentRolls) {
  ObjectManager om(SmallOptions());
  for (int i = 0; i < 1'000; i++) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(om.Write(1, key, HashKey(key), "value" + std::to_string(i)).ok());
  }
  EXPECT_GT(om.log().segments().size(), 2u);
  for (int i = 0; i < 1'000; i++) {
    const std::string key = "key" + std::to_string(i);
    auto read = om.Read(1, key, HashKey(key));
    ASSERT_TRUE(read.ok()) << key;
    EXPECT_EQ(read->value, "value" + std::to_string(i));
  }
}

// ------------------------------------------------------------------ Replay.

LogEntryView MakeObjectEntry(std::vector<uint8_t>& buffer, TableId table, KeyHash hash,
                             std::string_view key, std::string_view value, Version version) {
  LogEntryHeader header;
  header.type = LogEntryType::kObject;
  header.table_id = table;
  header.key_hash = hash;
  header.version = version;
  buffer.resize(sizeof(LogEntryHeader) + key.size() + value.size());
  WriteEntry(buffer.data(), header, key, value);
  LogEntryView view;
  EXPECT_TRUE(ReadEntry(buffer.data(), buffer.size(), &view));
  return view;
}

LogEntryView MakeTombstoneEntry(std::vector<uint8_t>& buffer, TableId table, KeyHash hash,
                                std::string_view key, Version version) {
  LogEntryHeader header;
  header.type = LogEntryType::kTombstone;
  header.table_id = table;
  header.key_hash = hash;
  header.version = version;
  buffer.resize(sizeof(LogEntryHeader) + key.size());
  WriteEntry(buffer.data(), header, key, {});
  LogEntryView view;
  EXPECT_TRUE(ReadEntry(buffer.data(), buffer.size(), &view));
  return view;
}

TEST(ObjectManagerReplayTest, IncorporatesNewRecord) {
  ObjectManager om(SmallOptions());
  std::vector<uint8_t> buffer;
  const auto entry = MakeObjectEntry(buffer, 1, HashKey("k"), "k", "migrated", 5);
  EXPECT_TRUE(om.Replay(entry, nullptr));
  auto read = om.Read(1, "k", HashKey("k"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "migrated");
  EXPECT_EQ(read->version, 5u);
}

TEST(ObjectManagerReplayTest, StaleRecordDropped) {
  // A write at the target (higher version) must not be clobbered by a
  // migrated record arriving later (lower version). This is the invariant
  // behind Rocksteady's immediate-ownership-transfer + any-order replay.
  ObjectManager om(SmallOptions());
  om.RaiseVersionHorizon(100);  // Seeded from the source's horizon.
  const KeyHash h = HashKey("k");
  auto fresh = om.Write(1, "k", h, "written-at-target");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, 100u);
  std::vector<uint8_t> buffer;
  const auto stale = MakeObjectEntry(buffer, 1, h, "k", "old-source-copy", 7);
  EXPECT_FALSE(om.Replay(stale, nullptr));
  EXPECT_EQ(om.Read(1, "k", h)->value, "written-at-target");
}

TEST(ObjectManagerReplayTest, ReplayIsIdempotent) {
  ObjectManager om(SmallOptions());
  std::vector<uint8_t> buffer;
  const auto entry = MakeObjectEntry(buffer, 1, HashKey("k"), "k", "once", 3);
  EXPECT_TRUE(om.Replay(entry, nullptr));
  EXPECT_FALSE(om.Replay(entry, nullptr));  // Duplicate: version not newer.
  EXPECT_EQ(om.object_count(), 1u);
}

TEST(ObjectManagerReplayTest, NewerReplayWins) {
  ObjectManager om(SmallOptions());
  std::vector<uint8_t> b1;
  std::vector<uint8_t> b2;
  const KeyHash h = HashKey("k");
  EXPECT_TRUE(om.Replay(MakeObjectEntry(b1, 1, h, "k", "v3", 3), nullptr));
  EXPECT_TRUE(om.Replay(MakeObjectEntry(b2, 1, h, "k", "v9", 9), nullptr));
  EXPECT_EQ(om.Read(1, "k", h)->value, "v9");
}

TEST(ObjectManagerReplayTest, OutOfOrderReplayConverges) {
  // Any-order parallel replay: applying versions 9 then 3 equals 3 then 9.
  ObjectManager a(SmallOptions());
  ObjectManager b(SmallOptions());
  std::vector<uint8_t> b1;
  std::vector<uint8_t> b2;
  const KeyHash h = HashKey("k");
  const auto v3 = MakeObjectEntry(b1, 1, h, "k", "v3", 3);
  const auto v9 = MakeObjectEntry(b2, 1, h, "k", "v9", 9);
  a.Replay(v3, nullptr);
  a.Replay(v9, nullptr);
  b.Replay(v9, nullptr);
  b.Replay(v3, nullptr);
  EXPECT_EQ(a.Read(1, "k", h)->value, b.Read(1, "k", h)->value);
  EXPECT_EQ(a.Read(1, "k", h)->version, b.Read(1, "k", h)->version);
}

TEST(ObjectManagerReplayTest, TombstoneReplayDeletes) {
  ObjectManager om(SmallOptions());
  const KeyHash h = HashKey("k");
  std::vector<uint8_t> b1;
  std::vector<uint8_t> b2;
  om.Replay(MakeObjectEntry(b1, 1, h, "k", "v", 3), nullptr);
  EXPECT_TRUE(om.Replay(MakeTombstoneEntry(b2, 1, h, "k", 5), nullptr));
  EXPECT_EQ(om.Read(1, "k", h).status(), Status::kObjectNotFound);
}

TEST(ObjectManagerReplayTest, StaleTombstoneIgnored) {
  ObjectManager om(SmallOptions());
  const KeyHash h = HashKey("k");
  std::vector<uint8_t> b1;
  std::vector<uint8_t> b2;
  om.Replay(MakeObjectEntry(b1, 1, h, "k", "v7", 7), nullptr);
  EXPECT_FALSE(om.Replay(MakeTombstoneEntry(b2, 1, h, "k", 5), nullptr));
  EXPECT_EQ(om.Read(1, "k", h)->value, "v7");
}

TEST(ObjectManagerReplayTest, ReplayIntoSideLog) {
  ObjectManager om(SmallOptions());
  SideLog side(&om.log());
  std::vector<uint8_t> buffer;
  const KeyHash h = HashKey("k");
  EXPECT_TRUE(om.Replay(MakeObjectEntry(buffer, 1, h, "k", "via-side", 2), &side));
  // Readable immediately, before commit.
  EXPECT_EQ(om.Read(1, "k", h)->value, "via-side");
  side.Commit();
  EXPECT_EQ(om.Read(1, "k", h)->value, "via-side");
}

TEST(ObjectManagerReplayTest, DropSideLogEntriesOnAbort) {
  ObjectManager om(SmallOptions());
  SideLog side(&om.log());
  std::vector<uint8_t> buffer;
  for (int i = 0; i < 20; i++) {
    const std::string key = "k" + std::to_string(i);
    const auto entry = MakeObjectEntry(buffer, 1, HashKey(key), key, "v", 2);
    ASSERT_TRUE(om.Replay(entry, &side));
  }
  EXPECT_EQ(om.object_count(), 20u);
  const size_t dropped = om.DropSideLogEntries(side);
  side.Abort();
  EXPECT_EQ(dropped, 20u);
  EXPECT_EQ(om.object_count(), 0u);
}

TEST(ObjectManagerTest, DropTabletEntriesRemovesRange) {
  ObjectManager om(SmallOptions());
  size_t in_upper_half = 0;
  for (int i = 0; i < 200; i++) {
    const std::string key = "key" + std::to_string(i);
    const KeyHash h = HashKey(key);
    om.Write(1, key, h, "v");
    in_upper_half += (h >= (1ull << 63));
  }
  const size_t dropped = om.DropTabletEntries(1, 1ull << 63, ~0ull);
  EXPECT_EQ(dropped, in_upper_half);
  EXPECT_EQ(om.object_count(), 200 - in_upper_half);
}

TEST(ObjectManagerTest, CleanerPreservesLiveData) {
  ObjectManager om(SmallOptions());
  // Three rounds of overwrites -> two thirds of entries dead.
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 300; i++) {
      const std::string key = "key" + std::to_string(i);
      ASSERT_TRUE(om.Write(1, key, HashKey(key), "round" + std::to_string(round)).ok());
    }
  }
  size_t cleaned = 0;
  for (int i = 0; i < 50; i++) {
    cleaned += om.RunCleaner();
  }
  EXPECT_GT(cleaned, 0u);
  for (int i = 0; i < 300; i++) {
    const std::string key = "key" + std::to_string(i);
    auto read = om.Read(1, key, HashKey(key));
    ASSERT_TRUE(read.ok()) << key;
    EXPECT_EQ(read->value, "round2");
  }
}

TEST(ObjectManagerTest, VersionHorizonMonotone) {
  ObjectManager om(SmallOptions());
  EXPECT_EQ(om.version_horizon(), 0u);
  om.Write(1, "a", HashKey("a"), "v");
  const Version after_one = om.version_horizon();
  EXPECT_GE(after_one, 1u);
  om.RaiseVersionHorizon(1'000);
  EXPECT_EQ(om.version_horizon(), 1'000u);
  om.RaiseVersionHorizon(5);  // Lower: no effect.
  EXPECT_EQ(om.version_horizon(), 1'000u);
  auto v = om.Write(1, "b", HashKey("b"), "v");
  EXPECT_GT(*v, 1'000u);
}


TEST(ObjectManagerTest, TombstoneIfMissingGuardsAgainstResurrection) {
  // A migration target deletes a record that has not arrived yet; the
  // tombstone must survive (referenced) so the later-arriving older copy
  // loses the version comparison.
  ObjectManager om(SmallOptions());
  om.RaiseVersionHorizon(50);  // Seeded from the source.
  const KeyHash h = HashKey("k");
  auto version = om.Remove(1, "k", h, nullptr, /*tombstone_if_missing=*/true);
  ASSERT_TRUE(version.ok());
  EXPECT_GT(*version, 50u);
  // The old copy arrives via replay with a lower version: dropped.
  std::vector<uint8_t> buffer;
  const auto stale = MakeObjectEntry(buffer, 1, h, "k", "old-copy", 7);
  EXPECT_FALSE(om.Replay(stale, nullptr));
  EXPECT_EQ(om.Read(1, "k", h).status(), Status::kObjectNotFound);
}

TEST(ObjectManagerTest, RemoveWithoutFlagStillNotFound) {
  ObjectManager om(SmallOptions());
  EXPECT_EQ(om.Remove(1, "ghost", HashKey("ghost")).status(), Status::kObjectNotFound);
}

TEST(ObjectManagerTest, WriteAfterMissingDeleteWins) {
  ObjectManager om(SmallOptions());
  const KeyHash h = HashKey("k");
  om.Remove(1, "k", h, nullptr, /*tombstone_if_missing=*/true);
  auto version = om.Write(1, "k", h, "resurrected-on-purpose");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(om.Read(1, "k", h)->value, "resurrected-on-purpose");
}

TEST(ObjectManagerTest, ReferencedTombstoneSurvivesCleaning) {
  ObjectManager om(SmallOptions());
  const KeyHash guard = HashKey("guarded");
  om.RaiseVersionHorizon(100);
  om.Remove(1, "guarded", guard, nullptr, /*tombstone_if_missing=*/true);
  // Churn enough data to force segment rolls and cleaning.
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 200; i++) {
      const std::string key = "churn" + std::to_string(i);
      om.Write(1, key, HashKey(key), std::string(40, 'x'));
    }
  }
  for (int i = 0; i < 50; i++) {
    om.RunCleaner();
  }
  // The guard still works: a stale copy arriving now must be dropped.
  std::vector<uint8_t> buffer;
  const auto stale = MakeObjectEntry(buffer, 1, guard, "guarded", "stale", 9);
  EXPECT_FALSE(om.Replay(stale, nullptr));
  EXPECT_EQ(om.Read(1, "guarded", guard).status(), Status::kObjectNotFound);
}

TEST(ObjectManagerReplayTest, TombstoneThenOlderObjectAnyOrder) {
  // Order-free replay: tombstone(v5) then object(v3) must equal
  // object(v3) then tombstone(v5).
  std::vector<uint8_t> b1;
  std::vector<uint8_t> b2;
  const KeyHash h = HashKey("k");
  for (bool tombstone_first : {true, false}) {
    ObjectManager om(SmallOptions());
    const auto obj = MakeObjectEntry(b1, 1, h, "k", "v3", 3);
    const auto tomb = MakeTombstoneEntry(b2, 1, h, "k", 5);
    if (tombstone_first) {
      om.Replay(tomb, nullptr);
      om.Replay(obj, nullptr);
    } else {
      om.Replay(obj, nullptr);
      om.Replay(tomb, nullptr);
    }
    EXPECT_EQ(om.Read(1, "k", h).status(), Status::kObjectNotFound)
        << "tombstone_first=" << tombstone_first;
  }
}

}  // namespace
}  // namespace rocksteady
