// Unit and property tests for the B+tree and indexlets.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/index/btree.h"
#include "src/index/indexlet.h"

namespace rocksteady {
namespace {

std::string Key(int i) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "k%06d", i);
  return buffer;
}

TEST(BTreeTest, InsertAndContains) {
  BTree tree;
  EXPECT_TRUE(tree.Insert("alice", 1));
  EXPECT_TRUE(tree.Contains("alice", 1));
  EXPECT_FALSE(tree.Contains("alice", 2));
  EXPECT_FALSE(tree.Contains("bob", 1));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, DuplicatePairIgnored) {
  BTree tree;
  EXPECT_TRUE(tree.Insert("k", 7));
  EXPECT_FALSE(tree.Insert("k", 7));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, DuplicateKeysDistinctValues) {
  // Secondary keys are non-unique (many "Alice"s); each maps to a distinct
  // primary hash.
  BTree tree;
  for (uint64_t v = 0; v < 100; v++) {
    EXPECT_TRUE(tree.Insert("alice", v));
  }
  EXPECT_EQ(tree.size(), 100u);
  std::vector<uint64_t> values;
  tree.ScanFrom("alice", 100, [&](const BTree::Item& item) { values.push_back(item.value); });
  ASSERT_EQ(values.size(), 100u);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

TEST(BTreeTest, SplitsMaintainOrder) {
  BTree tree;
  for (int i = 0; i < 10'000; i++) {
    tree.Insert(Key(i), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tree.size(), 10'000u);
  EXPECT_GT(tree.Height(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, RandomInsertMatchesReference) {
  BTree tree;
  std::set<std::pair<std::string, uint64_t>> reference;
  Random rng(31);
  for (int i = 0; i < 20'000; i++) {
    const std::string key = Key(static_cast<int>(rng.Uniform(5'000)));
    const uint64_t value = rng.Uniform(10);
    const bool fresh = reference.insert({key, value}).second;
    EXPECT_EQ(tree.Insert(key, value), fresh);
  }
  EXPECT_EQ(tree.size(), reference.size());
  EXPECT_TRUE(tree.CheckInvariants());
  // Full iteration matches the reference exactly.
  auto it = reference.begin();
  bool match = true;
  tree.ForEach([&](const BTree::Item& item) {
    if (it == reference.end() || it->first != item.key || it->second != item.value) {
      match = false;
    } else {
      ++it;
    }
  });
  EXPECT_TRUE(match);
  EXPECT_EQ(it, reference.end());
}

TEST(BTreeTest, EraseRemovesExactPair) {
  BTree tree;
  for (int i = 0; i < 1'000; i++) {
    tree.Insert(Key(i), static_cast<uint64_t>(i));
  }
  EXPECT_TRUE(tree.Erase(Key(500), 500));
  EXPECT_FALSE(tree.Erase(Key(500), 500));
  EXPECT_FALSE(tree.Contains(Key(500), 500));
  EXPECT_TRUE(tree.Contains(Key(499), 499));
  EXPECT_TRUE(tree.Contains(Key(501), 501));
  EXPECT_EQ(tree.size(), 999u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, EraseEverythingThenReinsert) {
  BTree tree;
  for (int i = 0; i < 2'000; i++) {
    tree.Insert(Key(i), 1);
  }
  for (int i = 0; i < 2'000; i++) {
    EXPECT_TRUE(tree.Erase(Key(i), 1)) << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  for (int i = 0; i < 2'000; i += 2) {
    EXPECT_TRUE(tree.Insert(Key(i), 2));
  }
  EXPECT_EQ(tree.size(), 1'000u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, ScanFromMidRange) {
  BTree tree;
  for (int i = 0; i < 1'000; i++) {
    tree.Insert(Key(i), static_cast<uint64_t>(i));
  }
  std::vector<uint64_t> values;
  const size_t n =
      tree.ScanFrom(Key(123), 4, [&](const BTree::Item& item) { values.push_back(item.value); });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(values, (std::vector<uint64_t>{123, 124, 125, 126}));
}

TEST(BTreeTest, ScanFromBetweenKeys) {
  BTree tree;
  tree.Insert("b", 2);
  tree.Insert("d", 4);
  tree.Insert("f", 6);
  std::vector<uint64_t> values;
  tree.ScanFrom("c", 2, [&](const BTree::Item& item) { values.push_back(item.value); });
  EXPECT_EQ(values, (std::vector<uint64_t>{4, 6}));
}

TEST(BTreeTest, ScanPastEnd) {
  BTree tree;
  tree.Insert("a", 1);
  std::vector<uint64_t> values;
  const size_t n =
      tree.ScanFrom("z", 10, [&](const BTree::Item& item) { values.push_back(item.value); });
  EXPECT_EQ(n, 0u);
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Contains("x", 1));
  EXPECT_FALSE(tree.Erase("x", 1));
  size_t visited = tree.ScanFrom("", 10, [](const BTree::Item&) {});
  EXPECT_EQ(visited, 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

// Parameterized sweep: tree correctness across sizes (exercises 1..4 levels).
class BTreeSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeSizeTest, OrderedIterationAtEverySize) {
  const int n = GetParam();
  BTree tree;
  Random rng(n);
  std::vector<int> ids(n);
  for (int i = 0; i < n; i++) {
    ids[i] = i;
  }
  // Shuffle insertion order.
  for (int i = n - 1; i > 0; i--) {
    std::swap(ids[i], ids[rng.Uniform(static_cast<uint64_t>(i + 1))]);
  }
  for (int id : ids) {
    tree.Insert(Key(id), static_cast<uint64_t>(id));
  }
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<uint64_t> values;
  tree.ScanFrom("", static_cast<size_t>(n), [&](const BTree::Item& item) {
    values.push_back(item.value);
  });
  for (int i = 0; i < n; i++) {
    EXPECT_EQ(values[static_cast<size_t>(i)], static_cast<uint64_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeSizeTest,
                         ::testing::Values(0, 1, 2, 31, 32, 33, 64, 1'000, 20'000));

// ---------------------------------------------------------------- Indexlet.

TEST(IndexletTest, RangeMembership) {
  Indexlet indexlet(1, 1, "a", "m");
  EXPECT_TRUE(indexlet.ContainsKey("a"));
  EXPECT_TRUE(indexlet.ContainsKey("lzz"));
  EXPECT_FALSE(indexlet.ContainsKey("m"));
  EXPECT_FALSE(indexlet.ContainsKey("z"));
  Indexlet open_end(1, 1, "m", "");
  EXPECT_TRUE(open_end.ContainsKey("m"));
  EXPECT_TRUE(open_end.ContainsKey("zzz"));
  EXPECT_FALSE(open_end.ContainsKey("a"));
}

TEST(IndexletTest, ScanStopsAtRangeEnd) {
  Indexlet indexlet(1, 1, "a", "c");
  indexlet.Insert("apple", 1);
  indexlet.Insert("banana", 2);
  indexlet.Insert("cherry", 3);  // Outside [a, c) but inserted anyway.
  const auto hashes = indexlet.Scan("a", 10);
  EXPECT_EQ(hashes, (std::vector<KeyHash>{1, 2}));
}

TEST(IndexletTest, ScanReturnsHashesInKeyOrder) {
  Indexlet indexlet(1, 1, "", "");
  indexlet.Insert("delta", 4);
  indexlet.Insert("alpha", 1);
  indexlet.Insert("charlie", 3);
  indexlet.Insert("bravo", 2);
  EXPECT_EQ(indexlet.Scan("", 4), (std::vector<KeyHash>{1, 2, 3, 4}));
  EXPECT_EQ(indexlet.Scan("bravo", 2), (std::vector<KeyHash>{2, 3}));
}

TEST(IndexletTest, EraseRemovesEntry) {
  Indexlet indexlet(1, 1, "", "");
  indexlet.Insert("k", 9);
  EXPECT_TRUE(indexlet.Erase("k", 9));
  EXPECT_TRUE(indexlet.Scan("", 10).empty());
}

}  // namespace
}  // namespace rocksteady
