// Unit tests for the hot-path engine primitives introduced by the
// performance overhaul: the calendar-queue event loop and its slab pool
// (src/sim/simulator.h), InlineFunction (src/common/inline_function.h),
// FlatMap64 (src/common/flat_map.h), and the FaultInjector's flat per-link
// tables. These pin down the behaviors the overhaul must preserve —
// (time, seq) dispatch order, FIFO ties, zero-allocation steady state, and
// deterministic draw sequences — independently of the full-cluster tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/inline_function.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"

namespace rocksteady {
namespace {

// The calendar ring covers 8192 buckets x 1024 ns ~= 8.4 ms; anything past
// that waits in the overflow heap. Events on both sides of the horizon must
// still dispatch in global (time, seq) order.
constexpr Tick kBeyondHorizon = 100'000'000;  // 100 ms.

// ---------------------------------------------------- Calendar queue.

TEST(CalendarQueueTest, OverflowEventsInterleaveWithRingEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.At(kBeyondHorizon, [&] { order.push_back(4); });
  sim.At(500, [&] { order.push_back(1); });
  sim.At(2 * kBeyondHorizon, [&] { order.push_back(5); });
  sim.At(1'000'000, [&] { order.push_back(2); });
  sim.At(kBeyondHorizon - 1, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(sim.now(), 2 * kBeyondHorizon);
  EXPECT_TRUE(sim.Idle());
}

TEST(CalendarQueueTest, SameTickFifoHoldsInOverflowHeap) {
  // Equal-time events tie-break on seq even when they sat in the overflow
  // min-heap (which is exactly where heap order would lose FIFO without it).
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; i++) {
    sim.At(kBeyondHorizon, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(CalendarQueueTest, EventsCanScheduleAcrossTheHorizon) {
  // An event fired inside the window schedules past it, and vice versa once
  // the window has slid forward.
  Simulator sim;
  std::vector<std::string> order;
  sim.At(100, [&] {
    order.push_back("near");
    sim.At(kBeyondHorizon, [&] {
      order.push_back("far");
      sim.After(10, [&] { order.push_back("far+10"); });
    });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"near", "far", "far+10"}));
  EXPECT_EQ(sim.now(), kBeyondHorizon + 10);
}

TEST(CalendarQueueTest, RunUntilAdvancesClockPastEmptyWindow) {
  Simulator sim;
  int fired = 0;
  sim.At(kBeyondHorizon, [&] { fired++; });
  // Stop short of the overflow event, then run to completion.
  EXPECT_EQ(sim.RunUntil(kBeyondHorizon - 1), 0u);
  EXPECT_EQ(sim.now(), kBeyondHorizon - 1);
  EXPECT_EQ(fired, 0);
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(CalendarQueueTest, TraceHashIsDeterministicAndOrderSensitive) {
  auto run = [](Tick second_event) {
    Simulator sim;
    for (Tick t : {Tick{100}, second_event, kBeyondHorizon}) {
      sim.At(t, [] {});
    }
    sim.Run();
    return sim.trace_hash();
  };
  EXPECT_EQ(run(200), run(200));     // Same schedule, same hash.
  EXPECT_NE(run(200), run(300));     // Any timing change perturbs it.
}

// ---------------------------------------------------- Event slab pool.

TEST(EventPoolTest, SteadyStateChurnNeverGrowsThePool) {
  Simulator sim;
  // Warm up: one burst allocates the first slab(s).
  for (int i = 0; i < 64; i++) {
    sim.After(i + 1, [] {});
  }
  sim.Run();
  const uint64_t warm_slabs = sim.pool_stats().slab_allocations;
  EXPECT_GE(warm_slabs, 1u);

  // Thousands of schedule -> dispatch -> free cycles at the same live-event
  // ceiling must be fed entirely from the free list.
  for (int cycle = 0; cycle < 200; cycle++) {
    for (int i = 0; i < 64; i++) {
      sim.After(i + 1, [] {});
    }
    sim.Run();
  }
  EXPECT_EQ(sim.pool_stats().slab_allocations, warm_slabs);
}

TEST(EventPoolTest, PoolStatsTrackLiveAndFreeEvents) {
  Simulator sim;
  EXPECT_EQ(sim.pool_stats().live_events, 0u);
  sim.At(10, [] {});
  sim.At(kBeyondHorizon, [] {});  // One ring event, one overflow event.
  EXPECT_EQ(sim.pool_stats().live_events, 2u);
  sim.Run();
  const Simulator::PoolStats after = sim.pool_stats();
  EXPECT_EQ(after.live_events, 0u);
  EXPECT_GE(after.free_events, 2u);  // Dispatched events returned to the pool.
}

// ---------------------------------------------------- InlineFunction.

TEST(InlineFunctionTest, SmallCapturesStayInline) {
  const uint64_t before = InlineFunctionHeapFallbacks();
  int hits = 0;
  InlineFunction<void(), 64> fn = [&hits] { hits++; };
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(InlineFunctionHeapFallbacks(), before);
}

TEST(InlineFunctionTest, OversizedCapturesFallBackToHeapAndCount) {
  const uint64_t before = InlineFunctionHeapFallbacks();
  struct Big {
    char bytes[128];
  } big{};
  big.bytes[0] = 7;
  InlineFunction<int(), 64> fn = [big] { return static_cast<int>(big.bytes[0]); };
  EXPECT_EQ(fn(), 7);
  EXPECT_EQ(InlineFunctionHeapFallbacks(), before + 1);
}

TEST(InlineFunctionTest, MoveOnlyCallablesWork) {
  auto value = std::make_unique<int>(42);
  InlineFunction<int(), 64> fn = [v = std::move(value)] { return *v; };
  InlineFunction<int(), 64> moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(moved));
  EXPECT_EQ(moved(), 42);
}

TEST(InlineFunctionTest, NullAssignmentClears) {
  InlineFunction<void(), 64> fn = [] {};
  EXPECT_TRUE(static_cast<bool>(fn));
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(fn == nullptr);
}

TEST(InlineFunctionTest, ArgumentsAndReturnValuesFlowThrough) {
  // The bias capture keeps the closure non-empty (a captureless lambda's
  // unwritten storage trips GCC's -Wmaybe-uninitialized under -Werror).
  const int bias = 1;
  InlineFunction<int(int, int), 32> add = [bias](int a, int b) { return a + b + bias; };
  EXPECT_EQ(add(2, 3), 6);
}

// ---------------------------------------------------- FlatMap64.

TEST(FlatMapTest, ZeroIsALegalKey) {
  FlatMap64<int> map;
  EXPECT_EQ(map.Find(0), nullptr);
  map[0] = 11;
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(*map.Find(0), 11);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.Erase(0));
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMapTest, EraseThenReinsertReusesTombstones) {
  FlatMap64<uint64_t> map;
  // Churn the same small key set far more times than the capacity: if
  // tombstones were not reused/swept, the table would wedge or grow without
  // bound. size() staying exact proves the probe paths stay coherent.
  for (int round = 0; round < 1000; round++) {
    for (uint64_t k = 0; k < 8; k++) {
      map[k] = k * 10;
    }
    EXPECT_EQ(map.size(), 8u);
    for (uint64_t k = 0; k < 8; k++) {
      ASSERT_NE(map.Find(k), nullptr);
      EXPECT_EQ(*map.Find(k), k * 10);
      EXPECT_TRUE(map.Erase(k));
    }
    EXPECT_TRUE(map.empty());
  }
  EXPECT_FALSE(map.Erase(3));  // Erasing an absent key reports failure.
}

TEST(FlatMapTest, GrowthPreservesAllEntries) {
  FlatMap64<uint64_t> map;
  constexpr uint64_t kCount = 10'000;
  for (uint64_t k = 0; k < kCount; k++) {
    map[k * 0x9e3779b97f4a7c15ull] = k;  // Scattered keys force real probing.
  }
  EXPECT_EQ(map.size(), kCount);
  for (uint64_t k = 0; k < kCount; k++) {
    uint64_t* v = map.Find(k * 0x9e3779b97f4a7c15ull);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(map.Find(1), nullptr);  // A key never inserted stays absent.
}

TEST(FlatMapTest, ValuesAreDestroyedOnErase) {
  // Erase must release held resources immediately (the dedup cache holds
  // cloned responses; leaking them until rehash would balloon memory).
  FlatMap64<std::shared_ptr<int>> map;
  auto value = std::make_shared<int>(5);
  std::weak_ptr<int> watch = value;
  map[77] = std::move(value);
  EXPECT_FALSE(watch.expired());
  map.Erase(77);
  EXPECT_TRUE(watch.expired());
}

TEST(FlatMapTest, PackLinkIsInjectiveOnDirection) {
  EXPECT_NE(PackLink(1, 2), PackLink(2, 1));
  EXPECT_EQ(PackLink(1, 2), PackLink(1, 2));
  EXPECT_EQ(PackLink(0, 0), 0u);
  EXPECT_EQ(PackLink(1, 0), uint64_t{1} << 32);
}

// ---------------------------------------------------- FaultInjector.

TEST(FaultInjectorFlatTest, DrawSequenceIsAPureFunctionOfSeed) {
  // Two injectors with the same seed and config must produce identical
  // decision streams — the flat per-link tables cannot perturb the RNG.
  FaultInjector::Config config;
  config.seed = 42;
  config.drop_probability = 0.3;
  config.duplicate_probability = 0.2;
  config.max_extra_delay_ns = 1000;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 500; i++) {
    const uint32_t from = static_cast<uint32_t>(i % 7);
    const uint32_t to = static_cast<uint32_t>((i * 3) % 5);
    const FaultInjector::Decision da = a.OnMessage(from, to);
    const FaultInjector::Decision db = b.OnMessage(from, to);
    EXPECT_EQ(da.copies, db.copies);
    EXPECT_EQ(da.extra_delay_ns, db.extra_delay_ns);
  }
}

TEST(FaultInjectorFlatTest, DropNextConsumesExactlyNMessages) {
  FaultInjector injector(FaultInjector::Config{.seed = 1});
  injector.DropNext(3, 4, 2);
  EXPECT_EQ(injector.OnMessage(3, 4).copies, 0);
  EXPECT_EQ(injector.OnMessage(4, 3).copies, 1);  // Reverse link unaffected.
  EXPECT_EQ(injector.OnMessage(3, 4).copies, 0);
  EXPECT_EQ(injector.OnMessage(3, 4).copies, 1);  // Budget exhausted.
}

TEST(FaultInjectorFlatTest, DuplicateNextForcesExactlyNDuplicates) {
  FaultInjector injector(FaultInjector::Config{.seed = 1});
  injector.DuplicateNext(9, 2, 1);
  EXPECT_EQ(injector.OnMessage(9, 2).copies, 2);
  EXPECT_EQ(injector.OnMessage(9, 2).copies, 1);
}

TEST(FaultInjectorFlatTest, LinkOverridesApplyAndClear) {
  FaultInjector::Config config;
  config.seed = 5;
  config.drop_probability = 0.0;  // Base fabric is lossless.
  FaultInjector injector(config);
  injector.SetLinkOverride(1, 2, /*drop_probability=*/1.0, /*duplicate_probability=*/0.0);
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(injector.OnMessage(1, 2).copies, 0);  // Overridden link drops all.
    EXPECT_EQ(injector.OnMessage(2, 1).copies, 1);  // Other links untouched.
  }
  injector.ClearLinkOverride(1, 2);
  EXPECT_EQ(injector.OnMessage(1, 2).copies, 1);
}

}  // namespace
}  // namespace rocksteady
