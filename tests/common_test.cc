// Unit tests for src/common: hashing, CRC32C, Zipfian, histogram, timelines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/crc32c.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/timeseries.h"
#include "src/common/zipfian.h"

namespace rocksteady {
namespace {

// ---------------------------------------------------------------- Hashing.

TEST(HashTest, DeterministicAcrossCalls) {
  const std::string key = "user:12345";
  EXPECT_EQ(HashKey(key), HashKey(key));
  EXPECT_EQ(Murmur3_64(key.data(), key.size(), 7), Murmur3_64(key.data(), key.size(), 7));
}

TEST(HashTest, SeedChangesResult) {
  const std::string key = "user:12345";
  EXPECT_NE(Murmur3_64(key.data(), key.size(), 0), Murmur3_64(key.data(), key.size(), 1));
}

TEST(HashTest, EmptyAndShortKeys) {
  // All lengths 0..32 must hash without reading out of bounds and produce
  // distinct values for distinct content.
  std::set<uint64_t> seen;
  std::string key;
  for (int len = 0; len <= 32; len++) {
    seen.insert(HashKey(key));
    key.push_back(static_cast<char>('a' + len % 26));
  }
  EXPECT_EQ(seen.size(), 33u);
}

TEST(HashTest, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  std::string key = "0123456789abcdef";
  const uint64_t base = HashKey(key);
  int total_flipped = 0;
  int trials = 0;
  for (size_t byte = 0; byte < key.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      key[byte] ^= static_cast<char>(1 << bit);
      total_flipped += std::popcount(base ^ HashKey(key));
      key[byte] ^= static_cast<char>(1 << bit);
      trials++;
    }
  }
  const double mean_flipped = static_cast<double>(total_flipped) / trials;
  EXPECT_GT(mean_flipped, 24.0);
  EXPECT_LT(mean_flipped, 40.0);
}

TEST(HashTest, UniformBucketSpread) {
  // Keys hashed into 128 buckets by top bits should spread evenly.
  constexpr int kBuckets = 128;
  constexpr int kKeys = 64'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kKeys; i++) {
    const std::string key = "key" + std::to_string(i);
    counts[HashKey(key) >> 57]++;
  }
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*min_it, kKeys / kBuckets / 2);
  EXPECT_LT(*max_it, kKeys / kBuckets * 2);
}

// ---------------------------------------------------------------- CRC32C.

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C test vector: "123456789" -> 0xE3069283.
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(0, digits, 9), 0xE3069283u);
  // 32 zero bytes -> 0x8A9136AA (iSCSI test vector).
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(0, zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog, repeatedly";
  const uint32_t oneshot = Crc32c(0, data.data(), data.size());
  for (size_t split = 0; split <= data.size(); split += 7) {
    uint32_t crc = Crc32c(0, data.data(), split);
    crc = Crc32c(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, oneshot) << "split at " << split;
  }
}

TEST(Crc32cTest, UnalignedStartMatches) {
  std::vector<uint8_t> buffer(128);
  for (size_t i = 0; i < buffer.size(); i++) {
    buffer[i] = static_cast<uint8_t>(i * 37);
  }
  const uint32_t reference = Crc32c(0, buffer.data() + 1, 64);
  // Copy to an aligned buffer and compare.
  std::vector<uint8_t> aligned(buffer.begin() + 1, buffer.begin() + 65);
  EXPECT_EQ(Crc32c(0, aligned.data(), aligned.size()), reference);
}

TEST(Crc32cTest, AccumulatorMatchesFreeFunction) {
  const uint64_t value = 0xdeadbeefcafef00dULL;
  Crc32cAccumulator acc;
  acc.UpdateValue(value).Update("tail", 4);
  uint32_t crc = Crc32c(0, &value, sizeof(value));
  crc = Crc32c(crc, "tail", 4);
  EXPECT_EQ(acc.result(), crc);
}

TEST(Crc32cTest, DetectsSingleBitCorruption) {
  std::vector<uint8_t> data(100, 0xAB);
  const uint32_t good = Crc32c(0, data.data(), data.size());
  data[50] ^= 0x01;
  EXPECT_NE(Crc32c(0, data.data(), data.size()), good);
}

// ---------------------------------------------------------------- Random.

TEST(RandomTest, DeterministicForSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    same += (a.Next() == b.Next());
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, UniformRangeBounds) {
  Random rng(7);
  for (int i = 0; i < 10'000; i++) {
    const uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 10'000; i++) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---------------------------------------------------------------- Zipfian.

TEST(ZipfianTest, UniformWhenThetaZero) {
  ZipfianGenerator gen(1000, 0.0);
  Random rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; i++) {
    counts[gen.Next(rng) / 100]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 8'000);
    EXPECT_LT(c, 12'000);
  }
}

TEST(ZipfianTest, RanksWithinBounds) {
  for (double theta : {0.0, 0.5, 0.99, 1.5}) {
    ZipfianGenerator gen(1'000'000, theta);
    Random rng(11);
    for (int i = 0; i < 10'000; i++) {
      EXPECT_LT(gen.Next(rng), 1'000'000u) << "theta " << theta;
    }
  }
}

TEST(ZipfianTest, SkewIncreasesWithTheta) {
  // The fraction of accesses landing on the top 1% of ranks must grow
  // with theta.
  auto top1_fraction = [](double theta) {
    ZipfianGenerator gen(100'000, theta);
    Random rng(5);
    int hits = 0;
    constexpr int kSamples = 200'000;
    for (int i = 0; i < kSamples; i++) {
      hits += (gen.Next(rng) < 1'000);
    }
    return static_cast<double>(hits) / kSamples;
  };
  const double f0 = top1_fraction(0.0);
  const double f05 = top1_fraction(0.5);
  const double f099 = top1_fraction(0.99);
  const double f15 = top1_fraction(1.5);
  EXPECT_LT(f0, 0.02);
  EXPECT_GT(f05, f0 * 2);
  EXPECT_GT(f099, f05 * 2);
  EXPECT_GT(f15, f099);
  // YCSB theta=0.99: top 1% of keys draw a large share of traffic.
  EXPECT_GT(f099, 0.3);
}

TEST(ZipfianTest, RankZeroIsMostPopular) {
  ZipfianGenerator gen(10'000, 0.99);
  Random rng(13);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100'000; i++) {
    counts[gen.Next(rng)]++;
  }
  const auto most = std::max_element(counts.begin(), counts.end(),
                                     [](auto& a, auto& b) { return a.second < b.second; });
  EXPECT_EQ(most->first, 0u);
}

TEST(ZipfianTest, ScrambledSpreadsHotKeys) {
  // Scrambled Zipfian should place the hottest keys all over the key space
  // rather than clustered at low ids.
  ScrambledZipfianGenerator gen(1'000'000, 0.99);
  Random rng(17);
  int low_half = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; i++) {
    low_half += (gen.Next(rng) < 500'000);
  }
  const double fraction = static_cast<double>(low_half) / kSamples;
  EXPECT_GT(fraction, 0.40);
  EXPECT_LT(fraction, 0.60);
}

// -------------------------------------------------------------- Histogram.

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(12'345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 12'345u);
  EXPECT_EQ(h.max(), 12'345u);
  // Bucketed value must be within the bucket's relative error (~1.6%).
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 12'345.0, 12'345.0 * 0.02);
}

TEST(HistogramTest, PercentilesOfUniformSequence) {
  Histogram h;
  for (uint64_t v = 1; v <= 10'000; v++) {
    h.Record(v);
  }
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 5'000.0, 5'000.0 * 0.03);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 9'900.0, 9'900.0 * 0.03);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.999)), 9'990.0, 9'990.0 * 0.03);
  EXPECT_EQ(h.Percentile(1.0), 10'000u);
  EXPECT_NEAR(h.Mean(), 5'000.5, 1.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below 64 land in unit-width buckets.
  Histogram h;
  for (uint64_t v = 0; v < 64; v++) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(1.0), 63u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(100);
  a.Record(200);
  b.Record(1'000'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 1'000'000u);
  EXPECT_EQ(a.min(), 100u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  const uint64_t big = 123'456'789'012ULL;
  h.Record(big);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), static_cast<double>(big), big * 0.02);
}

// -------------------------------------------------------------- Timelines.

TEST(LatencyTimelineTest, BucketsByCompletionTime) {
  LatencyTimeline timeline(kSecond, 10);
  timeline.Record(kSecond / 2, 5'000);       // Window 0.
  timeline.Record(kSecond + 1, 7'000);       // Window 1.
  timeline.Record(kSecond * 9 + 5, 9'000);   // Window 9.
  timeline.Record(kSecond * 100, 11'000);    // Out of range: dropped.
  EXPECT_EQ(timeline.Count(0), 1u);
  EXPECT_EQ(timeline.Count(1), 1u);
  EXPECT_EQ(timeline.Count(9), 1u);
  EXPECT_EQ(timeline.Total().count(), 3u);
}

TEST(LatencyTimelineTest, ThroughputPerWindow) {
  LatencyTimeline timeline(kSecond / 2, 4);
  for (int i = 0; i < 1'000; i++) {
    timeline.Record(kSecond / 4, 1'000);
  }
  EXPECT_DOUBLE_EQ(timeline.Throughput(0), 2'000.0);  // 1000 ops / 0.5 s.
}

TEST(UtilizationTimelineTest, SplitsAcrossWindows) {
  UtilizationTimeline util(1'000, 4);
  util.AddBusy(500, 1'000);  // 500 in window 0, 500 in window 1.
  EXPECT_DOUBLE_EQ(util.ActiveCores(0), 0.5);
  EXPECT_DOUBLE_EQ(util.ActiveCores(1), 0.5);
  EXPECT_DOUBLE_EQ(util.ActiveCores(2), 0.0);
}

TEST(UtilizationTimelineTest, MultipleCoresAccumulate) {
  UtilizationTimeline util(1'000, 2);
  util.AddBusy(0, 1'000);
  util.AddBusy(0, 1'000);
  util.AddBusy(0, 500);
  EXPECT_DOUBLE_EQ(util.ActiveCores(0), 2.5);
}

TEST(SlidingLatencyTrackerTest, EmptyReturnsZero) {
  SlidingLatencyTracker tracker(100, 4);
  EXPECT_EQ(tracker.RecentPercentile(0, 0.999), 0u);
  EXPECT_EQ(tracker.RecentCount(123), 0u);
}

TEST(SlidingLatencyTrackerTest, PercentileOverRecentWindow) {
  SlidingLatencyTracker tracker(100, 4);
  for (uint64_t i = 1; i <= 100; i++) {
    tracker.Record(50, static_cast<Tick>(i));
  }
  EXPECT_EQ(tracker.RecentCount(50), 100u);
  // Small values are exact in the histogram, so the tail is sharp.
  EXPECT_GE(tracker.RecentPercentile(50, 0.99), 95u);
  EXPECT_LE(tracker.RecentPercentile(50, 0.50), 60u);
}

TEST(SlidingLatencyTrackerTest, OldSamplesAgeOut) {
  SlidingLatencyTracker tracker(100, 4);
  tracker.Record(0, 1'000'000);  // A horrible latency, long ago.
  EXPECT_GE(tracker.RecentPercentile(0, 0.999), 1'000'000u / 2);
  // Far past the whole window: the old sample must be gone, not still
  // inflating the tail.
  tracker.Record(10'000, 5);
  EXPECT_EQ(tracker.RecentCount(10'000), 1u);
  EXPECT_LT(tracker.RecentPercentile(10'000, 0.999), 1'000u);
}

TEST(SlidingLatencyTrackerTest, RotatesThroughAdjacentBuckets) {
  SlidingLatencyTracker tracker(100, 2);  // 200-tick window.
  tracker.Record(10, 7);
  tracker.Record(110, 9);  // Next bucket; first still in window.
  EXPECT_EQ(tracker.RecentCount(110), 2u);
  // Two buckets later the first sample's slot has been recycled.
  tracker.Record(310, 11);
  EXPECT_LE(tracker.RecentCount(310), 2u);
}

TEST(CounterTimelineTest, RatesAndTotals) {
  CounterTimeline counter(kSecond, 3);
  counter.Add(0, 100);
  counter.Add(kSecond / 2, 200);
  counter.Add(kSecond * 2, 50);
  EXPECT_EQ(counter.Count(0), 300u);
  EXPECT_DOUBLE_EQ(counter.Rate(0), 300.0);
  EXPECT_EQ(counter.TotalCount(), 350u);
}

}  // namespace
}  // namespace rocksteady
