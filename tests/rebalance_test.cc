// Tests for the autonomous rebalancer (src/rebalance): load telemetry, the
// piggyback transport, checked tablet splits (including crash convergence),
// the planner policy loop, and a chaos suite asserting the planner + faults
// + splits never lose an acked write and replay bit-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/audit.h"
#include "src/common/hash.h"
#include "src/migration/rocksteady_target.h"
#include "src/rebalance/load_stats.h"
#include "src/rebalance/planner.h"
#include "src/rebalance/telemetry.h"
#include "src/sim/fault_injector.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kQuarter = KeyHash{1} << 62;
constexpr KeyHash kMid = KeyHash{1} << 63;

// ---------------------------------------------------------- Load tracker.

TEST(TabletLoadTrackerTest, SumsAndExpiresWindows) {
  TabletLoadTracker tracker;
  const Tick t0 = kMillisecond;
  tracker.Record(t0, kTable, 0, /*is_write=*/false, 100);
  tracker.Record(t0, kTable, kMid, /*is_write=*/true, 50);
  tracker.Record(t0, kTable, ~KeyHash{0}, /*is_write=*/false, 10);

  RangeLoad all = tracker.Sum(t0, kTable, 0, ~KeyHash{0});
  EXPECT_EQ(all.reads, 2u);
  EXPECT_EQ(all.writes, 1u);
  EXPECT_EQ(all.bytes, 160u);

  // Range clipping: only the write landed in the upper half's first bin.
  RangeLoad upper = tracker.Sum(t0, kTable, kMid, ~KeyHash{0});
  EXPECT_EQ(upper.writes, 1u);
  EXPECT_EQ(upper.reads, 1u);  // The ~0 read.

  // Other tables are invisible.
  EXPECT_EQ(tracker.Sum(t0, kTable + 1, 0, ~KeyHash{0}).ops(), 0u);

  // Everything ages out after the full window passes.
  const Tick later = t0 + tracker.span() + 2 * kTelemetryBucketSpanNs;
  EXPECT_EQ(tracker.Sum(later, kTable, 0, ~KeyHash{0}).ops(), 0u);
}

TEST(TabletLoadTrackerTest, BinHistogramLocalizesHotSpot) {
  TabletLoadTracker tracker;
  const Tick t0 = kMillisecond;
  // 100 ops in bin 3, 10 in bin 40.
  for (int i = 0; i < 100; i++) {
    tracker.Record(t0, kTable, (KeyHash{3} << kHotspotBinShift) + 17, false, 1);
  }
  for (int i = 0; i < 10; i++) {
    tracker.Record(t0, kTable, (KeyHash{40} << kHotspotBinShift) + 5, false, 1);
  }
  const auto ops = tracker.BinOps(t0, kTable, 0, ~KeyHash{0});
  EXPECT_EQ(ops[3], 100u);
  EXPECT_EQ(ops[40], 10u);
  EXPECT_EQ(ops[0], 0u);
  // Clipped to the lower half, bin 40 disappears.
  const auto lower = tracker.BinOps(t0, kTable, 0, kMid - 1);
  EXPECT_EQ(lower[3], 100u);
  EXPECT_EQ(lower[40], 0u);
}

TEST(TabletLoadTrackerTest, ProratesPartialBins) {
  TabletLoadTracker tracker;
  const Tick t0 = kMillisecond;
  for (int i = 0; i < 1000; i++) {
    tracker.Record(t0, kTable, KeyHash{7}, false, 1);  // All in bin 0.
  }
  // A range covering exactly half of bin 0 is credited ~half the ops.
  const RangeLoad half = tracker.Sum(t0, kTable, 0, kHotspotBinSpan / 2 - 1);
  EXPECT_EQ(half.reads, 500u);
}

// ----------------------------------------------------------- Wire codec.

TEST(TelemetryCodecTest, RoundTripsAndRejectsTruncation) {
  LoadTelemetryFrame frame;
  frame.server = 3;
  frame.sampled_at = 123456789;
  frame.recent_p999_ns = 250'000;
  frame.dispatch_backlog_ns = 10'000;
  frame.client_queue_depth = 7;
  frame.memory_in_use = 1 << 20;
  frame.memory_budget_bytes = 1 << 24;
  TabletLoadSample t;
  t.table = kTable;
  t.start_hash = kQuarter;
  t.end_hash = kMid - 1;
  t.reads_per_sec = 90'000;
  t.writes_per_sec = 10'000;
  t.bytes_per_sec = 12'000'000;
  t.resident_bytes = 42 << 10;
  t.bin_ops[17] = 999;
  t.bin_ops[63] = 1;
  frame.tablets.push_back(t);

  const std::vector<uint8_t> bytes = EncodeLoadFrame(frame);
  LoadTelemetryFrame decoded;
  ASSERT_TRUE(DecodeLoadFrame(bytes, &decoded));
  EXPECT_EQ(decoded.server, frame.server);
  EXPECT_EQ(decoded.sampled_at, frame.sampled_at);
  EXPECT_EQ(decoded.recent_p999_ns, frame.recent_p999_ns);
  EXPECT_EQ(decoded.client_queue_depth, frame.client_queue_depth);
  EXPECT_EQ(decoded.memory_budget_bytes, frame.memory_budget_bytes);
  ASSERT_EQ(decoded.tablets.size(), 1u);
  EXPECT_EQ(decoded.tablets[0].start_hash, kQuarter);
  EXPECT_EQ(decoded.tablets[0].reads_per_sec, 90'000u);
  EXPECT_EQ(decoded.tablets[0].bin_ops[17], 999u);
  EXPECT_EQ(decoded.tablets[0].bin_ops[63], 1u);
  EXPECT_EQ(decoded.tablets[0].bin_ops[0], 0u);

  for (size_t cut : {size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    LoadTelemetryFrame junk;
    EXPECT_FALSE(DecodeLoadFrame(
        std::vector<uint8_t>(bytes.begin(), bytes.begin() + static_cast<long>(cut)), &junk));
  }
}

// ------------------------------------------------- Piggybacked transport.

ClusterConfig SmallConfig(uint64_t seed = 42) {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.seed = seed;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  return config;
}

TEST(TelemetryTransportTest, FramesReachPlannerViaPingReplies) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, 500, 30, 100);
  ClusterTelemetry telemetry(&cluster);
  RebalancePlanner planner(&cluster);  // Not started: just collects frames.

  // Drive some client traffic so the frames carry real rates.
  Simulator& sim = cluster.sim();
  // Keep traffic flowing through the whole run so the (16 ms) sliding
  // window is non-empty whenever a ping samples a frame.
  for (int i = 0; i < 2'200; i++) {
    sim.At(kMillisecond + static_cast<Tick>(i) * 10 * kMicrosecond, [&cluster, i] {
      cluster.client(0).Read(kTable, Cluster::MakeKey(static_cast<uint64_t>(i % 500), 30),
                             [](Status, const std::string&) {});
    });
  }
  cluster.coordinator().StartFailureDetector();
  sim.RunUntil(25 * kMillisecond);
  cluster.coordinator().StopFailureDetector();
  sim.Run();

  // Every master's frame arrived by piggyback on ping replies.
  for (size_t i = 0; i < cluster.num_masters(); i++) {
    const auto& frame = planner.frame(cluster.master(i).id());
    ASSERT_TRUE(frame.has_value()) << "master " << i;
    EXPECT_EQ(frame->server, cluster.master(i).id());
    EXPECT_GT(frame->sampled_at, 0u);
  }
  // The loaded master's frame shows its (only) tablet with read traffic.
  const auto& loaded = planner.frame(cluster.master(0).id());
  ASSERT_EQ(loaded->tablets.size(), 1u);
  EXPECT_GT(loaded->tablets[0].reads_per_sec, 0u);
  EXPECT_GT(loaded->tablets[0].resident_bytes, 0u);
}

// ------------------------------------------------------- Checked splits.

TEST(CheckedSplitTest, RefusesNarrowEmptyAndUnknownSplits) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);
  Coordinator& coordinator = cluster.coordinator();

  // Lower half narrower than the minimum span.
  EXPECT_EQ(coordinator.SplitTabletChecked(kTable, Coordinator::kMinSplitSpan / 2),
            Status::kInvalidState);
  // A split at the range start would create an empty tablet.
  EXPECT_EQ(coordinator.SplitTabletChecked(kTable, 0), Status::kInvalidState);
  // Unknown table.
  EXPECT_EQ(coordinator.SplitTabletChecked(kTable + 9, kMid), Status::kTableNotFound);
  EXPECT_EQ(coordinator.splits_refused(), 3u);
  EXPECT_EQ(coordinator.splits_performed(), 0u);

  // A legal split works and both layers converge once events drain.
  EXPECT_EQ(coordinator.SplitTabletChecked(kTable, kMid), Status::kOk);
  cluster.sim().Run();
  EXPECT_EQ(coordinator.splits_performed(), 1u);
  const Tablet* upper = cluster.master(0).objects().tablets().Find(kTable, kMid);
  ASSERT_NE(upper, nullptr);
  EXPECT_EQ(upper->start_hash, kMid);
  AuditReport report;
  coordinator.AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(CheckedSplitTest, RefusesSplitUnderInFlightMigration) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, 2'000, 30, 100);
  Simulator& sim = cluster.sim();

  std::optional<MigrationStats> stats;
  sim.At(kMillisecond, [&] {
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                             [&](const MigrationStats& s) { stats = s; });
  });
  // Let the migration get under way (ownership moved, dependency live).
  sim.RunUntil(kMillisecond + 500 * kMicrosecond);
  ASSERT_TRUE(cluster.coordinator().FindDependencyBySource(cluster.master(0).id()).has_value());

  // Splitting the migrating range is refused while the dependency is live...
  EXPECT_EQ(cluster.coordinator().SplitTabletChecked(kTable, kMid + kQuarter),
            Status::kRetryLater);
  // ...but the source's untouched lower half splits fine.
  EXPECT_EQ(cluster.coordinator().SplitTabletChecked(kTable, kQuarter), Status::kOk);

  sim.Run();
  ASSERT_TRUE(stats.has_value());
  // Once committed, the formerly migrating range splits normally again.
  EXPECT_EQ(cluster.coordinator().SplitTabletChecked(kTable, kMid + kQuarter), Status::kOk);
  sim.Run();
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(CheckedSplitTest, CoordinatorCrashMidSplitConvergesOnRestart) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);
  Coordinator& coordinator = cluster.coordinator();

  // The map commits synchronously; the owner's mirror is deferred. Crash
  // the coordinator before the mirror lands: the owner is stranded unsplit.
  EXPECT_EQ(coordinator.SplitTabletChecked(kTable, kMid), Status::kOk);
  coordinator.Crash();
  cluster.sim().Run();
  EXPECT_EQ(cluster.master(0).objects().tablets().tablets().size(), 1u);

  // Restart reconciles every map boundary back onto the owners.
  coordinator.Restart();
  const Tablet* upper = cluster.master(0).objects().tablets().Find(kTable, kMid);
  ASSERT_NE(upper, nullptr);
  EXPECT_EQ(upper->start_hash, kMid);
  AuditReport report;
  coordinator.AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ------------------------------------------------------ Planner policy.

// Builds a frame claiming `server` serves `tablets` (ops spread uniformly
// over each tablet's bins).
LoadTelemetryFrame MakeFrame(Simulator& sim, ServerId server,
                             std::vector<TabletLoadSample> tablets) {
  LoadTelemetryFrame frame;
  frame.server = server;
  frame.sampled_at = sim.now();
  frame.tablets = std::move(tablets);
  return frame;
}

TabletLoadSample MakeSample(KeyHash start, KeyHash end, uint64_t reads_per_sec) {
  TabletLoadSample t;
  t.table = kTable;
  t.start_hash = start;
  t.end_hash = end;
  t.reads_per_sec = reads_per_sec;
  // Uniform histogram over the covered bins.
  const size_t first = static_cast<size_t>(start >> kHotspotBinShift);
  const size_t last = static_cast<size_t>(end >> kHotspotBinShift);
  for (size_t b = first; b <= last; b++) {
    t.bin_ops[b] = reads_per_sec / (last - first + 1);
  }
  return t;
}

RebalancerOptions TestPlannerOptions() {
  RebalancerOptions options;
  options.min_imbalance_ops_per_sec = 1'000;
  return options;
}

TEST(PlannerTest, HysteresisThenMigratesBestFitTablet) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.coordinator().SplitTablet(kTable, kMid);
  cluster.LoadTable(kTable, 1'000, 30, 100);
  RebalancePlanner planner(&cluster, TestPlannerOptions());
  Simulator& sim = cluster.sim();

  const ServerId hot = cluster.master(0).id();
  auto feed = [&] {
    planner.InjectFrame(MakeFrame(sim, hot,
                                  {MakeSample(0, kMid - 1, 30'000),
                                   MakeSample(kMid, ~KeyHash{0}, 8'000)}));
    for (size_t i = 1; i < cluster.num_masters(); i++) {
      planner.InjectFrame(MakeFrame(sim, cluster.master(i).id(), {}));
    }
  };

  feed();
  planner.PlanOnce();
  // Round one only arms: hysteresis demands persistence.
  EXPECT_EQ(planner.state(), RebalancePlanner::State::kArming);
  EXPECT_EQ(planner.stats().migrations_started, 0u);

  planner.PlanOnce();
  EXPECT_EQ(planner.state(), RebalancePlanner::State::kMigrating);
  EXPECT_EQ(planner.stats().migrations_started, 1u);
  sim.Run();
  EXPECT_EQ(planner.stats().migrations_completed, 1u);
  EXPECT_EQ(planner.state(), RebalancePlanner::State::kCooldown);
  // Best fit under the cap: the 8k tablet moved (desired ≈ min(max-mean,
  // mean) ≈ 9.5k; the 30k tablet overshoots), to the least-loaded target.
  EXPECT_NE(cluster.coordinator().OwnerOf(kTable, kMid), hot);
  EXPECT_EQ(cluster.coordinator().OwnerOf(kTable, 0), hot);
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(PlannerTest, BalancedOrStaleClusterNeverActs) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  RebalancePlanner planner(&cluster, TestPlannerOptions());
  Simulator& sim = cluster.sim();

  // Balanced: equal load everywhere.
  for (size_t i = 0; i < cluster.num_masters(); i++) {
    planner.InjectFrame(MakeFrame(sim, cluster.master(i).id(),
                                  {MakeSample(0, ~KeyHash{0}, 10'000)}));
  }
  planner.PlanOnce();
  EXPECT_EQ(planner.stats().skipped_balanced, 1u);
  EXPECT_EQ(planner.state(), RebalancePlanner::State::kIdle);

  // Stale: frames exist but are too old to act on.
  sim.At(sim.now() + 200 * kMillisecond, [] {});
  sim.Run();
  planner.PlanOnce();
  EXPECT_EQ(planner.stats().skipped_stale, 1u);
  EXPECT_EQ(planner.stats().migrations_started, 0u);
}

TEST(PlannerTest, NeverMigratesIntoOverloadedOrBudgetPressedTarget) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.coordinator().SplitTablet(kTable, kMid);
  RebalancerOptions options = TestPlannerOptions();
  options.hysteresis_rounds = 1;
  RebalancePlanner planner(&cluster, options);
  Simulator& sim = cluster.sim();

  const ServerId hot = cluster.master(0).id();
  auto hot_frame = [&] {
    return MakeFrame(sim, hot,
                     {MakeSample(0, kMid - 1, 30'000), MakeSample(kMid, ~KeyHash{0}, 8'000)});
  };

  // Every prospective target is past an overload ceiling.
  planner.InjectFrame(hot_frame());
  for (size_t i = 1; i < cluster.num_masters(); i++) {
    LoadTelemetryFrame frame = MakeFrame(sim, cluster.master(i).id(), {});
    frame.recent_p999_ns = kTargetP999CeilingNs + 1;
    planner.InjectFrame(frame);
  }
  planner.PlanOnce();
  EXPECT_EQ(planner.stats().skipped_no_target, 1u);
  EXPECT_EQ(planner.stats().migrations_started, 0u);

  // Every prospective target would blow its memory budget.
  planner.InjectFrame(hot_frame());
  for (size_t i = 1; i < cluster.num_masters(); i++) {
    LoadTelemetryFrame frame = MakeFrame(sim, cluster.master(i).id(), {});
    frame.memory_budget_bytes = 1 << 20;
    frame.memory_in_use = 1 << 20;  // No headroom at all.
    planner.InjectFrame(frame);
  }
  planner.PlanOnce();
  EXPECT_EQ(planner.stats().skipped_no_target, 2u);
  EXPECT_EQ(planner.stats().migrations_started, 0u);

  // Relieve one target and the same imbalance becomes actionable.
  planner.InjectFrame(hot_frame());
  planner.InjectFrame(MakeFrame(sim, cluster.master(2).id(), {}));
  planner.PlanOnce();
  EXPECT_EQ(planner.stats().migrations_started, 1u);
  sim.Run();
  EXPECT_EQ(cluster.coordinator().OwnerOf(kTable, kMid), cluster.master(2).id());
}

TEST(PlannerTest, SplitsHotTabletAtHistogramBoundary) {
  Cluster cluster(SmallConfig());
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, 1'000, 30, 100);
  RebalancerOptions options = TestPlannerOptions();
  options.hysteresis_rounds = 1;
  RebalancePlanner planner(&cluster, options);
  Simulator& sim = cluster.sim();

  // One tablet carries everything: any move overshoots the deficit, so the
  // planner must carve it first.
  planner.InjectFrame(MakeFrame(sim, cluster.master(0).id(),
                                {MakeSample(0, ~KeyHash{0}, 40'000)}));
  for (size_t i = 1; i < cluster.num_masters(); i++) {
    planner.InjectFrame(MakeFrame(sim, cluster.master(i).id(), {}));
  }
  planner.PlanOnce();
  EXPECT_EQ(planner.stats().splits_requested, 1u);
  EXPECT_EQ(planner.stats().migrations_started, 0u);
  EXPECT_EQ(cluster.coordinator().splits_performed(), 1u);
  sim.Run();

  // The split landed where the uniform histogram crosses the desired move
  // (~desired/total of the way in, on a bin boundary) — and both layers
  // still tile.
  const auto tablets = cluster.coordinator().GetTableConfig(kTable);
  EXPECT_EQ(tablets.size(), 2u);
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// --------------------------------------------- Cross-layer audit (tiling).

TEST(RebalanceAuditTest, CoverageAuditCatchesOwnerWithoutLocalTablet) {
  Cluster cluster(SmallConfig());
  cluster.CreateTable(kTable, 0);
  cluster.coordinator().SplitTablet(kTable, kMid);
  AuditReport clean;
  cluster.coordinator().AuditInvariants(&clean);
  EXPECT_TRUE(clean.ok()) << clean.Summary();

  // Simulate a lost mirror: the owner drops its local upper-half tablet
  // while the map still assigns it. The cross-layer audit must notice.
  cluster.master(0).objects().tablets().Remove(kTable, kMid, ~KeyHash{0});
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("no local tablet"), std::string::npos) << report.Summary();
}

// ----------------------------------------------------- Rebalancer chaos.

// A shifting hot spot under faults: 4 masters each own a quarter of the
// table; 80% of the traffic hammers master 0's quarter while the planner,
// telemetry, splits, and Rocksteady migrations run — through injected
// drops/dups/delays and a crash-recovery of a bystander master. Asserts no
// acked write is ever lost, all audits pass, and the run replays
// bit-identically.
constexpr uint64_t kChaosRecords = 4'000;
constexpr Tick kChaosOpGap = 10 * kMicrosecond;  // ~100k ops/s offered.
constexpr Tick kChaosOpsStop = 50 * kMillisecond;
constexpr Tick kChaosHorizon = 80 * kMillisecond;

struct KeyState {
  bool acked = false;
  std::string last_acked;
  std::set<std::string> failed_values;
};

struct RebalanceChaosDigest {
  uint64_t trace_hash = 0;
  size_t events = 0;
  uint64_t acked_writes = 0;
  uint64_t failed_writes = 0;
  uint64_t reads_ok = 0;
  uint64_t reads_failed = 0;
  uint64_t splits_performed = 0;
  uint64_t migrations_started = 0;
  uint64_t migrations_completed = 0;
  uint64_t mismatches = 0;

  friend bool operator==(const RebalanceChaosDigest&, const RebalanceChaosDigest&) = default;
};

RebalanceChaosDigest RunRebalanceChaosEpisode(uint64_t seed) {
  FaultInjector injector({.seed = seed * 1'000 + 7,
                          .drop_probability = 0.01,
                          .duplicate_probability = 0.005,
                          .max_extra_delay_ns = 2 * kMicrosecond});
  Cluster cluster(SmallConfig(seed));
  cluster.net().SetFaultInjector(&injector);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  // Spread the table over all four masters, one quarter each.
  for (size_t i = 1; i < 4; i++) {
    cluster.coordinator().SplitTablet(kTable, static_cast<KeyHash>(i) * kQuarter);
  }
  {
    const auto tablets = cluster.coordinator().GetTableConfig(kTable);
    for (size_t i = 0; i < tablets.size(); i++) {
      const auto& t = tablets[i];
      const ServerId owner = cluster.master(i % 4).id();
      if (t.owner != owner) {
        // Audit-safe reassignment: tablet lands on the new owner before the
        // map repoints.
        cluster.coordinator().ReassignTablet(t.table, t.start_hash, t.end_hash, owner);
      }
    }
  }
  cluster.LoadTable(kTable, kChaosRecords, 30, 100);
  Simulator& sim = cluster.sim();

  // Key pools per quarter (for aiming the hot spot at master 0).
  std::vector<std::string> hot_pool;
  std::vector<std::string> all_keys;
  for (uint64_t i = 0; i < kChaosRecords; i++) {
    std::string key = Cluster::MakeKey(i, 30);
    if (HashKey(kTable, key) < kQuarter) {
      hot_pool.push_back(key);
    }
    all_keys.push_back(std::move(key));
  }

  ClusterTelemetry telemetry(&cluster);
  RebalancerOptions options = TestPlannerOptions();
  // Keep the loop responsive inside the short chaos horizon: a wedged
  // migration is abandoned quickly (the lease watchdog owns the repair).
  options.migration_deadline_ns = 30 * kMillisecond;
  RebalancePlanner planner(&cluster, options);
  planner.Start();
  cluster.coordinator().StartFailureDetector();

  // Fault schedule: crash-and-recover a bystander master mid-run.
  Random schedule(seed ^ 0x9e3779b97f4a7c15ull);
  const size_t victim = 2 + schedule.Uniform(2);
  const Tick crash_at = 8 * kMillisecond + schedule.Uniform(10 * kMillisecond);
  cluster.coordinator().on_recovery_complete = [&](ServerId id) {
    sim.After(kMillisecond, [&, id] { cluster.coordinator().master(id)->Restart(); });
  };
  sim.At(crash_at, [&] { cluster.master(victim).Crash(); });

  // 80%-hot / 20%-uniform op pump with the durability reference.
  Random ops_rng(seed * 31 + 5);
  std::map<std::string, KeyState> reference;
  std::set<std::string> write_in_flight;
  RebalanceChaosDigest digest;
  uint64_t op_index = 0;
  std::function<void()> pump = [&] {
    if (sim.now() >= kChaosOpsStop) {
      return;
    }
    const bool hot = ops_rng.NextDouble() < 0.8;
    const auto& pool = hot ? hot_pool : all_keys;
    std::string key = pool[ops_rng.Uniform(pool.size())];
    bool is_read = ops_rng.NextDouble() < 0.95;
    if (!is_read && write_in_flight.contains(key)) {
      is_read = true;  // Serialize writes per key.
    }
    RamCloudClient& client = cluster.client(op_index % cluster.num_clients());
    if (is_read) {
      client.Read(kTable, key, [&digest](Status s, const std::string&) {
        if (s == Status::kOk || s == Status::kObjectNotFound) {
          digest.reads_ok++;
        } else {
          digest.reads_failed++;
        }
      });
    } else {
      const std::string value = "rebalance-" + std::to_string(op_index);
      KeyState* state = &reference[key];
      write_in_flight.insert(key);
      client.Write(kTable, key, value,
                   [&digest, &write_in_flight, state, key, value](Status s) {
                     write_in_flight.erase(key);
                     if (s == Status::kOk) {
                       state->acked = true;
                       state->last_acked = value;
                       digest.acked_writes++;
                     } else {
                       state->failed_values.insert(value);
                       digest.failed_writes++;
                     }
                   });
    }
    op_index++;
    sim.After(kChaosOpGap, pump);
  };
  sim.After(kChaosOpGap, pump);

  sim.RunUntil(kChaosHorizon);
  planner.Stop();
  cluster.coordinator().StopFailureDetector();
  sim.Run();

  EXPECT_GT(digest.acked_writes, 0u) << "seed " << seed;

  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  for (size_t i = 0; i < cluster.num_masters(); i++) {
    if (!cluster.master(i).crashed()) {
      cluster.master(i).objects().AuditInvariants(&report);
    }
  }
  EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.Summary();

  // No committed write lost.
  const std::string default_value(100, 'v');
  std::string mismatch_detail;
  for (uint64_t i = 0; i < kChaosRecords; i++) {
    const std::string& key = all_keys[i];
    cluster.client(0).Read(kTable, key, [&, key](Status s, const std::string& v) {
      const auto it = reference.find(key);
      const KeyState* state = it == reference.end() ? nullptr : &it->second;
      bool ok = false;
      if (s == Status::kOk) {
        if (state != nullptr && state->acked) {
          ok = v == state->last_acked || state->failed_values.contains(v);
        } else if (state != nullptr) {
          ok = v == default_value || state->failed_values.contains(v);
        } else {
          ok = v == default_value;
        }
      }
      if (!ok) {
        digest.mismatches++;
        mismatch_detail += "key=" + key + " status=" + std::to_string(static_cast<int>(s)) +
                           " got='" + v + "'\n";
      }
    });
    if (i % 64 == 63) {
      sim.Run();
    }
  }
  sim.Run();
  EXPECT_EQ(digest.mismatches, 0u)
      << "seed " << seed << ": acked writes lost under rebalancing:\n" << mismatch_detail;

  digest.trace_hash = sim.trace_hash();
  digest.events = sim.events_processed();
  digest.splits_performed = cluster.coordinator().splits_performed();
  digest.migrations_started = planner.stats().migrations_started;
  digest.migrations_completed = planner.stats().migrations_completed;
  cluster.net().SetFaultInjector(nullptr);
  return digest;
}

class RebalanceChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RebalanceChaosTest, PlannerUnderFaultsPreservesWritesAndReplays) {
  const uint64_t seed = GetParam();
  const RebalanceChaosDigest first = RunRebalanceChaosEpisode(seed);
  const RebalanceChaosDigest second = RunRebalanceChaosEpisode(seed);
  EXPECT_EQ(first.trace_hash, second.trace_hash)
      << "seed " << seed << " is not deterministic";
  EXPECT_EQ(first, second);
  // The planner genuinely engaged under chaos.
  EXPECT_GT(first.migrations_started, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebalanceChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                                           16, 17, 18, 19, 20));

}  // namespace
}  // namespace rocksteady
