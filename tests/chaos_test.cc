// Chaos harness (the fault-injection tentpole's capstone): N seeds of a
// YCSB-B workload with a mid-run Rocksteady migration, run on a fabric that
// drops, duplicates, and delays messages, with a straggler and at least one
// crash-restart per run (sometimes the coordinator too). Every episode
// asserts:
//   * no committed (acked) write is ever lost,
//   * ownership always tiles the hash space and all invariant audits pass,
//   * the run is bit-identical when replayed with the same seed (trace hash).
//
// Faults are drawn from the injector's dedicated seeded RNG and the schedule
// from a per-seed RNG, so a failing seed reproduces exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/audit.h"
#include "src/migration/rocksteady_target.h"
#include "src/sim/fault_injector.h"
#include "src/workload/ycsb.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;
constexpr uint64_t kRecords = 1'000;
constexpr Tick kOpGap = 25 * kMicrosecond;    // ~40k ops/s offered.
constexpr Tick kOpsStop = 40 * kMillisecond;  // Last arrival.
constexpr Tick kHorizon = 60 * kMillisecond;  // Faults all resolved by here.

// Everything that must replay bit-identically for one seed.
struct ChaosDigest {
  uint64_t trace_hash = 0;
  size_t events = 0;
  Tick end_time = 0;
  uint64_t acked_writes = 0;
  uint64_t failed_writes = 0;
  uint64_t reads_ok = 0;
  uint64_t reads_failed = 0;
  uint64_t injected_drops = 0;
  uint64_t injected_duplicates = 0;
  uint64_t injected_delays = 0;
  uint64_t dropped_to_down_node = 0;
  uint64_t crashes_detected = 0;
  bool migration_completed = false;

  friend bool operator==(const ChaosDigest&, const ChaosDigest&) = default;
};

// Per-key durability tracking. The pump serializes writes per key (at most
// one in flight), so per key the ack order IS the apply order — without
// that, two concurrent acked writes whose responses reorder under injected
// delay/retransmission would make "last acked" ambiguous (both orders are
// linearizable). A write that failed (client gave up) may still apply at
// any later point, so its value stays acceptable forever (sound
// over-approximation).
struct KeyState {
  bool acked = false;
  std::string last_acked;
  std::set<std::string> failed_values;
};

ChaosDigest RunChaosEpisode(uint64_t seed) {
  // The injector must outlive the cluster's network (installed below).
  FaultInjector injector({.seed = seed * 1'000 + 7,
                          .drop_probability = 0.01,
                          .duplicate_probability = 0.005,
                          .max_extra_delay_ns = 2 * kMicrosecond});

  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.seed = seed;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  Cluster cluster(config);
  cluster.net().SetFaultInjector(&injector);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);
  Simulator& sim = cluster.sim();

  // --- Fault schedule, drawn deterministically per seed. ---
  Random schedule(seed ^ 0x9e3779b97f4a7c15ull);
  const Tick migration_at = 4 * kMillisecond + schedule.Uniform(4 * kMillisecond);
  // Crash a non-endpoint master (the migration is 0 -> 1; lineage-endpoint
  // crashes get their own targeted tests) and restart it after recovery.
  const size_t victim = 2 + schedule.Uniform(2);
  const Tick crash_at = 6 * kMillisecond + schedule.Uniform(10 * kMillisecond);
  const bool coordinator_chaos = schedule.Uniform(2) == 0;
  const Tick coordinator_crash_at = 8 * kMillisecond + schedule.Uniform(8 * kMillisecond);
  const Tick coordinator_down_for = 4 * kMillisecond + schedule.Uniform(4 * kMillisecond);
  const size_t straggler = schedule.Uniform(cluster.num_masters());
  const Tick straggle_at = 2 * kMillisecond + schedule.Uniform(10 * kMillisecond);
  const double straggle_factor = 2.0 + schedule.NextDouble() * 2.0;

  cluster.coordinator().StartFailureDetector();
  bool victim_restarted = false;
  cluster.coordinator().on_recovery_complete = [&](ServerId id) {
    // Rejoin only after recovery finishes: restarting earlier would race the
    // re-homing of the dead server's tablets.
    sim.After(kMillisecond, [&, id] {
      cluster.coordinator().master(id)->Restart();
      victim_restarted = true;
    });
  };

  sim.At(crash_at, [&] { cluster.master(victim).Crash(); });
  if (coordinator_chaos) {
    sim.At(coordinator_crash_at, [&] { cluster.coordinator().Crash(); });
    sim.At(coordinator_crash_at + coordinator_down_for,
           [&] { cluster.coordinator().Restart(); });
  }
  sim.At(straggle_at, [&] { cluster.master(straggler).cores().SetSlowdown(straggle_factor); });
  sim.At(straggle_at + 5 * kMillisecond,
         [&] { cluster.master(straggler).cores().SetSlowdown(1.0); });

  std::optional<MigrationStats> stats;
  sim.At(migration_at, [&] {
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                             [&](const MigrationStats& s) { stats = s; });
  });

  // --- YCSB-B op pump with a durability reference. ---
  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);
  Random ops_rng(seed * 31 + 5);
  std::map<std::string, KeyState> reference;
  std::set<std::string> write_in_flight;
  ChaosDigest digest;
  uint64_t op_index = 0;

  std::function<void()> pump = [&] {
    if (sim.now() >= kOpsStop) {
      return;
    }
    YcsbWorkload::Op op = workload.NextOp(ops_rng);
    if (!op.is_read && write_in_flight.contains(op.key)) {
      op.is_read = true;  // Serialize writes per key (see KeyState).
    }
    RamCloudClient& client = cluster.client(op_index % cluster.num_clients());
    if (op.is_read) {
      client.Read(kTable, op.key, [&digest](Status s, const std::string&) {
        if (s == Status::kOk || s == Status::kObjectNotFound) {
          digest.reads_ok++;
        } else {
          digest.reads_failed++;
        }
      });
    } else {
      const std::string value = "chaos-" + std::to_string(op_index);
      KeyState* state = &reference[op.key];
      write_in_flight.insert(op.key);
      client.Write(kTable, op.key, value,
                   [&digest, &write_in_flight, state, key = op.key, value](Status s) {
                     write_in_flight.erase(key);
                     if (s == Status::kOk) {
                       state->acked = true;
                       state->last_acked = value;
                       digest.acked_writes++;
                     } else {
                       state->failed_values.insert(value);
                       digest.failed_writes++;
                     }
                   });
    }
    op_index++;
    sim.After(kOpGap, pump);
  };
  sim.After(kOpGap, pump);

  // --- Run, then drain (the detector sweep is an infinite loop). ---
  sim.RunUntil(kHorizon);
  cluster.coordinator().StopFailureDetector();
  sim.Run();

  EXPECT_TRUE(stats.has_value()) << "seed " << seed << ": migration did not complete";
  EXPECT_TRUE(victim_restarted) << "seed " << seed << ": no crash-restart happened";
  EXPECT_GT(digest.acked_writes, 0u) << "seed " << seed;

  // Invariant audits: ownership tiles the hash space, dependencies are
  // consistent, every store is internally coherent.
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  for (size_t i = 0; i < cluster.num_masters(); i++) {
    if (!cluster.master(i).crashed()) {
      cluster.master(i).objects().AuditInvariants(&report);
    }
  }
  EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.Summary();

  // No committed write lost: every key must read back as its last acked
  // value, the loaded default if never written, or — only for keys with a
  // client-abandoned write — one of those indeterminate values.
  const std::string default_value(100, 'v');
  uint64_t mismatches = 0;
  std::string mismatch_detail;
  for (uint64_t i = 0; i < kRecords; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    cluster.client(0).Read(kTable, key, [&, key](Status s, const std::string& v) {
      const auto it = reference.find(key);
      const KeyState* state = it == reference.end() ? nullptr : &it->second;
      bool ok = false;
      if (s == Status::kOk) {
        if (state != nullptr && state->acked) {
          ok = v == state->last_acked || state->failed_values.contains(v);
        } else if (state != nullptr) {
          ok = v == default_value || state->failed_values.contains(v);
        } else {
          ok = v == default_value;
        }
      }
      if (!ok) {
        mismatches++;
        mismatch_detail += "key=" + key + " status=" + std::to_string(static_cast<int>(s)) +
                           " got='" + v + "' last_acked='" +
                           (state != nullptr && state->acked ? state->last_acked : "<none>") +
                           "' failed=" +
                           std::to_string(state != nullptr ? state->failed_values.size() : 0) +
                           "\n";
      }
    });
    if (i % 64 == 63) {
      sim.Run();
    }
  }
  sim.Run();
  EXPECT_EQ(mismatches, 0u) << "seed " << seed << ": committed writes lost or corrupted:\n" << mismatch_detail;

  // The fabric really was hostile.
  EXPECT_GT(cluster.net().injected_drops(), 0u);
  EXPECT_GT(cluster.net().injected_duplicates(), 0u);

  digest.trace_hash = sim.trace_hash();
  digest.events = sim.events_processed();
  digest.end_time = sim.now();
  digest.injected_drops = cluster.net().injected_drops();
  digest.injected_duplicates = cluster.net().injected_duplicates();
  digest.injected_delays = cluster.net().injected_delays();
  digest.dropped_to_down_node = cluster.net().dropped_to_down_node();
  digest.crashes_detected = cluster.coordinator().crashes_detected();
  digest.migration_completed = stats.has_value();
  cluster.net().SetFaultInjector(nullptr);
  return digest;
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, SurvivesAndReplaysBitIdentically) {
  const uint64_t seed = GetParam();
  const ChaosDigest first = RunChaosEpisode(seed);
  const ChaosDigest second = RunChaosEpisode(seed);
  EXPECT_EQ(first.trace_hash, second.trace_hash)
      << "seed " << seed << " is not deterministic";
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
                                           17, 18, 19, 20));

// --- Overload chaos: migration under a source already past saturation. ---
//
// YCSB-B arrives in square-wave bursts at ~2x the single-worker source's
// sustainable rate (troughs at ~0.4x let the queue drain, as real open-loop
// load does), with a Rocksteady migration kicked off mid-run. Asserts, per
// seed:
//   * no acked write is ever lost and the migration completes,
//   * adaptive pacing strictly improves client-visible read p99.9 over the
//     same episode with pacing disabled,
//   * the paced run replays bit-identically.
constexpr uint64_t kOverloadRecords = 12'000;
// Migrate only the top quarter of the hash space: the source keeps ~3/4 of
// the client load for the whole run, so its bursts stay past saturation
// before AND after the ownership transfer.
constexpr KeyHash kSliceStart = 0xC000'0000'0000'0000ull;
constexpr Tick kBurstPhase = 1 * kMillisecond;   // Burst length...
constexpr Tick kTroughPhase = 3 * kMillisecond;  // ...then drain time.
constexpr Tick kBurstGap = 12 * kMicrosecond;    // ~1.7x the ~21 us/op service.
constexpr Tick kTroughGap = 100 * kMicrosecond;  // ~0.2x: queues drain fully.
// Start mid-trough, right when the previous burst's backlog has just
// drained: the two blind-issued first pulls run (and finish) before the
// next burst, and their replies still see the drain's >200us completions in
// the source's sliding latency window — so the paced run is already backed
// off when that burst arrives, instead of discovering the overload the
// hard way.
constexpr Tick kOverloadMigrationAt = 6'000 * kMicrosecond;
// The tail comparison starts once the controller has had one reply's worth
// of load signal: until the first pull replies return, both runs have
// blind-issued the same full-size pulls (the paced run starts at full
// aggressiveness by design, so a quiet source's schedule is untouched), and
// that shared startup transient would mask the steady-state difference.
constexpr Tick kOverloadSampleFrom = kOverloadMigrationAt + 2 * kMillisecond;

struct OverloadDigest {
  uint64_t trace_hash = 0;
  size_t events = 0;
  uint64_t acked_writes = 0;
  uint64_t failed_writes = 0;
  uint64_t reads_ok = 0;
  uint64_t reads_failed = 0;
  Tick read_p999 = 0;
  uint64_t pacing_backoffs = 0;
  uint64_t pull_rejections = 0;
  uint64_t client_sheds = 0;
  uint64_t mismatches = 0;
  bool migration_completed = false;

  friend bool operator==(const OverloadDigest&, const OverloadDigest&) = default;
};

OverloadDigest RunOverloadEpisode(uint64_t seed, bool pacing) {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.seed = seed;
  config.master.num_workers = 1;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  // Worker-bound ops so one worker saturates at a modest op rate while the
  // dispatch core keeps plenty of headroom (the overload is at the workers,
  // where pulls and client requests compete). Pulls are made record-bound so
  // an unpaced 32 KB pull occupies the source's worker for ~730 us — the
  // non-preemptible remnant that poisons the next burst's whole queue.
  config.costs.read_op_ns = 20'000;
  config.costs.write_op_ns = 24'000;
  config.costs.pull_per_record_ns = 4'000;
  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kOverloadRecords, 30, 100);
  Simulator& sim = cluster.sim();

  RocksteadyOptions options;
  options.adaptive_pacing = pacing;
  // Big unpaced chunks make the no-pacing baseline honest: this is the §4.1
  // "fast as possible" configuration the controller throttles down from.
  // Two partitions bound how many full-size pulls either run blind-issues
  // before the first load signal comes back.
  options.pull_budget_bytes = 32 * 1024;
  options.num_partitions = 2;

  std::optional<MigrationStats> stats;
  sim.At(kOverloadMigrationAt, [&] {
    StartRocksteadyMigration(&cluster, kTable, kSliceStart, ~0ull, 0, 1, options,
                             [&](const MigrationStats& s) { stats = s; });
  });

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kOverloadRecords;
  YcsbWorkload workload(ycsb);
  Random ops_rng(seed * 31 + 5);
  std::map<std::string, KeyState> reference;
  std::set<std::string> write_in_flight;
  OverloadDigest digest;
  std::vector<Tick> read_latencies;
  uint64_t op_index = 0;

  std::function<void()> pump = [&] {
    if (sim.now() >= kOpsStop) {
      return;
    }
    YcsbWorkload::Op op = workload.NextOp(ops_rng);
    if (!op.is_read && write_in_flight.contains(op.key)) {
      op.is_read = true;  // Serialize writes per key (see KeyState).
    }
    RamCloudClient& client = cluster.client(op_index % cluster.num_clients());
    if (op.is_read) {
      const Tick issued = sim.now();
      // The tail comparison is over reads issued once migration is under way
      // (what the paper's impact figures measure); pre-migration bursts are
      // identical in both runs and would only dilute the percentile.
      const bool sample = issued >= kOverloadSampleFrom;
      client.Read(kTable, op.key,
                  [&digest, &read_latencies, &sim, issued, sample](Status s, const std::string&) {
                    if (s == Status::kOk) {
                      digest.reads_ok++;
                      if (sample) {
                        read_latencies.push_back(sim.now() - issued);
                      }
                    } else {
                      digest.reads_failed++;
                    }
                  });
    } else {
      const std::string value = "burst-" + std::to_string(op_index);
      KeyState* state = &reference[op.key];
      write_in_flight.insert(op.key);
      client.Write(kTable, op.key, value,
                   [&digest, &write_in_flight, state, key = op.key, value](Status s) {
                     write_in_flight.erase(key);
                     if (s == Status::kOk) {
                       state->acked = true;
                       state->last_acked = value;
                       digest.acked_writes++;
                     } else {
                       state->failed_values.insert(value);
                       digest.failed_writes++;
                     }
                   });
    }
    op_index++;
    const bool burst = sim.now() % (kBurstPhase + kTroughPhase) < kBurstPhase;
    sim.After(burst ? kBurstGap : kTroughGap, pump);
  };
  sim.After(kBurstGap, pump);

  sim.Run();

  EXPECT_TRUE(stats.has_value()) << "seed " << seed << ": migration did not complete";
  EXPECT_GT(digest.acked_writes, 0u) << "seed " << seed;

  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  for (size_t i = 0; i < cluster.num_masters(); i++) {
    cluster.master(i).objects().AuditInvariants(&report);
  }
  EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.Summary();

  // No committed write lost (same acceptance rule as RunChaosEpisode).
  const std::string default_value(100, 'v');
  std::string mismatch_detail;
  for (uint64_t i = 0; i < kOverloadRecords; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    cluster.client(0).Read(kTable, key, [&, key](Status s, const std::string& v) {
      const auto it = reference.find(key);
      const KeyState* state = it == reference.end() ? nullptr : &it->second;
      bool ok = false;
      if (s == Status::kOk) {
        if (state != nullptr && state->acked) {
          ok = v == state->last_acked || state->failed_values.contains(v);
        } else if (state != nullptr) {
          ok = v == default_value || state->failed_values.contains(v);
        } else {
          ok = v == default_value;
        }
      }
      if (!ok) {
        digest.mismatches++;
        mismatch_detail += "key=" + key + " status=" + std::to_string(static_cast<int>(s)) +
                           " got='" + v + "'\n";
      }
    });
    if (i % 64 == 63) {
      sim.Run();
    }
  }
  sim.Run();
  EXPECT_EQ(digest.mismatches, 0u)
      << "seed " << seed << " pacing=" << pacing << ": acked writes lost:\n" << mismatch_detail;

  std::sort(read_latencies.begin(), read_latencies.end());
  if (!read_latencies.empty()) {
    const size_t idx =
        std::min(read_latencies.size() - 1, (read_latencies.size() * 999) / 1000);
    digest.read_p999 = read_latencies[idx];
  }
  digest.trace_hash = sim.trace_hash();
  digest.events = sim.events_processed();
  digest.pacing_backoffs = stats.has_value() ? stats->pacing_backoffs : 0;
  digest.pull_rejections = stats.has_value() ? stats->pull_rejections : 0;
  digest.client_sheds = cluster.master(0).client_sheds();
  digest.migration_completed = stats.has_value();
  return digest;
}

class OverloadChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverloadChaosTest, PacingCutsTailAndReplaysBitIdentically) {
  const uint64_t seed = GetParam();
  const OverloadDigest paced = RunOverloadEpisode(seed, /*pacing=*/true);
  const OverloadDigest replay = RunOverloadEpisode(seed, /*pacing=*/true);
  EXPECT_EQ(paced.trace_hash, replay.trace_hash) << "seed " << seed << " is not deterministic";
  EXPECT_EQ(paced, replay);

  const OverloadDigest unpaced = RunOverloadEpisode(seed, /*pacing=*/false);
  EXPECT_TRUE(paced.migration_completed);
  EXPECT_TRUE(unpaced.migration_completed);
  EXPECT_EQ(paced.mismatches, 0u);
  EXPECT_EQ(unpaced.mismatches, 0u);
  // The controller engaged (and only when enabled)...
  EXPECT_GE(paced.pacing_backoffs, 1u) << "seed " << seed;
  EXPECT_EQ(unpaced.pacing_backoffs, 0u) << "seed " << seed;
  // ...and strictly improved the client-visible tail.
  EXPECT_LT(paced.read_p999, unpaced.read_p999) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
                                           17, 18, 19, 20));

}  // namespace
}  // namespace rocksteady
