// Chaos harness (the fault-injection tentpole's capstone): N seeds of a
// YCSB-B workload with a mid-run Rocksteady migration, run on a fabric that
// drops, duplicates, and delays messages, with a straggler and at least one
// crash-restart per run (sometimes the coordinator too). Every episode
// asserts:
//   * no committed (acked) write is ever lost,
//   * ownership always tiles the hash space and all invariant audits pass,
//   * the run is bit-identical when replayed with the same seed (trace hash).
//
// Faults are drawn from the injector's dedicated seeded RNG and the schedule
// from a per-seed RNG, so a failing seed reproduces exactly.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>

#include "src/cluster/cluster.h"
#include "src/common/audit.h"
#include "src/migration/rocksteady_target.h"
#include "src/sim/fault_injector.h"
#include "src/workload/ycsb.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;
constexpr uint64_t kRecords = 1'000;
constexpr Tick kOpGap = 25 * kMicrosecond;    // ~40k ops/s offered.
constexpr Tick kOpsStop = 40 * kMillisecond;  // Last arrival.
constexpr Tick kHorizon = 60 * kMillisecond;  // Faults all resolved by here.

// Everything that must replay bit-identically for one seed.
struct ChaosDigest {
  uint64_t trace_hash = 0;
  size_t events = 0;
  Tick end_time = 0;
  uint64_t acked_writes = 0;
  uint64_t failed_writes = 0;
  uint64_t reads_ok = 0;
  uint64_t reads_failed = 0;
  uint64_t injected_drops = 0;
  uint64_t injected_duplicates = 0;
  uint64_t injected_delays = 0;
  uint64_t dropped_to_down_node = 0;
  uint64_t crashes_detected = 0;
  bool migration_completed = false;

  friend bool operator==(const ChaosDigest&, const ChaosDigest&) = default;
};

// Per-key durability tracking. The pump serializes writes per key (at most
// one in flight), so per key the ack order IS the apply order — without
// that, two concurrent acked writes whose responses reorder under injected
// delay/retransmission would make "last acked" ambiguous (both orders are
// linearizable). A write that failed (client gave up) may still apply at
// any later point, so its value stays acceptable forever (sound
// over-approximation).
struct KeyState {
  bool acked = false;
  std::string last_acked;
  std::set<std::string> failed_values;
};

ChaosDigest RunChaosEpisode(uint64_t seed) {
  // The injector must outlive the cluster's network (installed below).
  FaultInjector injector({.seed = seed * 1'000 + 7,
                          .drop_probability = 0.01,
                          .duplicate_probability = 0.005,
                          .max_extra_delay_ns = 2 * kMicrosecond});

  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.seed = seed;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  Cluster cluster(config);
  cluster.net().SetFaultInjector(&injector);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);
  Simulator& sim = cluster.sim();

  // --- Fault schedule, drawn deterministically per seed. ---
  Random schedule(seed ^ 0x9e3779b97f4a7c15ull);
  const Tick migration_at = 4 * kMillisecond + schedule.Uniform(4 * kMillisecond);
  // Crash a non-endpoint master (the migration is 0 -> 1; lineage-endpoint
  // crashes get their own targeted tests) and restart it after recovery.
  const size_t victim = 2 + schedule.Uniform(2);
  const Tick crash_at = 6 * kMillisecond + schedule.Uniform(10 * kMillisecond);
  const bool coordinator_chaos = schedule.Uniform(2) == 0;
  const Tick coordinator_crash_at = 8 * kMillisecond + schedule.Uniform(8 * kMillisecond);
  const Tick coordinator_down_for = 4 * kMillisecond + schedule.Uniform(4 * kMillisecond);
  const size_t straggler = schedule.Uniform(cluster.num_masters());
  const Tick straggle_at = 2 * kMillisecond + schedule.Uniform(10 * kMillisecond);
  const double straggle_factor = 2.0 + schedule.NextDouble() * 2.0;

  cluster.coordinator().StartFailureDetector();
  bool victim_restarted = false;
  cluster.coordinator().on_recovery_complete = [&](ServerId id) {
    // Rejoin only after recovery finishes: restarting earlier would race the
    // re-homing of the dead server's tablets.
    sim.After(kMillisecond, [&, id] {
      cluster.coordinator().master(id)->Restart();
      victim_restarted = true;
    });
  };

  sim.At(crash_at, [&] { cluster.master(victim).Crash(); });
  if (coordinator_chaos) {
    sim.At(coordinator_crash_at, [&] { cluster.coordinator().Crash(); });
    sim.At(coordinator_crash_at + coordinator_down_for,
           [&] { cluster.coordinator().Restart(); });
  }
  sim.At(straggle_at, [&] { cluster.master(straggler).cores().SetSlowdown(straggle_factor); });
  sim.At(straggle_at + 5 * kMillisecond,
         [&] { cluster.master(straggler).cores().SetSlowdown(1.0); });

  std::optional<MigrationStats> stats;
  sim.At(migration_at, [&] {
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                             [&](const MigrationStats& s) { stats = s; });
  });

  // --- YCSB-B op pump with a durability reference. ---
  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);
  Random ops_rng(seed * 31 + 5);
  std::map<std::string, KeyState> reference;
  std::set<std::string> write_in_flight;
  ChaosDigest digest;
  uint64_t op_index = 0;

  std::function<void()> pump = [&] {
    if (sim.now() >= kOpsStop) {
      return;
    }
    YcsbWorkload::Op op = workload.NextOp(ops_rng);
    if (!op.is_read && write_in_flight.contains(op.key)) {
      op.is_read = true;  // Serialize writes per key (see KeyState).
    }
    RamCloudClient& client = cluster.client(op_index % cluster.num_clients());
    if (op.is_read) {
      client.Read(kTable, op.key, [&digest](Status s, const std::string&) {
        if (s == Status::kOk || s == Status::kObjectNotFound) {
          digest.reads_ok++;
        } else {
          digest.reads_failed++;
        }
      });
    } else {
      const std::string value = "chaos-" + std::to_string(op_index);
      KeyState* state = &reference[op.key];
      write_in_flight.insert(op.key);
      client.Write(kTable, op.key, value,
                   [&digest, &write_in_flight, state, key = op.key, value](Status s) {
                     write_in_flight.erase(key);
                     if (s == Status::kOk) {
                       state->acked = true;
                       state->last_acked = value;
                       digest.acked_writes++;
                     } else {
                       state->failed_values.insert(value);
                       digest.failed_writes++;
                     }
                   });
    }
    op_index++;
    sim.After(kOpGap, pump);
  };
  sim.After(kOpGap, pump);

  // --- Run, then drain (the detector sweep is an infinite loop). ---
  sim.RunUntil(kHorizon);
  cluster.coordinator().StopFailureDetector();
  sim.Run();

  EXPECT_TRUE(stats.has_value()) << "seed " << seed << ": migration did not complete";
  EXPECT_TRUE(victim_restarted) << "seed " << seed << ": no crash-restart happened";
  EXPECT_GT(digest.acked_writes, 0u) << "seed " << seed;

  // Invariant audits: ownership tiles the hash space, dependencies are
  // consistent, every store is internally coherent.
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  for (size_t i = 0; i < cluster.num_masters(); i++) {
    if (!cluster.master(i).crashed()) {
      cluster.master(i).objects().AuditInvariants(&report);
    }
  }
  EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.Summary();

  // No committed write lost: every key must read back as its last acked
  // value, the loaded default if never written, or — only for keys with a
  // client-abandoned write — one of those indeterminate values.
  const std::string default_value(100, 'v');
  uint64_t mismatches = 0;
  std::string mismatch_detail;
  for (uint64_t i = 0; i < kRecords; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    cluster.client(0).Read(kTable, key, [&, key](Status s, const std::string& v) {
      const auto it = reference.find(key);
      const KeyState* state = it == reference.end() ? nullptr : &it->second;
      bool ok = false;
      if (s == Status::kOk) {
        if (state != nullptr && state->acked) {
          ok = v == state->last_acked || state->failed_values.contains(v);
        } else if (state != nullptr) {
          ok = v == default_value || state->failed_values.contains(v);
        } else {
          ok = v == default_value;
        }
      }
      if (!ok) {
        mismatches++;
        mismatch_detail += "key=" + key + " status=" + std::to_string(static_cast<int>(s)) +
                           " got='" + v + "' last_acked='" +
                           (state != nullptr && state->acked ? state->last_acked : "<none>") +
                           "' failed=" +
                           std::to_string(state != nullptr ? state->failed_values.size() : 0) +
                           "\n";
      }
    });
    if (i % 64 == 63) {
      sim.Run();
    }
  }
  sim.Run();
  EXPECT_EQ(mismatches, 0u) << "seed " << seed << ": committed writes lost or corrupted:\n" << mismatch_detail;

  // The fabric really was hostile.
  EXPECT_GT(cluster.net().injected_drops(), 0u);
  EXPECT_GT(cluster.net().injected_duplicates(), 0u);

  digest.trace_hash = sim.trace_hash();
  digest.events = sim.events_processed();
  digest.end_time = sim.now();
  digest.injected_drops = cluster.net().injected_drops();
  digest.injected_duplicates = cluster.net().injected_duplicates();
  digest.injected_delays = cluster.net().injected_delays();
  digest.dropped_to_down_node = cluster.net().dropped_to_down_node();
  digest.crashes_detected = cluster.coordinator().crashes_detected();
  digest.migration_completed = stats.has_value();
  cluster.net().SetFaultInjector(nullptr);
  return digest;
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, SurvivesAndReplaysBitIdentically) {
  const uint64_t seed = GetParam();
  const ChaosDigest first = RunChaosEpisode(seed);
  const ChaosDigest second = RunChaosEpisode(seed);
  EXPECT_EQ(first.trace_hash, second.trace_hash)
      << "seed " << seed << " is not deterministic";
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
                                           17, 18, 19, 20));

}  // namespace
}  // namespace rocksteady
