# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/hashtable_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/coordinator_test[1]_include.cmake")
