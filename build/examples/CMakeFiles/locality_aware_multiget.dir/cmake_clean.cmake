file(REMOVE_RECURSE
  "CMakeFiles/locality_aware_multiget.dir/locality_aware_multiget.cc.o"
  "CMakeFiles/locality_aware_multiget.dir/locality_aware_multiget.cc.o.d"
  "locality_aware_multiget"
  "locality_aware_multiget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_aware_multiget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
