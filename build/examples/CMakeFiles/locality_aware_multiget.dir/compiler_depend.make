# Empty compiler generated dependencies file for locality_aware_multiget.
# This may be replaced when dependencies are built.
