file(REMOVE_RECURSE
  "librocksteady_common.a"
)
