
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/rocksteady_common.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/rocksteady_common.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/rocksteady_common.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/rocksteady_common.dir/common/hash.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/rocksteady_common.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/rocksteady_common.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/rocksteady_common.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/rocksteady_common.dir/common/logging.cc.o.d"
  "/root/repo/src/common/timeseries.cc" "src/CMakeFiles/rocksteady_common.dir/common/timeseries.cc.o" "gcc" "src/CMakeFiles/rocksteady_common.dir/common/timeseries.cc.o.d"
  "/root/repo/src/common/zipfian.cc" "src/CMakeFiles/rocksteady_common.dir/common/zipfian.cc.o" "gcc" "src/CMakeFiles/rocksteady_common.dir/common/zipfian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
