file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_common.dir/common/crc32c.cc.o"
  "CMakeFiles/rocksteady_common.dir/common/crc32c.cc.o.d"
  "CMakeFiles/rocksteady_common.dir/common/hash.cc.o"
  "CMakeFiles/rocksteady_common.dir/common/hash.cc.o.d"
  "CMakeFiles/rocksteady_common.dir/common/histogram.cc.o"
  "CMakeFiles/rocksteady_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/rocksteady_common.dir/common/logging.cc.o"
  "CMakeFiles/rocksteady_common.dir/common/logging.cc.o.d"
  "CMakeFiles/rocksteady_common.dir/common/timeseries.cc.o"
  "CMakeFiles/rocksteady_common.dir/common/timeseries.cc.o.d"
  "CMakeFiles/rocksteady_common.dir/common/zipfian.cc.o"
  "CMakeFiles/rocksteady_common.dir/common/zipfian.cc.o.d"
  "librocksteady_common.a"
  "librocksteady_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
