# Empty dependencies file for rocksteady_common.
# This may be replaced when dependencies are built.
