file(REMOVE_RECURSE
  "librocksteady_hashtable.a"
)
