file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_hashtable.dir/hashtable/hash_table.cc.o"
  "CMakeFiles/rocksteady_hashtable.dir/hashtable/hash_table.cc.o.d"
  "librocksteady_hashtable.a"
  "librocksteady_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
