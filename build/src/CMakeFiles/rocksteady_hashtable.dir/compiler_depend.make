# Empty compiler generated dependencies file for rocksteady_hashtable.
# This may be replaced when dependencies are built.
