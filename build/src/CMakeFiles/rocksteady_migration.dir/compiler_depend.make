# Empty compiler generated dependencies file for rocksteady_migration.
# This may be replaced when dependencies are built.
