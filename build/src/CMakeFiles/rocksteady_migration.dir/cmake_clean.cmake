file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_migration.dir/migration/priority_pull_manager.cc.o"
  "CMakeFiles/rocksteady_migration.dir/migration/priority_pull_manager.cc.o.d"
  "CMakeFiles/rocksteady_migration.dir/migration/ramcloud_migration.cc.o"
  "CMakeFiles/rocksteady_migration.dir/migration/ramcloud_migration.cc.o.d"
  "CMakeFiles/rocksteady_migration.dir/migration/rocksteady_source.cc.o"
  "CMakeFiles/rocksteady_migration.dir/migration/rocksteady_source.cc.o.d"
  "CMakeFiles/rocksteady_migration.dir/migration/rocksteady_target.cc.o"
  "CMakeFiles/rocksteady_migration.dir/migration/rocksteady_target.cc.o.d"
  "librocksteady_migration.a"
  "librocksteady_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
