file(REMOVE_RECURSE
  "librocksteady_migration.a"
)
