
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/log.cc" "src/CMakeFiles/rocksteady_log.dir/log/log.cc.o" "gcc" "src/CMakeFiles/rocksteady_log.dir/log/log.cc.o.d"
  "/root/repo/src/log/log_cleaner.cc" "src/CMakeFiles/rocksteady_log.dir/log/log_cleaner.cc.o" "gcc" "src/CMakeFiles/rocksteady_log.dir/log/log_cleaner.cc.o.d"
  "/root/repo/src/log/log_entry.cc" "src/CMakeFiles/rocksteady_log.dir/log/log_entry.cc.o" "gcc" "src/CMakeFiles/rocksteady_log.dir/log/log_entry.cc.o.d"
  "/root/repo/src/log/segment.cc" "src/CMakeFiles/rocksteady_log.dir/log/segment.cc.o" "gcc" "src/CMakeFiles/rocksteady_log.dir/log/segment.cc.o.d"
  "/root/repo/src/log/side_log.cc" "src/CMakeFiles/rocksteady_log.dir/log/side_log.cc.o" "gcc" "src/CMakeFiles/rocksteady_log.dir/log/side_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rocksteady_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
