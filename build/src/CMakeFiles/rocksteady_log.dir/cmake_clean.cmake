file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_log.dir/log/log.cc.o"
  "CMakeFiles/rocksteady_log.dir/log/log.cc.o.d"
  "CMakeFiles/rocksteady_log.dir/log/log_cleaner.cc.o"
  "CMakeFiles/rocksteady_log.dir/log/log_cleaner.cc.o.d"
  "CMakeFiles/rocksteady_log.dir/log/log_entry.cc.o"
  "CMakeFiles/rocksteady_log.dir/log/log_entry.cc.o.d"
  "CMakeFiles/rocksteady_log.dir/log/segment.cc.o"
  "CMakeFiles/rocksteady_log.dir/log/segment.cc.o.d"
  "CMakeFiles/rocksteady_log.dir/log/side_log.cc.o"
  "CMakeFiles/rocksteady_log.dir/log/side_log.cc.o.d"
  "librocksteady_log.a"
  "librocksteady_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
