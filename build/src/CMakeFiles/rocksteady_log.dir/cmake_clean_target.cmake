file(REMOVE_RECURSE
  "librocksteady_log.a"
)
