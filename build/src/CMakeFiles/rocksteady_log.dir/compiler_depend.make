# Empty compiler generated dependencies file for rocksteady_log.
# This may be replaced when dependencies are built.
