file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_rpc.dir/rpc/messages.cc.o"
  "CMakeFiles/rocksteady_rpc.dir/rpc/messages.cc.o.d"
  "CMakeFiles/rocksteady_rpc.dir/rpc/rpc_system.cc.o"
  "CMakeFiles/rocksteady_rpc.dir/rpc/rpc_system.cc.o.d"
  "librocksteady_rpc.a"
  "librocksteady_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
