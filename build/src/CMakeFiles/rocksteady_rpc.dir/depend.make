# Empty dependencies file for rocksteady_rpc.
# This may be replaced when dependencies are built.
