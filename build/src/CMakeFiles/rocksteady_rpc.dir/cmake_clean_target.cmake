file(REMOVE_RECURSE
  "librocksteady_rpc.a"
)
