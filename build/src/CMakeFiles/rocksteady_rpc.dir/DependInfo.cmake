
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/messages.cc" "src/CMakeFiles/rocksteady_rpc.dir/rpc/messages.cc.o" "gcc" "src/CMakeFiles/rocksteady_rpc.dir/rpc/messages.cc.o.d"
  "/root/repo/src/rpc/rpc_system.cc" "src/CMakeFiles/rocksteady_rpc.dir/rpc/rpc_system.cc.o" "gcc" "src/CMakeFiles/rocksteady_rpc.dir/rpc/rpc_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rocksteady_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksteady_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
