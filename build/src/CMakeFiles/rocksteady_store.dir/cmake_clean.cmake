file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_store.dir/store/object_manager.cc.o"
  "CMakeFiles/rocksteady_store.dir/store/object_manager.cc.o.d"
  "CMakeFiles/rocksteady_store.dir/store/tablet.cc.o"
  "CMakeFiles/rocksteady_store.dir/store/tablet.cc.o.d"
  "librocksteady_store.a"
  "librocksteady_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
