# Empty compiler generated dependencies file for rocksteady_store.
# This may be replaced when dependencies are built.
