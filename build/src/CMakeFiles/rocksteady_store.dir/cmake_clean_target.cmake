file(REMOVE_RECURSE
  "librocksteady_store.a"
)
