
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/object_manager.cc" "src/CMakeFiles/rocksteady_store.dir/store/object_manager.cc.o" "gcc" "src/CMakeFiles/rocksteady_store.dir/store/object_manager.cc.o.d"
  "/root/repo/src/store/tablet.cc" "src/CMakeFiles/rocksteady_store.dir/store/tablet.cc.o" "gcc" "src/CMakeFiles/rocksteady_store.dir/store/tablet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rocksteady_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksteady_hashtable.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksteady_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
