file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_index.dir/index/btree.cc.o"
  "CMakeFiles/rocksteady_index.dir/index/btree.cc.o.d"
  "CMakeFiles/rocksteady_index.dir/index/indexlet.cc.o"
  "CMakeFiles/rocksteady_index.dir/index/indexlet.cc.o.d"
  "librocksteady_index.a"
  "librocksteady_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
