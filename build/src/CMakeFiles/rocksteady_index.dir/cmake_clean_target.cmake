file(REMOVE_RECURSE
  "librocksteady_index.a"
)
