# Empty dependencies file for rocksteady_index.
# This may be replaced when dependencies are built.
