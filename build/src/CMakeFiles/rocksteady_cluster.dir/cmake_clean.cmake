file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_cluster.dir/cluster/backup_service.cc.o"
  "CMakeFiles/rocksteady_cluster.dir/cluster/backup_service.cc.o.d"
  "CMakeFiles/rocksteady_cluster.dir/cluster/client.cc.o"
  "CMakeFiles/rocksteady_cluster.dir/cluster/client.cc.o.d"
  "CMakeFiles/rocksteady_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/rocksteady_cluster.dir/cluster/cluster.cc.o.d"
  "CMakeFiles/rocksteady_cluster.dir/cluster/coordinator.cc.o"
  "CMakeFiles/rocksteady_cluster.dir/cluster/coordinator.cc.o.d"
  "CMakeFiles/rocksteady_cluster.dir/cluster/master_server.cc.o"
  "CMakeFiles/rocksteady_cluster.dir/cluster/master_server.cc.o.d"
  "CMakeFiles/rocksteady_cluster.dir/cluster/recovery.cc.o"
  "CMakeFiles/rocksteady_cluster.dir/cluster/recovery.cc.o.d"
  "CMakeFiles/rocksteady_cluster.dir/cluster/replica_manager.cc.o"
  "CMakeFiles/rocksteady_cluster.dir/cluster/replica_manager.cc.o.d"
  "librocksteady_cluster.a"
  "librocksteady_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
