# Empty compiler generated dependencies file for rocksteady_cluster.
# This may be replaced when dependencies are built.
