file(REMOVE_RECURSE
  "librocksteady_cluster.a"
)
