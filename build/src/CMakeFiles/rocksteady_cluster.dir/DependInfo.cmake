
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/backup_service.cc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/backup_service.cc.o" "gcc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/backup_service.cc.o.d"
  "/root/repo/src/cluster/client.cc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/client.cc.o" "gcc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/client.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/coordinator.cc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/coordinator.cc.o" "gcc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/coordinator.cc.o.d"
  "/root/repo/src/cluster/master_server.cc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/master_server.cc.o" "gcc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/master_server.cc.o.d"
  "/root/repo/src/cluster/recovery.cc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/recovery.cc.o" "gcc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/recovery.cc.o.d"
  "/root/repo/src/cluster/replica_manager.cc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/replica_manager.cc.o" "gcc" "src/CMakeFiles/rocksteady_cluster.dir/cluster/replica_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rocksteady_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksteady_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksteady_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksteady_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksteady_hashtable.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksteady_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksteady_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
