file(REMOVE_RECURSE
  "librocksteady_workload.a"
)
