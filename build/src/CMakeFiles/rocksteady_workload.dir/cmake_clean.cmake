file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_workload.dir/workload/client_actor.cc.o"
  "CMakeFiles/rocksteady_workload.dir/workload/client_actor.cc.o.d"
  "CMakeFiles/rocksteady_workload.dir/workload/ycsb.cc.o"
  "CMakeFiles/rocksteady_workload.dir/workload/ycsb.cc.o.d"
  "librocksteady_workload.a"
  "librocksteady_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
