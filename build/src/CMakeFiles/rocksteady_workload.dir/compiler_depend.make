# Empty compiler generated dependencies file for rocksteady_workload.
# This may be replaced when dependencies are built.
