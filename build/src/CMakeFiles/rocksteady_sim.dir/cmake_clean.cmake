file(REMOVE_RECURSE
  "CMakeFiles/rocksteady_sim.dir/sim/core_set.cc.o"
  "CMakeFiles/rocksteady_sim.dir/sim/core_set.cc.o.d"
  "CMakeFiles/rocksteady_sim.dir/sim/cost_model.cc.o"
  "CMakeFiles/rocksteady_sim.dir/sim/cost_model.cc.o.d"
  "CMakeFiles/rocksteady_sim.dir/sim/network.cc.o"
  "CMakeFiles/rocksteady_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/rocksteady_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/rocksteady_sim.dir/sim/simulator.cc.o.d"
  "librocksteady_sim.a"
  "librocksteady_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksteady_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
