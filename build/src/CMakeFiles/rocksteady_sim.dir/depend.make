# Empty dependencies file for rocksteady_sim.
# This may be replaced when dependencies are built.
