file(REMOVE_RECURSE
  "librocksteady_sim.a"
)
