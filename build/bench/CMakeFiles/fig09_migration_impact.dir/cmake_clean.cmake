file(REMOVE_RECURSE
  "CMakeFiles/fig09_migration_impact.dir/fig09_migration_impact.cc.o"
  "CMakeFiles/fig09_migration_impact.dir/fig09_migration_impact.cc.o.d"
  "fig09_migration_impact"
  "fig09_migration_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_migration_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
