# Empty dependencies file for fig09_migration_impact.
# This may be replaced when dependencies are built.
