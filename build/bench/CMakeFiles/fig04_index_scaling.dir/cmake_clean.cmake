file(REMOVE_RECURSE
  "CMakeFiles/fig04_index_scaling.dir/fig04_index_scaling.cc.o"
  "CMakeFiles/fig04_index_scaling.dir/fig04_index_scaling.cc.o.d"
  "fig04_index_scaling"
  "fig04_index_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_index_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
