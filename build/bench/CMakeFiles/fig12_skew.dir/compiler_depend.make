# Empty compiler generated dependencies file for fig12_skew.
# This may be replaced when dependencies are built.
