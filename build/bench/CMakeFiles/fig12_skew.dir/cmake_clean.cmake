file(REMOVE_RECURSE
  "CMakeFiles/fig12_skew.dir/fig12_skew.cc.o"
  "CMakeFiles/fig12_skew.dir/fig12_skew.cc.o.d"
  "fig12_skew"
  "fig12_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
