file(REMOVE_RECURSE
  "CMakeFiles/fig05_bottlenecks.dir/fig05_bottlenecks.cc.o"
  "CMakeFiles/fig05_bottlenecks.dir/fig05_bottlenecks.cc.o.d"
  "fig05_bottlenecks"
  "fig05_bottlenecks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
