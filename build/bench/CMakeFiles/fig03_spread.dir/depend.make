# Empty dependencies file for fig03_spread.
# This may be replaced when dependencies are built.
