file(REMOVE_RECURSE
  "CMakeFiles/fig03_spread.dir/fig03_spread.cc.o"
  "CMakeFiles/fig03_spread.dir/fig03_spread.cc.o.d"
  "fig03_spread"
  "fig03_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
