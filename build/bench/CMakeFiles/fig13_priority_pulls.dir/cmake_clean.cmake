file(REMOVE_RECURSE
  "CMakeFiles/fig13_priority_pulls.dir/fig13_priority_pulls.cc.o"
  "CMakeFiles/fig13_priority_pulls.dir/fig13_priority_pulls.cc.o.d"
  "fig13_priority_pulls"
  "fig13_priority_pulls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_priority_pulls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
