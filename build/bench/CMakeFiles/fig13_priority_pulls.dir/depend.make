# Empty dependencies file for fig13_priority_pulls.
# This may be replaced when dependencies are built.
