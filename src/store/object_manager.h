// ObjectManager: a master's storage engine (log + hash table + tablets).
//
// All data operations live here; ownership/migration policy lives in the
// MasterServer above it. Versioning rule: each master keeps a monotonic
// version horizon; MigrateTablet seeds the target's horizon above the
// source's, so a write serviced at the target *before* the old copy of the
// same key arrives always carries a higher version — replay then becomes a
// simple "incorporate only if newer" rule, and replaying records in any
// order or any number of times is idempotent (what lets Rocksteady replay on
// any idle core, §3.1.3, and recover by re-running logs, §3.4).
#ifndef ROCKSTEADY_SRC_STORE_OBJECT_MANAGER_H_
#define ROCKSTEADY_SRC_STORE_OBJECT_MANAGER_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/hashtable/hash_table.h"
#include "src/log/log.h"
#include "src/log/log_cleaner.h"
#include "src/log/side_log.h"
#include "src/store/tablet.h"

namespace rocksteady {

struct ObjectView {
  std::string_view key;
  std::string_view value;
  Version version = 0;
};

struct ObjectManagerOptions {
  int hash_table_log2_buckets = 20;
  size_t segment_size = kDefaultSegmentSize;
};

class ObjectManager {
 public:
  explicit ObjectManager(const ObjectManagerOptions& options = {});

  ObjectManager(const ObjectManager&) = delete;
  ObjectManager& operator=(const ObjectManager&) = delete;

  // --- Normal-case data path (tablet checks happen in MasterServer). ---
  Result<ObjectView> Read(TableId table, std::string_view key, KeyHash hash) const;
  // Index-driven reads address objects by hash alone (indexes store hashes,
  // not keys — Figure 2).
  Result<ObjectView> ReadByHash(TableId table, KeyHash hash) const;
  // On success, `out_ref` (if non-null) receives the new entry's location
  // (used by the write path to replicate the entry's bytes).
  Result<Version> Write(TableId table, std::string_view key, KeyHash hash,
                        std::string_view value, LogRef* out_ref = nullptr);
  // On success, `out_ref` (if non-null) receives the tombstone's location so
  // the caller can replicate it (deletes must be durable too).
  //
  // `tombstone_if_missing`: write a tombstone even when no local copy
  // exists. Required on a migration target (deletes are writes and are
  // serviced immediately, §3) — without the tombstone, a later-arriving
  // older copy of the key would resurrect it.
  Result<Version> Remove(TableId table, std::string_view key, KeyHash hash,
                         LogRef* out_ref = nullptr, bool tombstone_if_missing = false);

  // --- Replay (migration and recovery). ---
  // Incorporates `entry` if it is newer than any local copy. When `side_log`
  // is non-null the record lands there (Rocksteady parallel replay);
  // otherwise it goes to the main log (recovery, baseline migration).
  // Returns true if the entry was incorporated, false if stale/duplicate.
  // `out_ref` (optional) receives where the copy landed, so callers that
  // must re-replicate incorporated entries (recovery masters) can.
  bool Replay(const LogEntryView& entry, SideLog* side_log, LogRef* out_ref = nullptr);

  // Drops every hash-table entry that points into uncommitted side-log
  // segments of `side_log` (aborting a half-done migration).
  size_t DropSideLogEntries(const SideLog& side_log);

  // Removes all entries belonging to the tablet range (after a completed
  // outbound migration the source frees the records; the cleaner reclaims
  // the log space).
  size_t DropTabletEntries(TableId table, KeyHash start_hash, KeyHash end_hash);

  // Resident bytes of live records in [start_hash, end_hash] of `table`
  // (log-entry footprint: header + key + value). The rebalancer sizes a
  // candidate tablet with this before migrating it into a budget-limited
  // target. Walks the hash table; callers sample it at telemetry cadence,
  // not per request.
  uint64_t EstimateRangeBytes(TableId table, KeyHash start_hash, KeyHash end_hash) const;

  // --- Cleaner. ---
  // Runs up to `max_segments` cleaning passes; returns segments cleaned.
  size_t RunCleaner(size_t max_segments = 1);
  // Memory-pressure cleaning: frees the most reclaimable segments first
  // (see LogCleaner::EmergencyClean). Returns segments cleaned; 0 means
  // cleaning cannot reclaim anything and the caller must back off or abort.
  size_t RunEmergencyCleaner(size_t max_segments = 1);
  const LogCleaner& cleaner() const { return cleaner_; }

  // --- Accessors. ---
  Log& log() { return log_; }
  const Log& log() const { return log_; }
  HashTable& hash_table() { return hash_table_; }
  const HashTable& hash_table() const { return hash_table_; }
  TabletManager& tablets() { return tablets_; }
  const TabletManager& tablets() const { return tablets_; }

  Version version_horizon() const { return version_horizon_; }
  void RaiseVersionHorizon(Version at_least) {
    version_horizon_ = std::max(version_horizon_, at_least);
  }

  uint64_t object_count() const { return hash_table_.size(); }

  // Composite audit: log, hash table (against this log), tablet map, plus
  // the versioning rule the replay safety argument rests on — no referenced
  // entry may carry a version above the master's horizon (otherwise a
  // migrated-in record could beat a local write it should lose to).
  void AuditInvariants(AuditReport* report) const;

 private:
  Result<ObjectView> ViewAt(LogRef ref, TableId table) const;

  Log log_;
  HashTable hash_table_;
  TabletManager tablets_;
  LogCleaner cleaner_;
  Version version_horizon_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_STORE_OBJECT_MANAGER_H_
