#include "src/store/object_manager.h"

#include <cassert>

#include "src/common/logging.h"

namespace rocksteady {

ObjectManager::ObjectManager(const ObjectManagerOptions& options)
    : log_(options.segment_size),
      hash_table_(options.hash_table_log2_buckets),
      cleaner_(&log_, [this](LogRef old_ref, const LogEntryView& entry) {
        // Relocator: live entries move to the log head; their hash-table
        // reference is CASed to the new location. Unreferenced entries
        // (overwritten objects, satisfied tombstones) are dropped — their
        // bytes survive on the backups for recovery.
        if (!(hash_table_.Lookup(entry.key_hash()) == old_ref)) {
          return false;  // Dead: overwritten or removed since.
        }
        Result<LogRef> moved =
            entry.type() == LogEntryType::kObject
                ? log_.AppendObject(entry.table_id(), entry.key_hash(), entry.key, entry.value,
                                    entry.version())
                : log_.AppendTombstone(entry.table_id(), entry.key_hash(), entry.key,
                                       entry.version());
        assert(moved.ok());
        const bool swapped = hash_table_.Replace(entry.key_hash(), old_ref, *moved);
        assert(swapped);
        (void)swapped;
        return true;
      }) {}

Result<ObjectView> ObjectManager::ViewAt(LogRef ref, TableId table) const {
  LogEntryView entry;
  if (!log_.Read(ref, &entry)) {
    return Status::kCorruptData;
  }
  if (entry.type() != LogEntryType::kObject || entry.table_id() != table) {
    return Status::kObjectNotFound;
  }
  return ObjectView{entry.key, entry.value, entry.version()};
}

Result<ObjectView> ObjectManager::Read(TableId table, std::string_view key, KeyHash hash) const {
  const LogRef ref = hash_table_.Lookup(hash);
  if (!ref.valid()) {
    return Status::kObjectNotFound;
  }
  auto view = ViewAt(ref, table);
  if (view.ok() && view->key != key) {
    // 64-bit hash collision between distinct keys; the simulated store
    // treats the hash as identity, so surface this loudly.
    LOG_ERROR("key-hash collision on table %llu", static_cast<unsigned long long>(table));
    return Status::kObjectNotFound;
  }
  return view;
}

Result<ObjectView> ObjectManager::ReadByHash(TableId table, KeyHash hash) const {
  const LogRef ref = hash_table_.Lookup(hash);
  if (!ref.valid()) {
    return Status::kObjectNotFound;
  }
  return ViewAt(ref, table);
}

Result<Version> ObjectManager::Write(TableId table, std::string_view key, KeyHash hash,
                                     std::string_view value, LogRef* out_ref) {
  const LogRef old_ref = hash_table_.Lookup(hash);
  Version version = version_horizon_ + 1;
  if (old_ref.valid()) {
    LogEntryView old_entry;
    if (log_.Read(old_ref, &old_entry)) {
      version = std::max(version, old_entry.version() + 1);
    }
  }
  auto ref = log_.AppendObject(table, hash, key, value, version);
  if (!ref.ok()) {
    return ref.status();
  }
  hash_table_.Insert(hash, *ref);
  if (old_ref.valid()) {
    log_.MarkDead(old_ref);
  }
  version_horizon_ = std::max(version_horizon_, version);
  if (out_ref != nullptr) {
    *out_ref = *ref;
  }
  return version;
}

Result<Version> ObjectManager::Remove(TableId table, std::string_view key, KeyHash hash,
                                      LogRef* out_ref, bool tombstone_if_missing) {
  const LogRef old_ref = hash_table_.Lookup(hash);
  Version floor = version_horizon_;
  bool have_object = false;
  if (old_ref.valid()) {
    LogEntryView old_entry;
    if (!log_.Read(old_ref, &old_entry)) {
      return Status::kCorruptData;
    }
    floor = std::max(floor, old_entry.version());
    have_object = old_entry.type() == LogEntryType::kObject;
  }
  if (!have_object && !tombstone_if_missing) {
    return Status::kObjectNotFound;
  }
  const Version version = floor + 1;
  auto ref = log_.AppendTombstone(table, hash, key, version);
  if (!ref.ok()) {
    return ref.status();
  }
  if (old_ref.valid()) {
    log_.MarkDead(old_ref);
  }
  if (have_object) {
    // The object is gone; the tombstone lives only in the recovery log (the
    // backups keep their replica of it), so it is immediately dead in
    // memory and the hash-table entry is dropped.
    hash_table_.Remove(hash);
    log_.MarkDead(*ref);
  } else {
    // Deleting a record that has not arrived yet (migration target, §3):
    // keep the tombstone *live and referenced* so a later-arriving older
    // copy loses the version comparison instead of resurrecting.
    hash_table_.Insert(hash, *ref);
  }
  version_horizon_ = std::max(version_horizon_, version);
  if (out_ref != nullptr) {
    *out_ref = *ref;
  }
  return version;
}

bool ObjectManager::Replay(const LogEntryView& entry, SideLog* side_log, LogRef* out_ref) {
  const KeyHash hash = entry.key_hash();
  const LogRef old_ref = hash_table_.Lookup(hash);
  if (old_ref.valid()) {
    LogEntryView existing;
    if (log_.Read(old_ref, &existing) && existing.version() >= entry.version()) {
      return false;  // Local copy is as new or newer; drop the stale record.
    }
  }
  if (entry.type() == LogEntryType::kTombstone) {
    // Keep the tombstone referenced: replay is order-free, so an older copy
    // of the object may arrive *after* its tombstone and must lose the
    // version comparison.
    Result<LogRef> ref = side_log != nullptr
                             ? side_log->AppendTombstone(entry.table_id(), hash, entry.key,
                                                         entry.version())
                             : log_.AppendTombstone(entry.table_id(), hash, entry.key,
                                                    entry.version());
    if (!ref.ok()) {
      return false;
    }
    hash_table_.Insert(hash, *ref);
    if (old_ref.valid()) {
      log_.MarkDead(old_ref);
    }
    version_horizon_ = std::max(version_horizon_, entry.version());
    if (out_ref != nullptr) {
      *out_ref = *ref;
    }
    return true;
  }
  assert(entry.type() == LogEntryType::kObject);
  Result<LogRef> ref = side_log != nullptr
                           ? side_log->AppendObject(entry.table_id(), hash, entry.key,
                                                    entry.value, entry.version())
                           : log_.AppendObject(entry.table_id(), hash, entry.key, entry.value,
                                               entry.version());
  if (!ref.ok()) {
    return false;
  }
  hash_table_.Insert(hash, *ref);
  if (old_ref.valid()) {
    log_.MarkDead(old_ref);
  }
  version_horizon_ = std::max(version_horizon_, entry.version());
  if (out_ref != nullptr) {
    *out_ref = *ref;
  }
  return true;
}

size_t ObjectManager::DropSideLogEntries(const SideLog& side_log) {
  std::vector<uint32_t> segment_ids;
  segment_ids.reserve(side_log.segments().size());
  for (const auto& segment : side_log.segments()) {
    segment_ids.push_back(segment->id());
  }
  return hash_table_.RemoveIf([&](KeyHash, LogRef ref) {
    for (uint32_t id : segment_ids) {
      if (ref.segment_id() == id) {
        return true;
      }
    }
    return false;
  });
}

size_t ObjectManager::DropTabletEntries(TableId table, KeyHash start_hash, KeyHash end_hash) {
  return hash_table_.RemoveIf([&](KeyHash hash, LogRef ref) {
    if (hash < start_hash || hash > end_hash) {
      return false;
    }
    LogEntryView entry;
    if (!log_.Read(ref, &entry) || entry.table_id() != table) {
      return false;
    }
    log_.MarkDead(ref);
    return true;
  });
}

uint64_t ObjectManager::EstimateRangeBytes(TableId table, KeyHash start_hash,
                                           KeyHash end_hash) const {
  uint64_t bytes = 0;
  hash_table_.ForEach([&](KeyHash hash, LogRef ref) {
    if (hash < start_hash || hash > end_hash) {
      return;
    }
    LogEntryView entry;
    if (!log_.Read(ref, &entry) || entry.table_id() != table ||
        entry.type() != LogEntryType::kObject) {
      return;
    }
    bytes += sizeof(LogEntryHeader) + entry.key.size() + entry.value.size();
  });
  return bytes;
}

size_t ObjectManager::RunCleaner(size_t max_segments) { return cleaner_.CleanOnce(max_segments); }

size_t ObjectManager::RunEmergencyCleaner(size_t max_segments) {
  return cleaner_.EmergencyClean(max_segments);
}

void ObjectManager::AuditInvariants(AuditReport* report) const {
  log_.AuditInvariants(report);
  hash_table_.AuditInvariants(report, &log_);
  tablets_.AuditInvariants(report);
  hash_table_.ForEach([&](KeyHash hash, LogRef ref) {
    LogEntryView entry;
    if (!log_.Read(ref, &entry)) {
      return;  // Already reported by the hash-table audit.
    }
    if (entry.version() > version_horizon_) {
      report->Fail("objects: hash %llx carries version %llu above horizon %llu",
                   static_cast<unsigned long long>(hash),
                   static_cast<unsigned long long>(entry.version()),
                   static_cast<unsigned long long>(version_horizon_));
    }
  });
}

}  // namespace rocksteady
