// Tablets: contiguous key-hash ranges of a table, the unit of ownership.
//
// §2: "its key space is divided into unordered tables and tables can be
// broken into tablets that reside on different servers", partitioned on
// primary key hash. Rocksteady's "lazy partitioning" means a tablet can be
// split at any hash at migration time with no preparatory work.
#ifndef ROCKSTEADY_SRC_STORE_TABLET_H_
#define ROCKSTEADY_SRC_STORE_TABLET_H_

#include <optional>
#include <vector>

#include "src/common/audit.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace rocksteady {

enum class TabletState : uint8_t {
  // Owned and serving normally.
  kNormal,
  // This server is the *source* of an in-progress Rocksteady migration:
  // ownership has already moved, the local copy is immutable, and client
  // ops get kWrongServer (§3: "Sources keep no migration state, and their
  // migrating tablets are immutable").
  kMigrationSource,
  // This server is the *target*: it owns the tablet and serves writes
  // immediately, but reads of not-yet-arrived records trigger PriorityPulls
  // and kRetryLater (§3).
  kMigrationTarget,
  // Owned by the baseline (pre-existing RAMCloud) migration source: still
  // serving reads, rejecting writes is not needed (baseline keeps ownership
  // until the end), but the migration scan is in progress.
  kBaselineSourceBusy,
  // Re-homed here by crash recovery; replay still in progress. Reads answer
  // kRetryLater until the log replay finishes.
  kRecovering,
};

struct Tablet {
  TableId table_id = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;  // Inclusive.
  TabletState state = TabletState::kNormal;

  bool Contains(TableId table, KeyHash hash) const {
    return table == table_id && hash >= start_hash && hash <= end_hash;
  }

  // True if splitting at `h` leaves both halves at least `min_span` hashes
  // wide — the split-policy gate (a split at start_hash would make the lower
  // half empty). Ranges are inclusive, so the full hash space never
  // overflows here: h > start_hash >= 0 keeps both subtractions in range.
  bool CanSplitAt(KeyHash h, KeyHash min_span) const {
    return h > start_hash && h <= end_hash && h - start_hash >= min_span &&
           end_hash - h + 1 >= min_span;
  }
};

// The set of tablets a master currently knows about (owned or mid-release).
class TabletManager {
 public:
  void Add(const Tablet& tablet) { tablets_.push_back(tablet); }

  Tablet* Find(TableId table, KeyHash hash);
  const Tablet* Find(TableId table, KeyHash hash) const;

  // Splits the tablet containing `split_hash` into [start, split_hash-1] and
  // [split_hash, end]. Rocksteady defers all partitioning work to this
  // moment; it is a metadata-only operation.
  Status Split(TableId table, KeyHash split_hash);

  // Removes the exact tablet [start, end]; returns false if absent.
  bool Remove(TableId table, KeyHash start_hash, KeyHash end_hash);

  std::vector<Tablet>& tablets() { return tablets_; }
  const std::vector<Tablet>& tablets() const { return tablets_; }

  // Invariants: every tablet's range is well-formed and no two tablets of
  // the same table overlap — each key hash has at most one local owner.
  void AuditInvariants(AuditReport* report) const;

 private:
  std::vector<Tablet> tablets_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_STORE_TABLET_H_
