#include "src/store/tablet.h"

#include <algorithm>

namespace rocksteady {

Tablet* TabletManager::Find(TableId table, KeyHash hash) {
  for (auto& tablet : tablets_) {
    if (tablet.Contains(table, hash)) {
      return &tablet;
    }
  }
  return nullptr;
}

const Tablet* TabletManager::Find(TableId table, KeyHash hash) const {
  return const_cast<TabletManager*>(this)->Find(table, hash);
}

Status TabletManager::Split(TableId table, KeyHash split_hash) {
  Tablet* tablet = Find(table, split_hash);
  if (tablet == nullptr) {
    return Status::kTableNotFound;
  }
  if (tablet->start_hash == split_hash) {
    return Status::kOk;  // Already split here.
  }
  Tablet upper = *tablet;
  upper.start_hash = split_hash;
  tablet->end_hash = split_hash - 1;
  tablets_.push_back(upper);
  return Status::kOk;
}

void TabletManager::AuditInvariants(AuditReport* report) const {
  for (size_t i = 0; i < tablets_.size(); i++) {
    const Tablet& a = tablets_[i];
    if (a.start_hash > a.end_hash) {
      report->Fail("tablets: inverted range [%llx, %llx] for table %llu",
                   static_cast<unsigned long long>(a.start_hash),
                   static_cast<unsigned long long>(a.end_hash),
                   static_cast<unsigned long long>(a.table_id));
    }
    for (size_t j = i + 1; j < tablets_.size(); j++) {
      const Tablet& b = tablets_[j];
      if (a.table_id == b.table_id && a.start_hash <= b.end_hash && b.start_hash <= a.end_hash) {
        report->Fail("tablets: table %llu ranges [%llx, %llx] and [%llx, %llx] overlap",
                     static_cast<unsigned long long>(a.table_id),
                     static_cast<unsigned long long>(a.start_hash),
                     static_cast<unsigned long long>(a.end_hash),
                     static_cast<unsigned long long>(b.start_hash),
                     static_cast<unsigned long long>(b.end_hash));
      }
    }
  }
}

bool TabletManager::Remove(TableId table, KeyHash start_hash, KeyHash end_hash) {
  auto it = std::find_if(tablets_.begin(), tablets_.end(), [&](const Tablet& t) {
    return t.table_id == table && t.start_hash == start_hash && t.end_hash == end_hash;
  });
  if (it == tablets_.end()) {
    return false;
  }
  tablets_.erase(it);
  return true;
}

}  // namespace rocksteady
