#include "src/log/log_entry.h"

#include "src/common/crc32c.h"

namespace rocksteady {

uint32_t ComputeEntryChecksum(const LogEntryHeader& header, std::string_view key,
                              std::string_view value) {
  LogEntryHeader scratch = header;
  scratch.checksum = 0;
  Crc32cAccumulator crc;
  crc.Update(&scratch, sizeof(scratch));
  crc.Update(key.data(), key.size());
  crc.Update(value.data(), value.size());
  return crc.result();
}

void WriteEntry(uint8_t* dst, LogEntryHeader header, std::string_view key,
                std::string_view value) {
  header.key_length = static_cast<uint16_t>(key.size());
  header.value_length = static_cast<uint32_t>(value.size());
  header.checksum = ComputeEntryChecksum(header, key, value);
  std::memcpy(dst, &header, sizeof(header));
  // Empty views can carry a null data() (e.g. a default string_view for a
  // tombstone's value); memcpy's pointer args must be non-null even for n=0.
  if (!key.empty()) {
    std::memcpy(dst + sizeof(header), key.data(), key.size());
  }
  if (!value.empty()) {
    std::memcpy(dst + sizeof(header) + key.size(), value.data(), value.size());
  }
}

bool ReadEntry(const uint8_t* src, size_t available, LogEntryView* out) {
  if (available < sizeof(LogEntryHeader)) {
    return false;
  }
  LogEntryHeader header;
  std::memcpy(&header, src, sizeof(header));
  if (header.type == LogEntryType::kInvalid || available < header.TotalLength()) {
    return false;
  }
  const char* key_start = reinterpret_cast<const char*>(src + sizeof(header));
  std::string_view key(key_start, header.key_length);
  std::string_view value(key_start + header.key_length, header.value_length);
  if (ComputeEntryChecksum(header, key, value) != header.checksum) {
    return false;
  }
  out->header = header;
  out->key = key;
  out->value = value;
  return true;
}

}  // namespace rocksteady
