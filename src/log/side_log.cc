#include "src/log/side_log.h"

#include <cassert>

namespace rocksteady {

SideLog::~SideLog() {
  // Uncommitted segments are dropped; committing must be explicit.
  Abort();
}

Result<LogRef> SideLog::Append(LogEntryType type, TableId table, KeyHash hash,
                               std::string_view key, std::string_view value, Version version) {
  const size_t needed = sizeof(LogEntryHeader) + key.size() + value.size();
  if (needed > parent_->segment_size()) {
    return Status::kNoSpace;
  }
  LogEntryHeader header;
  header.type = type;
  header.table_id = table;
  header.key_hash = hash;
  header.version = version;

  if (segments_.empty() || segments_.back()->Free() < needed) {
    segments_.push_back(parent_->AllocateSideSegment());
  }
  Segment* segment = segments_.back().get();
  const size_t offset = segment->AppendEntry(header, key, value);
  assert(offset != SIZE_MAX);
  pending_bytes_ += needed;
  pending_entries_++;
  return LogRef(segment->id(), static_cast<uint32_t>(offset));
}

Result<LogRef> SideLog::AppendObject(TableId table, KeyHash hash, std::string_view key,
                                     std::string_view value, Version version) {
  return Append(LogEntryType::kObject, table, hash, key, value, version);
}

Result<LogRef> SideLog::AppendTombstone(TableId table, KeyHash hash, std::string_view key,
                                        Version version) {
  return Append(LogEntryType::kTombstone, table, hash, key, {}, version);
}

void SideLog::Commit() {
  parent_->AdoptSideSegments(std::move(segments_));
  segments_.clear();
  pending_bytes_ = 0;
  pending_entries_ = 0;
}

void SideLog::AuditInvariants(AuditReport* report) const {
  size_t bytes = 0;
  size_t entries = 0;
  for (const auto& segment : segments_) {
    if (segment->sealed()) {
      report->Fail("sidelog: pending segment %u is sealed before commit", segment->id());
    }
    if (parent_->FindSegment(segment->id()) != segment.get()) {
      report->Fail("sidelog: segment %u not readable through parent log", segment->id());
    }
    for (const auto& owned : parent_->segments()) {
      if (owned->id() == segment->id()) {
        report->Fail("sidelog: uncommitted segment %u visible in parent's durable log",
                     segment->id());
      }
    }
    segment->AuditInvariants(report);
    bytes += segment->used();
    segment->ForEach([&](size_t, const LogEntryView&) {
      entries++;
      return true;
    });
  }
  if (bytes != pending_bytes_) {
    report->Fail("sidelog: pending_bytes %zu but segments hold %zu", pending_bytes_, bytes);
  }
  if (entries != pending_entries_) {
    report->Fail("sidelog: pending_entries %zu but segments hold %zu", pending_entries_, entries);
  }
}

void SideLog::Abort() {
  for (auto& segment : segments_) {
    parent_->DropSideSegment(std::move(segment));
  }
  segments_.clear();
  pending_bytes_ = 0;
  pending_entries_ = 0;
}

}  // namespace rocksteady
