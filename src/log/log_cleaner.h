// Cost-benefit log cleaner.
//
// §2 / §3.1.3: RAMCloud's cleaner constantly reorganizes memory to sustain
// 80-90% utilization; Rocksteady's lazy partitioning exists so migration
// never constrains the cleaner's global reorganization. The cleaner here
// implements the classic LFS/RAMCloud cost-benefit policy: pick the sealed
// segment maximizing benefit/cost = (1 - u) * age / (1 + u), relocate its
// live entries (via a callback that consults the hash table), then free it.
#ifndef ROCKSTEADY_SRC_LOG_LOG_CLEANER_H_
#define ROCKSTEADY_SRC_LOG_LOG_CLEANER_H_

#include <functional>
#include <optional>

#include "src/log/log.h"

namespace rocksteady {

class LogCleaner {
 public:
  // Asked for each entry of a victim segment. The owner must decide whether
  // the entry is still live (hash table points at `old_ref`); if so it
  // re-appends the entry to the log head, updates its references, and
  // returns true. Dead entries return false and are dropped.
  using Relocator = std::function<bool(LogRef old_ref, const LogEntryView& entry)>;

  LogCleaner(Log* log, Relocator relocator)
      : log_(log), relocator_(std::move(relocator)) {}

  // Picks the best victim by cost-benefit; returns nullopt when no sealed
  // segment clears `max_utilization` (cleaning a nearly-full segment wastes
  // more bandwidth than it reclaims).
  std::optional<uint32_t> SelectVictim(double max_utilization = 0.98) const;

  // Cleans up to `max_segments` victims. Returns segments actually cleaned.
  size_t CleanOnce(size_t max_segments = 1);

  // Memory-pressure path: picks the sealed segment with the most dead bytes
  // — the goal is reclaiming memory *now*, not amortizing cleaning
  // bandwidth, so the cost-benefit age term is irrelevant. Side-log segments
  // adopted at a migration commit sit in the main segment list (sealed), so
  // they are eligible victims like any other. Segments with no dead bytes
  // are never picked: relocating a fully-live segment frees nothing.
  std::optional<uint32_t> SelectEmergencyVictim() const;
  // Cleans up to `max_segments` emergency victims; returns segments cleaned
  // (0 when no segment has any dead bytes — cleaning is futile and the
  // caller must shed load or abort instead).
  size_t EmergencyClean(size_t max_segments = 1);

  uint64_t bytes_relocated() const { return bytes_relocated_; }
  uint64_t entries_relocated() const { return entries_relocated_; }
  uint64_t segments_cleaned() const { return segments_cleaned_; }
  uint64_t emergency_cleans() const { return emergency_cleans_; }

 private:
  bool CleanSegment(uint32_t segment_id);

  Log* log_;
  Relocator relocator_;
  uint64_t bytes_relocated_ = 0;
  uint64_t entries_relocated_ = 0;
  uint64_t segments_cleaned_ = 0;
  uint64_t emergency_cleans_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_LOG_LOG_CLEANER_H_
