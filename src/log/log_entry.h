// Log entry format.
//
// RAMCloud keeps every record in an append-only segmented log, in memory and
// (replicated) on backups; the in-memory hash table holds references into the
// log. Entries are self-describing and self-checksummed so that migration
// replay and crash recovery can validate them before incorporation.
#ifndef ROCKSTEADY_SRC_LOG_LOG_ENTRY_H_
#define ROCKSTEADY_SRC_LOG_LOG_ENTRY_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "src/common/types.h"

namespace rocksteady {

enum class LogEntryType : uint8_t {
  kInvalid = 0,
  // A live object: header + key bytes + value bytes.
  kObject = 1,
  // A deletion marker: header only (key carried for recovery filtering).
  kTombstone = 2,
  // Marks the head of a segment; carries the owning log's id.
  kSegmentHeader = 3,
  // Appended to the main log when a side log commits; names the side log's
  // segments so recovery knows they belong to the main log (§3.1.3).
  kSideLogCommit = 4,
};

// Fixed-size prefix of every entry. Stored unaligned in segment memory; read
// and written with memcpy.
struct LogEntryHeader {
  LogEntryType type = LogEntryType::kInvalid;
  uint8_t reserved = 0;
  uint16_t key_length = 0;
  uint32_t value_length = 0;
  TableId table_id = 0;
  KeyHash key_hash = 0;
  Version version = 0;
  // CRC32C over the header (with this field zeroed), key, and value.
  uint32_t checksum = 0;

  uint32_t TotalLength() const {
    return static_cast<uint32_t>(sizeof(LogEntryHeader)) + key_length + value_length;
  }
};
static_assert(sizeof(LogEntryHeader) == 40);

// A parsed, validated view of an entry inside a segment. The referenced
// bytes live in segment memory and remain valid while the segment does.
struct LogEntryView {
  LogEntryHeader header;
  std::string_view key;
  std::string_view value;

  LogEntryType type() const { return header.type; }
  TableId table_id() const { return header.table_id; }
  KeyHash key_hash() const { return header.key_hash; }
  Version version() const { return header.version; }
};

// Computes the checksum an entry with these contents should carry.
uint32_t ComputeEntryChecksum(const LogEntryHeader& header, std::string_view key,
                              std::string_view value);

// Serializes an entry at `dst` (which must have header.TotalLength() bytes),
// filling in the checksum.
void WriteEntry(uint8_t* dst, LogEntryHeader header, std::string_view key,
                std::string_view value);

// Parses the entry at `src`; returns false if `available` is too small or the
// checksum does not match.
bool ReadEntry(const uint8_t* src, size_t available, LogEntryView* out);

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_LOG_LOG_ENTRY_H_
