// A fixed-size append-only chunk of log memory.
//
// RAMCloud segments are 8 MB; the simulated cluster defaults to smaller
// segments (configurable) so scaled-down experiments still produce many
// segments for the cleaner and for recovery to chew on. Segment ids are
// unique within one Log, including side-log segments (§3.1.3), so log
// references stay valid when a side log commits into the main log.
#ifndef ROCKSTEADY_SRC_LOG_SEGMENT_H_
#define ROCKSTEADY_SRC_LOG_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/audit.h"
#include "src/log/log_entry.h"

namespace rocksteady {

inline constexpr size_t kDefaultSegmentSize = 256 * 1024;

class Segment {
 public:
  Segment(uint32_t id, size_t capacity) : id_(id), buffer_(capacity) {}

  uint32_t id() const { return id_; }
  size_t capacity() const { return buffer_.size(); }
  size_t used() const { return used_; }
  size_t Free() const { return buffer_.size() - used_; }
  bool sealed() const { return sealed_; }
  void Seal() { sealed_ = true; }

  // Bytes of entries still referenced by a hash table; maintained by the Log
  // via MarkDead. Drives the cleaner's cost-benefit policy.
  size_t live_bytes() const { return live_bytes_; }
  void AddLive(size_t bytes) { live_bytes_ += bytes; }
  void SubLive(size_t bytes) { live_bytes_ -= bytes; }

  // Appends a serialized entry; returns its offset, or SIZE_MAX if full.
  size_t AppendEntry(const LogEntryHeader& header, std::string_view key, std::string_view value);

  // Parses the entry at `offset`. Returns false on bad offset or checksum.
  bool EntryAt(size_t offset, LogEntryView* out) const;

  // Iterates entries in append order; stops early if `fn` returns false.
  // Returns false if a corrupt entry was encountered.
  bool ForEach(const std::function<bool(size_t offset, const LogEntryView&)>& fn) const;

  const uint8_t* data() const { return buffer_.data(); }

  // Raw copy-in used by backup replicas and recovery (the bytes were
  // validated entry-by-entry on the original master).
  void RestoreRaw(const uint8_t* data, size_t length);

  // Invariants: used/live accounting within bounds, and the used region is
  // exactly tiled by entries whose checksums validate.
  void AuditInvariants(AuditReport* report) const;

 private:
  uint32_t id_;
  size_t used_ = 0;
  size_t live_bytes_ = 0;
  bool sealed_ = false;
  std::vector<uint8_t> buffer_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_LOG_SEGMENT_H_
