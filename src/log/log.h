// The master's in-memory segmented log.
//
// §2.3: "During normal operation each server stores all records in an
// in-memory log. The log is incrementally cleaned; it is never checkpointed,
// and a full copy of it always remains in memory." The hash table stores
// LogRef values (segment id + offset) into this log. Side logs (§3.1.3)
// allocate segments from the same id space so their references stay valid
// when committed.
#ifndef ROCKSTEADY_SRC_LOG_LOG_H_
#define ROCKSTEADY_SRC_LOG_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/audit.h"
#include "src/common/status.h"
#include "src/log/segment.h"

namespace rocksteady {

// A compact reference to an entry: segment id + byte offset.
struct LogRef {
  uint64_t raw = 0;

  LogRef() = default;
  LogRef(uint32_t segment_id, uint32_t offset)
      : raw((static_cast<uint64_t>(segment_id) << 32) | offset | kValidBit) {}

  bool valid() const { return (raw & kValidBit) != 0; }
  uint32_t segment_id() const { return static_cast<uint32_t>(raw >> 32); }
  uint32_t offset() const { return static_cast<uint32_t>(raw) & ~kValidBitLow; }

  friend bool operator==(LogRef a, LogRef b) { return a.raw == b.raw; }

 private:
  // Offsets are segment-bounded (< 2^31), so the low bit 31 marks validity.
  static constexpr uint64_t kValidBit = 1ull << 31;
  static constexpr uint32_t kValidBitLow = 1u << 31;
};

struct LogStats {
  uint64_t appended_bytes = 0;
  uint64_t appended_entries = 0;
  uint64_t dead_bytes = 0;
  uint64_t cleaned_segments = 0;
  uint64_t relocated_entries = 0;
  uint64_t relocated_bytes = 0;
};

class Log {
 public:
  explicit Log(size_t segment_size = kDefaultSegmentSize) : segment_size_(segment_size) {}

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  // Appends an object entry; rolls to a new head segment when full.
  Result<LogRef> AppendObject(TableId table, KeyHash hash, std::string_view key,
                              std::string_view value, Version version);
  Result<LogRef> AppendTombstone(TableId table, KeyHash hash, std::string_view key,
                                 Version version);

  // Reads the (validated) entry at `ref`; false if the reference is stale
  // (segment freed) or the entry fails its checksum.
  bool Read(LogRef ref, LogEntryView* out) const;

  // Raw serialized bytes of the entry at `ref` (header + key + value), for
  // replication and migration transfer. False on a stale/corrupt reference.
  bool RawEntry(LogRef ref, const uint8_t** data, size_t* length) const;

  // Marks the entry at `ref` dead (overwritten or deleted); updates segment
  // live-byte accounting for the cleaner.
  void MarkDead(LogRef ref);

  // Allocates a segment in this log's id space without appending it to the
  // main list; used by SideLog. The segment is registered for Read() lookups
  // immediately (migrated records must be readable before commit).
  std::unique_ptr<Segment> AllocateSideSegment();

  // Adopts side-log segments into the main log and appends a commit record
  // naming them (§3.1.3 / §3.4: the sidelog commit makes the records part of
  // the master's durable state).
  void AdoptSideSegments(std::vector<std::unique_ptr<Segment>> segments);

  // Drops an allocated-but-uncommitted side segment (aborted migration).
  void DropSideSegment(std::unique_ptr<Segment> segment);

  // Iterates every entry of every owned segment in id order. Side-log
  // segments not yet committed are not included (they are not part of the
  // log's durable state).
  void ForEachEntry(const std::function<void(LogRef, const LogEntryView&)>& fn) const;

  // Segments owned by the main log (sealed and head), oldest first.
  const std::vector<std::unique_ptr<Segment>>& segments() const { return segments_; }

  // Removes a (cleaned) segment entirely. The caller must have relocated all
  // live entries first.
  void FreeSegment(uint32_t segment_id);

  Segment* FindSegment(uint32_t segment_id) const {
    auto it = registry_.find(segment_id);
    return it == registry_.end() ? nullptr : it->second;
  }

  // Head position, as (segment id, offset): everything appended later than
  // this is "the log tail" — what a lineage dependency covers (§3.4).
  std::pair<uint32_t, uint32_t> HeadPosition() const;

  const LogStats& stats() const { return stats_; }
  size_t segment_size() const { return segment_size_; }
  uint64_t live_bytes() const;
  uint64_t total_bytes() const;
  // Memory actually held: full segment capacity of every live segment,
  // *including* uncommitted side-log segments (unlike live/total_bytes,
  // which cover only the main log). This is what a memory budget is charged
  // against — a migration target's side logs occupy DRAM before commit.
  uint64_t allocated_bytes() const;

  // Observer invoked with (ref, entry) after every append to the main log
  // (not side logs); the ReplicaManager hooks this to replicate new data.
  using AppendObserver = std::function<void(LogRef, const LogEntryView&)>;
  void set_append_observer(AppendObserver observer) { append_observer_ = std::move(observer); }

  // Invariants: segment ids strictly increasing and below the allocation
  // cursor, committed (non-head) segments sealed, every owned segment
  // registered, registry covers at least the owned segments (the surplus is
  // uncommitted side segments), per-segment entry checksums, and live-byte
  // accounting bounded by used bytes.
  void AuditInvariants(AuditReport* report) const;

 private:
  Result<LogRef> Append(LogEntryType type, TableId table, KeyHash hash, std::string_view key,
                        std::string_view value, Version version);
  Segment* Head();

  size_t segment_size_;
  uint32_t next_segment_id_ = 1;
  std::vector<std::unique_ptr<Segment>> segments_;
  // Every live segment (main + uncommitted side) by id, for Read().
  std::unordered_map<uint32_t, Segment*> registry_;
  LogStats stats_;
  AppendObserver append_observer_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_LOG_LOG_H_
