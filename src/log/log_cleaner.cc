#include "src/log/log_cleaner.h"

#include <vector>

namespace rocksteady {

std::optional<uint32_t> LogCleaner::SelectVictim(double max_utilization) const {
  const auto& segments = log_->segments();
  double best_score = -1;
  std::optional<uint32_t> best;
  // Newest segment id as the age reference point; lower ids are older.
  uint32_t newest = 0;
  for (const auto& segment : segments) {
    newest = std::max(newest, segment->id());
  }
  for (const auto& segment : segments) {
    if (!segment->sealed()) {
      continue;  // Never clean the head.
    }
    const double u =
        static_cast<double>(segment->live_bytes()) / static_cast<double>(segment->capacity());
    if (u > max_utilization) {
      continue;
    }
    const double age = static_cast<double>(newest - segment->id() + 1);
    const double score = (1.0 - u) * age / (1.0 + u);
    if (score > best_score) {
      best_score = score;
      best = segment->id();
    }
  }
  return best;
}

bool LogCleaner::CleanSegment(uint32_t segment_id) {
  Segment* segment = log_->FindSegment(segment_id);
  if (segment == nullptr) {
    return false;
  }
  // Collect survivors first: relocation appends to the head, and appending
  // while iterating the victim is fine (different segments), but collecting
  // keeps the accounting simple and matches RAMCloud's survivor-segment
  // batching.
  struct Candidate {
    LogRef ref;
    LogEntryView view;
  };
  std::vector<Candidate> candidates;
  segment->ForEach([&](size_t offset, const LogEntryView& view) {
    if (view.type() == LogEntryType::kObject || view.type() == LogEntryType::kTombstone) {
      candidates.push_back({LogRef(segment_id, static_cast<uint32_t>(offset)), view});
    }
    return true;
  });
  for (const auto& candidate : candidates) {
    if (relocator_(candidate.ref, candidate.view)) {
      entries_relocated_++;
      bytes_relocated_ += candidate.view.header.TotalLength();
    }
  }
  log_->FreeSegment(segment_id);
  segments_cleaned_++;
  return true;
}

size_t LogCleaner::CleanOnce(size_t max_segments) {
  size_t cleaned = 0;
  for (size_t i = 0; i < max_segments; i++) {
    const auto victim = SelectVictim();
    if (!victim.has_value() || !CleanSegment(*victim)) {
      break;
    }
    cleaned++;
  }
  return cleaned;
}

std::optional<uint32_t> LogCleaner::SelectEmergencyVictim() const {
  uint64_t best_dead = 0;
  std::optional<uint32_t> best;
  for (const auto& segment : log_->segments()) {
    if (!segment->sealed()) {
      continue;  // Never clean the head.
    }
    const uint64_t dead = segment->capacity() - segment->live_bytes();
    if (dead > best_dead) {
      best_dead = dead;
      best = segment->id();
    }
  }
  return best;
}

size_t LogCleaner::EmergencyClean(size_t max_segments) {
  size_t cleaned = 0;
  for (size_t i = 0; i < max_segments; i++) {
    const auto victim = SelectEmergencyVictim();
    if (!victim.has_value() || !CleanSegment(*victim)) {
      break;
    }
    cleaned++;
    emergency_cleans_++;
  }
  return cleaned;
}

}  // namespace rocksteady
