// Per-core side logs for contention-free parallel replay.
//
// §3.1.3: "Rocksteady ... uses per-core side logs off of the target's main
// log. Each side log consists of independent segments of records; each core
// can replay records into its side log segments without interference. At the
// end of migration, each side log's segments are lazily replicated, and then
// the side log is committed into the main log by appending a small metadata
// record to the main log." Side logs also accumulate statistics locally and
// only merge them into the main log at commit.
#ifndef ROCKSTEADY_SRC_LOG_SIDE_LOG_H_
#define ROCKSTEADY_SRC_LOG_SIDE_LOG_H_

#include <memory>
#include <vector>

#include "src/log/log.h"

namespace rocksteady {

class SideLog {
 public:
  explicit SideLog(Log* parent) : parent_(parent) {}

  SideLog(const SideLog&) = delete;
  SideLog& operator=(const SideLog&) = delete;

  ~SideLog();

  // Appends a replayed object. References are immediately readable through
  // the parent log (migrated records serve reads before commit).
  Result<LogRef> AppendObject(TableId table, KeyHash hash, std::string_view key,
                              std::string_view value, Version version);
  Result<LogRef> AppendTombstone(TableId table, KeyHash hash, std::string_view key,
                                 Version version);

  // Commits all segments into the parent log (appends the commit metadata
  // record). After this the side log is empty and reusable.
  void Commit();

  // Drops all uncommitted segments (aborted migration). Hash-table entries
  // pointing into them must have been removed by the caller.
  void Abort();

  size_t pending_bytes() const { return pending_bytes_; }
  size_t pending_entries() const { return pending_entries_; }
  const std::vector<std::unique_ptr<Segment>>& segments() const { return segments_; }

  // Invariants: pending counters match the segments' contents, every pending
  // segment is open, readable through the parent (migrated records must
  // serve reads before commit), and *absent* from the parent's durable
  // segment list (side-log data is invisible until commit, §3.1.3).
  void AuditInvariants(AuditReport* report) const;

 private:
  Result<LogRef> Append(LogEntryType type, TableId table, KeyHash hash, std::string_view key,
                        std::string_view value, Version version);

  Log* parent_;
  std::vector<std::unique_ptr<Segment>> segments_;
  size_t pending_bytes_ = 0;
  size_t pending_entries_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_LOG_SIDE_LOG_H_
