#include "src/log/segment.h"

#include <cassert>
#include <cstring>
#include <functional>

namespace rocksteady {

size_t Segment::AppendEntry(const LogEntryHeader& header, std::string_view key,
                            std::string_view value) {
  assert(!sealed_);
  const size_t needed = sizeof(LogEntryHeader) + key.size() + value.size();
  if (Free() < needed) {
    return SIZE_MAX;
  }
  const size_t offset = used_;
  WriteEntry(buffer_.data() + offset, header, key, value);
  used_ += needed;
  live_bytes_ += needed;
  return offset;
}

bool Segment::EntryAt(size_t offset, LogEntryView* out) const {
  if (offset >= used_) {
    return false;
  }
  return ReadEntry(buffer_.data() + offset, used_ - offset, out);
}

bool Segment::ForEach(const std::function<bool(size_t, const LogEntryView&)>& fn) const {
  size_t offset = 0;
  while (offset < used_) {
    LogEntryView view;
    if (!ReadEntry(buffer_.data() + offset, used_ - offset, &view)) {
      return false;
    }
    if (!fn(offset, view)) {
      return true;
    }
    offset += view.header.TotalLength();
  }
  return true;
}

void Segment::AuditInvariants(AuditReport* report) const {
  if (used_ > buffer_.size()) {
    report->Fail("segment %u: used %zu exceeds capacity %zu", id_, used_, buffer_.size());
    return;  // Accounting is broken; walking the buffer would read past it.
  }
  if (live_bytes_ > used_) {
    report->Fail("segment %u: live bytes %zu exceed used bytes %zu", id_, live_bytes_, used_);
  }
  size_t offset = 0;
  while (offset < used_) {
    LogEntryView view;
    if (!ReadEntry(buffer_.data() + offset, used_ - offset, &view)) {
      report->Fail("segment %u: corrupt entry at offset %zu (bad checksum or truncated)", id_,
                   offset);
      return;  // Entry length is untrustworthy; cannot continue the walk.
    }
    if (view.type() == LogEntryType::kInvalid) {
      report->Fail("segment %u: entry at offset %zu has invalid type", id_, offset);
    }
    offset += view.header.TotalLength();
  }
  if (offset != used_) {
    report->Fail("segment %u: entries tile %zu bytes but used is %zu", id_, offset, used_);
  }
}

void Segment::RestoreRaw(const uint8_t* data, size_t length) {
  assert(length <= buffer_.size());
  std::memcpy(buffer_.data(), data, length);
  used_ = length;
  live_bytes_ = length;
}

}  // namespace rocksteady
