#include "src/log/log.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace rocksteady {

Segment* Log::Head() {
  if (segments_.empty() || segments_.back()->sealed()) {
    auto segment = std::make_unique<Segment>(next_segment_id_++, segment_size_);
    registry_[segment->id()] = segment.get();
    segments_.push_back(std::move(segment));
  }
  return segments_.back().get();
}

Result<LogRef> Log::Append(LogEntryType type, TableId table, KeyHash hash, std::string_view key,
                           std::string_view value, Version version) {
  const size_t needed = sizeof(LogEntryHeader) + key.size() + value.size();
  if (needed > segment_size_) {
    return Status::kNoSpace;
  }
  LogEntryHeader header;
  header.type = type;
  header.table_id = table;
  header.key_hash = hash;
  header.version = version;

  Segment* head = Head();
  size_t offset = head->AppendEntry(header, key, value);
  if (offset == SIZE_MAX) {
    head->Seal();
    head = Head();
    offset = head->AppendEntry(header, key, value);
    assert(offset != SIZE_MAX);
  }
  stats_.appended_bytes += needed;
  stats_.appended_entries++;
  const LogRef ref(head->id(), static_cast<uint32_t>(offset));
  if (append_observer_) {
    LogEntryView view;
    const bool ok = head->EntryAt(offset, &view);
    assert(ok);
    (void)ok;
    append_observer_(ref, view);
  }
  return ref;
}

Result<LogRef> Log::AppendObject(TableId table, KeyHash hash, std::string_view key,
                                 std::string_view value, Version version) {
  return Append(LogEntryType::kObject, table, hash, key, value, version);
}

Result<LogRef> Log::AppendTombstone(TableId table, KeyHash hash, std::string_view key,
                                    Version version) {
  return Append(LogEntryType::kTombstone, table, hash, key, {}, version);
}

bool Log::Read(LogRef ref, LogEntryView* out) const {
  if (!ref.valid()) {
    return false;
  }
  const Segment* segment = FindSegment(ref.segment_id());
  if (segment == nullptr) {
    return false;
  }
  return segment->EntryAt(ref.offset(), out);
}

bool Log::RawEntry(LogRef ref, const uint8_t** data, size_t* length) const {
  LogEntryView view;
  if (!Read(ref, &view)) {
    return false;
  }
  const Segment* segment = FindSegment(ref.segment_id());
  *data = segment->data() + ref.offset();
  *length = view.header.TotalLength();
  return true;
}

void Log::MarkDead(LogRef ref) {
  if (!ref.valid()) {
    return;
  }
  Segment* segment = FindSegment(ref.segment_id());
  if (segment == nullptr) {
    return;
  }
  LogEntryView view;
  if (segment->EntryAt(ref.offset(), &view)) {
    segment->SubLive(view.header.TotalLength());
    stats_.dead_bytes += view.header.TotalLength();
  }
}

std::unique_ptr<Segment> Log::AllocateSideSegment() {
  auto segment = std::make_unique<Segment>(next_segment_id_++, segment_size_);
  registry_[segment->id()] = segment.get();
  return segment;
}

void Log::AdoptSideSegments(std::vector<std::unique_ptr<Segment>> segments) {
  if (segments.empty()) {
    return;
  }
  // The commit record names the adopted segment ids in its value so recovery
  // can tell these segments belong to this log.
  std::string ids;
  for (const auto& segment : segments) {
    const uint32_t id = segment->id();
    ids.append(reinterpret_cast<const char*>(&id), sizeof(id));
  }
  Append(LogEntryType::kSideLogCommit, 0, 0, {}, ids, 0);
  // Seal the current head: sorting by id below may displace it from the back
  // of the list, and an open segment that is not the head would violate the
  // committed-vs-open ordering invariant (appends go only to the back).
  if (!segments_.empty()) {
    segments_.back()->Seal();
  }
  for (auto& segment : segments) {
    segment->Seal();
    stats_.appended_bytes += segment->used();
    ROCKSTEADY_DCHECK_EQ(registry_.count(segment->id()), 1u);
    segments_.push_back(std::move(segment));
  }
  // Keep iteration order deterministic: id order equals append order here
  // except for adopted side segments, so sort by id.
  std::sort(segments_.begin(), segments_.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });
}

void Log::DropSideSegment(std::unique_ptr<Segment> segment) {
  registry_.erase(segment->id());
}

void Log::ForEachEntry(const std::function<void(LogRef, const LogEntryView&)>& fn) const {
  for (const auto& segment : segments_) {
    segment->ForEach([&](size_t offset, const LogEntryView& view) {
      fn(LogRef(segment->id(), static_cast<uint32_t>(offset)), view);
      return true;
    });
  }
}

void Log::FreeSegment(uint32_t segment_id) {
  auto it = std::find_if(segments_.begin(), segments_.end(),
                         [&](const auto& s) { return s->id() == segment_id; });
  if (it == segments_.end()) {
    LOG_WARNING("FreeSegment: unknown segment %u", segment_id);
    return;
  }
  registry_.erase(segment_id);
  segments_.erase(it);
  stats_.cleaned_segments++;
}

std::pair<uint32_t, uint32_t> Log::HeadPosition() const {
  if (segments_.empty()) {
    return {0, 0};
  }
  const Segment* head = segments_.back().get();
  return {head->id(), static_cast<uint32_t>(head->used())};
}

uint64_t Log::live_bytes() const {
  uint64_t total = 0;
  for (const auto& segment : segments_) {
    total += segment->live_bytes();
  }
  return total;
}

uint64_t Log::total_bytes() const {
  uint64_t total = 0;
  for (const auto& segment : segments_) {
    total += segment->used();
  }
  return total;
}

uint64_t Log::allocated_bytes() const {
  // Sum over the registry (main + uncommitted side segments). Iteration
  // order of the unordered map is unspecified, but a sum is
  // order-independent, so this stays deterministic.
  uint64_t total = 0;
  for (const auto& [id, segment] : registry_) {
    total += segment->capacity();
  }
  return total;
}

void Log::AuditInvariants(AuditReport* report) const {
  uint32_t previous_id = 0;
  for (size_t i = 0; i < segments_.size(); i++) {
    const Segment* segment = segments_[i].get();
    if (i > 0 && segment->id() <= previous_id) {
      report->Fail("log: segment ids not strictly increasing (%u after %u)", segment->id(),
                   previous_id);
    }
    previous_id = segment->id();
    if (segment->id() >= next_segment_id_) {
      report->Fail("log: segment %u at or beyond allocation cursor %u", segment->id(),
                   next_segment_id_);
    }
    // Committed-vs-open ordering: appends go only to the back, so every
    // earlier segment must be sealed.
    if (i + 1 < segments_.size() && !segment->sealed()) {
      report->Fail("log: non-head segment %u is not sealed", segment->id());
    }
    auto it = registry_.find(segment->id());
    if (it == registry_.end()) {
      report->Fail("log: owned segment %u missing from registry", segment->id());
    } else if (it->second != segment) {
      report->Fail("log: registry entry for segment %u points elsewhere", segment->id());
    }
    segment->AuditInvariants(report);
  }
  // The registry may only exceed the owned list by uncommitted side
  // segments, which must not be sealed (sealing happens at commit) and must
  // also be below the allocation cursor. Audit failure messages append to
  // the report in iteration order, so walk the registry in sorted-id order
  // rather than unordered_map order — a failing audit must print (and hash)
  // identically across runs.
  std::vector<uint32_t> registered_ids;
  registered_ids.reserve(registry_.size());
  for (const auto& [id, segment] : registry_) {  // lint:allow-iter-order: ids are sorted before use
    registered_ids.push_back(id);
  }
  std::sort(registered_ids.begin(), registered_ids.end());
  for (const uint32_t id : registered_ids) {
    const Segment* segment = registry_.find(id)->second;
    if (id >= next_segment_id_) {
      report->Fail("log: registered segment %u at or beyond allocation cursor %u", id,
                   next_segment_id_);
    }
    const bool owned =
        std::any_of(segments_.begin(), segments_.end(),
                    [&](const auto& s) { return s.get() == segment; });
    if (!owned && segment->sealed()) {
      report->Fail("log: uncommitted side segment %u is sealed", id);
    }
  }
  if (live_bytes() > total_bytes()) {
    report->Fail("log: live bytes %llu exceed total bytes %llu",
                 static_cast<unsigned long long>(live_bytes()),
                 static_cast<unsigned long long>(total_bytes()));
  }
}

}  // namespace rocksteady
