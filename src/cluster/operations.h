// Cluster operations: orchestration that an operator (or an operations
// controller) runs against a live cluster, built purely out of the existing
// crash/recovery/lifecycle machinery.
//
// RollingRestartOrchestrator performs a rolling restart: each kActive master
// in turn is crashed, detector-driven recovery re-homes its tablets (and
// resolves any in-flight migration lineage), the master restarts empty after
// a configurable delay, and the next master is only touched after a settle
// window — so at every instant at most one master is down and the ownership
// map is converging. Standby, draining, decommissioned, and already-crashed
// masters are skipped: draining masters are mid-evacuation (restarting one
// would turn a planned drain into an unplanned recovery) and standbys hold
// nothing worth cycling.
//
// The orchestrator deliberately reuses the failure path for restarts — a
// rolling restart is "controlled failure, one at a time" — which means the
// whole fault-tolerance stack (detection, lineage resolution, re-homing,
// backup replay) is exercised by routine operations, not just by disasters.
#ifndef ROCKSTEADY_SRC_CLUSTER_OPERATIONS_H_
#define ROCKSTEADY_SRC_CLUSTER_OPERATIONS_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"

namespace rocksteady {

// Pacing for a rolling restart. Both windows are policy, not correctness:
// recovery completion is what gates the restart, the delay only keeps the
// rejoin clear of the recovery tail.
inline constexpr Tick kRestartDelayNs = 1 * kMillisecond;
inline constexpr Tick kRestartSettleNs = 5 * kMillisecond;

struct RollingRestartOptions {
  // Wait after a master's recovery completes before restarting it (a
  // restarted-but-unrecovered master must never rejoin as an owner).
  Tick restart_delay_ns = kRestartDelayNs;
  // Wait after a master restarts before crashing the next one, giving the
  // planner a window to re-place load between steps.
  Tick settle_ns = kRestartSettleNs;
};

struct RollingRestartStats {
  uint64_t restarts_started = 0;    // Masters crashed by the orchestrator.
  uint64_t restarts_completed = 0;  // ...that came back up.
  uint64_t skipped = 0;             // Non-kActive or already-crashed masters.
};

class RollingRestartOrchestrator {
 public:
  explicit RollingRestartOrchestrator(Cluster* cluster,
                                      const RollingRestartOptions& options = {});
  ~RollingRestartOrchestrator();

  RollingRestartOrchestrator(const RollingRestartOrchestrator&) = delete;
  RollingRestartOrchestrator& operator=(const RollingRestartOrchestrator&) = delete;

  // Begins the rolling restart over every currently-kActive master, in id
  // order, one at a time. Starts the coordinator's failure detector if it is
  // not already running (the crash must be *detected*, not announced — the
  // restart rides the real failure path). `done` fires after the last
  // restarted master's settle window. Chains with (saves and restores, and
  // forwards to) any pre-installed on_recovery_complete hook. Calling Start
  // while running is a no-op.
  void Start(std::function<void()> done = nullptr);

  bool running() const { return running_; }
  const RollingRestartStats& stats() const { return stats_; }

 private:
  void StepNext();
  void OnRecoveryComplete(ServerId id);

  Cluster* cluster_;
  RollingRestartOptions options_;
  RollingRestartStats stats_;
  bool running_ = false;
  size_t next_index_ = 0;     // Next master index to consider.
  ServerId in_flight_ = 0;    // Master currently being cycled (0 = none).
  std::function<void()> done_;
  std::function<void(ServerId)> saved_hook_;  // Prior on_recovery_complete.
  // Guards timer callbacks across orchestrator destruction.
  std::shared_ptr<bool> alive_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_OPERATIONS_H_
