#include "src/cluster/coordinator.h"

#include <algorithm>
#include <cassert>

#include "src/cluster/master_server.h"
#include "src/cluster/recovery.h"
#include "src/common/annotations.h"
#include "src/common/logging.h"

namespace rocksteady {

Coordinator::Coordinator(Simulator* sim, RpcSystem* rpc, const CostModel* costs)
    : sim_(sim), rpc_(rpc), costs_(costs) {
  // The coordinator is off the data path; a small CoreSet keeps its RPC
  // handling timed without modeling a full server.
  cores_ = std::make_unique<CoreSet>(sim_, 2);
  endpoint_ = rpc_->CreateEndpoint(cores_.get());
  endpoint_->Register(Opcode::kGetTableConfig,
                      ROCKSTEADY_IDEMPOTENT("pure read of the tablet map")
                      [this](RpcContext c) { HandleGetTableConfig(std::move(c)); });
  endpoint_->Register(Opcode::kRegisterDependency,
                      ROCKSTEADY_IDEMPOTENT("re-registering an existing (table, source, "
                                            "target) dependency returns the same record")
                      [this](RpcContext c) { HandleRegisterDependency(std::move(c)); });
  endpoint_->Register(Opcode::kDropDependency,
                      ROCKSTEADY_IDEMPOTENT("dropping an already-dropped dependency is a "
                                            "no-op")
                      [this](RpcContext c) { HandleDropDependency(std::move(c)); });
  endpoint_->Register(
      Opcode::kUpdateOwnership,
      ROCKSTEADY_IDEMPOTENT("repoints an exact range to new_owner; re-execution rewrites "
                            "the same owner value")
      [this](RpcContext c) {
        auto& request = c.As<UpdateOwnershipRequest>();
        auto response = std::make_unique<StatusResponse>();
        response->status = UpdateOwnership(request.table, request.start_hash, request.end_hash,
                                           request.new_owner);
        c.reply(std::move(response));
      });
  endpoint_->Register(Opcode::kMigrationHeartbeat,
                      ROCKSTEADY_IDEMPOTENT("lease refresh; repeated refreshes only extend "
                                            "the same lease")
                      [this](RpcContext c) { HandleMigrationHeartbeat(std::move(c)); });
  endpoint_->Register(Opcode::kAbortMigration,
                      ROCKSTEADY_IDEMPOTENT("aborting a finished or already-aborted "
                                            "migration is a no-op")
                      [this](RpcContext c) { HandleAbortMigration(std::move(c)); });
  endpoint_->Register(Opcode::kBeginDrain,
                      ROCKSTEADY_IDEMPOTENT("lifecycle latch: re-draining a draining or "
                                            "decommissioned server is a no-op")
                      [this](RpcContext c) { HandleBeginDrain(std::move(c)); });
  endpoint_->Register(Opcode::kActivateServer,
                      ROCKSTEADY_IDEMPOTENT("lifecycle latch: re-activating an active "
                                            "server is a no-op")
                      [this](RpcContext c) { HandleActivateServer(std::move(c)); });
  endpoint_->Register(Opcode::kDrainStatus,
                      ROCKSTEADY_IDEMPOTENT("pure read of the lifecycle table and tablet map")
                      [this](RpcContext c) { HandleDrainStatus(std::move(c)); });
  recovery_ = std::make_unique<RecoveryManager>(this);
}

Coordinator::~Coordinator() = default;

ServerId Coordinator::RegisterMaster(MasterServer* master) {
  masters_.push_back(master);
  lifecycle_.push_back(ServerLifecycle::kActive);
  return static_cast<ServerId>(masters_.size());
}

MasterServer* Coordinator::master(ServerId id) const {
  assert(id >= 1 && id <= masters_.size());
  return masters_[id - 1];
}

NodeId Coordinator::NodeOf(ServerId id) const { return master(id)->node(); }

std::vector<ServerId> Coordinator::AliveServers(ServerId except) const {
  std::vector<ServerId> alive;
  for (size_t i = 0; i < masters_.size(); i++) {
    const ServerId id = static_cast<ServerId>(i + 1);
    if (id != except && !masters_[i]->crashed()) {
      alive.push_back(id);
    }
  }
  return alive;
}

std::vector<ServerId> Coordinator::PlacementCandidates(ServerId except) const {
  std::vector<ServerId> candidates;
  for (size_t i = 0; i < masters_.size(); i++) {
    const ServerId id = static_cast<ServerId>(i + 1);
    if (id != except && !masters_[i]->crashed() &&
        lifecycle_[i] == ServerLifecycle::kActive) {
      candidates.push_back(id);
    }
  }
  return candidates;
}

bool Coordinator::AnyPlacementEligible(ServerId except) const {
  for (size_t i = 0; i < masters_.size(); i++) {
    const ServerId id = static_cast<ServerId>(i + 1);
    if (id != except && !masters_[i]->crashed() &&
        lifecycle_[i] == ServerLifecycle::kActive) {
      return true;
    }
  }
  return false;
}

Status Coordinator::BeginDrain(ServerId id) {
  if (id < 1 || id > masters_.size()) {
    return Status::kInvalidState;
  }
  ServerLifecycle& state = lifecycle_[id - 1];
  if (state == ServerLifecycle::kDraining || state == ServerLifecycle::kDecommissioned) {
    return Status::kOk;  // Latched already; re-drives are no-ops.
  }
  if (!AnyPlacementEligible(id)) {
    // Nowhere for the evacuation to land — refuse rather than strand the
    // cluster with zero placement-eligible masters.
    return Status::kInvalidState;
  }
  state = ServerLifecycle::kDraining;
  drains_started_++;
  if (!masters_[id - 1]->crashed()) {
    masters_[id - 1]->SetDraining(true);
  }
  LOG_INFO("coordinator: server %u draining at t=%.6f s", id,
           static_cast<double>(sim_->now()) / 1e9);
  // An already-empty server (standby, or never assigned) completes at once.
  MaybeCompleteDrains();
  return Status::kOk;
}

Status Coordinator::ActivateServer(ServerId id) {
  if (id < 1 || id > masters_.size()) {
    return Status::kInvalidState;
  }
  ServerLifecycle& state = lifecycle_[id - 1];
  if (state == ServerLifecycle::kActive) {
    return Status::kOk;
  }
  state = ServerLifecycle::kActive;
  if (!masters_[id - 1]->crashed()) {
    masters_[id - 1]->SetDraining(false);
  }
  LOG_INFO("coordinator: server %u activated at t=%.6f s", id,
           static_cast<double>(sim_->now()) / 1e9);
  return Status::kOk;
}

Status Coordinator::MarkStandby(ServerId id) {
  if (id < 1 || id > masters_.size()) {
    return Status::kInvalidState;
  }
  for (const auto& tablet : tablet_map_) {
    if (tablet.owner == id) {
      return Status::kInvalidState;  // Standby servers own nothing.
    }
  }
  lifecycle_[id - 1] = ServerLifecycle::kStandby;
  return Status::kOk;
}

void Coordinator::MaybeCompleteDrains() {
  for (size_t i = 0; i < lifecycle_.size(); i++) {
    if (lifecycle_[i] != ServerLifecycle::kDraining) {
      continue;
    }
    const ServerId id = static_cast<ServerId>(i + 1);
    bool busy = false;
    for (const auto& tablet : tablet_map_) {
      if (tablet.owner == id) {
        busy = true;
        break;
      }
    }
    for (size_t d = 0; !busy && d < dependencies_.size(); d++) {
      busy = dependencies_[d].source == id || dependencies_[d].target == id;
    }
    if (busy) {
      continue;
    }
    lifecycle_[i] = ServerLifecycle::kDecommissioned;
    drains_completed_++;
    if (!masters_[i]->crashed()) {
      masters_[i]->SetDraining(false);
    }
    LOG_INFO("coordinator: server %u drained empty; decommissioned at t=%.6f s", id,
             static_cast<double>(sim_->now()) / 1e9);
  }
}

void Coordinator::CreateTable(TableId table, ServerId owner) {
  ROCKSTEADY_DCHECK(lifecycle_[owner - 1] == ServerLifecycle::kActive);
  tablet_map_.push_back(OwnedTablet{table, 0, ~0ull, owner});
  master(owner)->objects().tablets().Add(Tablet{table, 0, ~0ull, TabletState::kNormal});
  DebugAudit(*this, "coordinator after CreateTable");
}

Status Coordinator::SplitTablet(TableId table, KeyHash split_hash) {
  for (auto& tablet : tablet_map_) {
    if (tablet.table == table && tablet.start_hash <= split_hash &&
        split_hash <= tablet.end_hash) {
      if (tablet.start_hash == split_hash) {
        // Already split in the map. Still converge the owner's mirror (a
        // checked split's deferred mirror may have been lost to a
        // coordinator crash); TabletManager::Split is idempotent.
        if (!master(tablet.owner)->crashed()) {
          // lint:allow-unchecked: convergence mirror — kTableNotFound here means the
          // owner is mid-recovery and recovery reinstalls exact ranges itself.
          master(tablet.owner)->objects().tablets().Split(table, split_hash);
        }
        return Status::kOk;
      }
      OwnedTablet upper = tablet;
      upper.start_hash = split_hash;
      tablet.end_hash = split_hash - 1;
      tablet_map_.push_back(upper);
      // Mirror the split on the owning master (metadata only — this is the
      // whole point of lazy partitioning, §1).
      const Status status = master(upper.owner)->objects().tablets().Split(table, split_hash);
      DebugAudit(*this, "coordinator after SplitTablet");
      return status;
    }
  }
  return Status::kTableNotFound;
}

Status Coordinator::SplitTabletChecked(TableId table, KeyHash split_hash) {
  for (auto& tablet : tablet_map_) {
    if (!(tablet.table == table && tablet.start_hash <= split_hash &&
          split_hash <= tablet.end_hash)) {
      continue;
    }
    // Width gate: both halves must be at least kMinSplitSpan wide. A split
    // at start_hash would make the lower half empty and is refused too
    // (unlike the unchecked path, which treats it as already-split).
    const Tablet range{table, tablet.start_hash, tablet.end_hash, TabletState::kNormal};
    if (!range.CanSplitAt(split_hash, kMinSplitSpan)) {
      splits_refused_++;
      return Status::kInvalidState;
    }
    const ServerId owner = tablet.owner;
    if (master(owner)->crashed() || recovering_.contains(owner) || active_recoveries_ > 0) {
      splits_refused_++;
      return Status::kRetryLater;
    }
    // An in-flight migration overlapping the range: the source's tablet is
    // frozen and the lineage dependency names exact hashes — resharping the
    // range under it would desynchronize all three. Refuse; the planner
    // retries after the migration settles.
    for (const auto& dependency : dependencies_) {
      if (dependency.table == table && dependency.start_hash <= tablet.end_hash &&
          tablet.start_hash <= dependency.end_hash) {
        splits_refused_++;
        return Status::kRetryLater;
      }
    }
    const Tablet* local = master(owner)->objects().tablets().Find(table, split_hash);
    if (local == nullptr || local->state != TabletState::kNormal) {
      // Owner mid-transition (recovering replay, migration endpoint, ...).
      splits_refused_++;
      return Status::kRetryLater;
    }
    // Commit to the quorum-replicated map first, then mirror to the owner
    // asynchronously (the mirror is an RPC in spirit: a coordinator crash in
    // between loses it, and Restart()'s ReconcileSplits re-drives it).
    OwnedTablet upper = tablet;
    upper.start_hash = split_hash;
    tablet.end_hash = split_hash - 1;
    tablet_map_.push_back(upper);
    splits_performed_++;
    LOG_INFO("coordinator: split table %llu at %llx (owner %u)",
             static_cast<unsigned long long>(table),
             static_cast<unsigned long long>(split_hash), owner);
    DebugAudit(*this, "coordinator after SplitTabletChecked");
    sim_->After(0, [this, table, split_hash, owner] {
      if (crashed_ || master(owner)->crashed()) {
        return;  // ReconcileSplits()/recovery converges the mirror later.
      }
      // lint:allow-unchecked: deferred mirror — a refused split means the owner's
      // tablets changed under us; ReconcileSplits()/recovery converge the mirror.
      master(owner)->objects().tablets().Split(table, split_hash);
      DebugAudit(*this, "coordinator after split mirror");
    });
    return Status::kOk;
  }
  splits_refused_++;
  return Status::kTableNotFound;
}

void Coordinator::ReconcileSplits() {
  for (const auto& entry : tablet_map_) {
    if (master(entry.owner)->crashed() || recovering_.contains(entry.owner)) {
      continue;  // Recovery installs exact-range tablets itself.
    }
    TabletManager& tablets = master(entry.owner)->objects().tablets();
    const Tablet* local = tablets.Find(entry.table, entry.start_hash);
    if (local != nullptr && local->start_hash < entry.start_hash) {
      // lint:allow-unchecked: Find() just proved the range exists and straddles the
      // boundary, so this Split cannot refuse; it is a pure converge step.
      tablets.Split(entry.table, entry.start_hash);
    }
  }
  DebugAudit(*this, "coordinator after ReconcileSplits");
}

Status Coordinator::UpdateOwnership(TableId table, KeyHash start_hash, KeyHash end_hash,
                                    ServerId new_owner) {
  for (auto& tablet : tablet_map_) {
    if (tablet.table == table && tablet.start_hash == start_hash &&
        tablet.end_hash == end_hash) {
      // Legal ownership transitions repoint an existing range to a
      // registered server; they never reshape the partition.
      ROCKSTEADY_DCHECK_GE(new_owner, 1u);
      ROCKSTEADY_DCHECK_LE(new_owner, masters_.size());
      tablet.owner = new_owner;
      // Ownership changes are how a draining server empties out (migration
      // commits, recovery re-homes); check for drain completion before the
      // audit so a just-emptied server is already decommissioned when the
      // lifecycle invariants run.
      MaybeCompleteDrains();
      DebugAudit(*this, "coordinator after UpdateOwnership");
      return Status::kOk;
    }
  }
  return Status::kTableNotFound;
}

Status Coordinator::ReassignTablet(TableId table, KeyHash start_hash, KeyHash end_hash,
                                   ServerId new_owner) {
  if (new_owner < 1 || new_owner > masters_.size() ||
      lifecycle_[new_owner - 1] != ServerLifecycle::kActive || master(new_owner)->crashed()) {
    return Status::kInvalidState;
  }
  for (auto& tablet : tablet_map_) {
    if (!(tablet.table == table && tablet.start_hash == start_hash &&
          tablet.end_hash == end_hash)) {
      continue;
    }
    if (tablet.owner == new_owner) {
      return Status::kOk;
    }
    const ServerId previous = tablet.owner;
    // Install on the new owner first, then repoint the map, then drop the
    // previous owner's mirror — the one ordering under which the cross-layer
    // coverage audit is true at every intermediate step.
    master(new_owner)->objects().tablets().Add(
        Tablet{table, start_hash, end_hash, TabletState::kNormal});
    tablet.owner = new_owner;
    if (previous >= 1 && previous <= masters_.size() && !master(previous)->crashed()) {
      master(previous)->objects().tablets().Remove(table, start_hash, end_hash);
    }
    MaybeCompleteDrains();
    DebugAudit(*this, "coordinator after ReassignTablet");
    return Status::kOk;
  }
  return Status::kTableNotFound;
}

std::vector<TabletConfigEntry> Coordinator::GetTableConfig(TableId table) const {
  std::vector<TabletConfigEntry> entries;
  for (const auto& tablet : tablet_map_) {
    if (tablet.table == table) {
      entries.push_back(TabletConfigEntry{tablet.table, tablet.start_hash, tablet.end_hash,
                                          tablet.owner, NodeOf(tablet.owner)});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.start_hash < b.start_hash; });
  return entries;
}

ServerId Coordinator::OwnerOf(TableId table, KeyHash hash) const {
  for (const auto& tablet : tablet_map_) {
    if (tablet.table == table && tablet.start_hash <= hash && hash <= tablet.end_hash) {
      return tablet.owner;
    }
  }
  return kInvalidServerId;
}

void Coordinator::CreateIndex(TableId table, uint8_t index_id,
                              const std::vector<IndexletConfig>& indexlets) {
  std::vector<IndexletConfig> resolved = indexlets;
  for (auto& indexlet : resolved) {
    indexlet.owner_node = NodeOf(indexlet.owner);
    master(indexlet.owner)->AddIndexlet(table, index_id, indexlet.start_key, indexlet.end_key);
  }
  indexes_.emplace_back(table, index_id, std::move(resolved));
}

const std::vector<IndexletConfig>* Coordinator::GetIndexConfig(TableId table,
                                                               uint8_t index_id) const {
  for (const auto& [t, id, config] : indexes_) {
    if (t == table && id == index_id) {
      return &config;
    }
  }
  return nullptr;
}

void Coordinator::RegisterDependency(const MigrationDependency& dependency) {
  const LeaseKey key{dependency.source, dependency.target, dependency.table};
  leases_[key] = sim_->now();
  for (auto& existing : dependencies_) {
    if (existing.source == dependency.source && existing.target == dependency.target &&
        existing.table == dependency.table) {
      // A re-driven registration (the target retried a timed-out RPC whose
      // response was lost): refresh in place — a duplicate row would break
      // the uniqueness invariant.
      existing = dependency;
      return;
    }
  }
  dependencies_.push_back(dependency);
  LOG_INFO("coordinator: dependency registered source=%u target=%u table=%llu seg=%u off=%u",
           dependency.source, dependency.target,
           static_cast<unsigned long long>(dependency.table), dependency.target_log_segment,
           dependency.target_log_offset);
  DebugAudit(*this, "coordinator after RegisterDependency");
}

void Coordinator::DropDependency(ServerId source, ServerId target, TableId table) {
  leases_.erase(LeaseKey{source, target, table});
  std::erase_if(dependencies_, [&](const MigrationDependency& d) {
    return d.source == source && d.target == target && d.table == table;
  });
  // The dependency edge may have been the last thing pinning a draining
  // server (its final outbound migration just committed or aborted).
  MaybeCompleteDrains();
}

std::optional<MigrationDependency> Coordinator::FindDependencyBySource(ServerId source) const {
  for (const auto& dependency : dependencies_) {
    if (dependency.source == source) {
      return dependency;
    }
  }
  return std::nullopt;
}

std::optional<MigrationDependency> Coordinator::FindDependencyByTarget(ServerId target) const {
  for (const auto& dependency : dependencies_) {
    if (dependency.target == target) {
      return dependency;
    }
  }
  return std::nullopt;
}

void Coordinator::AuditInvariants(AuditReport* report) const {
  // Group the map by table, then check each table's ranges tile the full
  // hash space. Sorting a copy keeps the audit read-only.
  std::vector<OwnedTablet> sorted = tablet_map_;
  std::sort(sorted.begin(), sorted.end(), [](const OwnedTablet& a, const OwnedTablet& b) {
    return a.table != b.table ? a.table < b.table : a.start_hash < b.start_hash;
  });
  for (size_t i = 0; i < sorted.size(); i++) {
    const OwnedTablet& tablet = sorted[i];
    if (tablet.owner < 1 || tablet.owner > masters_.size()) {
      report->Fail("coordinator: table %llu range [%llx, %llx] owned by unknown server %u",
                   static_cast<unsigned long long>(tablet.table),
                   static_cast<unsigned long long>(tablet.start_hash),
                   static_cast<unsigned long long>(tablet.end_hash), tablet.owner);
    }
    const bool first_of_table = i == 0 || sorted[i - 1].table != tablet.table;
    if (first_of_table) {
      if (tablet.start_hash != 0) {
        report->Fail("coordinator: table %llu does not start at hash 0 (starts at %llx)",
                     static_cast<unsigned long long>(tablet.table),
                     static_cast<unsigned long long>(tablet.start_hash));
      }
    } else if (tablet.start_hash != sorted[i - 1].end_hash + 1) {
      report->Fail(
          "coordinator: table %llu has a gap or overlap at %llx (previous range ends at %llx)",
          static_cast<unsigned long long>(tablet.table),
          static_cast<unsigned long long>(tablet.start_hash),
          static_cast<unsigned long long>(sorted[i - 1].end_hash));
    }
    const bool last_of_table = i + 1 == sorted.size() || sorted[i + 1].table != tablet.table;
    if (last_of_table && tablet.end_hash != ~0ull) {
      report->Fail("coordinator: table %llu does not cover the top of the hash space (ends %llx)",
                   static_cast<unsigned long long>(tablet.table),
                   static_cast<unsigned long long>(tablet.end_hash));
    }
  }
  // Cross-layer: every alive owner's local tablets must *tile* each map
  // range it owns — after splits, several local tablets may cover one map
  // range (or one local tablet several map ranges), but there must be no
  // hole, or reads routed by the map fall into kWrongServer loops. Recovery
  // legitimately repoints ownership before the recovery master installs its
  // kRecovering tablets, so the check stands down while one is in flight.
  if (active_recoveries_ == 0 && recovering_.empty()) {
    for (const auto& entry : tablet_map_) {
      if (entry.owner < 1 || entry.owner > masters_.size() ||
          master(entry.owner)->crashed()) {
        continue;
      }
      // A range under an in-flight migration is in transition (e.g. a target
      // that locally aborted while the map still names it); the lease
      // watchdog owns its fate, so coverage is only enforced once the
      // dependency clears.
      bool in_transition = false;
      for (const auto& d : dependencies_) {
        if (d.table == entry.table && d.start_hash <= entry.end_hash &&
            entry.start_hash <= d.end_hash) {
          in_transition = true;
          break;
        }
      }
      if (in_transition) {
        continue;
      }
      const TabletManager& tablets = master(entry.owner)->objects().tablets();
      KeyHash cursor = entry.start_hash;
      while (true) {
        const Tablet* local = tablets.Find(entry.table, cursor);
        if (local == nullptr) {
          report->Fail(
              "coordinator: owner %u of table %llu range [%llx, %llx] has no local tablet "
              "covering %llx",
              entry.owner, static_cast<unsigned long long>(entry.table),
              static_cast<unsigned long long>(entry.start_hash),
              static_cast<unsigned long long>(entry.end_hash),
              static_cast<unsigned long long>(cursor));
          break;
        }
        if (local->end_hash >= entry.end_hash) {
          break;  // Range fully covered.
        }
        cursor = local->end_hash + 1;
      }
    }
  }
  for (size_t i = 0; i < dependencies_.size(); i++) {
    const MigrationDependency& d = dependencies_[i];
    if (d.source == d.target) {
      report->Fail("coordinator: dependency of server %u on itself", d.source);
    }
    for (ServerId id : {d.source, d.target}) {
      if (id < 1 || id > masters_.size()) {
        report->Fail("coordinator: dependency names unknown server %u", id);
      }
    }
    for (size_t j = i + 1; j < dependencies_.size(); j++) {
      const MigrationDependency& other = dependencies_[j];
      if (d.source == other.source && d.target == other.target && d.table == other.table) {
        report->Fail("coordinator: duplicate dependency source=%u target=%u table=%llu",
                     d.source, d.target, static_cast<unsigned long long>(d.table));
      }
    }
  }
  // Lifecycle: a standby server has never been assigned anything, and a
  // decommissioned server was verifiably empty when it was delisted — if
  // either owns a map range or appears in a dependency, the drain protocol
  // (or a caller bypassing it) broke its contract.
  for (size_t i = 0; i < lifecycle_.size(); i++) {
    if (lifecycle_[i] == ServerLifecycle::kActive ||
        lifecycle_[i] == ServerLifecycle::kDraining) {
      continue;
    }
    const ServerId id = static_cast<ServerId>(i + 1);
    const char* state =
        lifecycle_[i] == ServerLifecycle::kStandby ? "standby" : "decommissioned";
    for (const auto& tablet : tablet_map_) {
      if (tablet.owner == id) {
        report->Fail("coordinator: %s server %u owns table %llu range [%llx, %llx]", state, id,
                     static_cast<unsigned long long>(tablet.table),
                     static_cast<unsigned long long>(tablet.start_hash),
                     static_cast<unsigned long long>(tablet.end_hash));
      }
    }
    for (const auto& d : dependencies_) {
      if (d.source == id || d.target == id) {
        report->Fail("coordinator: %s server %u appears in dependency source=%u target=%u",
                     state, id, d.source, d.target);
      }
    }
  }
}

void Coordinator::HandleCrash(ServerId crashed, std::function<void()> done) {
  // Track the in-flight window: recovery legitimately repoints ownership
  // before the recovery master installs its kRecovering tablets, so the
  // cross-layer coverage audit stands down until `done`.
  active_recoveries_++;
  recovery_->RecoverServer(crashed, [this, done = std::move(done)] {
    active_recoveries_--;
    if (done) {
      done();
    }
  });
}

void Coordinator::RegisterPiggybackHandler(PiggybackKind kind, PiggybackHandler handler) {
  for (auto& [registered_kind, registered] : piggyback_handlers_) {
    if (registered_kind == kind) {
      registered = std::move(handler);
      return;
    }
  }
  piggyback_handlers_.emplace_back(kind, std::move(handler));
}

void Coordinator::ClearPiggybackHandler(PiggybackKind kind) {
  std::erase_if(piggyback_handlers_, [kind](const auto& entry) { return entry.first == kind; });
}

void Coordinator::RoutePiggyback(ServerId from, const PiggybackBlob& blob) {
  if (blob.empty() || crashed_) {
    return;
  }
  for (const auto& [kind, handler] : piggyback_handlers_) {
    if (kind == blob.kind && handler) {
      handler(from, blob);
      return;
    }
  }
}

void Coordinator::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  cores_->Halt();
  rpc_->net()->SetNodeDown(node(), true);
  LOG_INFO("coordinator crashed at t=%.6f s", static_cast<double>(sim_->now()) / 1e9);
}

void Coordinator::Restart() {
  if (!crashed_) {
    return;
  }
  crashed_ = false;
  cores_->Restart();
  rpc_->net()->SetNodeDown(node(), false);
  // The quorum-replicated metadata (tablet map, dependencies, indexes)
  // survives the outage. Leases restart fresh: the outage ate the
  // heartbeats, and expiring every in-flight migration for it would abort
  // healthy work.
  for (auto& [key, last_heartbeat] : leases_) {
    last_heartbeat = sim_->now();
  }
  // A crash between a checked split's map update and its deferred master
  // mirror leaves the owner coarser than the map; re-drive every boundary
  // (idempotent) so routing and the map agree again.
  ReconcileSplits();
  // Drains persist in the quorum-replicated lifecycle table across the
  // outage; a drain that emptied while the coordinator was down (its last
  // migration committed against the surviving metadata) completes now, and
  // in-progress ones resume via the planner, which re-reads lifecycle()
  // every round.
  MaybeCompleteDrains();
  LOG_INFO("coordinator restarted at t=%.6f s", static_cast<double>(sim_->now()) / 1e9);
}

void Coordinator::StartFailureDetector() {
  if (failure_detector_running_) {
    return;
  }
  failure_detector_running_ = true;
  DetectorSweep();
}

void Coordinator::DetectorSweep() {
  if (!failure_detector_running_) {
    return;
  }
  // The sweep timer lives on the simulator, not the coordinator's cores, so
  // it survives a coordinator crash and resumes probing after Restart().
  sim_->After(costs_->ping_interval_ns, [this] { DetectorSweep(); });
  if (crashed_) {
    return;
  }
  // Drains waiting on something other than an ownership change (e.g. a
  // crashed-then-recovered server whose re-homing emptied it while the
  // completion check stood aside) converge on the sweep cadence.
  MaybeCompleteDrains();
  for (size_t i = 0; i < masters_.size(); i++) {
    const ServerId id = static_cast<ServerId>(i + 1);
    if (recovering_.contains(id)) {
      continue;
    }
    if (lifecycle_[i] == ServerLifecycle::kDecommissioned) {
      continue;  // Delisted: owns nothing, so a crash needs no recovery.
    }
    rpc_->Call(
        node(), NodeOf(id), std::make_unique<PingRequest>(),
        [this, id](Status status, std::unique_ptr<RpcResponse> response) {
          if (status != Status::kOk) {
            DeclareDead(id);
            return;
          }
          // Alive: deliver whatever the server piggybacked on the probe
          // reply (load telemetry) to the subsystem registered for it.
          if (response != nullptr) {
            RoutePiggyback(id, static_cast<const PingResponse&>(*response).piggyback);
          }
        },
        costs_->ping_timeout_ns);
  }
  CheckLeases();
}

void Coordinator::DeclareDead(ServerId id) {
  if (crashed_ || recovering_.contains(id)) {
    return;
  }
  MasterServer* server = master(id);
  if (!server->crashed()) {
    // The probe died to loss, not to a crash (or the server already came
    // back). A real detector needs several misses or a quorum; the sim can
    // simply consult ground truth and let the next sweep re-check.
    return;
  }
  crashes_detected_++;
  recovering_.insert(id);
  LOG_INFO("coordinator: detected crash of server %u at t=%.6f s", id,
           static_cast<double>(sim_->now()) / 1e9);
  HandleCrash(id, [this, id] {
    recovering_.erase(id);
    if (on_recovery_complete) {
      on_recovery_complete(id);
    }
  });
}

void Coordinator::CheckLeases() {
  const Tick now = sim_->now();
  // Work on a copy: every expiry path below mutates dependencies_/leases_.
  std::vector<MigrationDependency> expired;
  for (const auto& dependency : dependencies_) {
    if (recovering_.contains(dependency.source) || recovering_.contains(dependency.target)) {
      continue;  // Recovery already owns this dependency's fate.
    }
    const auto it = leases_.find(LeaseKey{dependency.source, dependency.target, dependency.table});
    const Tick last = it != leases_.end() ? it->second : Tick{0};
    if (now - last > costs_->migration_lease_ns) {
      expired.push_back(dependency);
    }
  }
  for (const auto& dependency : expired) {
    // A crashed endpoint outranks "stalled": route through full lineage
    // recovery rather than a plain abort.
    if (master(dependency.target)->crashed()) {
      DeclareDead(dependency.target);
      continue;
    }
    if (master(dependency.source)->crashed()) {
      DeclareDead(dependency.source);
      continue;
    }
    // Both ends alive. If the target already owns the range and serves it
    // normally, the migration committed but the DropDependency RPC never
    // landed — the dependency row is stale metadata, not a wedge.
    MasterServer* target = master(dependency.target);
    const Tablet* tablet = target->objects().tablets().Find(dependency.table,
                                                            dependency.start_hash);
    const bool committed = tablet != nullptr && tablet->state == TabletState::kNormal &&
                           OwnerOf(dependency.table, dependency.start_hash) == dependency.target;
    if (committed) {
      stale_dependencies_dropped_++;
      LOG_INFO("coordinator: dropping stale dependency source=%u target=%u table=%llu",
               dependency.source, dependency.target,
               static_cast<unsigned long long>(dependency.table));
      DropDependency(dependency.source, dependency.target, dependency.table);
      continue;
    }
    // Genuinely wedged mid-flight with no heartbeats: abort it back to the
    // source through the §3.4 lineage path so the range serves again.
    stalled_migrations_aborted_++;
    LOG_INFO("coordinator: aborting stalled migration source=%u target=%u table=%llu",
             dependency.source, dependency.target,
             static_cast<unsigned long long>(dependency.table));
    recovery_->AbortMigrationToSource(dependency, nullptr);
  }
}

void Coordinator::HandleGetTableConfig(RpcContext context) {
  auto& request = context.As<GetTableConfigRequest>();
  auto response = std::make_unique<GetTableConfigResponse>();
  response->tablets = GetTableConfig(request.table);
  if (response->tablets.empty()) {
    response->status = Status::kTableNotFound;
  }
  context.reply(std::move(response));
}

void Coordinator::HandleRegisterDependency(RpcContext context) {
  auto& request = context.As<RegisterDependencyRequest>();
  RegisterDependency(MigrationDependency{request.source, request.target, request.table,
                                         request.start_hash, request.end_hash,
                                         request.target_log_segment, request.target_log_offset});
  context.reply(std::make_unique<StatusResponse>());
}

void Coordinator::HandleDropDependency(RpcContext context) {
  auto& request = context.As<DropDependencyRequest>();
  DropDependency(request.source, request.target, request.table);
  context.reply(std::make_unique<StatusResponse>());
}

void Coordinator::HandleAbortMigration(RpcContext context) {
  // A migration target asks to abort its own in-flight migration (e.g. the
  // tablet cannot fit its memory budget). Drive the same §3.4 lineage abort
  // as the lease watchdog: ownership returns to the source and the target's
  // log tail is replayed there, so no acked write is lost. Idempotent: once
  // the dependency row is gone (already aborted, or never registered) the
  // request is a no-op acked kOk — a re-driven duplicate must not fail.
  auto& request = context.As<AbortMigrationRequest>();
  const auto match = [&](const MigrationDependency& d) {
    return d.source == request.source && d.target == request.target && d.table == request.table;
  };
  const auto it = std::find_if(dependencies_.begin(), dependencies_.end(), match);
  if (it == dependencies_.end() || recovering_.contains(request.source) ||
      recovering_.contains(request.target)) {
    // Gone, or crash recovery already owns this dependency's fate.
    context.reply(std::make_unique<StatusResponse>());
    return;
  }
  const MigrationDependency dependency = *it;
  budget_aborts_++;
  LOG_INFO("coordinator: abort requested by target for source=%u target=%u table=%llu",
           dependency.source, dependency.target,
           static_cast<unsigned long long>(dependency.table));
  auto shared = std::make_shared<RpcContext>(std::move(context));
  recovery_->AbortMigrationToSource(
      dependency, [shared] { shared->reply(std::make_unique<StatusResponse>()); });
}

void Coordinator::HandleMigrationHeartbeat(RpcContext context) {
  auto& request = context.As<MigrationHeartbeatRequest>();
  leases_[LeaseKey{request.source, request.target, request.table}] = sim_->now();
  RoutePiggyback(request.target, request.piggyback);
  context.reply(std::make_unique<StatusResponse>());
}

void Coordinator::HandleBeginDrain(RpcContext context) {
  auto& request = context.As<BeginDrainRequest>();
  auto response = std::make_unique<StatusResponse>();
  response->status = BeginDrain(request.server);
  context.reply(std::move(response));
}

void Coordinator::HandleActivateServer(RpcContext context) {
  auto& request = context.As<ActivateServerRequest>();
  auto response = std::make_unique<StatusResponse>();
  response->status = ActivateServer(request.server);
  context.reply(std::move(response));
}

void Coordinator::HandleDrainStatus(RpcContext context) {
  auto& request = context.As<DrainStatusRequest>();
  auto response = std::make_unique<DrainStatusResponse>();
  if (request.server < 1 || request.server > masters_.size()) {
    response->status = Status::kInvalidState;
  } else {
    response->lifecycle = static_cast<uint8_t>(lifecycle_[request.server - 1]);
    for (const auto& tablet : tablet_map_) {
      response->tablets_remaining += tablet.owner == request.server ? 1 : 0;
    }
    for (const auto& d : dependencies_) {
      response->dependencies_remaining +=
          d.source == request.server || d.target == request.server ? 1 : 0;
    }
  }
  context.reply(std::move(response));
}

}  // namespace rocksteady
