#include "src/cluster/client.h"

#include <algorithm>
#include <map>

#include "src/common/logging.h"

namespace rocksteady {

RamCloudClient::RamCloudClient(Coordinator* coordinator, const CostModel* costs)
    : coordinator_(coordinator), costs_(costs) {
  endpoint_ = coordinator_->rpc().CreateEndpoint(nullptr);
}

bool RamCloudClient::CachedOwner(TableId table, KeyHash hash, NodeId* node) const {
  for (const auto& entry : cache_) {
    if (entry.table == table && entry.start_hash <= hash && hash <= entry.end_hash) {
      *node = entry.owner_node;
      return true;
    }
  }
  return false;
}

void RamCloudClient::RefreshConfig(TableId table, std::function<void()> then) {
  auto request = std::make_unique<GetTableConfigRequest>();
  request->table = table;
  coordinator_->rpc().Call(
      node(), coordinator_->node(), std::move(request),
      [this, table, then = std::move(then)](Status status,
                                            std::unique_ptr<RpcResponse> response) {
        if (status == Status::kOk && response->status == Status::kOk) {
          auto& config = static_cast<GetTableConfigResponse&>(*response);
          std::erase_if(cache_, [&](const TabletConfigEntry& e) { return e.table == table; });
          cache_.insert(cache_.end(), config.tablets.begin(), config.tablets.end());
        }
        then();
      },
      costs_->rpc_timeout_ns);
}

void RamCloudClient::RunWithRetries(TableId table,
                                    std::function<void(std::function<void(Status, Tick)>)> go,
                                    DoneCallback done, int attempts_left) {
  auto shared_go = std::make_shared<decltype(go)>(std::move(go));
  (*shared_go)([this, table, shared_go, done = std::move(done), attempts_left](
                   Status status, Tick hint) mutable {
    Simulator& sim = coordinator_->sim();
    if (status == Status::kOk) {
      ops_completed_++;
      done(status);
      return;
    }
    if (attempts_left <= 1) {
      ops_failed_++;
      done(Status::kServerDown);
      return;
    }
    // `done` must survive both the retry path and the terminal default
    // branch below; park it in a shared holder.
    auto done_holder = std::make_shared<DoneCallback>(std::move(done));
    auto retry = [this, table, shared_go, done_holder, attempts_left]() mutable {
      RunWithRetries(
          table, [shared_go](std::function<void(Status, Tick)> report) { (*shared_go)(report); },
          std::move(*done_holder), attempts_left - 1);
    };
    switch (status) {
      case Status::kWrongServer:
      case Status::kTableNotFound: {
        wrong_server_retries_++;
        // Escalating backoff: repeated kWrongServer for the same op means
        // the map is *still* stale (e.g. a pre-copy freeze window before
        // the coordinator learns the new owner) — don't hammer.
        const int attempt = kMaxAttempts - attempts_left;
        const Tick backoff =
            attempt <= 1 ? 0
                         : std::min<Tick>(static_cast<Tick>(attempt) *
                                              costs_->wrong_server_backoff_step_ns,
                                          costs_->wrong_server_backoff_max_ns);
        sim.After(backoff, [this, table, retry = std::move(retry)]() mutable {
          RefreshConfig(table, std::move(retry));
        });
        return;
      }
      case Status::kRetryLater: {
        retry_later_retries_++;
        const Tick jitter = sim.rng().UniformRange(costs_->retry_backoff_min_ns,
                                                   costs_->retry_backoff_max_ns);
        const Tick at = std::max(hint, sim.now()) + jitter;
        sim.At(at, std::move(retry));
        return;
      }
      case Status::kServerDown:
        server_down_retries_++;
        // Likely a crash: wait for recovery to make progress, then refresh.
        sim.After(costs_->recovering_retry_hint_ns,
                  [this, table, retry = std::move(retry)]() mutable {
          RefreshConfig(table, std::move(retry));
        });
        return;
      default:
        // kObjectNotFound is a legitimate outcome, not a failure.
        if (status == Status::kObjectNotFound) {
          ops_completed_++;
        } else {
          ops_failed_++;
        }
        (*done_holder)(status);
        return;
    }
  });
}

void RamCloudClient::Read(TableId table, std::string key, ReadCallback done) {
  const KeyHash hash = HashKey(table, key);
  auto value = std::make_shared<std::string>();
  auto go = [this, table, key = std::move(key), hash,
             value](std::function<void(Status, Tick)> report) {
    NodeId owner;
    if (!CachedOwner(table, hash, &owner)) {
      report(Status::kWrongServer, 0);
      return;
    }
    auto request = std::make_unique<ReadRequest>();
    request->table = table;
    request->key = key;
    request->hash = hash;
    coordinator_->rpc().Call(
        node(), owner, std::move(request),
        [value, report](Status status, std::unique_ptr<RpcResponse> response) {
          if (status != Status::kOk) {
            report(status, 0);
            return;
          }
          auto& read = static_cast<ReadResponse&>(*response);
          if (read.status == Status::kOk) {
            *value = std::move(read.value);
          }
          report(read.status, read.retry_after);
        },
        costs_->rpc_timeout_ns);
  };
  RunWithRetries(table, std::move(go),
                 [value, done = std::move(done)](Status status) { done(status, *value); },
                 kMaxAttempts);
}

void RamCloudClient::Write(TableId table, std::string key, std::string value, DoneCallback done,
                           std::string secondary_key) {
  const KeyHash hash = HashKey(table, key);
  auto go = [this, table, key = std::move(key), hash, value = std::move(value),
             secondary_key = std::move(secondary_key)](std::function<void(Status, Tick)> report) {
    NodeId owner;
    if (!CachedOwner(table, hash, &owner)) {
      report(Status::kWrongServer, 0);
      return;
    }
    auto request = std::make_unique<WriteRequest>();
    request->table = table;
    request->key = key;
    request->hash = hash;
    request->value = value;
    request->secondary_key = secondary_key;
    coordinator_->rpc().Call(
        node(), owner, std::move(request),
        [report](Status status, std::unique_ptr<RpcResponse> response) {
          report(status == Status::kOk ? response->status : status, 0);
        },
        costs_->rpc_timeout_ns);
  };
  RunWithRetries(table, std::move(go), std::move(done), kMaxAttempts);
}

void RamCloudClient::Remove(TableId table, std::string key, DoneCallback done) {
  const KeyHash hash = HashKey(table, key);
  auto go = [this, table, key = std::move(key), hash](std::function<void(Status, Tick)> report) {
    NodeId owner;
    if (!CachedOwner(table, hash, &owner)) {
      report(Status::kWrongServer, 0);
      return;
    }
    auto request = std::make_unique<RemoveRequest>();
    request->table = table;
    request->key = key;
    request->hash = hash;
    coordinator_->rpc().Call(
        node(), owner, std::move(request),
        [report](Status status, std::unique_ptr<RpcResponse> response) {
          report(status == Status::kOk ? response->status : status, 0);
        },
        costs_->rpc_timeout_ns);
  };
  RunWithRetries(table, std::move(go), std::move(done), kMaxAttempts);
}

void RamCloudClient::MultiGet(TableId table, std::vector<std::string> keys, DoneCallback done) {
  auto go = [this, table, keys = std::move(keys)](std::function<void(Status, Tick)> report) {
    // Group keys by owning server (the cluster-load effect Figure 3
    // measures: spread N means N parallel RPCs for the same 7 keys).
    std::map<NodeId, std::unique_ptr<MultiGetRequest>> groups;
    for (const auto& key : keys) {
      const KeyHash hash = HashKey(table, key);
      NodeId owner;
      if (!CachedOwner(table, hash, &owner)) {
        report(Status::kWrongServer, 0);
        return;
      }
      auto& request = groups[owner];
      if (request == nullptr) {
        request = std::make_unique<MultiGetRequest>();
        request->table = table;
      }
      request->keys.push_back(key);
      request->hashes.push_back(hash);
    }
    struct Aggregate {
      size_t remaining = 0;
      Status worst = Status::kOk;
      Tick hint = 0;
      std::function<void(Status, Tick)> report;
    };
    auto aggregate = std::make_shared<Aggregate>();
    aggregate->remaining = groups.size();
    aggregate->report = report;
    for (auto& [owner, request] : groups) {
      coordinator_->rpc().Call(
          node(), owner, std::move(request),
          [aggregate](Status status, std::unique_ptr<RpcResponse> response) {
            Status effective = status;
            Tick hint = 0;
            if (status == Status::kOk) {
              auto& multi = static_cast<MultiGetResponse&>(*response);
              effective = multi.status;
              hint = multi.retry_after;
            }
            if (effective != Status::kOk && aggregate->worst == Status::kOk) {
              aggregate->worst = effective;
            }
            aggregate->hint = std::max(aggregate->hint, hint);
            if (--aggregate->remaining == 0) {
              aggregate->report(aggregate->worst, aggregate->hint);
            }
          },
          costs_->rpc_timeout_ns);
    }
  };
  RunWithRetries(table, std::move(go), std::move(done), kMaxAttempts);
}

void RamCloudClient::IndexScan(TableId table, uint8_t index_id, std::string start_key,
                               uint32_t count, DoneCallback done) {
  auto go = [this, table, index_id, start_key = std::move(start_key),
             count](std::function<void(Status, Tick)> report) {
    const auto* config = coordinator_->GetIndexConfig(table, index_id);
    if (config == nullptr) {
      report(Status::kTableNotFound, 0);
      return;
    }
    NodeId indexlet_node = 0;
    bool found = false;
    for (const auto& indexlet : *config) {
      if (start_key >= indexlet.start_key &&
          (indexlet.end_key.empty() || start_key < indexlet.end_key)) {
        indexlet_node = indexlet.owner_node;
        found = true;
        break;
      }
    }
    if (!found) {
      report(Status::kTableNotFound, 0);
      return;
    }
    auto lookup = std::make_unique<IndexLookupRequest>();
    lookup->table = table;
    lookup->index_id = index_id;
    lookup->start_key = start_key;
    lookup->count = count;
    coordinator_->rpc().Call(
        node(), indexlet_node, std::move(lookup),
        [this, table, report](Status status, std::unique_ptr<RpcResponse> response) {
          if (status != Status::kOk) {
            report(status, 0);
            return;
          }
          auto& lookup_response = static_cast<IndexLookupResponse&>(*response);
          if (lookup_response.status != Status::kOk) {
            report(lookup_response.status, 0);
            return;
          }
          if (lookup_response.hashes.empty()) {
            report(Status::kOk, 0);
            return;
          }
          // Phase 2: fetch the records by hash, grouped per backing tablet
          // owner (index holds hashes, not records — Figure 2).
          std::map<NodeId, std::unique_ptr<MultiGetHashRequest>> groups;
          for (const KeyHash hash : lookup_response.hashes) {
            NodeId owner;
            if (!CachedOwner(table, hash, &owner)) {
              report(Status::kWrongServer, 0);
              return;
            }
            auto& request = groups[owner];
            if (request == nullptr) {
              request = std::make_unique<MultiGetHashRequest>();
              request->table = table;
            }
            request->hashes.push_back(hash);
          }
          struct Aggregate {
            size_t remaining = 0;
            Status worst = Status::kOk;
            Tick hint = 0;
            std::function<void(Status, Tick)> report;
          };
          auto aggregate = std::make_shared<Aggregate>();
          aggregate->remaining = groups.size();
          aggregate->report = report;
          for (auto& [owner, request] : groups) {
            coordinator_->rpc().Call(
                node(), owner, std::move(request),
                [aggregate](Status status, std::unique_ptr<RpcResponse> response) {
                  Status effective = status;
                  Tick hint = 0;
                  if (status == Status::kOk) {
                    auto& multi = static_cast<MultiGetHashResponse&>(*response);
                    effective = multi.status;
                    hint = multi.retry_after;
                  }
                  if (effective != Status::kOk && aggregate->worst == Status::kOk) {
                    aggregate->worst = effective;
                  }
                  aggregate->hint = std::max(aggregate->hint, hint);
                  if (--aggregate->remaining == 0) {
                    aggregate->report(aggregate->worst, aggregate->hint);
                  }
                },
                costs_->rpc_timeout_ns);
          }
        },
        costs_->rpc_timeout_ns);
  };
  RunWithRetries(table, std::move(go), std::move(done), kMaxAttempts);
}

}  // namespace rocksteady
