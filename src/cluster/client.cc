#include "src/cluster/client.h"

#include <algorithm>
#include <map>

#include "src/common/logging.h"

namespace rocksteady {

RamCloudClient::RamCloudClient(Coordinator* coordinator, const CostModel* costs, int lane)
    : coordinator_(coordinator), costs_(costs) {
  endpoint_ = coordinator_->rpc().CreateEndpoint(nullptr, lane);
  sim_ = endpoint_->sim();
  rng_ = &coordinator_->rpc().CallerRng(endpoint_->node());
}

bool RamCloudClient::CachedOwner(TableId table, KeyHash hash, NodeId* node) const {
  for (const auto& entry : cache_) {
    if (entry.table == table && entry.start_hash <= hash && hash <= entry.end_hash) {
      *node = entry.owner_node;
      return true;
    }
  }
  return false;
}

void RamCloudClient::RefreshConfig(TableId table, std::function<void()> then) {
  auto request = std::make_unique<GetTableConfigRequest>();
  request->table = table;
  coordinator_->rpc().Call(
      node(), coordinator_->node(), std::move(request),
      [this, table, then = std::move(then)](Status status,
                                            std::unique_ptr<RpcResponse> response) {
        if (status == Status::kOk && response->status == Status::kOk) {
          auto& config = static_cast<GetTableConfigResponse&>(*response);
          std::erase_if(cache_, [&](const TabletConfigEntry& e) { return e.table == table; });
          cache_.insert(cache_.end(), config.tablets.begin(), config.tablets.end());
        }
        then();
      },
      costs_->rpc_timeout_ns);
}

RamCloudClient::RetryState* RamCloudClient::AllocState(TableId table) {
  RetryState* s = free_states_;
  if (s != nullptr) {
    free_states_ = s->next_free;
  } else {
    states_.push_back(std::make_unique<RetryState>());
    s = states_.back().get();
  }
  s->table = table;
  s->attempts_left = kMaxAttempts;
  s->next_free = nullptr;
  return s;
}

void RamCloudClient::FreeState(RetryState* s) {
  // The go closure is deliberately NOT destroyed here: a synchronous Report
  // from inside an executing go (e.g. a cache miss on the final attempt)
  // reaches this point with that closure's frame still on the stack. The
  // slot's next user overwrites it instead.
  s->done = nullptr;
  s->read_done = nullptr;
  // clear() (not = {}) so key/value/payload capacity survives for the next
  // op through this slot — the whole point of pooling the strings here.
  s->payload.clear();
  s->next_free = free_states_;
  free_states_ = s;
}

void RamCloudClient::Retry(RetryState* s) {
  s->attempts_left--;
  s->go();
}

void RamCloudClient::Finish(RetryState* s, Status status) {
  // Move the continuation out before invoking it: it may synchronously
  // issue a new op (and that op must not see a half-retired slot).
  if (s->read_done) {
    ReadCallback done = std::move(s->read_done);
    done(status, s->payload);
  } else {
    DoneCallback done = std::move(s->done);
    done(status);
  }
  FreeState(s);
}

void RamCloudClient::Report(RetryState* s, Status status, Tick hint) {
  Simulator& sim = *sim_;
  if (status == Status::kOk) {
    ops_completed_++;
    Finish(s, status);
    return;
  }
  if (s->attempts_left <= 1) {
    ops_failed_++;
    Finish(s, Status::kServerDown);
    return;
  }
  switch (status) {
    case Status::kWrongServer:
    case Status::kTableNotFound: {
      wrong_server_retries_++;
      // Escalating backoff: repeated kWrongServer for the same op means
      // the map is *still* stale (e.g. a pre-copy freeze window before
      // the coordinator learns the new owner) — don't hammer.
      const int attempt = kMaxAttempts - s->attempts_left;
      const Tick backoff =
          attempt <= 1 ? 0
                       : std::min<Tick>(static_cast<Tick>(attempt) *
                                            costs_->wrong_server_backoff_step_ns,
                                        costs_->wrong_server_backoff_max_ns);
      sim.After(backoff, [this, s] { RefreshConfig(s->table, [this, s] { Retry(s); }); });
      return;
    }
    case Status::kRetryLater: {
      retry_later_retries_++;
      const Tick jitter = rng_->UniformRange(costs_->retry_backoff_min_ns,
                                             costs_->retry_backoff_max_ns);
      const Tick at = std::max(hint, sim.now()) + jitter;
      sim.At(at, [this, s] { Retry(s); });
      return;
    }
    case Status::kServerDown:
      server_down_retries_++;
      // Likely a crash: wait for recovery to make progress, then refresh.
      sim.After(costs_->recovering_retry_hint_ns,
                [this, s] { RefreshConfig(s->table, [this, s] { Retry(s); }); });
      return;
    default:
      // kObjectNotFound is a legitimate outcome, not a failure.
      if (status == Status::kObjectNotFound) {
        ops_completed_++;
      } else {
        ops_failed_++;
      }
      Finish(s, status);
      return;
  }
}

void RamCloudClient::Read(TableId table, std::string_view key, ReadCallback done) {
  const KeyHash hash = HashKey(table, key);
  RetryState* s = AllocState(table);
  s->read_done = std::move(done);
  s->key.assign(key);
  s->go = [this, s, hash] {
    NodeId owner;
    if (!CachedOwner(s->table, hash, &owner)) {
      Report(s, Status::kWrongServer, 0);
      return;
    }
    auto request = std::make_unique<ReadRequest>();
    request->table = s->table;
    request->key = s->key;
    request->hash = hash;
    coordinator_->rpc().Call(
        node(), owner, std::move(request),
        [this, s](Status status, std::unique_ptr<RpcResponse> response) {
          if (status != Status::kOk) {
            Report(s, status, 0);
            return;
          }
          auto& read = static_cast<ReadResponse&>(*response);
          if (read.status == Status::kOk) {
            s->payload = std::move(read.value);
          }
          Report(s, read.status, read.retry_after);
        },
        costs_->rpc_timeout_ns);
  };
  s->go();
}

void RamCloudClient::Write(TableId table, std::string_view key, std::string_view value,
                           DoneCallback done, std::string_view secondary_key) {
  const KeyHash hash = HashKey(table, key);
  RetryState* s = AllocState(table);
  s->done = std::move(done);
  s->key.assign(key);
  s->value.assign(value);
  s->secondary.assign(secondary_key);
  s->go = [this, s, hash] {
    NodeId owner;
    if (!CachedOwner(s->table, hash, &owner)) {
      Report(s, Status::kWrongServer, 0);
      return;
    }
    auto request = std::make_unique<WriteRequest>();
    request->table = s->table;
    request->key = s->key;
    request->hash = hash;
    request->value = s->value;
    request->secondary_key = s->secondary;
    coordinator_->rpc().Call(
        node(), owner, std::move(request),
        [this, s](Status status, std::unique_ptr<RpcResponse> response) {
          const Tick hint =
              status == Status::kOk ? static_cast<WriteResponse&>(*response).retry_after : 0;
          Report(s, status == Status::kOk ? response->status : status, hint);
        },
        costs_->rpc_timeout_ns);
  };
  s->go();
}

void RamCloudClient::Remove(TableId table, std::string_view key, DoneCallback done) {
  const KeyHash hash = HashKey(table, key);
  RetryState* s = AllocState(table);
  s->done = std::move(done);
  s->key.assign(key);
  s->go = [this, s, hash] {
    NodeId owner;
    if (!CachedOwner(s->table, hash, &owner)) {
      Report(s, Status::kWrongServer, 0);
      return;
    }
    auto request = std::make_unique<RemoveRequest>();
    request->table = s->table;
    request->key = s->key;
    request->hash = hash;
    coordinator_->rpc().Call(
        node(), owner, std::move(request),
        [this, s](Status status, std::unique_ptr<RpcResponse> response) {
          const Tick hint =
              status == Status::kOk ? static_cast<RemoveResponse&>(*response).retry_after : 0;
          Report(s, status == Status::kOk ? response->status : status, hint);
        },
        costs_->rpc_timeout_ns);
  };
  s->go();
}

void RamCloudClient::MultiGet(TableId table, std::vector<std::string> keys, DoneCallback done) {
  RetryState* s = AllocState(table);
  s->done = std::move(done);
  s->go = [this, s, keys = std::move(keys)] {
    // Group keys by owning server (the cluster-load effect Figure 3
    // measures: spread N means N parallel RPCs for the same 7 keys).
    std::map<NodeId, std::unique_ptr<MultiGetRequest>> groups;
    for (const auto& key : keys) {
      const KeyHash hash = HashKey(s->table, key);
      NodeId owner;
      if (!CachedOwner(s->table, hash, &owner)) {
        Report(s, Status::kWrongServer, 0);
        return;
      }
      auto& request = groups[owner];
      if (request == nullptr) {
        request = std::make_unique<MultiGetRequest>();
        request->table = s->table;
      }
      request->keys.push_back(key);
      request->hashes.push_back(hash);
    }
    struct Aggregate {
      size_t remaining = 0;
      Status worst = Status::kOk;
      Tick hint = 0;
      RetryState* s = nullptr;
    };
    auto aggregate = std::make_shared<Aggregate>();
    aggregate->remaining = groups.size();
    aggregate->s = s;
    for (auto& [owner, request] : groups) {
      coordinator_->rpc().Call(
          node(), owner, std::move(request),
          [this, aggregate](Status status, std::unique_ptr<RpcResponse> response) {
            Status effective = status;
            Tick hint = 0;
            if (status == Status::kOk) {
              auto& multi = static_cast<MultiGetResponse&>(*response);
              effective = multi.status;
              hint = multi.retry_after;
            }
            if (effective != Status::kOk && aggregate->worst == Status::kOk) {
              aggregate->worst = effective;
            }
            aggregate->hint = std::max(aggregate->hint, hint);
            if (--aggregate->remaining == 0) {
              Report(aggregate->s, aggregate->worst, aggregate->hint);
            }
          },
          costs_->rpc_timeout_ns);
    }
  };
  s->go();
}

void RamCloudClient::IndexScan(TableId table, uint8_t index_id, std::string start_key,
                               uint32_t count, DoneCallback done) {
  RetryState* s = AllocState(table);
  s->done = std::move(done);
  s->go = [this, s, index_id, start_key = std::move(start_key), count] {
    const auto* config = coordinator_->GetIndexConfig(s->table, index_id);
    if (config == nullptr) {
      Report(s, Status::kTableNotFound, 0);
      return;
    }
    NodeId indexlet_node = 0;
    bool found = false;
    for (const auto& indexlet : *config) {
      if (start_key >= indexlet.start_key &&
          (indexlet.end_key.empty() || start_key < indexlet.end_key)) {
        indexlet_node = indexlet.owner_node;
        found = true;
        break;
      }
    }
    if (!found) {
      Report(s, Status::kTableNotFound, 0);
      return;
    }
    auto lookup = std::make_unique<IndexLookupRequest>();
    lookup->table = s->table;
    lookup->index_id = index_id;
    lookup->start_key = start_key;
    lookup->count = count;
    coordinator_->rpc().Call(
        node(), indexlet_node, std::move(lookup),
        [this, s](Status status, std::unique_ptr<RpcResponse> response) {
          if (status != Status::kOk) {
            Report(s, status, 0);
            return;
          }
          auto& lookup_response = static_cast<IndexLookupResponse&>(*response);
          if (lookup_response.status != Status::kOk) {
            Report(s, lookup_response.status, 0);
            return;
          }
          if (lookup_response.hashes.empty()) {
            Report(s, Status::kOk, 0);
            return;
          }
          // Phase 2: fetch the records by hash, grouped per backing tablet
          // owner (index holds hashes, not records — Figure 2).
          std::map<NodeId, std::unique_ptr<MultiGetHashRequest>> groups;
          for (const KeyHash hash : lookup_response.hashes) {
            NodeId owner;
            if (!CachedOwner(s->table, hash, &owner)) {
              Report(s, Status::kWrongServer, 0);
              return;
            }
            auto& request = groups[owner];
            if (request == nullptr) {
              request = std::make_unique<MultiGetHashRequest>();
              request->table = s->table;
            }
            request->hashes.push_back(hash);
          }
          struct Aggregate {
            size_t remaining = 0;
            Status worst = Status::kOk;
            Tick hint = 0;
            RetryState* s = nullptr;
          };
          auto aggregate = std::make_shared<Aggregate>();
          aggregate->remaining = groups.size();
          aggregate->s = s;
          for (auto& [owner, request] : groups) {
            coordinator_->rpc().Call(
                node(), owner, std::move(request),
                [this, aggregate](Status status, std::unique_ptr<RpcResponse> response) {
                  Status effective = status;
                  Tick hint = 0;
                  if (status == Status::kOk) {
                    auto& multi = static_cast<MultiGetHashResponse&>(*response);
                    effective = multi.status;
                    hint = multi.retry_after;
                  }
                  if (effective != Status::kOk && aggregate->worst == Status::kOk) {
                    aggregate->worst = effective;
                  }
                  aggregate->hint = std::max(aggregate->hint, hint);
                  if (--aggregate->remaining == 0) {
                    Report(aggregate->s, aggregate->worst, aggregate->hint);
                  }
                },
                costs_->rpc_timeout_ns);
          }
        },
        costs_->rpc_timeout_ns);
  };
  s->go();
}

}  // namespace rocksteady
