// Cluster: wires a full simulated RAMCloud deployment in one Simulator —
// coordinator, N storage servers (master + backup + cores + NIC), and M
// client machines — mirroring the paper's CloudLab testbed (Table 1).
//
// Control-plane setup (table creation, bulk loading) happens outside
// simulated time, like a cluster that was loaded before the experiment
// began; bulk-loaded data is seeded to backups so recovery works.
#ifndef ROCKSTEADY_SRC_CLUSTER_CLUSTER_H_
#define ROCKSTEADY_SRC_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master_server.h"

namespace rocksteady {

struct ClusterConfig {
  int num_masters = 4;
  int num_clients = 2;
  MasterConfig master;
  CostModel costs;
  uint64_t seed = 42;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  RpcSystem& rpc() { return rpc_; }
  Coordinator& coordinator() { return *coordinator_; }
  const CostModel& costs() const { return config_.costs; }
  const ClusterConfig& config() const { return config_; }

  MasterServer& master(size_t i) { return *masters_.at(i); }
  RamCloudClient& client(size_t i) { return *clients_.at(i); }
  size_t num_masters() const { return masters_.size(); }
  size_t num_clients() const { return clients_.size(); }

  // --- Setup helpers (zero simulated time). ---
  void CreateTable(TableId table, size_t master_index);

  // Loads `num_records` objects keyed MakeKey(i, key_length) with
  // `value_length`-byte values into whichever masters own them, then seeds
  // the backups with the resulting segments (as if the loads had been
  // durable writes).
  void LoadTable(TableId table, uint64_t num_records, size_t key_length, size_t value_length);

  // Copies every main-log segment of master `i` to its backups (used after
  // direct bulk loads).
  void SeedReplicas(size_t master_index);

  // Deterministic fixed-length keys ("user" + zero-padded id).
  static std::string MakeKey(uint64_t id, size_t key_length);
  // In-place variant for hot paths: formats into `out`, reusing its
  // capacity, so per-op key generation allocates nothing at steady state.
  static void MakeKeyInto(uint64_t id, size_t key_length, std::string* out);

 private:
  ClusterConfig config_;
  Simulator sim_;
  Network net_;
  RpcSystem rpc_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<MasterServer>> masters_;
  std::vector<std::unique_ptr<RamCloudClient>> clients_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_CLUSTER_H_
