// Cluster: wires a full simulated RAMCloud deployment in one Simulator —
// coordinator, N storage servers (master + backup + cores + NIC), and M
// client machines — mirroring the paper's CloudLab testbed (Table 1).
//
// Control-plane setup (table creation, bulk loading) happens outside
// simulated time, like a cluster that was loaded before the experiment
// began; bulk-loaded data is seeded to backups so recovery works.
#ifndef ROCKSTEADY_SRC_CLUSTER_CLUSTER_H_
#define ROCKSTEADY_SRC_CLUSTER_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/master_server.h"
#include "src/sim/lane_set.h"

namespace rocksteady {

struct ClusterConfig {
  int num_masters = 4;
  int num_clients = 2;
  MasterConfig master;
  CostModel costs;
  uint64_t seed = 42;
  // Sharded execution: > 0 runs the cluster on that many event lanes
  // (servers/clients round-robined across them) with a deterministic merge;
  // 0 keeps the legacy single event queue, byte-identical to prior traces.
  // Lane-mode traces form their own hash domain: per-node RNG streams
  // replace the shared simulator stream, so lane hashes differ from legacy
  // hashes but are identical across lane counts and threading.
  int lanes = 0;
  // With lanes > 1: execute lanes on real worker threads. Trace hashes are
  // identical with threads on or off.
  bool lane_threads = false;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // The root simulator: lane 0's in sharded mode (coordinator's lane), the
  // single shared queue otherwise. Lane-mode code that needs *a* clock may
  // use it; scheduling cross-cutting control actions must go through
  // AtSafePoint instead.
  Simulator& sim() { return lanes_ != nullptr ? lanes_->lane_sim(0) : sim_; }
  Network& net() { return net_; }
  RpcSystem& rpc() { return rpc_; }
  Coordinator& coordinator() { return *coordinator_; }
  const CostModel& costs() const { return config_.costs; }
  const ClusterConfig& config() const { return config_; }

  // --- Mode-independent execution (prefer these over sim().Run*). ---
  LaneSet* lanes() { return lanes_.get(); }
  size_t Run();
  size_t RunUntil(Tick t);
  Tick now() const { return lanes_ != nullptr ? lanes_->now() : sim_.now(); }
  uint64_t trace_hash() const {
    return lanes_ != nullptr ? lanes_->trace_hash() : sim_.trace_hash();
  }
  size_t events_processed() const {
    return lanes_ != nullptr ? lanes_->events_processed() : sim_.events_processed();
  }
  // Runs `fn` once everything before `t` has executed and nothing at/after
  // `t` has, with all lanes parked — the lane-safe home for cross-cutting
  // control actions (migration kickoff, crash injection, operator actions).
  // Legacy mode approximates with a plain event at `t`.
  void AtSafePoint(Tick t, std::function<void()> fn);

  MasterServer& master(size_t i) { return *masters_.at(i); }
  RamCloudClient& client(size_t i) { return *clients_.at(i); }
  size_t num_masters() const { return masters_.size(); }
  size_t num_clients() const { return clients_.size(); }

  // --- Setup helpers (zero simulated time). ---
  void CreateTable(TableId table, size_t master_index);

  // Loads `num_records` objects keyed MakeKey(i, key_length) with
  // `value_length`-byte values into whichever masters own them, then seeds
  // the backups with the resulting segments (as if the loads had been
  // durable writes).
  void LoadTable(TableId table, uint64_t num_records, size_t key_length, size_t value_length);

  // Copies every main-log segment of master `i` to its backups (used after
  // direct bulk loads).
  void SeedReplicas(size_t master_index);

  // Deterministic fixed-length keys ("user" + zero-padded id).
  static std::string MakeKey(uint64_t id, size_t key_length);
  // In-place variant for hot paths: formats into `out`, reusing its
  // capacity, so per-op key generation allocates nothing at steady state.
  static void MakeKeyInto(uint64_t id, size_t key_length, std::string* out);

 private:
  // Root-context simulator access during construction (legacy: the shared
  // queue; lane mode: lane 0). Must not be used before lanes_ is set.
  Simulator* RootSim() { return lanes_ != nullptr ? &lanes_->lane_sim(0) : &sim_; }

  ClusterConfig config_;
  std::unique_ptr<LaneSet> lanes_;  // Null in legacy mode. Before sim_/net_/rpc_: they wire to it.
  Simulator sim_;                   // Legacy shared queue (idle in lane mode).
  Network net_;
  RpcSystem rpc_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<MasterServer>> masters_;
  std::vector<std::unique_ptr<RamCloudClient>> clients_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_CLUSTER_H_
