#include "src/cluster/recovery.h"

#include <algorithm>
#include <map>
#include <memory>

#include "src/cluster/master_server.h"
#include "src/common/dcheck.h"
#include "src/common/logging.h"

namespace rocksteady {

namespace {

// How many times a recovery master re-issues the re-replication of a
// replayed entry before giving up. Each retry backs off by the recovering
// retry hint, so the window comfortably covers a backup's crash-restart gap
// (the common failure during a rolling restart).
constexpr int kReplayReplicationAttempts = 10;

// Bytes of `bytes` that parse as a clean entry sequence. Replica copies of
// the same segment can legitimately diverge past this point (a leg that
// failed mid-stream leaves a zero hole the backup padded around), so
// recovery ranks copies by how far they parse.
size_t ParseablePrefix(const std::vector<uint8_t>& bytes) {
  size_t offset = 0;
  LogEntryView entry;
  while (offset < bytes.size() && ReadEntry(bytes.data() + offset, bytes.size() - offset, &entry)) {
    offset += entry.header.TotalLength();
  }
  return offset;
}

// Replicates a replayed entry until the backups ack it (bounded retries):
// the recovery master's DRAM is the record's only home until this lands, so
// a silent failure here turns the *next* crash into data loss. `done` fires
// exactly once, success or not.
void ReplicateDurably(MasterServer* rm, LogRef ref, int attempts_left,
                      std::function<void()> done) {
  rm->ReplicateEntry(ref, [rm, ref, attempts_left, done = std::move(done)](Status status) mutable {
    if (status == Status::kOk || attempts_left <= 1 || rm->crashed()) {
      if (status != Status::kOk) {
        LOG_WARNING("recovery: re-replication of replayed entry gave up (status %d)",
                    static_cast<int>(status));
      }
      done();
      return;
    }
    rm->sim().After(rm->costs().recovering_retry_hint_ns,
                    [rm, ref, attempts_left, done = std::move(done)]() mutable {
                      if (rm->crashed()) {
                        done();
                        return;
                      }
                      ReplicateDurably(rm, ref, attempts_left - 1, std::move(done));
                    });
  });
}

}  // namespace

void RecoveryManager::RecoverServer(ServerId crashed, std::function<void()> done) {
  const std::vector<ServerId> alive = coordinator_->AliveServers(crashed);
  if (alive.empty()) {
    LOG_ERROR("recovery: no alive servers to recover %u onto", crashed);
    if (done) {
      done();
    }
    return;
  }
  // Re-home onto placement-eligible (kActive) servers only — recovering a
  // draining master's data back onto another draining master would undo its
  // evacuation. If the whole cluster is draining there is no better choice,
  // so fall back to anyone alive.
  std::vector<ServerId> homes = coordinator_->PlacementCandidates(crashed);
  if (homes.empty()) {
    homes = alive;
  }

  std::vector<Plan> plans;

  // A draining master may run several concurrent evacuations, so a crashed
  // server can appear in any number of dependency edges — snapshot them all
  // (the per-edge handling below drops each from the registry as it goes).
  std::vector<MigrationDependency> as_target;
  std::vector<MigrationDependency> as_source;
  for (const auto& d : coordinator_->dependencies()) {
    if (d.target == crashed) {
      as_target.push_back(d);
    } else if (d.source == crashed) {
      as_source.push_back(d);
    }
  }

  // --- Lineage case 1: the crashed server was a migration target. ---
  for (const auto& edge : as_target) {
    const MigrationDependency* dep = &edge;
    // Abort the crashed target's manager first: its cores are halted but its
    // heap state stays coherent until Restart(), so the side logs drop
    // cleanly and any still-scheduled continuations see aborted_ and die
    // instead of running against a restarted, empty master.
    if (coordinator_->abort_inbound_migration) {
      coordinator_->abort_inbound_migration(coordinator_->master(crashed), dep->table);
    }
    // Ownership returns to the source, whose copy is complete and immutable;
    // it only needs the target's log tail (writes serviced post-transfer).
    // The dependency's exact range must still be in the map: splits refuse
    // ranges that overlap an in-flight migration.
    const Status ownership_back =
        coordinator_->UpdateOwnership(dep->table, dep->start_hash, dep->end_hash, dep->source);
    ROCKSTEADY_DCHECK(ownership_back == Status::kOk);
    MasterServer* source = coordinator_->master(dep->source);
    if (Tablet* tablet = source->objects().tablets().Find(dep->table, dep->start_hash)) {
      // Held in kRecovering until the tail plan below completes: a write
      // accepted mid-replay would take a version the replayed tail entries
      // silently clobber. The plan's completion flips it to kNormal.
      tablet->state = TabletState::kRecovering;
    }
    Plan tail;
    tail.recovery_master = source;
    tail.ranges.push_back({dep->table, dep->start_hash, dep->end_hash});
    tail.data_of = crashed;
    tail.min_segment = dep->target_log_segment;
    tail.min_offset = dep->target_log_offset;
    plans.push_back(std::move(tail));
    coordinator_->DropDependency(dep->source, dep->target, dep->table);
  }

  // --- Lineage case 2: the crashed server was a migration source. ---
  size_t next_lineage_home = 0;
  for (const auto& edge : as_source) {
    const MigrationDependency* dep = &edge;
    MasterServer* target = coordinator_->master(dep->target);
    if (coordinator_->abort_inbound_migration) {
      coordinator_->abort_inbound_migration(target, dep->table);
    }
    // The tablet (owned by the target since migration start) is rebuilt on a
    // recovery master from the source's backups plus the target's log tail.
    MasterServer* rm = coordinator_->master(homes[next_lineage_home++ % homes.size()]);
    const Status ownership_to_rm =
        coordinator_->UpdateOwnership(dep->table, dep->start_hash, dep->end_hash, rm->id());
    ROCKSTEADY_DCHECK(ownership_to_rm == Status::kOk);
    target->objects().tablets().Remove(dep->table, dep->start_hash, dep->end_hash);
    rm->objects().tablets().Add(
        Tablet{dep->table, dep->start_hash, dep->end_hash, TabletState::kRecovering});

    Plan from_source;
    from_source.recovery_master = rm;
    from_source.ranges.push_back({dep->table, dep->start_hash, dep->end_hash});
    from_source.data_of = crashed;
    plans.push_back(std::move(from_source));

    Plan from_target_tail;
    from_target_tail.recovery_master = rm;
    from_target_tail.ranges.push_back({dep->table, dep->start_hash, dep->end_hash});
    from_target_tail.data_of = dep->target;
    from_target_tail.min_segment = dep->target_log_segment;
    from_target_tail.min_offset = dep->target_log_offset;
    plans.push_back(std::move(from_target_tail));

    coordinator_->DropDependency(dep->source, dep->target, dep->table);
  }

  // --- Generic: re-home every tablet still owned by the crashed server. ---
  std::map<ServerId, Plan> generic;
  size_t next_rm = 0;
  for (const auto& entry : coordinator_->GetAllTablets()) {
    if (entry.owner != crashed) {
      continue;
    }
    const ServerId rm_id = homes[next_rm++ % homes.size()];
    MasterServer* rm = coordinator_->master(rm_id);
    // The entry's range comes straight from the map we are iterating, so the
    // exact-range repoint cannot miss.
    const Status ownership_spread =
        coordinator_->UpdateOwnership(entry.table, entry.start_hash, entry.end_hash, rm_id);
    ROCKSTEADY_DCHECK(ownership_spread == Status::kOk);
    rm->objects().tablets().Add(
        Tablet{entry.table, entry.start_hash, entry.end_hash, TabletState::kRecovering});
    Plan& plan = generic[rm_id];
    plan.recovery_master = rm;
    plan.data_of = crashed;
    plan.ranges.push_back({entry.table, entry.start_hash, entry.end_hash});
  }
  for (auto& [rm_id, plan] : generic) {
    plans.push_back(std::move(plan));
  }

  if (plans.empty()) {
    if (done) {
      done();
    }
    return;
  }

  // Execute all plans; finish when every one completes.
  struct Barrier {
    size_t remaining;
    std::function<void()> done;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = plans.size();
  barrier->done = std::move(done);
  for (const auto& plan : plans) {
    MasterServer* rm = plan.recovery_master;
    std::vector<RangeToRecover> ranges = plan.ranges;
    ExecutePlan(plan, [barrier, rm, ranges] {
      // Mark the restored ranges live.
      for (const auto& range : ranges) {
        if (Tablet* tablet = rm->objects().tablets().Find(range.table, range.start_hash)) {
          if (tablet->state == TabletState::kRecovering) {
            tablet->state = TabletState::kNormal;
          }
        }
      }
      if (--barrier->remaining == 0 && barrier->done) {
        barrier->done();
      }
    });
  }
}

void RecoveryManager::AbortMigrationToSource(const MigrationDependency& dependency,
                                             std::function<void()> done) {
  MasterServer* target = coordinator_->master(dependency.target);
  if (coordinator_->abort_inbound_migration) {
    // Tells the target's manager to drop its side logs and hooks cleanly.
    coordinator_->abort_inbound_migration(target, dependency.table);
  }
  // The manager's Abort() removes the target's tablet; make sure it is gone
  // even when no manager is installed (e.g. the registration landed but the
  // target never got the ack and never built one).
  target->objects().tablets().Remove(dependency.table, dependency.start_hash,
                                     dependency.end_hash);
  const Status ownership_to_source = coordinator_->UpdateOwnership(
      dependency.table, dependency.start_hash, dependency.end_hash, dependency.source);
  ROCKSTEADY_DCHECK(ownership_to_source == Status::kOk);
  MasterServer* source = coordinator_->master(dependency.source);
  if (Tablet* tablet = source->objects().tablets().Find(dependency.table,
                                                        dependency.start_hash)) {
    // Hold the tablet in kRecovering until the target's tail has been
    // replayed: a write accepted mid-replay would take a version the
    // replayed (higher-versioned) tail entries silently clobber.
    tablet->state = TabletState::kRecovering;
  }
  coordinator_->DropDependency(dependency.source, dependency.target, dependency.table);
  // The source's copy is complete and immutable; it only needs the target's
  // log tail (writes serviced post-transfer).
  if (!done) {
    done = [] {};
  }
  // Replay complete → open the tablet for clients, whichever branch ran.
  const TableId dep_table = dependency.table;
  const KeyHash dep_start = dependency.start_hash;
  done = [source, dep_table, dep_start, inner = std::move(done)] {
    if (Tablet* tablet = source->objects().tablets().Find(dep_table, dep_start)) {
      if (tablet->state == TabletState::kRecovering) {
        tablet->state = TabletState::kNormal;
      }
    }
    inner();
  };
  if (target->crashed()) {
    // Target unreachable: fetch its durable tail from the backups.
    Plan tail;
    tail.recovery_master = source;
    tail.ranges.push_back({dependency.table, dependency.start_hash, dependency.end_hash});
    tail.data_of = dependency.target;
    tail.min_segment = dependency.target_log_segment;
    tail.min_offset = dependency.target_log_offset;
    ExecutePlan(tail, std::move(done));
    return;
  }
  // Live target: read the tail straight from its in-memory log. The backups
  // may be missing a write whose replication is still in flight even though
  // the target will ack it once that replication completes — but every write
  // the target could ever ack is appended to its log before the ack, and the
  // tablet removal above stops new appends, so the log itself is the
  // complete set. Entries the cleaner relocated from below the dependency
  // offset may reappear above it; the source's version comparison drops
  // those as already-known.
  auto tail_bytes = std::make_shared<std::vector<uint8_t>>();
  auto tail_entries = std::make_shared<size_t>(0);
  target->objects().log().ForEachEntry([&](LogRef ref, const LogEntryView& entry) {
    if (ref.segment_id() < dependency.target_log_segment ||
        (ref.segment_id() == dependency.target_log_segment &&
         ref.offset() < dependency.target_log_offset)) {
      return;
    }
    if (entry.type() != LogEntryType::kObject && entry.type() != LogEntryType::kTombstone) {
      return;
    }
    if (entry.table_id() != dependency.table || entry.key_hash() < dependency.start_hash ||
        entry.key_hash() > dependency.end_hash) {
      return;
    }
    const uint8_t* data = nullptr;
    size_t length = 0;
    if (target->objects().log().RawEntry(ref, &data, &length)) {
      tail_bytes->insert(tail_bytes->end(), data, data + length);
      (*tail_entries)++;
    }
  });
  auto finish = std::make_shared<std::function<void()>>(std::move(done));
  source->cores().EnqueueWorker(
      {Priority::kReplication,
       [this, source, tail_bytes, tail_entries] {
         size_t offset = 0;
         while (offset < tail_bytes->size()) {
           LogEntryView entry;
           if (!ReadEntry(tail_bytes->data() + offset, tail_bytes->size() - offset, &entry)) {
             break;
           }
           LogRef ref;
           if (source->objects().Replay(entry, nullptr, &ref)) {
             // The tail entries' only other durable home was the
             // (now-dropped) target lineage; the source must give them
             // fresh replicas of its own. Detached retries, as in
             // ExecutePlan.
             ReplicateDurably(source, ref, kReplayReplicationAttempts, [] {});
           }
           offset += entry.header.TotalLength();
         }
         return source->costs().ReplayCost(*tail_entries, tail_bytes->size());
       },
       [finish] { (*finish)(); }});
}

void RecoveryManager::ExecutePlan(const Plan& plan, std::function<void()> done) {
  MasterServer* rm = plan.recovery_master;
  const std::vector<ServerId> backups = coordinator_->AliveServers(rm->id());

  struct FetchState {
    std::map<uint32_t, std::vector<uint8_t>> segments;  // Deduped by id.
    size_t outstanding = 0;
    std::vector<RangeToRecover> ranges;
    uint32_t min_segment = 0;
    uint32_t min_offset = 0;
    std::function<void()> done;
  };
  auto state = std::make_shared<FetchState>();
  state->ranges = plan.ranges;
  state->min_segment = plan.min_segment;
  state->min_offset = plan.min_offset;
  state->done = std::move(done);

  auto replay_all = [this, rm, state] {
    if (state->segments.empty()) {
      state->done();
      return;
    }
    // One replay worker task per recovered segment, at replication priority
    // (recovery competes with normal service like other background work).
    // Re-replication of incorporated entries runs detached from plan
    // completion: the recovery master's backup set still contains the
    // crashed master itself, so the legs to it cannot succeed until it
    // restarts — which, in a rolling restart, only happens *after* this
    // plan reports done. The per-entry retry loop rides out that window.
    auto remaining = std::make_shared<size_t>(state->segments.size());
    for (auto& [segment_id, data] : state->segments) {
      const uint32_t id = segment_id;
      auto bytes = std::make_shared<std::vector<uint8_t>>(std::move(data));
      rm->cores().EnqueueWorker(
          {Priority::kReplication,
           [this, rm, state, id, bytes] {
             size_t offset = 0;
             size_t replayed = 0;
             size_t replayed_bytes = 0;
             while (offset < bytes->size()) {
               LogEntryView entry;
               if (!ReadEntry(bytes->data() + offset, bytes->size() - offset, &entry)) {
                 break;  // Torn tail of an in-progress replica write.
               }
               const size_t length = entry.header.TotalLength();
               const bool below_dependency =
                   id == state->min_segment && offset < state->min_offset;
               if (!below_dependency &&
                   (entry.type() == LogEntryType::kObject ||
                    entry.type() == LogEntryType::kTombstone)) {
                 for (const auto& range : state->ranges) {
                   if (entry.table_id() == range.table && entry.key_hash() >= range.start_hash &&
                       entry.key_hash() <= range.end_hash) {
                     LogRef ref;
                     if (rm->objects().Replay(entry, nullptr, &ref)) {
                       // The recovery master's DRAM is now the record's
                       // only home; give it fresh replicas or the *next*
                       // crash loses it for good.
                       ReplicateDurably(rm, ref, kReplayReplicationAttempts, [] {});
                     }
                     replayed++;
                     replayed_bytes += length;
                     break;
                   }
                 }
               }
               offset += length;
             }
             return rm->costs().ReplayCost(replayed, replayed_bytes);
           },
           [state, remaining] {
             if (--*remaining == 0) {
               state->done();
             }
           }});
    }
    (void)this;
  };

  if (backups.empty()) {
    state->done();
    return;
  }
  state->outstanding = backups.size();
  for (const ServerId backup : backups) {
    auto request = std::make_unique<GetRecoveryDataRequest>();
    request->crashed_master = plan.data_of;
    request->min_segment_id = plan.min_segment;
    rm->rpc().Call(
        rm->node(), coordinator_->NodeOf(backup), std::move(request),
        [state, replay_all](Status status, std::unique_ptr<RpcResponse> response) {
          if (status == Status::kOk && response != nullptr) {
            auto& data = static_cast<GetRecoveryDataResponse&>(*response);
            for (auto& segment : data.segments) {
              // Replica copies of the same segment can diverge: a leg that
              // failed mid-stream leaves a zero hole that truncates replay
              // at that offset. Keep whichever copy parses furthest, not
              // whichever response happened to arrive first.
              auto it = state->segments.find(segment.segment_id);
              if (it == state->segments.end()) {
                state->segments.emplace(segment.segment_id, std::move(segment.data));
              } else if (ParseablePrefix(segment.data) > ParseablePrefix(it->second)) {
                it->second = std::move(segment.data);
              }
            }
          }
          if (--state->outstanding == 0) {
            replay_all();
          }
        },
        rm->costs().migration_rpc_timeout_ns);
  }
}

}  // namespace rocksteady
