#include "src/cluster/operations.h"

#include "src/cluster/coordinator.h"
#include "src/cluster/master_server.h"
#include "src/common/logging.h"

namespace rocksteady {

RollingRestartOrchestrator::RollingRestartOrchestrator(Cluster* cluster,
                                                       const RollingRestartOptions& options)
    : cluster_(cluster), options_(options), alive_(std::make_shared<bool>(true)) {}

RollingRestartOrchestrator::~RollingRestartOrchestrator() {
  *alive_ = false;
  if (running_) {
    // Mid-cycle teardown: put the hook back so we don't leave a dangling
    // capture of `this` installed on the coordinator.
    cluster_->coordinator().on_recovery_complete = saved_hook_;
  }
}

void RollingRestartOrchestrator::Start(std::function<void()> done) {
  if (running_) {
    return;
  }
  running_ = true;
  next_index_ = 0;
  in_flight_ = 0;
  done_ = std::move(done);
  Coordinator& coordinator = cluster_->coordinator();
  if (!coordinator.failure_detector_running()) {
    // The crash below must be *detected*: restarts ride the real failure
    // path (detection -> lineage resolution -> re-homing -> replay).
    LOG_INFO("operations: rolling restart starting the failure detector");
    coordinator.StartFailureDetector();
  }
  saved_hook_ = coordinator.on_recovery_complete;
  coordinator.on_recovery_complete = [this, alive = alive_](ServerId id) {
    if (*alive) {
      OnRecoveryComplete(id);
    }
  };
  LOG_INFO("operations: rolling restart begins over %zu masters",
           cluster_->num_masters());
  StepNext();
}

void RollingRestartOrchestrator::StepNext() {
  Coordinator& coordinator = cluster_->coordinator();
  while (next_index_ < cluster_->num_masters()) {
    const size_t index = next_index_++;
    MasterServer& master = cluster_->master(index);
    if (master.crashed() || coordinator.lifecycle(master.id()) != ServerLifecycle::kActive) {
      // Draining masters are mid-evacuation (a restart would turn a planned
      // drain into an unplanned recovery); standby/decommissioned masters
      // hold nothing worth cycling; crashed ones are already being handled.
      stats_.skipped++;
      continue;
    }
    in_flight_ = master.id();
    stats_.restarts_started++;
    LOG_INFO("operations: rolling restart cycles master %u", master.id());
    master.Crash();
    return;  // OnRecoveryComplete drives the rest of this step.
  }
  // All masters cycled: restore the hook and report.
  running_ = false;
  coordinator.on_recovery_complete = saved_hook_;
  saved_hook_ = nullptr;
  LOG_INFO("operations: rolling restart complete (%llu cycled, %llu skipped)",
           static_cast<unsigned long long>(stats_.restarts_completed),
           static_cast<unsigned long long>(stats_.skipped));
  if (done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done();
  }
}

void RollingRestartOrchestrator::OnRecoveryComplete(ServerId id) {
  // Forward first: the chaos harness (or whoever installed the prior hook)
  // may be cycling other masters concurrently with our rolling restart.
  if (saved_hook_) {
    saved_hook_(id);
  }
  if (!running_ || id != in_flight_) {
    return;  // Someone else's recovery (concurrent chaos), not our step.
  }
  // Rejoin only after re-homing finished, then give the cluster a settle
  // window before the next master goes down.
  cluster_->sim().After(options_.restart_delay_ns, [this, alive = alive_, id] {
    if (!*alive || !running_) {
      return;
    }
    MasterServer* master = cluster_->coordinator().master(id);
    if (master != nullptr && master->crashed()) {
      master->Restart();
      stats_.restarts_completed++;
    }
    in_flight_ = 0;
    cluster_->sim().After(options_.settle_ns, [this, alive = alive_] {
      if (*alive && running_) {
        StepNext();
      }
    });
  });
}

}  // namespace rocksteady
