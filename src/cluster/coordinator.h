// The cluster coordinator.
//
// §2: "Each cluster has one quorum-replicated coordinator that manages
// cluster membership and table-partition-to-master mappings." It also holds
// Rocksteady's lineage dependencies (§3.4): while a migration is in flight,
// the source's recovery depends on the tail of the target's recovery log.
// The coordinator owns crash recovery orchestration (delegated to
// RecoveryManager).
//
// Control-plane operations (table creation, server registration) are direct
// method calls; data-plane-relevant operations that the paper charges RPCs
// for (client tablet-map refresh, dependency register/drop) are RPCs.
#ifndef ROCKSTEADY_SRC_CLUSTER_COORDINATOR_H_
#define ROCKSTEADY_SRC_CLUSTER_COORDINATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/rpc/rpc_system.h"
#include "src/store/tablet.h"

namespace rocksteady {

class MasterServer;
class RecoveryManager;

// Operator-facing server lifecycle (quorum-replicated, like the tablet map —
// it survives coordinator crash/restart, which is what makes a drain resume
// after an outage instead of silently forgetting it).
//
//   kStandby --------> kActive <--------> kDraining ----> kDecommissioned
//    (scale-out pool)   (normal member)    (evacuating)    (empty, delisted)
//
// kActive is the only placement-eligible state: recovery re-homing, planner
// migrations, and control-plane reassignment all refuse to land tablets on
// anything else. A draining server sheds through planner-driven evacuation
// and is decommissioned automatically the moment it owns no map range and no
// lineage dependency names it. ActivateServer() moves standby (scale-out) or
// draining (drain cancel) or decommissioned (re-commission) servers back to
// kActive.
enum class ServerLifecycle : uint8_t {
  kActive = 0,
  kStandby = 1,
  kDraining = 2,
  kDecommissioned = 3,
};

// One registered lineage dependency (§3.4).
struct MigrationDependency {
  ServerId source = 0;
  ServerId target = 0;
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;
  // Position in the *target's* log where the dependency starts: everything
  // the target logged from here on must reach the source's recovery.
  uint32_t target_log_segment = 0;
  uint32_t target_log_offset = 0;
};

// Indexlet placement for one secondary index.
struct IndexletConfig {
  std::string start_key;
  std::string end_key;  // Empty = to +infinity.
  ServerId owner = 0;
  NodeId owner_node = 0;
};

class Coordinator {
 public:
  Coordinator(Simulator* sim, RpcSystem* rpc, const CostModel* costs);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  NodeId node() const { return endpoint_->node(); }
  Simulator& sim() { return *sim_; }
  RpcSystem& rpc() { return *rpc_; }

  // --- Server directory. ---
  ServerId RegisterMaster(MasterServer* master);
  MasterServer* master(ServerId id) const;
  NodeId NodeOf(ServerId id) const;
  const std::vector<MasterServer*>& masters() const { return masters_; }
  // Alive servers other than `except` (backup placement, recovery sources).
  // Lifecycle-blind: a draining or decommissioned server still answers
  // backup reads (its frames model disk), so recovery fetch paths keep it.
  std::vector<ServerId> AliveServers(ServerId except = kInvalidServerId) const;
  // Alive AND kActive servers other than `except` — the only legal homes for
  // tablets (recovery re-homing, planner targets, reassignment).
  std::vector<ServerId> PlacementCandidates(ServerId except = kInvalidServerId) const;

  // --- Server lifecycle (drain/decommission protocol). ---
  ServerLifecycle lifecycle(ServerId id) const { return lifecycle_[id - 1]; }
  // Marks `id` kDraining: the master stops accepting tablet assignments and
  // the rebalance planner mass-evacuates its ranges. Idempotent (draining or
  // decommissioned already -> kOk). Refused (kInvalidState) when no *other*
  // placement-eligible master exists — the evacuation would have nowhere to
  // land. An empty server decommissions immediately.
  Status BeginDrain(ServerId id);
  // Moves `id` to kActive: admits a standby into placement (scale-out),
  // cancels an in-progress drain, or re-commissions a decommissioned server.
  // Idempotent.
  Status ActivateServer(ServerId id);
  // Parks a freshly registered, empty server in the standby pool (scale-out
  // setup). Refused once it owns any map range.
  Status MarkStandby(ServerId id);
  // Decommissions every draining server that owns no map range and appears
  // in no lineage dependency. Called from the ownership-change paths and the
  // detector sweep; also directly by tests.
  void MaybeCompleteDrains();
  uint64_t drains_started() const { return drains_started_; }
  uint64_t drains_completed() const { return drains_completed_; }

  // --- Tablet map. ---
  // Creates `table` spanning the whole hash space on `owner` (also installs
  // the tablet on the owning master).
  void CreateTable(TableId table, ServerId owner);
  // Metadata-only split at `split_hash` (coordinator map + owning master).
  Status SplitTablet(TableId table, KeyHash split_hash);

  // Narrowest range a checked split may create. Finer slivers are pure
  // planner churn: they are below the telemetry histogram's resolution, so
  // the planner could never target them meaningfully anyway.
  static constexpr KeyHash kMinSplitSpan = KeyHash{1} << 52;

  // Rebalancer-facing split with validation and crash-consistent mirroring:
  //  * no covering range                     -> kTableNotFound
  //  * either half would be < kMinSplitSpan  -> kInvalidState (incl. empty)
  //  * owner crashed/recovering, owner's tablet not kNormal, or a lineage
  //    dependency overlaps the range (migration in flight) -> kRetryLater
  // On success the quorum-replicated map splits immediately; the owning
  // master's mirror is applied asynchronously (it is an RPC in spirit), so a
  // coordinator crash can strand the master unsplit — Restart() runs
  // ReconcileSplits() to converge.
  Status SplitTabletChecked(TableId table, KeyHash split_hash);
  // Re-mirrors every map boundary onto the owning masters (idempotent);
  // called on Restart() so a crash between map update and master mirror
  // always converges to the map.
  void ReconcileSplits();
  uint64_t splits_performed() const { return splits_performed_; }
  uint64_t splits_refused() const { return splits_refused_; }

  // Repoints ownership of an existing tablet range. Map-only: protocol
  // callers (migration commit, recovery) sequence their own master-side
  // tablet installs *before* this call so the cross-layer audit holds.
  Status UpdateOwnership(TableId table, KeyHash start_hash, KeyHash end_hash,
                         ServerId new_owner);
  // Control-plane reassignment of an exact map range (test/bench spreads,
  // operator moves without data): installs an empty kNormal tablet on the
  // new owner first, then repoints the map, then drops the previous owner's
  // mirror — the one ordering under which the cross-layer coverage audit is
  // true at every step. Data, if any, stays behind; callers load afterwards
  // or move records themselves. Only kActive masters are legal targets.
  Status ReassignTablet(TableId table, KeyHash start_hash, KeyHash end_hash,
                        ServerId new_owner);
  std::vector<TabletConfigEntry> GetTableConfig(TableId table) const;
  ServerId OwnerOf(TableId table, KeyHash hash) const;

  struct OwnedTablet {
    TableId table = 0;
    KeyHash start_hash = 0;
    KeyHash end_hash = 0;
    ServerId owner = 0;
  };
  const std::vector<OwnedTablet>& GetAllTablets() const { return tablet_map_; }

  // --- Secondary indexes. ---
  // Declares an index partitioned at the given split keys and installs the
  // indexlets on their owners.
  void CreateIndex(TableId table, uint8_t index_id,
                   const std::vector<IndexletConfig>& indexlets);
  const std::vector<IndexletConfig>* GetIndexConfig(TableId table, uint8_t index_id) const;

  // --- Lineage dependencies (§3.4). ---
  void RegisterDependency(const MigrationDependency& dependency);
  void DropDependency(ServerId source, ServerId target, TableId table);
  std::optional<MigrationDependency> FindDependencyBySource(ServerId source) const;
  std::optional<MigrationDependency> FindDependencyByTarget(ServerId target) const;
  const std::vector<MigrationDependency>& dependencies() const { return dependencies_; }

  // --- Crash handling. ---
  // Orchestrates recovery of `crashed` (already halted + off the network):
  // resolves lineage, re-homes tablets, replays backup data. `done` fires
  // when ownership is consistent again.
  void HandleCrash(ServerId crashed, std::function<void()> done);

  // --- Coordinator crash/restart. ---
  // §2: the coordinator is quorum-replicated, so a crash costs availability
  // only — the tablet map, dependencies, and index layout all survive.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  // --- Failure detection + migration leases. ---
  // Starts a periodic kPing sweep over every master (a timed-out probe of a
  // genuinely crashed server triggers HandleCrash exactly once) plus the
  // migration lease watchdog: a dependency whose target has not heartbeated
  // within migration_lease_ns is re-driven through the lineage paths —
  // crashed endpoint -> full recovery; both alive but wedged -> abort back
  // to the source; already committed -> drop the stale dependency.
  // Opt-in: the sweep keeps a timer alive, so tests that want the event
  // queue to drain call StopFailureDetector() first.
  void StartFailureDetector();
  void StopFailureDetector() { failure_detector_running_ = false; }
  bool failure_detector_running() const { return failure_detector_running_; }

  // Fired after a detector-triggered recovery finishes; the chaos harness
  // uses it to schedule the crashed server's restart *after* re-homing (a
  // restarted-but-unrecovered master must not rejoin as an owner).
  std::function<void(ServerId)> on_recovery_complete;

  uint64_t crashes_detected() const { return crashes_detected_; }
  uint64_t stalled_migrations_aborted() const { return stalled_migrations_aborted_; }
  uint64_t stale_dependencies_dropped() const { return stale_dependencies_dropped_; }
  uint64_t budget_aborts() const { return budget_aborts_; }

  // Hook installed by the migration library: called on the target master
  // when its inbound migration must abort (source crashed). Takes (target
  // master, table).
  std::function<void(MasterServer*, TableId)> abort_inbound_migration;

  // --- Piggyback payload routing. ---
  // Control RPCs that flow periodically anyway (ping replies, migration
  // lease heartbeats) carry optional PiggybackBlobs; subsystems register a
  // handler per kind and the coordinator routes each received blob to it
  // with the originating server. Unhandled kinds are dropped silently.
  using PiggybackHandler = std::function<void(ServerId, const PiggybackBlob&)>;
  void RegisterPiggybackHandler(PiggybackKind kind, PiggybackHandler handler);
  void ClearPiggybackHandler(PiggybackKind kind);

  // Invariants: for every table, the tablet map is a *partition* of the full
  // hash space — ranges tile [0, 2^64) with no gap or overlap, so every key
  // hash has exactly one owner; owners are registered servers; lineage
  // dependencies are unique per (source, target, table) and name registered,
  // distinct servers; standby and decommissioned servers own no map range
  // and appear in no dependency. When no crash recovery is in flight, additionally
  // cross-layer: each alive owner's local tablets tile every map range it
  // owns (split ranges included) — a master serving a range the map gave
  // away, or missing a range the map assigned it, is a routing hole.
  void AuditInvariants(AuditReport* report) const;

 private:
  using LeaseKey = std::tuple<ServerId, ServerId, TableId>;  // (source, target, table).

  void HandleGetTableConfig(RpcContext context);
  void HandleRegisterDependency(RpcContext context);
  void HandleDropDependency(RpcContext context);
  void HandleMigrationHeartbeat(RpcContext context);
  void HandleAbortMigration(RpcContext context);
  void HandleBeginDrain(RpcContext context);
  void HandleActivateServer(RpcContext context);
  void HandleDrainStatus(RpcContext context);
  // True while any server (other than `except`) can legally receive tablets.
  bool AnyPlacementEligible(ServerId except) const;
  void DetectorSweep();
  void DeclareDead(ServerId id);
  void CheckLeases();
  void RoutePiggyback(ServerId from, const PiggybackBlob& blob);

  Simulator* sim_;
  RpcSystem* rpc_;
  const CostModel* costs_;
  std::unique_ptr<CoreSet> cores_;
  RpcEndpoint* endpoint_;
  std::vector<MasterServer*> masters_;  // Index = ServerId - 1.
  // Quorum-replicated like the tablet map: survives Crash()/Restart(), so a
  // drain in progress resumes after a coordinator outage.
  std::vector<ServerLifecycle> lifecycle_;  // Index = ServerId - 1.
  std::vector<OwnedTablet> tablet_map_;
  std::vector<MigrationDependency> dependencies_;
  // (table, index_id) -> indexlet layout.
  std::vector<std::tuple<TableId, uint8_t, std::vector<IndexletConfig>>> indexes_;
  std::unique_ptr<RecoveryManager> recovery_;
  bool crashed_ = false;
  bool failure_detector_running_ = false;
  std::set<ServerId> recovering_;  // Recovery in flight; don't re-declare.
  std::map<LeaseKey, Tick> leases_;  // Last heartbeat per dependency.
  // One registered handler per kind; at most a handful of kinds ever exist.
  std::vector<std::pair<PiggybackKind, PiggybackHandler>> piggyback_handlers_;
  // Recoveries in flight (HandleCrash started, done not yet fired). While
  // nonzero, ownership moves ahead of master-side tablet installs by design,
  // so the cross-layer coverage audit stands down.
  int active_recoveries_ = 0;
  uint64_t crashes_detected_ = 0;
  uint64_t stalled_migrations_aborted_ = 0;
  uint64_t stale_dependencies_dropped_ = 0;
  uint64_t budget_aborts_ = 0;  // Target-requested aborts (memory budget).
  uint64_t splits_performed_ = 0;  // Checked splits applied to the map.
  uint64_t splits_refused_ = 0;    // Checked splits rejected by validation.
  uint64_t drains_started_ = 0;    // BeginDrain transitions into kDraining.
  uint64_t drains_completed_ = 0;  // Draining servers decommissioned empty.
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_COORDINATOR_H_
