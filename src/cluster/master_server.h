// A RAMCloud storage server: master (data) + backup (replica storage) +
// dispatch/worker cores + NIC, as in Figure 1.
//
// The master registers handlers for the normal-case data path (read, write,
// remove, multiget, index ops) and the backup path. Migration handlers
// (Pull, PriorityPull, MigrateTablet, ...) are installed by the migration
// library (src/migration), which plugs into this class through
// MigrationHooks — keeping the paper's contribution in its own module, just
// as Rocksteady layers onto RAMCloud.
#ifndef ROCKSTEADY_SRC_CLUSTER_MASTER_SERVER_H_
#define ROCKSTEADY_SRC_CLUSTER_MASTER_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/backup_service.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/replica_manager.h"
#include "src/common/timeseries.h"
#include "src/index/indexlet.h"
#include "src/rpc/rpc_system.h"
#include "src/store/object_manager.h"

namespace rocksteady {

struct MasterConfig {
  // Table 1 / §4.1: "one core solely as a dispatch core ... 12 additional
  // cores as workers".
  int num_workers = 12;
  int hash_table_log2_buckets = 20;
  size_t segment_size = kDefaultSegmentSize;
  int replication_factor = 3;

  // --- Overload protection (admission control / load shedding). ---
  // Per-priority worker-queue bounds (0 = unbounded). Past its bound,
  // low-priority work is rejected with kRetryLater — migration pulls and
  // bulk re-replication back off through the senders' seeded-jitter retry
  // machinery instead of piling up. Client requests are shed only past the
  // (much larger) hard limit; by then the server is hopelessly behind and
  // queueing more would only inflate every queued request's latency.
  size_t migration_queue_bound = 64;
  size_t replication_queue_bound = 256;
  size_t client_queue_hard_limit = 1024;

  // --- Memory budget. ---
  // Bytes of log memory (full segment capacities, *including* uncommitted
  // side-log segments) this master may hold; 0 = unlimited. A migration
  // target pauses pulls at the high watermark, runs emergency cleaning, and
  // resumes below the low watermark; if cleaning cannot get under budget the
  // migration aborts gracefully along the §3.4 lineage paths.
  uint64_t memory_budget_bytes = 0;
  double memory_high_watermark = 0.90;
  double memory_low_watermark = 0.75;
};

class MasterServer {
 public:
  // Installed by the migration library on migration targets; consulted by
  // the read path when a tablet is in kMigrationTarget state.
  class MigrationHooks {
   public:
    virtual ~MigrationHooks() = default;

    // The record for (table, hash) has not arrived yet. The hook schedules
    // it (batched PriorityPull, §3.3) and returns the absolute time at
    // which the target expects to have it (the client's retry hint).
    virtual Tick OnMissingRecord(TableId table, KeyHash hash) = 0;

    // True if the source authoritatively reported the key absent.
    virtual bool IsKnownAbsent(TableId table, KeyHash hash) = 0;

    // True if this hook wants to service the read itself (synchronous
    // PriorityPull mode, §4.4); the hook then owns the reply.
    virtual bool ServiceReadSynchronously(TableId table, KeyHash hash, RpcContext* context) {
      (void)table;
      (void)hash;
      (void)context;
      return false;
    }
  };

  // `lane` places the server's events (cores, NIC, timers) on that event
  // lane under sharded execution; ignored in legacy single-queue mode.
  MasterServer(Coordinator* coordinator, const CostModel* costs, const MasterConfig& config,
               int lane = 0);

  MasterServer(const MasterServer&) = delete;
  MasterServer& operator=(const MasterServer&) = delete;

  ServerId id() const { return id_; }
  NodeId node() const { return endpoint_->node(); }
  Simulator& sim() { return *sim_; }
  // The RNG this server's event-path code must draw from: its private
  // per-node stream in lane mode (draws in this node's event order are
  // lane-invariant), the shared simulator stream otherwise.
  Random& rng() { return *rng_; }
  RpcSystem& rpc() { return coordinator_->rpc(); }
  Coordinator& coordinator() { return *coordinator_; }
  const CostModel& costs() const { return *costs_; }
  const MasterConfig& config() const { return config_; }

  CoreSet& cores() { return *cores_; }
  ObjectManager& objects() { return objects_; }
  ReplicaManager& replicas() { return *replicas_; }
  BackupService& backup() { return backup_; }
  RpcEndpoint& endpoint() { return *endpoint_; }

  void set_migration_hooks(MigrationHooks* hooks) { migration_hooks_ = hooks; }
  MigrationHooks* migration_hooks() const { return migration_hooks_; }

  // --- Layered-subsystem hooks (load telemetry, src/rebalance). ---
  // Per-op access tap, called on the worker path of every successfully
  // served read/write/remove/multiget: (table, key hash, is_write, bytes).
  std::function<void(TableId, KeyHash, bool, size_t)> on_access;
  // Builds the optional payload piggybacked on ping replies and migration
  // lease heartbeats (e.g. the rebalancer's load-telemetry frame). Unset =
  // probes reply with an empty blob, exactly the pre-telemetry wire cost.
  std::function<PiggybackBlob()> piggyback_provider;

  // Opaque per-server state slot for layered subsystems (the migration
  // library parks its per-server managers here).
  void set_extension(std::shared_ptr<void> extension) { extension_ = std::move(extension); }
  const std::shared_ptr<void>& extension() const { return extension_; }

  // --- Indexlets hosted by this server. ---
  Indexlet* AddIndexlet(TableId table, uint8_t index_id, std::string start_key,
                        std::string end_key);
  Indexlet* FindIndexlet(TableId table, uint8_t index_id, std::string_view secondary_key);

  // --- Drain (decommission protocol). ---
  // Set by the coordinator when this master enters/leaves kDraining. While
  // draining, the master refuses new inbound tablet migrations (the
  // kMigrateTablet handler checks this) — it only sheds. Mirrors the
  // coordinator's quorum-replicated lifecycle flag; Restart() re-syncs from
  // it, so a master that crashes mid-drain comes back still refusing.
  void SetDraining(bool draining) { draining_ = draining; }
  bool draining() const { return draining_; }

  // --- Crash simulation. ---
  // Halts cores and disconnects the NIC. Recovery is driven separately by
  // Coordinator::HandleCrash.
  void Crash();
  bool crashed() const { return crashed_; }
  // Rejoins after a Crash() as a fresh, empty master: in-memory state is
  // discarded (recovery re-homes it), backup frames survive like disk.
  void Restart();

  // Replicates the serialized entry at `ref` of the main log and invokes
  // `done` when durable. Shared by the write path and recovery replay.
  void ReplicateEntry(LogRef ref, std::function<void(Status)> done);

  // --- Counters (experiment bookkeeping). ---
  uint64_t reads_served() const { return reads_served_; }
  uint64_t writes_served() const { return writes_served_; }

  // --- Overload protection. ---
  // Shed/reject counters (bench summaries report these).
  uint64_t client_sheds() const { return client_sheds_; }
  uint64_t replication_rejects() const { return replication_rejects_; }
  uint64_t migration_pull_rejects() const { return migration_pull_rejects_; }
  void CountMigrationPullReject() { migration_pull_rejects_++; }

  // Recent windowed p99.9 client service latency — the tail-latency signal
  // piggybacked on pull replies for adaptive pacing.
  Tick RecentClientP999() {
    return static_cast<Tick>(client_latency_.RecentPercentile(sim().now(), 0.999));
  }
  // Fills the piggybacked source-load header on a pull reply.
  void FillLoadHeader(SourceLoadHeader* load);

  // Log memory held (full segment capacities, incl. uncommitted side-log
  // segments) — what the memory budget is charged against.
  uint64_t memory_in_use() const { return objects_.log().allocated_bytes(); }
  // Runtime-adjustable (an operator resizing a master's allotment); the
  // migration manager re-reads it at every watermark check.
  void set_memory_budget(uint64_t bytes) { config_.memory_budget_bytes = bytes; }

 private:
  void RegisterHandlers();
  void HandleRead(RpcContext context);
  void HandleWrite(RpcContext context);
  void HandleRemove(RpcContext context);
  void HandleMultiGet(RpcContext context);
  void HandleMultiGetHash(RpcContext context);
  void HandleIndexLookup(RpcContext context);
  void HandleIndexInsert(RpcContext context);
  void HandleBackupWrite(RpcContext context);
  void HandleGetRecoveryData(RpcContext context);

  // Load shedding: past the client hard limit, replies kRetryLater (with a
  // backoff hint) instead of queueing. Returns true if the request was shed.
  template <typename Response>
  bool ShedIfOverloaded(RpcContext* context) {
    if (!cores_->QueueFull(Priority::kClient)) {
      return false;
    }
    client_sheds_++;
    auto response = std::make_unique<Response>();
    response->status = Status::kRetryLater;
    context->reply(std::move(response));
    return true;
  }
  // Records one client-visible op completion into the latency window.
  void RecordClientLatency(Tick arrival) {
    client_latency_.Record(sim().now(), sim().now() - arrival);
  }
  // Feeds the telemetry access tap, if installed.
  void RecordAccess(TableId table, KeyHash hash, bool is_write, size_t bytes) {
    if (on_access) {
      on_access(table, hash, is_write, bytes);
    }
  }

  // Shared read-path policy: checks tablet state for (table, hash).
  // Returns kOk to proceed locally, or the status to reply with
  // (kWrongServer / kRetryLater / kObjectNotFound / kTableNotFound);
  // `retry_after` is set for kRetryLater.
  Status CheckReadable(TableId table, KeyHash hash, Tick* retry_after);

  Coordinator* coordinator_;
  const CostModel* costs_;
  MasterConfig config_;
  Simulator* sim_ = nullptr;  // This server's lane simulator.
  Random* rng_ = nullptr;     // This server's RNG stream (see rng()).
  ServerId id_ = kInvalidServerId;
  std::unique_ptr<CoreSet> cores_;
  RpcEndpoint* endpoint_ = nullptr;
  ObjectManager objects_;
  std::unique_ptr<ReplicaManager> replicas_;
  BackupService backup_;
  MigrationHooks* migration_hooks_ = nullptr;
  std::shared_ptr<void> extension_;
  std::vector<std::unique_ptr<Indexlet>> indexlets_;
  bool crashed_ = false;
  bool draining_ = false;
  uint64_t reads_served_ = 0;
  uint64_t writes_served_ = 0;
  SlidingLatencyTracker client_latency_;
  uint64_t client_sheds_ = 0;
  uint64_t replication_rejects_ = 0;
  uint64_t migration_pull_rejects_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_MASTER_SERVER_H_
