// A RAMCloud storage server: master (data) + backup (replica storage) +
// dispatch/worker cores + NIC, as in Figure 1.
//
// The master registers handlers for the normal-case data path (read, write,
// remove, multiget, index ops) and the backup path. Migration handlers
// (Pull, PriorityPull, MigrateTablet, ...) are installed by the migration
// library (src/migration), which plugs into this class through
// MigrationHooks — keeping the paper's contribution in its own module, just
// as Rocksteady layers onto RAMCloud.
#ifndef ROCKSTEADY_SRC_CLUSTER_MASTER_SERVER_H_
#define ROCKSTEADY_SRC_CLUSTER_MASTER_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/backup_service.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/replica_manager.h"
#include "src/index/indexlet.h"
#include "src/rpc/rpc_system.h"
#include "src/store/object_manager.h"

namespace rocksteady {

struct MasterConfig {
  // Table 1 / §4.1: "one core solely as a dispatch core ... 12 additional
  // cores as workers".
  int num_workers = 12;
  int hash_table_log2_buckets = 20;
  size_t segment_size = kDefaultSegmentSize;
  int replication_factor = 3;
};

class MasterServer {
 public:
  // Installed by the migration library on migration targets; consulted by
  // the read path when a tablet is in kMigrationTarget state.
  class MigrationHooks {
   public:
    virtual ~MigrationHooks() = default;

    // The record for (table, hash) has not arrived yet. The hook schedules
    // it (batched PriorityPull, §3.3) and returns the absolute time at
    // which the target expects to have it (the client's retry hint).
    virtual Tick OnMissingRecord(TableId table, KeyHash hash) = 0;

    // True if the source authoritatively reported the key absent.
    virtual bool IsKnownAbsent(TableId table, KeyHash hash) = 0;

    // True if this hook wants to service the read itself (synchronous
    // PriorityPull mode, §4.4); the hook then owns the reply.
    virtual bool ServiceReadSynchronously(TableId table, KeyHash hash, RpcContext* context) {
      (void)table;
      (void)hash;
      (void)context;
      return false;
    }
  };

  MasterServer(Coordinator* coordinator, const CostModel* costs, const MasterConfig& config);

  MasterServer(const MasterServer&) = delete;
  MasterServer& operator=(const MasterServer&) = delete;

  ServerId id() const { return id_; }
  NodeId node() const { return endpoint_->node(); }
  Simulator& sim() { return coordinator_->sim(); }
  RpcSystem& rpc() { return coordinator_->rpc(); }
  Coordinator& coordinator() { return *coordinator_; }
  const CostModel& costs() const { return *costs_; }
  const MasterConfig& config() const { return config_; }

  CoreSet& cores() { return *cores_; }
  ObjectManager& objects() { return objects_; }
  ReplicaManager& replicas() { return *replicas_; }
  BackupService& backup() { return backup_; }
  RpcEndpoint& endpoint() { return *endpoint_; }

  void set_migration_hooks(MigrationHooks* hooks) { migration_hooks_ = hooks; }
  MigrationHooks* migration_hooks() const { return migration_hooks_; }

  // Opaque per-server state slot for layered subsystems (the migration
  // library parks its per-server managers here).
  void set_extension(std::shared_ptr<void> extension) { extension_ = std::move(extension); }
  const std::shared_ptr<void>& extension() const { return extension_; }

  // --- Indexlets hosted by this server. ---
  Indexlet* AddIndexlet(TableId table, uint8_t index_id, std::string start_key,
                        std::string end_key);
  Indexlet* FindIndexlet(TableId table, uint8_t index_id, std::string_view secondary_key);

  // --- Crash simulation. ---
  // Halts cores and disconnects the NIC. Recovery is driven separately by
  // Coordinator::HandleCrash.
  void Crash();
  bool crashed() const { return crashed_; }
  // Rejoins after a Crash() as a fresh, empty master: in-memory state is
  // discarded (recovery re-homes it), backup frames survive like disk.
  void Restart();

  // Replicates the serialized entry at `ref` of the main log and invokes
  // `done` when durable. Shared by the write path and recovery replay.
  void ReplicateEntry(LogRef ref, std::function<void(Status)> done);

  // --- Counters (experiment bookkeeping). ---
  uint64_t reads_served() const { return reads_served_; }
  uint64_t writes_served() const { return writes_served_; }

 private:
  void RegisterHandlers();
  void HandleRead(RpcContext context);
  void HandleWrite(RpcContext context);
  void HandleRemove(RpcContext context);
  void HandleMultiGet(RpcContext context);
  void HandleMultiGetHash(RpcContext context);
  void HandleIndexLookup(RpcContext context);
  void HandleIndexInsert(RpcContext context);
  void HandleBackupWrite(RpcContext context);
  void HandleGetRecoveryData(RpcContext context);

  // Shared read-path policy: checks tablet state for (table, hash).
  // Returns kOk to proceed locally, or the status to reply with
  // (kWrongServer / kRetryLater / kObjectNotFound / kTableNotFound);
  // `retry_after` is set for kRetryLater.
  Status CheckReadable(TableId table, KeyHash hash, Tick* retry_after);

  Coordinator* coordinator_;
  const CostModel* costs_;
  MasterConfig config_;
  ServerId id_ = kInvalidServerId;
  std::unique_ptr<CoreSet> cores_;
  RpcEndpoint* endpoint_ = nullptr;
  ObjectManager objects_;
  std::unique_ptr<ReplicaManager> replicas_;
  BackupService backup_;
  MigrationHooks* migration_hooks_ = nullptr;
  std::shared_ptr<void> extension_;
  std::vector<std::unique_ptr<Indexlet>> indexlets_;
  bool crashed_ = false;
  uint64_t reads_served_ = 0;
  uint64_t writes_served_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_MASTER_SERVER_H_
