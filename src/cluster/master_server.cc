#include "src/cluster/master_server.h"

#include <cassert>

#include "src/common/annotations.h"
#include "src/common/logging.h"

namespace rocksteady {

MasterServer::MasterServer(Coordinator* coordinator, const CostModel* costs,
                           const MasterConfig& config, int lane)
    : coordinator_(coordinator),
      costs_(costs),
      config_(config),
      objects_(ObjectManagerOptions{config.hash_table_log2_buckets, config.segment_size}),
      client_latency_(costs->latency_window_ns, costs->latency_window_buckets) {
  sim_ = coordinator_->rpc().SimOfLane(lane);
  cores_ = std::make_unique<CoreSet>(sim_, config.num_workers);
  cores_->SetQueueBound(Priority::kClient, config.client_queue_hard_limit);
  cores_->SetQueueBound(Priority::kReplication, config.replication_queue_bound);
  cores_->SetQueueBound(Priority::kMigration, config.migration_queue_bound);
  endpoint_ = coordinator_->rpc().CreateEndpoint(cores_.get(), lane);
  rng_ = &coordinator_->rpc().CallerRng(endpoint_->node());
  id_ = coordinator_->RegisterMaster(this);
  replicas_ = std::make_unique<ReplicaManager>(&coordinator_->rpc(), id_, endpoint_->node());
  RegisterHandlers();
}

void MasterServer::RegisterHandlers() {
  endpoint_->Register(Opcode::kRead,
                      ROCKSTEADY_IDEMPOTENT("pure read")
                      [this](RpcContext c) { HandleRead(std::move(c)); });
  endpoint_->Register(Opcode::kWrite,
                      ROCKSTEADY_IDEMPOTENT("re-applying the same value is last-writer-wins "
                                            "on identical bytes; conditional writes fail the "
                                            "version precondition instead of double-applying")
                      [this](RpcContext c) { HandleWrite(std::move(c)); });
  endpoint_->Register(Opcode::kRemove,
                      ROCKSTEADY_IDEMPOTENT("removing an absent key reports kObjectNotFound "
                                            "without touching state")
                      [this](RpcContext c) { HandleRemove(std::move(c)); });
  endpoint_->Register(Opcode::kMultiGet,
                      ROCKSTEADY_IDEMPOTENT("pure read")
                      [this](RpcContext c) { HandleMultiGet(std::move(c)); });
  endpoint_->Register(Opcode::kMultiGetHash,
                      ROCKSTEADY_IDEMPOTENT("pure read")
                      [this](RpcContext c) { HandleMultiGetHash(std::move(c)); });
  endpoint_->Register(Opcode::kIndexLookup,
                      ROCKSTEADY_IDEMPOTENT("pure read")
                      [this](RpcContext c) { HandleIndexLookup(std::move(c)); });
  endpoint_->Register(Opcode::kIndexInsert,
                      ROCKSTEADY_IDEMPOTENT("re-inserting an existing (key, primary) index "
                                            "entry is a set-insert no-op")
                      [this](RpcContext c) { HandleIndexInsert(std::move(c)); });
  endpoint_->Register(Opcode::kBackupWrite,
                      ROCKSTEADY_IDEMPOTENT("segment-addressed append: re-execution rewrites "
                                            "the same bytes at the same segment offset")
                      [this](RpcContext c) { HandleBackupWrite(std::move(c)); });
  endpoint_->Register(Opcode::kGetRecoveryData,
                      ROCKSTEADY_IDEMPOTENT("pure read of sealed segments")
                      [this](RpcContext c) { HandleGetRecoveryData(std::move(c)); });
  // Failure-detector probe: answered straight off the dispatch core — a
  // halted server simply never replies and the probe times out. The reply
  // carries the optional piggyback payload (load telemetry) so the existing
  // probe cadence doubles as the telemetry channel.
  endpoint_->Register(Opcode::kPing,
                      ROCKSTEADY_IDEMPOTENT("pure read (liveness + telemetry snapshot)")
                      [this](RpcContext c) {
    auto response = std::make_unique<PingResponse>();
    response->server = id_;
    if (piggyback_provider) {
      response->piggyback = piggyback_provider();
    }
    c.reply(std::move(response));
  });
}

Status MasterServer::CheckReadable(TableId table, KeyHash hash, Tick* retry_after) {
  const Tablet* tablet = objects_.tablets().Find(table, hash);
  if (tablet == nullptr || tablet->state == TabletState::kMigrationSource) {
    // Not owned here (anymore): the client must refresh its tablet map.
    return Status::kWrongServer;
  }
  if (tablet->state == TabletState::kRecovering) {
    *retry_after = sim().now() + costs_->recovering_retry_hint_ns;
    return Status::kRetryLater;
  }
  if (tablet->state == TabletState::kMigrationTarget &&
      !objects_.hash_table().Lookup(hash).valid()) {
    if (migration_hooks_ == nullptr) {
      return Status::kObjectNotFound;
    }
    if (migration_hooks_->IsKnownAbsent(table, hash)) {
      return Status::kObjectNotFound;
    }
    *retry_after = migration_hooks_->OnMissingRecord(table, hash);
    return Status::kRetryLater;
  }
  return Status::kOk;
}

void MasterServer::FillLoadHeader(SourceLoadHeader* load) {
  load->valid = true;
  load->client_queue_depth = static_cast<uint32_t>(cores_->QueuedTasks(Priority::kClient));
  load->dispatch_backlog_ns = cores_->DispatchBacklog();
  load->recent_p999_ns = RecentClientP999();
}

void MasterServer::HandleRead(RpcContext context) {
  if (ShedIfOverloaded<ReadResponse>(&context)) {
    return;
  }
  auto& request = context.As<ReadRequest>();

  // Synchronous-PriorityPull mode (§4.4 comparison): the hook takes over
  // reads of not-yet-arrived records and holds a worker while it fetches.
  if (migration_hooks_ != nullptr) {
    const Tablet* tablet = objects_.tablets().Find(request.table, request.hash);
    if (tablet != nullptr && tablet->state == TabletState::kMigrationTarget &&
        !objects_.hash_table().Lookup(request.hash).valid() &&
        !migration_hooks_->IsKnownAbsent(request.table, request.hash) &&
        migration_hooks_->ServiceReadSynchronously(request.table, request.hash, &context)) {
      return;  // The hook owns the reply.
    }
  }

  // The response is built directly into the object that goes on the wire:
  // the work closure holds a raw pointer (plus its own request reference),
  // the done closure owns the response and the reply — no shared context,
  // no response copy. Both closures fit their inline budgets.
  const Tick arrival = sim().now();
  auto response = std::make_unique<ReadResponse>();
  ReadResponse* resp = response.get();
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  cores_->EnqueueWorker(
      {Priority::kClient,
       [this, request_ref, resp] {
         auto& req = static_cast<ReadRequest&>(*request_ref);
         Tick retry_after = 0;
         resp->status = CheckReadable(req.table, req.hash, &retry_after);
         resp->retry_after = retry_after;
         size_t bytes = 0;
         if (resp->status == Status::kOk) {
           auto read = objects_.Read(req.table, req.key, req.hash);
           if (read.ok()) {
             resp->value.assign(read->value);
             resp->version = read->version;
             bytes = read->value.size();
             reads_served_++;
             RecordAccess(req.table, req.hash, /*is_write=*/false, bytes);
           } else {
             resp->status = read.status();
           }
         }
         return costs_->ReadCost(bytes);
       },
       [this, reply = std::move(context.reply), response = std::move(response),
        arrival]() mutable {
         RecordClientLatency(arrival);
         reply(std::move(response));
       }});
}

void MasterServer::HandleWrite(RpcContext context) {
  if (ShedIfOverloaded<WriteResponse>(&context)) {
    return;
  }
  // One shared state object replaces the separate shared context, shared
  // response, and shared LogRef (and the response copies at reply time).
  // Shared (not unique) because the replication continuation below passes
  // through ReplicaManager's copyable std::function plumbing.
  struct WriteOp {
    IntrusivePtr<RpcRequest> request;
    ReplyFn reply;
    std::unique_ptr<WriteResponse> response;
    LogRef ref;
    Tick arrival = 0;
  };
  auto op = std::make_shared<WriteOp>();
  op->request = std::move(context.request);
  op->reply = std::move(context.reply);
  op->response = std::make_unique<WriteResponse>();
  op->arrival = sim().now();
  WriteOp* p = op.get();
  cores_->EnqueueWorker(
      {Priority::kClient,
       [this, p] {
         auto& req = static_cast<WriteRequest&>(*p->request);
         WriteResponse* response = p->response.get();
         const Tablet* tablet = objects_.tablets().Find(req.table, req.hash);
         if (tablet == nullptr || tablet->state == TabletState::kMigrationSource) {
           response->status = Status::kWrongServer;
           return Tick{200};
         }
         if (tablet->state == TabletState::kRecovering) {
           // Replay of the crashed owner's log is still applying entries
           // whose versions outrank anything this master's counter would
           // assign; accepting a write now hands it a version the replay
           // can silently clobber. Bounce until the tablet opens.
           response->status = Status::kRetryLater;
           response->retry_after = sim().now() + costs_->recovering_retry_hint_ns;
           return Tick{200};
         }
         auto version = objects_.Write(req.table, req.key, req.hash, req.value, &p->ref);
         if (!version.ok()) {
           response->status = version.status();
           return Tick{500};
         }
         response->version = *version;
         writes_served_++;
         RecordAccess(req.table, req.hash, /*is_write=*/true, req.value.size());
         size_t entry_length = 0;
         const uint8_t* entry_data = nullptr;
         objects_.log().RawEntry(p->ref, &entry_data, &entry_length);
         // Worker cost covers the append plus posting replication RPCs.
         return costs_->WriteCost(req.value.size()) + costs_->ReplicationSrcCost(entry_length);
       },
       [this, op] {
         auto& req = static_cast<WriteRequest&>(*op->request);
         if (op->response->status != Status::kOk) {
           RecordClientLatency(op->arrival);
           op->reply(std::move(op->response));
           return;
         }
         // Secondary-index maintenance: fire-and-forget to the indexlet
         // owner (population-time path; Figure 4's hot path is reads).
         if (!req.secondary_key.empty()) {
           const auto* config = coordinator_->GetIndexConfig(req.table, 1);
           if (config != nullptr) {
             for (const auto& indexlet : *config) {
               if (req.secondary_key >= indexlet.start_key &&
                   (indexlet.end_key.empty() || req.secondary_key < indexlet.end_key)) {
                 auto insert = std::make_unique<IndexInsertRequest>();
                 insert->table = req.table;
                 insert->index_id = 1;
                 insert->secondary_key = req.secondary_key;
                 insert->primary_hash = req.hash;
                 rpc().Call(node(), indexlet.owner_node, std::move(insert),
                            [](Status, std::unique_ptr<RpcResponse>) {});
                 break;
               }
             }
           }
         }
         // Durable write: ack only after replication (§2: ~15 us writes).
         ReplicateEntry(op->ref, [this, op](Status status) {
           op->response->status = status;
           RecordClientLatency(op->arrival);
           op->reply(std::move(op->response));
         });
       }});
}

void MasterServer::ReplicateEntry(LogRef ref, std::function<void(Status)> done) {
  const uint8_t* data = nullptr;
  size_t length = 0;
  if (!objects_.log().RawEntry(ref, &data, &length)) {
    done(Status::kCorruptData);
    return;
  }
  replicas_->Replicate(ref.segment_id(), ref.offset(), data, length, std::move(done));
}

void MasterServer::HandleRemove(RpcContext context) {
  if (ShedIfOverloaded<RemoveResponse>(&context)) {
    return;
  }
  // Same shared single-state-object shape as HandleWrite (the replication
  // continuation needs a copyable handle).
  struct RemoveOp {
    IntrusivePtr<RpcRequest> request;
    ReplyFn reply;
    std::unique_ptr<RemoveResponse> response;
    LogRef ref;
    Tick arrival = 0;
  };
  auto op = std::make_shared<RemoveOp>();
  op->request = std::move(context.request);
  op->reply = std::move(context.reply);
  op->response = std::make_unique<RemoveResponse>();
  op->arrival = sim().now();
  RemoveOp* p = op.get();
  cores_->EnqueueWorker(
      {Priority::kClient,
       [this, p] {
         auto& req = static_cast<RemoveRequest&>(*p->request);
         RemoveResponse* response = p->response.get();
         const Tablet* tablet = objects_.tablets().Find(req.table, req.hash);
         if (tablet == nullptr || tablet->state == TabletState::kMigrationSource) {
           response->status = Status::kWrongServer;
           return Tick{200};
         }
         if (tablet->state == TabletState::kRecovering) {
           // Same version-clobber hazard as HandleWrite: the tombstone's
           // version must outrank the replayed log or the delete undoes.
           response->status = Status::kRetryLater;
           response->retry_after = sim().now() + costs_->recovering_retry_hint_ns;
           return Tick{200};
         }
         // On a migration target, deletes of not-yet-arrived records still
         // write a (referenced) tombstone so late-arriving older copies
         // cannot resurrect the key.
         const bool tombstone_if_missing = tablet->state == TabletState::kMigrationTarget;
         auto version =
             objects_.Remove(req.table, req.key, req.hash, &p->ref, tombstone_if_missing);
         if (!version.ok()) {
           response->status = version.status();
         } else {
           response->version = *version;
           RecordAccess(req.table, req.hash, /*is_write=*/true, 0);
         }
         return costs_->WriteCost(0);
       },
       [this, op] {
         if (op->response->status != Status::kOk) {
           RecordClientLatency(op->arrival);
           op->reply(std::move(op->response));
           return;
         }
         // The tombstone must be durable before the delete is acked, or
         // recovery would resurrect the object from the backups.
         ReplicateEntry(op->ref, [this, op](Status status) {
           op->response->status = status;
           RecordClientLatency(op->arrival);
           op->reply(std::move(op->response));
         });
       }});
}

void MasterServer::HandleMultiGet(RpcContext context) {
  if (ShedIfOverloaded<MultiGetResponse>(&context)) {
    return;
  }
  const Tick arrival = sim().now();
  auto response = std::make_unique<MultiGetResponse>();
  MultiGetResponse* resp = response.get();
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  cores_->EnqueueWorker(
      {Priority::kClient,
       [this, request_ref, resp] {
         MultiGetResponse* response = resp;
         auto& req = static_cast<MultiGetRequest&>(*request_ref);
         size_t bytes = 0;
         for (size_t i = 0; i < req.keys.size(); i++) {
           Tick retry_after = 0;
           Status status = CheckReadable(req.table, req.hashes[i], &retry_after);
           std::string value;
           if (status == Status::kOk) {
             auto read = objects_.Read(req.table, req.keys[i], req.hashes[i]);
             if (read.ok()) {
               value.assign(read->value);
               bytes += value.size();
               reads_served_++;
               RecordAccess(req.table, req.hashes[i], /*is_write=*/false, value.size());
             } else {
               status = read.status();
             }
           } else if (status == Status::kRetryLater) {
             response->retry_after = std::max(response->retry_after, retry_after);
           }
           response->statuses.push_back(status);
           response->values.push_back(std::move(value));
           if (status != Status::kOk && response->status == Status::kOk) {
             response->status = status;
           }
         }
         const size_t n = req.keys.size();
         return costs_->ReadCost(bytes) +
                costs_->multiget_per_key_ns * static_cast<Tick>(n > 0 ? n - 1 : 0);
       },
       [this, reply = std::move(context.reply), response = std::move(response),
        arrival]() mutable {
         RecordClientLatency(arrival);
         reply(std::move(response));
       }});
}

void MasterServer::HandleMultiGetHash(RpcContext context) {
  if (ShedIfOverloaded<MultiGetHashResponse>(&context)) {
    return;
  }
  const Tick arrival = sim().now();
  auto response = std::make_unique<MultiGetHashResponse>();
  MultiGetHashResponse* resp = response.get();
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  cores_->EnqueueWorker(
      {Priority::kClient,
       [this, request_ref, resp] {
         MultiGetHashResponse* response = resp;
         auto& req = static_cast<MultiGetHashRequest&>(*request_ref);
         size_t bytes = 0;
         for (const KeyHash hash : req.hashes) {
           Tick retry_after = 0;
           Status status = CheckReadable(req.table, hash, &retry_after);
           std::string value;
           if (status == Status::kOk) {
             auto read = objects_.ReadByHash(req.table, hash);
             if (read.ok()) {
               value.assign(read->value);
               bytes += value.size();
               reads_served_++;
               RecordAccess(req.table, hash, /*is_write=*/false, value.size());
             } else {
               status = read.status();
             }
           } else if (status == Status::kRetryLater) {
             response->retry_after = std::max(response->retry_after, retry_after);
           }
           response->statuses.push_back(status);
           response->values.push_back(std::move(value));
           if (status != Status::kOk && response->status == Status::kOk) {
             response->status = status;
           }
         }
         const size_t n = req.hashes.size();
         return costs_->ReadCost(bytes) +
                costs_->multiget_per_key_ns * static_cast<Tick>(n > 0 ? n - 1 : 0);
       },
       [this, reply = std::move(context.reply), response = std::move(response),
        arrival]() mutable {
         RecordClientLatency(arrival);
         reply(std::move(response));
       }});
}

Indexlet* MasterServer::AddIndexlet(TableId table, uint8_t index_id, std::string start_key,
                                    std::string end_key) {
  indexlets_.push_back(
      std::make_unique<Indexlet>(table, index_id, std::move(start_key), std::move(end_key)));
  return indexlets_.back().get();
}

Indexlet* MasterServer::FindIndexlet(TableId table, uint8_t index_id,
                                     std::string_view secondary_key) {
  for (const auto& indexlet : indexlets_) {
    if (indexlet->table() == table && indexlet->index_id() == index_id &&
        indexlet->ContainsKey(secondary_key)) {
      return indexlet.get();
    }
  }
  return nullptr;
}

void MasterServer::HandleIndexLookup(RpcContext context) {
  auto response = std::make_unique<IndexLookupResponse>();
  IndexLookupResponse* resp = response.get();
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  cores_->EnqueueWorker(
      {Priority::kClient,
       [this, request_ref, resp] {
         auto& req = static_cast<IndexLookupRequest&>(*request_ref);
         Indexlet* indexlet = FindIndexlet(req.table, req.index_id, req.start_key);
         if (indexlet == nullptr) {
           resp->status = Status::kWrongServer;
           return Tick{300};
         }
         resp->hashes = indexlet->Scan(req.start_key, req.count);
         return costs_->index_lookup_ns +
                costs_->index_per_result_ns * static_cast<Tick>(resp->hashes.size());
       },
       [reply = std::move(context.reply), response = std::move(response)]() mutable {
         reply(std::move(response));
       }});
}

void MasterServer::HandleIndexInsert(RpcContext context) {
  auto response = std::make_unique<StatusResponse>();
  StatusResponse* resp = response.get();
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  cores_->EnqueueWorker(
      {Priority::kClient,
       [this, request_ref, resp] {
         auto& req = static_cast<IndexInsertRequest&>(*request_ref);
         Indexlet* indexlet = FindIndexlet(req.table, req.index_id, req.secondary_key);
         if (indexlet == nullptr) {
           resp->status = Status::kWrongServer;
         } else {
           indexlet->Insert(req.secondary_key, req.primary_hash);
         }
         return costs_->index_lookup_ns;
       },
       [reply = std::move(context.reply), response = std::move(response)]() mutable {
         reply(std::move(response));
       }});
}

void MasterServer::HandleBackupWrite(RpcContext context) {
  const bool bulk = context.As<BackupWriteRequest>().bulk;
  // Admission control: past the queue bound, reject instead of queueing —
  // the ReplicaManager re-issues with seeded backoff (backup writes are
  // idempotent), so durability is preserved while the backlog drains.
  if (cores_->QueueFull(bulk ? Priority::kMigration : Priority::kReplication)) {
    replication_rejects_++;
    auto response = std::make_unique<StatusResponse>();
    response->status = Status::kRetryLater;
    context.reply(std::move(response));
    return;
  }
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  cores_->EnqueueWorker(
      {bulk ? Priority::kMigration : Priority::kReplication,
       [this, request_ref] {
         auto& req = static_cast<BackupWriteRequest&>(*request_ref);
         backup_.Write(req.master, req.segment_id, req.offset, req.data.data(), req.data.size(),
                       req.seal);
         return costs_->BackupWriteCost(req.data.size());
       },
       [reply = std::move(context.reply)]() mutable {
         reply(std::make_unique<StatusResponse>());
       }});
}

void MasterServer::HandleGetRecoveryData(RpcContext context) {
  auto response = std::make_unique<GetRecoveryDataResponse>();
  GetRecoveryDataResponse* resp = response.get();
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  cores_->EnqueueWorker(
      {Priority::kReplication,
       [this, request_ref, resp] {
         auto& req = static_cast<GetRecoveryDataRequest&>(*request_ref);
         resp->segments = backup_.GetRecoveryData(req.crashed_master, req.min_segment_id);
         size_t bytes = 0;
         for (const auto& segment : resp->segments) {
           bytes += segment.data.size();
         }
         return costs_->BackupWriteCost(bytes);
       },
       // The response is moved (not copied): recovery segments can be large.
       [reply = std::move(context.reply), response = std::move(response)]() mutable {
         reply(std::move(response));
       }});
}

void MasterServer::Crash() {
  crashed_ = true;
  cores_->Halt();
  rpc().net()->SetNodeDown(node(), true);
}

void MasterServer::Restart() {
  if (!crashed_) {
    return;
  }
  // A restarted process comes back with an empty DRAM log and hash table:
  // whatever it owned has been (or is being) re-homed by recovery, so it
  // rejoins as a fresh, tablet-less member and must not serve stale data to
  // clients with stale tablet maps. Its BackupService frames model disk and
  // survive, so other masters' logs are still recoverable from here.
  const std::vector<Tablet> owned = objects_.tablets().tablets();
  for (const auto& tablet : owned) {
    objects_.DropTabletEntries(tablet.table_id, tablet.start_hash, tablet.end_hash);
    objects_.tablets().Remove(tablet.table_id, tablet.start_hash, tablet.end_hash);
  }
  crashed_ = false;
  cores_->Restart();
  rpc().net()->SetNodeDown(node(), false);
  // Re-sync the drain flag from the coordinator's quorum-replicated
  // lifecycle table: a master that crashed mid-drain rejoins still refusing
  // new tablet assignments, so the drain converges instead of resetting.
  draining_ = coordinator_->lifecycle(id_) == ServerLifecycle::kDraining;
}

}  // namespace rocksteady
