#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

namespace rocksteady {

namespace {

std::unique_ptr<LaneSet> MakeLanes(const ClusterConfig& config) {
  if (config.lanes <= 0) {
    return nullptr;
  }
  LaneSet::Config lane_config;
  lane_config.lanes = config.lanes;
  lane_config.threads = config.lane_threads;
  // Conservative safe horizon: the minimum cross-lane delivery latency.
  // Every Network::Send charges at least net_per_message_ns of
  // serialization plus propagation, so no in-window event can make another
  // lane's event land inside the window.
  lane_config.lookahead = config.costs.net_per_message_ns + config.costs.net_propagation_ns;
  lane_config.seed = config.seed;
  return std::make_unique<LaneSet>(lane_config);
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), lanes_(MakeLanes(config)), sim_(config.seed),
      net_(RootSim(), &config_.costs), rpc_(RootSim(), &net_, &config_.costs) {
  if (lanes_ != nullptr) {
    net_.SetLanes(lanes_.get());
    rpc_.SetLanes(lanes_.get());
  }
  const int lanes = lanes_ != nullptr ? lanes_->lanes() : 1;
  // The coordinator lives on lane 0; servers and clients round-robin across
  // lanes so the paper-shape cluster (24 servers) spreads evenly.
  coordinator_ = std::make_unique<Coordinator>(RootSim(), &rpc_, &config_.costs);
  for (int i = 0; i < config_.num_masters; i++) {
    masters_.push_back(std::make_unique<MasterServer>(coordinator_.get(), &config_.costs,
                                                      config_.master, i % lanes));
  }
  // Backup placement: master i replicates to the next R servers (mod N),
  // never itself. With fewer than R+1 servers, replication degrades to the
  // servers available (single-master unit tests run unreplicated).
  for (int i = 0; i < config_.num_masters; i++) {
    std::vector<NodeId> backups;
    for (int r = 1; r <= config_.master.replication_factor && r < config_.num_masters; r++) {
      backups.push_back(masters_[(i + r) % config_.num_masters]->node());
    }
    masters_[i]->replicas().SetBackups(std::move(backups));
  }
  for (int i = 0; i < config_.num_clients; i++) {
    clients_.push_back(
        std::make_unique<RamCloudClient>(coordinator_.get(), &config_.costs, i % lanes));
  }
}

size_t Cluster::Run() { return lanes_ != nullptr ? lanes_->Run() : sim_.Run(); }

size_t Cluster::RunUntil(Tick t) {
  return lanes_ != nullptr ? lanes_->RunUntil(t) : sim_.RunUntil(t);
}

void Cluster::AtSafePoint(Tick t, std::function<void()> fn) {
  if (lanes_ != nullptr) {
    lanes_->AtSafePoint(t, std::move(fn));
    return;
  }
  sim_.At(t, [fn = std::move(fn)] { fn(); });
}

void Cluster::CreateTable(TableId table, size_t master_index) {
  coordinator_->CreateTable(table, masters_.at(master_index)->id());
}

std::string Cluster::MakeKey(uint64_t id, size_t key_length) {
  std::string key;
  MakeKeyInto(id, key_length, &key);
  return key;
}

void Cluster::MakeKeyInto(uint64_t id, size_t key_length, std::string* out) {
  // Byte-for-byte the snprintf("user%0*llu") this hand-rolled formatter
  // replaced: "user", the id zero-padded to (key_length - 4) digits (wider
  // if the id needs it), then '0'-filled / truncated to key_length. The
  // printf machinery was a measurable per-op cost in the workload path.
  const size_t min_digits = key_length > 4 ? key_length - 4 : 1;
  char digits[20];
  size_t n = 0;
  uint64_t v = id;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  const size_t width = std::max(min_digits, n);
  out->resize(4 + width);
  char* p = out->data();
  std::memcpy(p, "user", 4);
  std::memset(p + 4, '0', width - n);
  for (size_t i = 0; i < n; i++) {
    p[4 + width - n + i] = digits[n - 1 - i];
  }
  out->resize(key_length, '0');
}

void Cluster::LoadTable(TableId table, uint64_t num_records, size_t key_length,
                        size_t value_length) {
  const std::string value(value_length, 'v');
  for (uint64_t i = 0; i < num_records; i++) {
    const std::string key = MakeKey(i, key_length);
    const KeyHash hash = HashKey(table, key);
    const ServerId owner = coordinator_->OwnerOf(table, hash);
    assert(owner != kInvalidServerId);
    coordinator_->master(owner)->objects().Write(table, key, hash, value);
  }
  for (size_t i = 0; i < masters_.size(); i++) {
    SeedReplicas(i);
  }
}

void Cluster::SeedReplicas(size_t master_index) {
  MasterServer& owner = *masters_.at(master_index);
  for (const NodeId backup_node : owner.replicas().backups()) {
    // Find the backup server by node id.
    for (const auto& server : masters_) {
      if (server->node() == backup_node) {
        for (const auto& segment : owner.objects().log().segments()) {
          server->backup().Write(owner.id(), segment->id(), 0, segment->data(), segment->used(),
                                 segment->sealed());
        }
        break;
      }
    }
  }
}

}  // namespace rocksteady
