// Distributed crash recovery, including Rocksteady's lineage rule (§3.4).
//
// Normal case: a crashed master's tablets are re-homed round-robin across
// alive servers; each recovery master fetches the crashed server's replicated
// segments from the backups and replays the entries for the ranges it now
// owns (version rule makes replay order-insensitive).
//
// Lineage cases, per §3.4 ("If either the source or the target crashes
// during migration, Rocksteady transfers ownership of the data back to the
// source"):
//  * Target crashed: the migrating tablet returns to the source, which
//    already holds every record (its copy was immutable); the source
//    additionally replays the *tail* of the target's recovery log — from the
//    dependency's (segment, offset) — to pick up writes the target serviced
//    after ownership transfer. Records sitting in the target's uncommitted
//    side logs were never replicated and are NOT needed: the source's copy
//    is authoritative for them.
//  * Source crashed: the target aborts the inbound migration (dropping its
//    partial side-log state); the tablet is recovered from the source's
//    backups onto a recovery master, which also replays the target's log
//    tail for the migrating range.
#ifndef ROCKSTEADY_SRC_CLUSTER_RECOVERY_H_
#define ROCKSTEADY_SRC_CLUSTER_RECOVERY_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/coordinator.h"

namespace rocksteady {

class MasterServer;

class RecoveryManager {
 public:
  explicit RecoveryManager(Coordinator* coordinator) : coordinator_(coordinator) {}

  // Recovers `crashed` (already halted and off the network). `done` fires
  // when every affected tablet is owned, replayed, and serving again.
  void RecoverServer(ServerId crashed, std::function<void()> done);

  // Aborts an in-flight migration whose endpoints are both alive (a wedged
  // target, detected by lease expiry): ownership returns to the source per
  // the §3.4 lineage rule, the target drops its partial side-log state, and
  // the source replays the target's log tail — the writes the target
  // serviced after ownership transfer. `done` may be null.
  void AbortMigrationToSource(const MigrationDependency& dependency, std::function<void()> done);

 private:
  struct RangeToRecover {
    TableId table = 0;
    KeyHash start_hash = 0;
    KeyHash end_hash = 0;
  };

  // One recovery master's share of the work.
  struct Plan {
    MasterServer* recovery_master = nullptr;
    std::vector<RangeToRecover> ranges;
    // Replay crashed data from this master's backups...
    ServerId data_of = 0;
    uint32_t min_segment = 0;  // ...restricted to segments >= this...
    uint32_t min_offset = 0;   // ...skipping entries below this in that segment.
  };

  void ExecutePlan(const Plan& plan, std::function<void()> done);

  Coordinator* coordinator_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_RECOVERY_H_
