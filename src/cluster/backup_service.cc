#include "src/cluster/backup_service.h"

#include <cassert>
#include <cstring>

namespace rocksteady {

void BackupService::Write(ServerId master, uint32_t segment_id, uint32_t offset,
                          const uint8_t* data, size_t length, bool seal) {
  Replica& replica = segments_[{master, segment_id}];
  if (replica.data.size() < offset + length) {
    replica.data.resize(offset + length);
  }
  std::memcpy(replica.data.data() + offset, data, length);
  replica.sealed = replica.sealed || seal;
  bytes_stored_ += length;
}

std::vector<RecoverySegment> BackupService::GetRecoveryData(ServerId master,
                                                            uint32_t min_segment_id) const {
  std::vector<RecoverySegment> result;
  for (const auto& [key, replica] : segments_) {
    if (key.first == master && key.second >= min_segment_id) {
      result.push_back(RecoverySegment{key.second, replica.data});
    }
  }
  return result;
}

void BackupService::FreeReplicas(ServerId master) {
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->first.first == master) {
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rocksteady
