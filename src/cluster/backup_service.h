// Backup half of a RAMCloud server.
//
// Figure 1: every server runs a master and a backup. Backups store replicas
// of other masters' log segments; the bytes are real, so crash recovery can
// replay them. (The paper's backups persist to disk/flash; the simulated
// backup keeps replicas in memory, which does not change any timing the
// evaluation depends on — durable-write latency is charged by the cost
// model, not by a device model.)
#ifndef ROCKSTEADY_SRC_CLUSTER_BACKUP_SERVICE_H_
#define ROCKSTEADY_SRC_CLUSTER_BACKUP_SERVICE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/types.h"
#include "src/rpc/messages.h"

namespace rocksteady {

class BackupService {
 public:
  // Appends `data` at `offset` of (master, segment_id)'s replica. Offsets
  // must be written in order (the replica manager guarantees this).
  void Write(ServerId master, uint32_t segment_id, uint32_t offset, const uint8_t* data,
             size_t length, bool seal);

  // All replica segments held for `master` with id >= min_segment_id.
  std::vector<RecoverySegment> GetRecoveryData(ServerId master, uint32_t min_segment_id) const;

  // Drops replicas for `master` (after the master's data has been fully
  // recovered elsewhere).
  void FreeReplicas(ServerId master);

  uint64_t bytes_stored() const { return bytes_stored_; }
  size_t segment_count() const { return segments_.size(); }

 private:
  struct Replica {
    std::vector<uint8_t> data;
    bool sealed = false;
  };

  std::map<std::pair<ServerId, uint32_t>, Replica> segments_;
  uint64_t bytes_stored_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_BACKUP_SERVICE_H_
