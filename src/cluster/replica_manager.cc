#include "src/cluster/replica_manager.h"

#include <algorithm>
#include <memory>

namespace rocksteady {

void ReplicaManager::Send(uint32_t segment_id, uint32_t offset, std::vector<uint8_t> data,
                          bool seal, bool bulk, std::function<void(Status)> done) {
  if (backups_.empty()) {
    // Replication disabled (single-server unit tests).
    if (done) {
      done(Status::kOk);
    }
    return;
  }
  bytes_replicated_ += data.size() * backups_.size();
  // Serialize through the per-master replication pipeline (§2.3: ~380 MB/s).
  Simulator* sim = rpc_->SimFor(owner_node_);
  const Tick pipeline_cost = static_cast<Tick>(
      rpc_->costs()->replication_pipeline_per_byte_ns * static_cast<double>(data.size()));
  Tick& pipeline = bulk ? bulk_pipeline_free_at_ : pipeline_free_at_;
  pipeline = std::max(sim->now(), pipeline) + pipeline_cost;
  const Tick issue_at = pipeline;
  // Fan out to every backup; complete when all ack. Backup writes are
  // idempotent (same bytes at the same offset), so each leg retries through
  // the transport's at-least-once machinery and then — to ride out a backup
  // crash-restart window — re-issues the whole RPC a bounded number of
  // times before reporting the error up.
  struct FanOut {
    size_t remaining;
    Status worst = Status::kOk;
    std::function<void(Status)> done;
  };
  auto state = std::make_shared<FanOut>();
  state->remaining = backups_.size();
  state->done = std::move(done);
  auto shared_data = std::make_shared<std::vector<uint8_t>>(std::move(data));
  sim->At(issue_at, [this, segment_id, offset, seal, bulk, state, shared_data] {
    for (const NodeId backup : backups_) {
      SendToBackup(backup, segment_id, offset, shared_data, seal, bulk, /*attempt=*/1,
                   [state](Status status) {
                     if (status != Status::kOk) {
                       state->worst = status;
                     }
                     if (--state->remaining == 0 && state->done) {
                       state->done(state->worst);
                     }
                   });
    }
  });
}

void ReplicaManager::SendToBackup(NodeId backup, uint32_t segment_id, uint32_t offset,
                                  std::shared_ptr<std::vector<uint8_t>> data, bool seal, bool bulk,
                                  int attempt, std::function<void(Status)> done) {
  auto request = std::make_unique<BackupWriteRequest>();
  request->master = owner_id_;
  request->segment_id = segment_id;
  request->offset = offset;
  request->data = *data;  // Each backup (and each attempt) gets its own copy.
  request->seal = seal;
  request->bulk = bulk;
  Simulator* sim = rpc_->SimFor(owner_node_);
  rpc_->Call(
      owner_node_, backup, std::move(request),
      [this, backup, segment_id, offset, data, seal, bulk, attempt, sim,
       done = std::move(done)](Status status, std::unique_ptr<RpcResponse> response) mutable {
        if (status == Status::kOk && response->status != Status::kRetryLater) {
          done(response->status);
          return;
        }
        // Transport failure, or the backup's admission control shed the
        // write (kRetryLater): both re-issue below with seeded backoff.
        if (status == Status::kOk) {
          status = response->status;
        }
        if (attempt >= kMaxBackupWriteAttempts) {
          done(status);
          return;
        }
        // The backup may be mid-crash-restart; its frame store survives, so
        // re-issuing the same idempotent write is always safe.
        const Tick backoff = std::min<Tick>(rpc_->costs()->retry_backoff_min_ns << attempt,
                                            rpc_->costs()->wrong_server_backoff_max_ns) +
                             rpc_->CallerRng(owner_node_).Uniform(rpc_->costs()->retry_backoff_min_ns);
        sim->After(backoff, [this, backup, segment_id, offset, data, seal, bulk, attempt,
                             done = std::move(done)]() mutable {
          SendToBackup(backup, segment_id, offset, std::move(data), seal, bulk, attempt + 1,
                       std::move(done));
        });
      },
      rpc_->costs()->rpc_timeout_ns);
}

void ReplicaManager::Replicate(uint32_t segment_id, uint32_t offset, const uint8_t* data,
                               size_t length, std::function<void(Status)> done) {
  Send(segment_id, offset, std::vector<uint8_t>(data, data + length), false, /*bulk=*/false,
       std::move(done));
}

void ReplicaManager::ReplicateBulk(uint32_t segment_id, uint32_t offset, const uint8_t* data,
                                   size_t length, bool seal, std::function<void(Status)> done) {
  Send(segment_id, offset, std::vector<uint8_t>(data, data + length), seal, /*bulk=*/true,
       std::move(done));
}

void ReplicaManager::ReplicateSegment(const Segment& segment, std::function<void(Status)> done) {
  // Bulk path: split into bounded chunks at background priority so backups
  // interleave foreground write replication between them.
  constexpr size_t kChunk = kBulkChunkBytes;
  const size_t total = segment.used();
  if (total == 0) {
    if (done) {
      done(Status::kOk);
    }
    return;
  }
  struct FanIn {
    size_t remaining;
    Status worst = Status::kOk;
    std::function<void(Status)> done;
  };
  auto fan = std::make_shared<FanIn>();
  fan->remaining = (total + kChunk - 1) / kChunk;
  fan->done = std::move(done);
  for (size_t offset = 0; offset < total; offset += kChunk) {
    const size_t length = std::min(kChunk, total - offset);
    const bool last = offset + length >= total;
    Send(segment.id(), static_cast<uint32_t>(offset),
         std::vector<uint8_t>(segment.data() + offset, segment.data() + offset + length), last,
         /*bulk=*/true, [fan](Status status) {
           if (status != Status::kOk) {
             fan->worst = status;
           }
           if (--fan->remaining == 0 && fan->done) {
             fan->done(fan->worst);
           }
         });
  }
}

}  // namespace rocksteady
