// Client-side library (the RAMCloud client facade).
//
// Caches the tablet map; on kWrongServer it refreshes from the coordinator
// and retries (the paper's "client re-fetches the tablet mapping"); on
// kRetryLater it retries after the target's hint plus random backoff (§3:
// "retry the operation after randomly waiting a few tens of microseconds").
// Client machines' CPUs are not modeled (the paper never bottlenecks them),
// so the client endpoint has no CoreSet.
#ifndef ROCKSTEADY_SRC_CLUSTER_CLIENT_H_
#define ROCKSTEADY_SRC_CLUSTER_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/common/hash.h"
#include "src/rpc/rpc_system.h"

namespace rocksteady {

class RamCloudClient {
 public:
  using DoneCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Status, const std::string& value)>;

  RamCloudClient(Coordinator* coordinator, const CostModel* costs);

  RamCloudClient(const RamCloudClient&) = delete;
  RamCloudClient& operator=(const RamCloudClient&) = delete;

  NodeId node() const { return endpoint_->node(); }
  Coordinator& coordinator() const { return *coordinator_; }

  void Read(TableId table, std::string key, ReadCallback done);
  void Write(TableId table, std::string key, std::string value, DoneCallback done,
             std::string secondary_key = {});
  void Remove(TableId table, std::string key, DoneCallback done);

  // Fetches all keys; they may live on several servers — one kMultiGet RPC
  // per involved server, issued in parallel (Figure 3's "Spread").
  void MultiGet(TableId table, std::vector<std::string> keys, DoneCallback done);

  // Secondary-index short scan (Figure 4): one kIndexLookup to the indexlet
  // owner, then kMultiGetHash RPCs to the backing tablet owners.
  void IndexScan(TableId table, uint8_t index_id, std::string start_key, uint32_t count,
                 DoneCallback done);

  // --- Statistics. ---
  uint64_t wrong_server_retries() const { return wrong_server_retries_; }
  uint64_t retry_later_retries() const { return retry_later_retries_; }
  // Retries caused by RPC timeouts (apparent server death).
  uint64_t server_down_retries() const { return server_down_retries_; }
  uint64_t ops_completed() const { return ops_completed_; }
  uint64_t ops_failed() const { return ops_failed_; }

  // Ops that exhaust this many attempts fail with kServerDown (prevents
  // infinite retry loops if the cluster is wedged).
  static constexpr int kMaxAttempts = 1000;

 private:
  // Looks up the cached owner node for (table, hash); invalid NodeId if the
  // cache has no covering entry.
  bool CachedOwner(TableId table, KeyHash hash, NodeId* node) const;
  void RefreshConfig(TableId table, std::function<void()> then);
  // Retry-with-policy wrapper: runs `attempt`, which reports the op's status
  // and (for kRetryLater) a time hint; the wrapper refreshes/backs off.
  void RunWithRetries(TableId table, std::function<void(std::function<void(Status, Tick)>)> go,
                      DoneCallback done, int attempts_left);

  Coordinator* coordinator_;
  const CostModel* costs_;
  RpcEndpoint* endpoint_;
  std::vector<TabletConfigEntry> cache_;
  uint64_t wrong_server_retries_ = 0;
  uint64_t retry_later_retries_ = 0;
  uint64_t server_down_retries_ = 0;
  uint64_t ops_completed_ = 0;
  uint64_t ops_failed_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_CLIENT_H_
