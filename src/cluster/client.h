// Client-side library (the RAMCloud client facade).
//
// Caches the tablet map; on kWrongServer it refreshes from the coordinator
// and retries (the paper's "client re-fetches the tablet mapping"); on
// kRetryLater it retries after the target's hint plus random backoff (§3:
// "retry the operation after randomly waiting a few tens of microseconds").
// Client machines' CPUs are not modeled (the paper never bottlenecks them),
// so the client endpoint has no CoreSet.
#ifndef ROCKSTEADY_SRC_CLUSTER_CLIENT_H_
#define ROCKSTEADY_SRC_CLUSTER_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/common/hash.h"
#include "src/common/inline_function.h"
#include "src/rpc/rpc_system.h"

namespace rocksteady {

class RamCloudClient {
 public:
  using DoneCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Status, const std::string& value)>;

  // `lane` places this client machine's events on that event lane under
  // sharded execution; ignored in legacy single-queue mode.
  RamCloudClient(Coordinator* coordinator, const CostModel* costs, int lane = 0);

  RamCloudClient(const RamCloudClient&) = delete;
  RamCloudClient& operator=(const RamCloudClient&) = delete;

  NodeId node() const { return endpoint_->node(); }
  Coordinator& coordinator() const { return *coordinator_; }
  // This client's lane simulator and RNG stream — everything the client (or
  // a workload actor driving it) schedules or draws must go through these,
  // never the coordinator's lane.
  Simulator& sim() { return *sim_; }
  Random& rng() { return *rng_; }

  // Key/value parameters are views: the client copies them into pooled
  // per-op buffers before returning, so callers may pass temporaries and the
  // steady-state path reuses string capacity instead of allocating.
  void Read(TableId table, std::string_view key, ReadCallback done);
  void Write(TableId table, std::string_view key, std::string_view value, DoneCallback done,
             std::string_view secondary_key = {});
  void Remove(TableId table, std::string_view key, DoneCallback done);

  // Fetches all keys; they may live on several servers — one kMultiGet RPC
  // per involved server, issued in parallel (Figure 3's "Spread").
  void MultiGet(TableId table, std::vector<std::string> keys, DoneCallback done);

  // Secondary-index short scan (Figure 4): one kIndexLookup to the indexlet
  // owner, then kMultiGetHash RPCs to the backing tablet owners.
  void IndexScan(TableId table, uint8_t index_id, std::string start_key, uint32_t count,
                 DoneCallback done);

  // --- Statistics. ---
  uint64_t wrong_server_retries() const { return wrong_server_retries_; }
  uint64_t retry_later_retries() const { return retry_later_retries_; }
  // Retries caused by RPC timeouts (apparent server death).
  uint64_t server_down_retries() const { return server_down_retries_; }
  uint64_t ops_completed() const { return ops_completed_; }
  uint64_t ops_failed() const { return ops_failed_; }

  // Ops that exhaust this many attempts fail with kServerDown (prevents
  // infinite retry loops if the cluster is wedged).
  static constexpr int kMaxAttempts = 1000;

 private:
  // One attempt of an op. Point ops park their strings in the RetryState and
  // capture only {this, state, hash} (24 bytes); the widest closure is
  // IndexScan's {this, state, index_id, start key, count} at ~56 bytes.
  // Re-invoked, not rebuilt, on retries.
  using GoFn = InlineFunction<void(), 64>;

  // Per-op retry state. One pooled object replaces the per-op make_shared
  // holders (go wrapper, done holder, read value) the old retry wrapper
  // allocated: ops are issued and retired through the free list with zero
  // steady-state allocations beyond the RPC messages themselves. The string
  // fields are assigned (never move-replaced), so their buffers are reused
  // across the ops that flow through the slot.
  struct RetryState {
    TableId table = 0;
    int attempts_left = 0;
    GoFn go;
    DoneCallback done;       // Terminal continuation (non-read ops).
    ReadCallback read_done;  // Terminal continuation (reads; sees payload).
    std::string key;         // Op key (owned here so retries can resend it).
    std::string value;       // Write payload.
    std::string secondary;   // Write secondary index key.
    std::string payload;     // Read result parked between reply and done.
    RetryState* next_free = nullptr;
  };

  // Looks up the cached owner node for (table, hash); invalid NodeId if the
  // cache has no covering entry.
  bool CachedOwner(TableId table, KeyHash hash, NodeId* node) const;
  void RefreshConfig(TableId table, std::function<void()> then);

  // Retry-with-policy core: each attempt reports its status (and, for
  // kRetryLater, a time hint) via Report, which refreshes/backs off and
  // re-invokes the state's go closure, or finishes the op.
  RetryState* AllocState(TableId table);
  void FreeState(RetryState* s);
  void Report(RetryState* s, Status status, Tick hint);
  void Retry(RetryState* s);
  void Finish(RetryState* s, Status status);

  Coordinator* coordinator_;
  const CostModel* costs_;
  RpcEndpoint* endpoint_;
  Simulator* sim_ = nullptr;  // This client's lane simulator.
  Random* rng_ = nullptr;     // This client's RNG stream.
  std::vector<TabletConfigEntry> cache_;
  // RetryState pool: states_ owns storage for the life of the client (so a
  // raw RetryState* captured in an in-flight closure can never dangle);
  // free_states_ threads the recycled slots.
  std::vector<std::unique_ptr<RetryState>> states_;
  RetryState* free_states_ = nullptr;
  uint64_t wrong_server_retries_ = 0;
  uint64_t retry_later_retries_ = 0;
  uint64_t server_down_retries_ = 0;
  uint64_t ops_completed_ = 0;
  uint64_t ops_failed_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_CLIENT_H_
