// Master-side log replication.
//
// All of a master's replication traffic serializes through a per-master
// pipeline resource calibrated to the paper's measured ~380 MB/s ceiling
// (§2.3); durable writes see negligible pipeline delay, but bulk
// re-replication cannot exceed it.
//
// Every master replicates its log to R backups on other servers (§2: RAMCloud
// keeps one copy in DRAM and logs redundant copies to remote storage).
// Durable writes block on replication acks (the paper's 15 us writes);
// Rocksteady's contribution is precisely that *migration* does not (§3.4):
// side-log segments are replicated lazily at the end, off the fast path.
#ifndef ROCKSTEADY_SRC_CLUSTER_REPLICA_MANAGER_H_
#define ROCKSTEADY_SRC_CLUSTER_REPLICA_MANAGER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/log/segment.h"
#include "src/rpc/rpc_system.h"

namespace rocksteady {

class ReplicaManager {
 public:
  // `owner_id`/`owner_node`: the master whose log this replicates.
  ReplicaManager(RpcSystem* rpc, ServerId owner_id, NodeId owner_node)
      : rpc_(rpc), owner_id_(owner_id), owner_node_(owner_node) {}

  void SetBackups(std::vector<NodeId> backup_nodes) { backups_ = std::move(backup_nodes); }
  const std::vector<NodeId>& backups() const { return backups_; }

  // Replicates one log append (the entry bytes at segment/offset) to every
  // backup; `done` fires when all have acked. The synchronous path under
  // every durable write.
  void Replicate(uint32_t segment_id, uint32_t offset, const uint8_t* data, size_t length,
                 std::function<void(Status)> done);

  // Replicates a whole segment's current contents (bulk path: side-log lazy
  // replication, baseline migration re-replication). Sent as bounded
  // background-priority chunks so foreground replication interleaves.
  void ReplicateSegment(const Segment& segment, std::function<void(Status)> done);

  // One bulk chunk (background priority at the backup).
  void ReplicateBulk(uint32_t segment_id, uint32_t offset, const uint8_t* data, size_t length,
                     bool seal, std::function<void(Status)> done);

  // Bulk transfers are split into chunks of this size.
  static constexpr size_t kBulkChunkBytes = 64 * 1024;

  // How many times one backup leg is re-issued (each with the transport's
  // own retransmissions inside) before the failure is reported upward.
  // Bounds the wait at roughly kMaxBackupWriteAttempts * rpc_timeout_ns —
  // long enough to ride out a chaos crash-restart window, short enough
  // that a permanently dead backup cannot wedge the simulation.
  static constexpr int kMaxBackupWriteAttempts = 8;

  uint64_t bytes_replicated() const { return bytes_replicated_; }

 private:
  void Send(uint32_t segment_id, uint32_t offset, std::vector<uint8_t> data, bool seal, bool bulk,
            std::function<void(Status)> done);
  void SendToBackup(NodeId backup, uint32_t segment_id, uint32_t offset,
                    std::shared_ptr<std::vector<uint8_t>> data, bool seal, bool bulk, int attempt,
                    std::function<void(Status)> done);

  RpcSystem* rpc_;
  ServerId owner_id_;
  NodeId owner_node_;
  std::vector<NodeId> backups_;
  uint64_t bytes_replicated_ = 0;
  // Foreground (durable writes) and bulk (lazy re-replication) traffic
  // serialize on separate pipelines: deferring re-replication off the write
  // fast path is the point of §3.4.
  Tick pipeline_free_at_ = 0;
  Tick bulk_pipeline_free_at_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_CLUSTER_REPLICA_MANAGER_H_
