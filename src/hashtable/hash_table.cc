#include "src/hashtable/hash_table.h"

#include <cassert>

namespace rocksteady {

HashTable::HashTable(int log2_buckets) {
  assert(log2_buckets >= 1 && log2_buckets < 63);
  shift_ = 64 - log2_buckets;
  buckets_.resize(size_t{1} << log2_buckets);
}

HashTable::Bucket* HashTable::FindSlot(KeyHash hash, size_t* slot) const {
  const auto* bucket = &buckets_[BucketOf(hash)];
  while (bucket != nullptr) {
    for (size_t i = 0; i < bucket->count; i++) {
      if (bucket->hashes[i] == hash) {
        *slot = i;
        return const_cast<Bucket*>(bucket);
      }
    }
    bucket = bucket->next.get();
  }
  return nullptr;
}

bool HashTable::Insert(KeyHash hash, LogRef ref) {
  size_t slot;
  if (Bucket* bucket = FindSlot(hash, &slot)) {
    bucket->refs[slot] = ref;
    return false;
  }
  Bucket* bucket = &buckets_[BucketOf(hash)];
  while (bucket->count == kSlotsPerBucket) {
    if (bucket->next == nullptr) {
      bucket->next = std::make_unique<Bucket>();
    }
    bucket = bucket->next.get();
  }
  bucket->hashes[bucket->count] = hash;
  bucket->refs[bucket->count] = ref;
  bucket->count++;
  size_++;
  return true;
}

LogRef HashTable::Lookup(KeyHash hash) const {
  size_t slot;
  if (const Bucket* bucket = FindSlot(hash, &slot)) {
    return bucket->refs[slot];
  }
  return LogRef();
}

bool HashTable::Remove(KeyHash hash) {
  size_t slot;
  Bucket* bucket = FindSlot(hash, &slot);
  if (bucket == nullptr) {
    return false;
  }
  // Fill the hole from the tail of this bucket's local slots, then trim
  // empty overflow buckets lazily (they stay allocated; count is truth).
  Bucket* tail = bucket;
  while (tail->next != nullptr && tail->next->count > 0) {
    tail = tail->next.get();
  }
  bucket->hashes[slot] = tail->hashes[tail->count - 1];
  bucket->refs[slot] = tail->refs[tail->count - 1];
  tail->count--;
  size_--;
  return true;
}

bool HashTable::Replace(KeyHash hash, LogRef expected, LogRef desired) {
  size_t slot;
  Bucket* bucket = FindSlot(hash, &slot);
  if (bucket == nullptr || !(bucket->refs[slot] == expected)) {
    return false;
  }
  bucket->refs[slot] = desired;
  return true;
}

size_t HashTable::ScanBuckets(size_t end_bucket, size_t cursor,
                              const std::function<void(KeyHash, LogRef)>& visit,
                              const std::function<bool()>& bucket_done) const {
  end_bucket = std::min(end_bucket, buckets_.size());
  while (cursor < end_bucket) {
    if (cursor + 1 < end_bucket) {
      // Pull scans walk long contiguous bucket runs; fetching the next
      // bucket while visiting this one keeps the walk off the miss path.
      __builtin_prefetch(&buckets_[cursor + 1], 0, 1);
    }
    const Bucket* bucket = &buckets_[cursor];
    while (bucket != nullptr) {
      for (size_t i = 0; i < bucket->count; i++) {
        visit(bucket->hashes[i], bucket->refs[i]);
      }
      bucket = bucket->next.get();
    }
    cursor++;
    if (!bucket_done()) {
      break;
    }
  }
  return cursor;
}

void HashTable::ForEach(const std::function<void(KeyHash, LogRef)>& fn) const {
  ScanBuckets(buckets_.size(), 0, fn, [] { return true; });
}

size_t HashTable::RemoveIf(const std::function<bool(KeyHash, LogRef)>& pred) {
  // Collect first: Remove() moves slots around, which would confuse an
  // in-place walk.
  std::vector<KeyHash> doomed;
  ForEach([&](KeyHash hash, LogRef ref) {
    if (pred(hash, ref)) {
      doomed.push_back(hash);
    }
  });
  for (KeyHash hash : doomed) {
    Remove(hash);
  }
  return doomed.size();
}

void HashTable::AuditInvariants(AuditReport* report, const Log* log) const {
  size_t counted = 0;
  for (size_t index = 0; index < buckets_.size(); index++) {
    const Bucket* previous = nullptr;
    for (const Bucket* bucket = &buckets_[index]; bucket != nullptr;
         bucket = bucket->next.get()) {
      if (bucket->count > kSlotsPerBucket) {
        report->Fail("hashtable: bucket %zu slot count %u exceeds %zu", index, bucket->count,
                     kSlotsPerBucket);
        break;
      }
      if (previous != nullptr && previous->count < kSlotsPerBucket && bucket->count > 0) {
        report->Fail("hashtable: bucket %zu overflow chain not packed", index);
      }
      for (size_t i = 0; i < bucket->count; i++) {
        const KeyHash hash = bucket->hashes[i];
        counted++;
        if (BucketOf(hash) != index) {
          report->Fail("hashtable: hash %llx filed in bucket %zu, belongs in %zu",
                       static_cast<unsigned long long>(hash), index, BucketOf(hash));
        }
        const LogRef ref = bucket->refs[i];
        if (!ref.valid()) {
          report->Fail("hashtable: hash %llx maps to an invalid ref",
                       static_cast<unsigned long long>(hash));
        } else if (log != nullptr) {
          LogEntryView entry;
          if (!log->Read(ref, &entry)) {
            report->Fail("hashtable: hash %llx dangles (segment %u offset %u unresolvable)",
                         static_cast<unsigned long long>(hash), ref.segment_id(), ref.offset());
          } else if (entry.key_hash() != hash) {
            report->Fail("hashtable: hash %llx resolves to entry keyed %llx",
                         static_cast<unsigned long long>(hash),
                         static_cast<unsigned long long>(entry.key_hash()));
          }
        }
        // Duplicate scan within the remainder of this chain.
        size_t j = i + 1;
        for (const Bucket* rest = bucket; rest != nullptr; rest = rest->next.get(), j = 0) {
          for (; j < rest->count; j++) {
            if (rest->hashes[j] == hash) {
              report->Fail("hashtable: duplicate entries for hash %llx in bucket %zu",
                           static_cast<unsigned long long>(hash), index);
            }
          }
        }
      }
      previous = bucket;
    }
  }
  if (counted != size_) {
    report->Fail("hashtable: size() reports %zu but %zu entries found", size_, counted);
  }
}

size_t HashTable::MaxChainLength() const {
  size_t longest = 0;
  for (const auto& head : buckets_) {
    size_t length = 0;
    for (const Bucket* bucket = &head; bucket != nullptr; bucket = bucket->next.get()) {
      length++;
    }
    longest = std::max(longest, length);
  }
  return longest;
}

}  // namespace rocksteady
