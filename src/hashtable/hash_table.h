// The master's primary-key index: key hash -> log reference.
//
// Modeled on RAMCloud's hash table: a power-of-two array of cache-line
// buckets, each holding a fixed number of (hash, ref) slots plus an overflow
// chain. The bucket index is the *top* bits of the key hash, so a contiguous
// range of the key-hash space is a contiguous range of buckets — exactly the
// property Rocksteady's Pull partitioning relies on (§3.1.1: concurrent
// Pulls work on "disjoint regions of the source's key hash space (and,
// consequently, disjoint regions of the source's hash table)").
//
// Scans are bucket-granular: a Pull consumes whole buckets, so concurrent
// mutation of *other* tables' entries never skips or double-visits a
// migrating entry.
#ifndef ROCKSTEADY_SRC_HASHTABLE_HASH_TABLE_H_
#define ROCKSTEADY_SRC_HASHTABLE_HASH_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/log/log.h"

namespace rocksteady {

class HashTable {
 public:
  // 2^log2_buckets buckets. RAMCloud sizes ~2 entries per bucket on average;
  // experiment drivers size accordingly.
  explicit HashTable(int log2_buckets);

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  // Inserts or replaces the mapping for `hash`. Returns true if a new entry
  // was created, false if an existing one was replaced.
  bool Insert(KeyHash hash, LogRef ref);

  // Returns the mapping, or an invalid LogRef if absent.
  LogRef Lookup(KeyHash hash) const;

  bool Remove(KeyHash hash);

  // Compare-and-swap for the log cleaner: updates the mapping only if it
  // still equals `expected`. Returns true on success.
  bool Replace(KeyHash hash, LogRef expected, LogRef desired);

  size_t size() const { return size_; }
  size_t num_buckets() const { return buckets_.size(); }

  size_t BucketOf(KeyHash hash) const { return static_cast<size_t>(hash >> shift_); }

  // Hints the cache that the bucket for `hash` is about to be probed. Batch
  // callers (priority pulls, replay) software-pipeline: prefetch hash i+1
  // while probing hash i, hiding the random-access miss the top-bits bucket
  // index otherwise guarantees. Purely a hint — no observable effect.
  void PrefetchBucket(KeyHash hash) const {
    const Bucket* bucket = &buckets_[BucketOf(hash)];
    __builtin_prefetch(bucket, 0, 1);
    // A bucket (8 hashes + 8 refs + count + chain) spans >1 cache line.
    __builtin_prefetch(reinterpret_cast<const char*>(bucket) + 64, 0, 1);
  }

  // First bucket whose hash range starts at or after `hash` (for mapping a
  // tablet's [start, end] hash range onto bucket ranges).
  size_t BucketLowerBound(KeyHash hash) const { return BucketOf(hash); }

  // Visits every entry of every bucket in [cursor, end_bucket). `visit` is
  // called per entry; after each fully-visited bucket `bucket_done` is
  // called and may return false to pause the scan. Returns the new cursor
  // (index of the next unvisited bucket).
  size_t ScanBuckets(size_t end_bucket, size_t cursor,
                     const std::function<void(KeyHash, LogRef)>& visit,
                     const std::function<bool()>& bucket_done) const;

  void ForEach(const std::function<void(KeyHash, LogRef)>& fn) const;

  // Removes all entries matching a predicate; returns how many were removed.
  // Used when aborting a half-replayed migration.
  size_t RemoveIf(const std::function<bool(KeyHash, LogRef)>& pred);

  // Longest overflow chain currently in the table (diagnostics/tests).
  size_t MaxChainLength() const;

  // Invariants: size accounting, every entry hashed into its own bucket, no
  // duplicate hashes, overflow chains packed (a non-full bucket is never
  // followed by a non-empty one — Remove() backfills from the tail). With a
  // `log`, additionally: every ref is valid, resolves to a live entry, and
  // that entry's key hash matches the table's key (no dangling log
  // pointers).
  void AuditInvariants(AuditReport* report, const Log* log = nullptr) const;

 private:
  static constexpr size_t kSlotsPerBucket = 8;

  struct Bucket {
    std::array<KeyHash, kSlotsPerBucket> hashes;
    std::array<LogRef, kSlotsPerBucket> refs;
    uint8_t count = 0;
    std::unique_ptr<Bucket> next;
  };

  Bucket* FindSlot(KeyHash hash, size_t* slot) const;

  int shift_;
  size_t size_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_HASHTABLE_HASH_TABLE_H_
