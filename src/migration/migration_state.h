// Per-server migration state, parked in the MasterServer extension slot so
// its lifetime follows the server (and never leaks across test clusters).
#ifndef ROCKSTEADY_SRC_MIGRATION_MIGRATION_STATE_H_
#define ROCKSTEADY_SRC_MIGRATION_MIGRATION_STATE_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/cluster/master_server.h"

namespace rocksteady {

class RocksteadyMigrationManager;
class BaselineMigration;

struct ServerMigrationState {
  // Keep-alive holders (typed shared_ptrs created where types are complete).
  std::vector<std::shared_ptr<void>> owned;
  // Inbound Rocksteady migrations on this server (for crash-abort).
  std::vector<RocksteadyMigrationManager*> inbound;
  // Baseline target-side replay serialization (single-threaded replay).
  bool baseline_replay_busy = false;
  std::deque<RpcContext> baseline_queue;
};

inline ServerMigrationState* GetServerMigrationState(MasterServer* master) {
  if (master->extension() == nullptr) {
    master->set_extension(std::make_shared<ServerMigrationState>());
  }
  return static_cast<ServerMigrationState*>(master->extension().get());
}

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_MIGRATION_MIGRATION_STATE_H_
