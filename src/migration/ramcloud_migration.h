// RAMCloud's pre-existing (baseline) tablet migration (§2.3).
//
// Source-driven: the source iterates its whole in-memory log, copies
// matching live records into staging buffers, and ships them; the target
// performs single-threaded logical replay into its own log and
// synchronously re-replicates. Ownership moves only at the very end.
//
// Figure 5's knobs skip successive phases to expose each bottleneck:
// skip_rereplication -> skip_replay -> skip_tx -> skip_copy.
#ifndef ROCKSTEADY_SRC_MIGRATION_RAMCLOUD_MIGRATION_H_
#define ROCKSTEADY_SRC_MIGRATION_RAMCLOUD_MIGRATION_H_

#include <functional>
#include <memory>

#include "src/cluster/cluster.h"
#include "src/cluster/master_server.h"

namespace rocksteady {

struct BaselineStats {
  Tick start_time = 0;
  Tick end_time = 0;
  uint64_t bytes_scanned = 0;
  uint64_t bytes_transferred = 0;
  uint64_t records_transferred = 0;

  double DurationSeconds() const {
    return static_cast<double>(end_time - start_time) / static_cast<double>(kSecond);
  }
  double RateMBps() const {
    const double seconds = DurationSeconds();
    return seconds <= 0 ? 0 : static_cast<double>(bytes_transferred) / 1e6 / seconds;
  }
};

class BaselineMigration {
 public:
  BaselineMigration(MasterServer* source, TableId table, KeyHash start_hash, KeyHash end_hash,
                    ServerId target, BaselineMigrateOptions options,
                    std::function<void(const BaselineStats&)> done);

  void Start();

  const BaselineStats& stats() const { return stats_; }
  void set_bytes_timeline(CounterTimeline* timeline) { bytes_timeline_ = timeline; }

 private:
  void ScheduleScanChunk();
  void FinishIfDone();
  void Complete();

  MasterServer* source_;
  TableId table_;
  KeyHash start_hash_;
  KeyHash end_hash_;
  ServerId target_;
  NodeId target_node_ = 0;
  BaselineMigrateOptions options_;
  std::function<void(const BaselineStats&)> done_;
  BaselineStats stats_;
  CounterTimeline* bytes_timeline_ = nullptr;

  size_t segment_index_ = 0;
  size_t segment_offset_ = 0;
  size_t outstanding_batches_ = 0;
  bool scan_task_active_ = false;
  bool frozen_ = false;
  bool scan_done_ = false;
  bool completed_ = false;

  static constexpr size_t kBatchBudget = 20 * 1024;
  static constexpr size_t kMaxScanPerTask = 256 * 1024;
  static constexpr size_t kMaxOutstanding = 3;
};

// Registers kBaselineMigrate (source side) and kBaselineReplay (target
// side, with single-threaded replay serialization) on `master`.
void InstallBaselineMigrationHandlers(MasterServer* master);

// Experiment driver: splits and migrates [start_hash, end_hash] from
// source to target with the baseline protocol.
BaselineMigration* StartBaselineMigration(Cluster* cluster, TableId table, KeyHash start_hash,
                                          KeyHash end_hash, size_t source_index,
                                          size_t target_index,
                                          const BaselineMigrateOptions& options,
                                          std::function<void(const BaselineStats&)> done);

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_MIGRATION_RAMCLOUD_MIGRATION_H_
