#include "src/migration/rocksteady_source.h"

#include <memory>

#include "src/common/audit.h"
#include "src/common/logging.h"

namespace rocksteady {

namespace {

void HandlePrepareMigration(MasterServer* master, RpcContext context) {
  auto shared = std::make_shared<RpcContext>(std::move(context));
  auto response = std::make_shared<PrepareMigrationResponse>();
  master->cores().EnqueueWorker(
      {Priority::kClient,
       [master, shared, response] {
         auto& req = shared->As<PrepareMigrationRequest>();
         Tablet* tablet = master->objects().tablets().Find(req.table, req.start_hash);
         if (tablet == nullptr || tablet->start_hash != req.start_hash ||
             tablet->end_hash != req.end_hash) {
           response->status = Status::kTableNotFound;
           return Tick{500};
         }
         if (req.freeze) {
           // Immediate ownership transfer: from this instant the source
           // serves each migrating record at most once more (via pulls).
           // Legal transitions into kMigrationSource come only from kNormal
           // (or a repeated freeze of the same migration).
           ROCKSTEADY_DCHECK(tablet->state == TabletState::kNormal ||
                             tablet->state == TabletState::kMigrationSource);
           tablet->state = TabletState::kMigrationSource;
         }
         response->version_horizon = master->objects().version_horizon();
         response->num_hash_buckets = master->objects().hash_table().num_buckets();
         return Tick{1'000};
       },
       [shared, response] {
         shared->reply(std::make_unique<PrepareMigrationResponse>(*response));
       }});
}

void HandlePull(MasterServer* master, RpcContext context) {
  // Admission control: past the migration-queue bound, reject at dispatch
  // with kRetryLater and a retry hint — the target's pacing controller backs
  // off instead of the pull piling onto an already-saturated source. The
  // load header still goes out so the target sees *why*.
  if (master->cores().QueueFull(Priority::kMigration)) {
    master->CountMigrationPullReject();
    auto rejected = std::make_unique<PullResponse>();
    rejected->status = Status::kRetryLater;
    rejected->retry_after = master->sim().now() + master->costs().overload_retry_hint_ns;
    master->FillLoadHeader(&rejected->load);
    context.reply(std::move(rejected));
    return;
  }
  auto shared = std::make_shared<RpcContext>(std::move(context));
  auto response = std::make_shared<PullResponse>();
  master->cores().EnqueueWorker(
      {Priority::kMigration,  // §4.1: "Pulls were configured to have the
                              // lowest priority in the system."
       [master, shared, response] {
         auto& req = shared->As<PullRequest>();
         const HashTable& table = master->objects().hash_table();
         const Log& log = master->objects().log();
         size_t bytes = 0;
         size_t records = 0;
         const size_t cursor = table.ScanBuckets(
             static_cast<size_t>(req.bucket_end), static_cast<size_t>(req.cursor),
             [&](KeyHash hash, LogRef ref) {
               if (hash < req.start_hash || hash > req.end_hash) {
                 return;  // Boundary bucket: hash outside the tablet.
               }
               LogEntryView entry;
               if (!log.Read(ref, &entry) || entry.table_id() != req.table ||
                   entry.type() != LogEntryType::kObject) {
                 return;
               }
               if (entry.version() <= req.min_version) {
                 return;  // Delta round: unchanged since the last pass.
               }
               const uint8_t* raw = nullptr;
               size_t length = 0;
               log.RawEntry(ref, &raw, &length);
               response->records.insert(response->records.end(), raw, raw + length);
               bytes += length;
               records++;
             },
             [&] { return bytes < req.budget_bytes; });
         response->record_count = static_cast<uint32_t>(records);
         response->next_cursor = cursor;
         response->done = cursor >= req.bucket_end;
         return master->costs().PullCost(records, bytes);
       },
       [master, shared, response] {
         auto out = std::make_unique<PullResponse>();
         out->status = response->status;
         out->records = std::move(response->records);
         out->record_count = response->record_count;
         out->next_cursor = response->next_cursor;
         out->done = response->done;
         // Piggyback the source-load signals the pacing controller reads.
         master->FillLoadHeader(&out->load);
         shared->reply(std::move(out));
       }});
}

void HandlePriorityPull(MasterServer* master, RpcContext context) {
  auto shared = std::make_shared<RpcContext>(std::move(context));
  auto response = std::make_shared<PriorityPullResponse>();
  master->cores().EnqueueWorker(
      {Priority::kPriorityPull,  // §4.1: highest priority in the system —
                                 // the target is servicing its own client.
       [master, shared, response] {
         auto& req = shared->As<PriorityPullRequest>();
         const HashTable& table = master->objects().hash_table();
         const Log& log = master->objects().log();
         size_t bytes = 0;
         for (const KeyHash hash : req.hashes) {
           const LogRef ref = table.Lookup(hash);
           LogEntryView entry;
           if (!ref.valid() || !log.Read(ref, &entry) || entry.table_id() != req.table ||
               entry.type() != LogEntryType::kObject) {
             // Authoritatively absent: the migrating tablet is immutable.
             response->not_found.push_back(hash);
             continue;
           }
           const uint8_t* raw = nullptr;
           size_t length = 0;
           log.RawEntry(ref, &raw, &length);
           response->records.insert(response->records.end(), raw, raw + length);
           response->record_count++;
           bytes += length;
         }
         return master->costs().PriorityPullCost(req.hashes.size()) +
                static_cast<Tick>(master->costs().pull_per_byte_ns * static_cast<double>(bytes));
       },
       [master, shared, response] {
         auto out = std::make_unique<PriorityPullResponse>();
         out->status = response->status;
         out->records = std::move(response->records);
         out->record_count = response->record_count;
         out->not_found = std::move(response->not_found);
         master->FillLoadHeader(&out->load);
         shared->reply(std::move(out));
       }});
}

void HandleReleaseTablet(MasterServer* master, RpcContext context) {
  auto shared = std::make_shared<RpcContext>(std::move(context));
  master->cores().EnqueueWorker(
      {Priority::kMigration,
       [master, shared] {
         auto& req = shared->As<ReleaseTabletRequest>();
         master->objects().tablets().Remove(req.table, req.start_hash, req.end_hash);
         const size_t dropped =
             master->objects().DropTabletEntries(req.table, req.start_hash, req.end_hash);
         // Phase boundary: the source's copy is gone; what remains must
         // still be a consistent store (no dangling refs, no stray tablet).
         DebugAudit(master->objects(), "source ObjectManager after ReleaseTablet");
         // Dropping hash-table entries is cheap; the log space is reclaimed
         // by the cleaner over time.
         return Tick{1'000} + 50 * static_cast<Tick>(dropped) / 100;
       },
       [shared] { shared->reply(std::make_unique<StatusResponse>()); }});
}

}  // namespace

void InstallRocksteadySourceHandlers(MasterServer* master) {
  master->endpoint().Register(Opcode::kPrepareMigration, [master](RpcContext c) {
    HandlePrepareMigration(master, std::move(c));
  });
  master->endpoint().Register(Opcode::kPull,
                              [master](RpcContext c) { HandlePull(master, std::move(c)); });
  master->endpoint().Register(
      Opcode::kPriorityPull, [master](RpcContext c) { HandlePriorityPull(master, std::move(c)); });
  master->endpoint().Register(
      Opcode::kReleaseTablet, [master](RpcContext c) { HandleReleaseTablet(master, std::move(c)); });
}

}  // namespace rocksteady
