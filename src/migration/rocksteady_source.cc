#include "src/migration/rocksteady_source.h"

#include <memory>

#include "src/common/annotations.h"
#include "src/common/audit.h"
#include "src/common/logging.h"

namespace rocksteady {

namespace {

void HandlePrepareMigration(MasterServer* master, RpcContext context) {
  // Handler state rides in the closures themselves: the work closure holds a
  // request reference and a raw response pointer, the done closure owns the
  // response and the reply — no shared context, no response copy.
  auto response = std::make_unique<PrepareMigrationResponse>();
  PrepareMigrationResponse* resp = response.get();
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  master->cores().EnqueueWorker(
      {Priority::kClient,
       [master, request_ref, resp] {
         PrepareMigrationResponse* response = resp;
         auto& req = static_cast<PrepareMigrationRequest&>(*request_ref);
         Tablet* tablet = master->objects().tablets().Find(req.table, req.start_hash);
         if (tablet == nullptr || tablet->start_hash != req.start_hash ||
             tablet->end_hash != req.end_hash) {
           response->status = Status::kTableNotFound;
           return Tick{500};
         }
         if (req.freeze) {
           // Immediate ownership transfer: from this instant the source
           // serves each migrating record at most once more (via pulls).
           // Legal transitions into kMigrationSource come only from kNormal
           // (or a repeated freeze of the same migration).
           ROCKSTEADY_DCHECK(tablet->state == TabletState::kNormal ||
                             tablet->state == TabletState::kMigrationSource);
           tablet->state = TabletState::kMigrationSource;
         }
         response->version_horizon = master->objects().version_horizon();
         response->num_hash_buckets = master->objects().hash_table().num_buckets();
         return Tick{1'000};
       },
       [reply = std::move(context.reply), response = std::move(response)]() mutable {
         reply(std::move(response));
       }});
}

void HandlePull(MasterServer* master, RpcContext context) {
  // Admission control: past the migration-queue bound, reject at dispatch
  // with kRetryLater and a retry hint — the target's pacing controller backs
  // off instead of the pull piling onto an already-saturated source. The
  // load header still goes out so the target sees *why*.
  if (master->cores().QueueFull(Priority::kMigration)) {
    master->CountMigrationPullReject();
    auto rejected = std::make_unique<PullResponse>();
    rejected->status = Status::kRetryLater;
    rejected->retry_after = master->sim().now() + master->costs().overload_retry_hint_ns;
    master->FillLoadHeader(&rejected->load);
    context.reply(std::move(rejected));
    return;
  }
  auto response = std::make_unique<PullResponse>();
  PullResponse* resp = response.get();
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  master->cores().EnqueueWorker(
      {Priority::kMigration,  // §4.1: "Pulls were configured to have the
                              // lowest priority in the system."
       [master, request_ref, resp] {
         PullResponse* response = resp;
         auto& req = static_cast<PullRequest&>(*request_ref);
         const HashTable& table = master->objects().hash_table();
         const Log& log = master->objects().log();
         size_t bytes = 0;
         size_t records = 0;
         const size_t cursor = table.ScanBuckets(
             static_cast<size_t>(req.bucket_end), static_cast<size_t>(req.cursor),
             [&](KeyHash hash, LogRef ref) {
               if (hash < req.start_hash || hash > req.end_hash) {
                 return;  // Boundary bucket: hash outside the tablet.
               }
               LogEntryView entry;
               if (!log.Read(ref, &entry) || entry.table_id() != req.table ||
                   entry.type() != LogEntryType::kObject) {
                 return;
               }
               if (entry.version() <= req.min_version) {
                 return;  // Delta round: unchanged since the last pass.
               }
               const uint8_t* raw = nullptr;
               size_t length = 0;
               log.RawEntry(ref, &raw, &length);
               response->records.insert(response->records.end(), raw, raw + length);
               bytes += length;
               records++;
             },
             [&] { return bytes < req.budget_bytes; });
         response->record_count = static_cast<uint32_t>(records);
         response->next_cursor = cursor;
         response->done = cursor >= req.bucket_end;
         return master->costs().PullCost(records, bytes);
       },
       [master, reply = std::move(context.reply), response = std::move(response)]() mutable {
         // Piggyback the source-load signals the pacing controller reads —
         // sampled at reply time, as before, so pacing sees live queue state.
         master->FillLoadHeader(&response->load);
         reply(std::move(response));
       }});
}

void HandlePriorityPull(MasterServer* master, RpcContext context) {
  auto response = std::make_unique<PriorityPullResponse>();
  PriorityPullResponse* resp = response.get();
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  master->cores().EnqueueWorker(
      {Priority::kPriorityPull,  // §4.1: highest priority in the system —
                                 // the target is servicing its own client.
       [master, request_ref, resp] {
         PriorityPullResponse* response = resp;
         auto& req = static_cast<PriorityPullRequest&>(*request_ref);
         const HashTable& table = master->objects().hash_table();
         const Log& log = master->objects().log();
         size_t bytes = 0;
         for (size_t i = 0; i < req.hashes.size(); i++) {
           if (i + 1 < req.hashes.size()) {
             table.PrefetchBucket(req.hashes[i + 1]);
           }
           const KeyHash hash = req.hashes[i];
           const LogRef ref = table.Lookup(hash);
           LogEntryView entry;
           if (!ref.valid() || !log.Read(ref, &entry) || entry.table_id() != req.table ||
               entry.type() != LogEntryType::kObject) {
             // Authoritatively absent: the migrating tablet is immutable.
             response->not_found.push_back(hash);
             continue;
           }
           const uint8_t* raw = nullptr;
           size_t length = 0;
           log.RawEntry(ref, &raw, &length);
           response->records.insert(response->records.end(), raw, raw + length);
           response->record_count++;
           bytes += length;
         }
         return master->costs().PriorityPullCost(req.hashes.size()) +
                static_cast<Tick>(master->costs().pull_per_byte_ns * static_cast<double>(bytes));
       },
       [master, reply = std::move(context.reply), response = std::move(response)]() mutable {
         master->FillLoadHeader(&response->load);
         reply(std::move(response));
       }});
}

void HandleReleaseTablet(MasterServer* master, RpcContext context) {
  IntrusivePtr<RpcRequest> request_ref = std::move(context.request);
  master->cores().EnqueueWorker(
      {Priority::kMigration,
       [master, request_ref] {
         auto& req = static_cast<ReleaseTabletRequest&>(*request_ref);
         master->objects().tablets().Remove(req.table, req.start_hash, req.end_hash);
         const size_t dropped =
             master->objects().DropTabletEntries(req.table, req.start_hash, req.end_hash);
         // Phase boundary: the source's copy is gone; what remains must
         // still be a consistent store (no dangling refs, no stray tablet).
         DebugAudit(master->objects(), "source ObjectManager after ReleaseTablet");
         // Dropping hash-table entries is cheap; the log space is reclaimed
         // by the cleaner over time.
         return Tick{1'000} + 50 * static_cast<Tick>(dropped) / 100;
       },
       [reply = std::move(context.reply)]() mutable {
         reply(std::make_unique<StatusResponse>());
       }});
}

}  // namespace

void InstallRocksteadySourceHandlers(MasterServer* master) {
  master->endpoint().Register(Opcode::kPrepareMigration,
                              ROCKSTEADY_IDEMPOTENT("re-preparing an already-prepared migration "
                                                    "re-reports the same log head position")
                              [master](RpcContext c) {
    HandlePrepareMigration(master, std::move(c));
  });
  master->endpoint().Register(Opcode::kPull,
                              ROCKSTEADY_IDEMPOTENT("pure read of the frozen source snapshot")
                              [master](RpcContext c) { HandlePull(master, std::move(c)); });
  master->endpoint().Register(
      Opcode::kPriorityPull,
      ROCKSTEADY_IDEMPOTENT("pure read of the frozen source snapshot")
      [master](RpcContext c) { HandlePriorityPull(master, std::move(c)); });
  master->endpoint().Register(
      Opcode::kReleaseTablet,
      ROCKSTEADY_IDEMPOTENT("dropping already-dropped tablet entries is a no-op")
      [master](RpcContext c) { HandleReleaseTablet(master, std::move(c)); });
}

}  // namespace rocksteady
