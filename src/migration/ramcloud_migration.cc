#include "src/migration/ramcloud_migration.h"

#include <deque>

#include "src/common/annotations.h"
#include "src/common/dcheck.h"
#include "src/common/logging.h"
#include "src/migration/migration_state.h"

namespace rocksteady {

namespace {

void ReplayNextBatch(MasterServer* master);

// Target-side baseline replay is strictly serialized (RAMCloud's original
// migration replays single-threaded, no matter how many workers exist).
void HandleBaselineReplay(MasterServer* master, RpcContext context) {
  auto* state = GetServerMigrationState(master);
  state->baseline_queue.push_back(std::move(context));
  ReplayNextBatch(master);
}

void ReplayNextBatch(MasterServer* master) {
  auto* state = GetServerMigrationState(master);
  if (state->baseline_replay_busy || state->baseline_queue.empty()) {
    return;
  }
  state->baseline_replay_busy = true;
  auto shared = std::make_shared<RpcContext>(std::move(state->baseline_queue.front()));
  state->baseline_queue.pop_front();
  auto& request = shared->As<BaselineReplayRequest>();
  const bool skip_replay = request.skip_replay;
  const bool skip_rerepl = request.skip_rereplication;

  auto finish = [master, state, shared] {
    shared->reply(std::make_unique<StatusResponse>());
    state->baseline_replay_busy = false;
    ReplayNextBatch(master);
  };

  master->cores().EnqueueWorker(
      {Priority::kMigration,
       [master, shared, skip_replay] {
         auto& req = shared->As<BaselineReplayRequest>();
         if (req.last_batch) {
           // Ownership arrives with the data: continue versions above the
           // source's and start serving.
           master->objects().RaiseVersionHorizon(req.version_horizon);
         }
         if (skip_replay) {
           return Tick{500};
         }
         size_t offset = 0;
         while (offset < req.records.size()) {
           LogEntryView entry;
           if (!ReadEntry(req.records.data() + offset, req.records.size() - offset, &entry)) {
             break;
           }
           master->objects().Replay(entry, nullptr);  // Main log, like recovery.
           offset += entry.header.TotalLength();
         }
         return static_cast<Tick>(master->costs().baseline_replay_per_byte_ns *
                                  static_cast<double>(req.records.size()));
       },
       [master, shared, skip_rerepl, finish] {
         auto& req = shared->As<BaselineReplayRequest>();
         if (skip_rerepl || req.records.empty()) {
           finish();
           return;
         }
         // Synchronous re-replication: the batch is not acked (and the
         // source's pipeline not advanced) until backups confirm.
         auto bytes = std::make_shared<std::vector<uint8_t>>(std::move(req.records));
         master->cores().EnqueueWorker(
             {Priority::kReplication,
              [master, bytes] { return master->costs().ReplicationSrcCost(bytes->size()); },
              [master, bytes, finish] {
                master->replicas().Replicate(0x60000000, 0, bytes->data(), bytes->size(),
                                             [finish](Status) { finish(); });
              }});
       }});
}

}  // namespace

BaselineMigration::BaselineMigration(MasterServer* source, TableId table, KeyHash start_hash,
                                     KeyHash end_hash, ServerId target,
                                     BaselineMigrateOptions options,
                                     std::function<void(const BaselineStats&)> done)
    : source_(source),
      table_(table),
      start_hash_(start_hash),
      end_hash_(end_hash),
      target_(target),
      options_(options),
      done_(std::move(done)) {
  target_node_ = source_->coordinator().NodeOf(target_);
}

void BaselineMigration::Start() {
  stats_.start_time = source_->sim().now();
  if (Tablet* tablet = source_->objects().tablets().Find(table_, start_hash_)) {
    tablet->state = TabletState::kBaselineSourceBusy;
  }
  ScheduleScanChunk();
}

void BaselineMigration::ScheduleScanChunk() {
  if (scan_task_active_ || completed_ || scan_done_) {
    return;
  }
  if (outstanding_batches_ >= kMaxOutstanding) {
    return;  // Backpressure from the target's serialized replay.
  }
  scan_task_active_ = true;

  auto batch = std::make_shared<std::vector<uint8_t>>();
  auto batch_records = std::make_shared<uint32_t>(0);
  auto matched_bytes = std::make_shared<size_t>(0);
  auto reached_end = std::make_shared<bool>(false);

  source_->cores().EnqueueWorker(
      {Priority::kMigration,
       [this, batch, batch_records, matched_bytes, reached_end] {
         const Log& log = source_->objects().log();
         const HashTable& table = source_->objects().hash_table();
         size_t scanned = 0;
         size_t skipped_entries = 0;
         while (scanned < kMaxScanPerTask && *matched_bytes < kBatchBudget) {
           const auto& segments = log.segments();
           if (segment_index_ >= segments.size()) {
             *reached_end = true;
             break;
           }
           const Segment& segment = *segments[segment_index_];
           if (segment_offset_ >= segment.used()) {
             segment_index_++;
             segment_offset_ = 0;
             continue;
           }
           LogEntryView entry;
           if (!segment.EntryAt(segment_offset_, &entry)) {
             segment_index_++;
             segment_offset_ = 0;
             continue;
           }
           const size_t length = entry.header.TotalLength();
           scanned += length;
           const LogRef ref(segment.id(), static_cast<uint32_t>(segment_offset_));
           segment_offset_ += length;
           if (entry.type() != LogEntryType::kObject || entry.table_id() != table_ ||
               entry.key_hash() < start_hash_ || entry.key_hash() > end_hash_ ||
               !(table.Lookup(entry.key_hash()) == ref)) {
             skipped_entries++;  // Other tablet's record or a dead copy.
             continue;
           }
           *matched_bytes += length;
           if (!options_.skip_copy) {
             // Copy into the staging buffer (the cost Figure 5 isolates).
             const uint8_t* raw = nullptr;
             size_t raw_length = 0;
             log.RawEntry(ref, &raw, &raw_length);
             batch->insert(batch->end(), raw, raw + raw_length);
           }
           *batch_records += 1;
         }
         stats_.bytes_scanned += scanned;
         double cost =
             source_->costs().baseline_scan_per_byte_ns * static_cast<double>(*matched_bytes) +
             static_cast<double>(source_->costs().baseline_scan_per_skipped_entry_ns) *
                 static_cast<double>(skipped_entries);
         if (!options_.skip_copy) {
           cost += source_->costs().baseline_copy_per_byte_ns *
                   static_cast<double>(batch->size());
           if (!options_.skip_tx) {
             cost += source_->costs().baseline_tx_per_byte_ns *
                     static_cast<double>(batch->size());
           }
         }
         return static_cast<Tick>(cost) + 1'000;
       },
       [this, batch, batch_records, matched_bytes, reached_end] {
         scan_task_active_ = false;
         const size_t moved_bytes = *matched_bytes;
         stats_.bytes_transferred += moved_bytes;
         stats_.records_transferred += *batch_records;
         if (bytes_timeline_ != nullptr && moved_bytes > 0) {
           bytes_timeline_->Add(source_->sim().now(), moved_bytes);
         }

         if (*reached_end && !frozen_) {
           // Caught up with the head: freeze writes and do the final pass
           // over anything appended meanwhile.
           frozen_ = true;
           if (Tablet* tablet = source_->objects().tablets().Find(table_, start_hash_)) {
             tablet->state = TabletState::kMigrationSource;
           }
           ScheduleScanChunk();
         }
         const bool last = *reached_end && frozen_;
         if (last) {
           scan_done_ = true;
         }

         if (!options_.skip_tx && !options_.skip_copy && (!batch->empty() || last)) {
           auto request = std::make_unique<BaselineReplayRequest>();
           request->table = table_;
           request->records = std::move(*batch);
           request->record_count = *batch_records;
           request->last_batch = last;
           request->skip_replay = options_.skip_replay;
           request->skip_rereplication = options_.skip_rereplication;
           if (last) {
             request->version_horizon = source_->objects().version_horizon();
           }
           outstanding_batches_++;
           source_->rpc().Call(source_->node(), target_node_, std::move(request),
                               [this](Status, std::unique_ptr<RpcResponse>) {
                                 outstanding_batches_--;
                                 ScheduleScanChunk();
                                 FinishIfDone();
                               },
                               /*timeout=*/0);
         }
         if (!scan_done_) {
           ScheduleScanChunk();
         }
         FinishIfDone();
       }});
}

void BaselineMigration::FinishIfDone() {
  if (completed_ || !scan_done_ || outstanding_batches_ > 0) {
    return;
  }
  Complete();
}

void BaselineMigration::Complete() {
  completed_ = true;
  // Only now does ownership move (§2.3: "Only after all of the records have
  // been transferred is tablet ownership switched").
  MasterServer* target = source_->coordinator().master(target_);
  target->objects().tablets().Add(Tablet{table_, start_hash_, end_hash_, TabletState::kNormal});
  auto own = std::make_unique<UpdateOwnershipRequest>();
  own->table = table_;
  own->start_hash = start_hash_;
  own->end_hash = end_hash_;
  own->new_owner = target_;
  source_->rpc().Call(source_->node(), source_->coordinator().node(), std::move(own),
                      [this](Status, std::unique_ptr<RpcResponse>) {
                        source_->objects().tablets().Remove(table_, start_hash_, end_hash_);
                        source_->objects().DropTabletEntries(table_, start_hash_, end_hash_);
                        stats_.end_time = source_->sim().now();
                        LOG_INFO("baseline migration done: %.1f MB in %.2f s (%.0f MB/s)",
                                 static_cast<double>(stats_.bytes_transferred) / 1e6,
                                 stats_.DurationSeconds(), stats_.RateMBps());
                        if (done_) {
                          done_(stats_);
                        }
                      });
}

void InstallBaselineMigrationHandlers(MasterServer* master) {
  master->endpoint().Register(Opcode::kBaselineMigrate,
                              ROCKSTEADY_IDEMPOTENT("migration control is re-drivable: baseline "
                                                    "copy restarts overwrite with identical "
                                                    "versioned objects")
                              [master](RpcContext context) {
    auto& request = context.As<BaselineMigrateRequest>();
    auto* state = GetServerMigrationState(master);
    auto migration = std::make_shared<BaselineMigration>(
        master, request.table, request.start_hash, request.end_hash, request.target,
        request.options, nullptr);
    BaselineMigration* raw = migration.get();
    state->owned.push_back(std::move(migration));
    raw->Start();
    context.reply(std::make_unique<StatusResponse>());
  });
  master->endpoint().Register(Opcode::kBaselineReplay,
                              ROCKSTEADY_IDEMPOTENT("replaying a batch re-applies versioned "
                                                    "entries; version checks reject stale "
                                                    "duplicates")
                              [master](RpcContext context) {
    HandleBaselineReplay(master, std::move(context));
  });
}

BaselineMigration* StartBaselineMigration(Cluster* cluster, TableId table, KeyHash start_hash,
                                          KeyHash end_hash, size_t source_index,
                                          size_t target_index,
                                          const BaselineMigrateOptions& options,
                                          std::function<void(const BaselineStats&)> done) {
  // Pre-migration splits: the table exists and splits at an existing
  // boundary are no-ops, so anything but kOk is a driver bug.
  const Status split_low = cluster->coordinator().SplitTablet(table, start_hash);
  ROCKSTEADY_DCHECK(split_low == Status::kOk);
  if (end_hash != ~0ull) {
    const Status split_high = cluster->coordinator().SplitTablet(table, end_hash + 1);
    ROCKSTEADY_DCHECK(split_high == Status::kOk);
  }
  MasterServer& source = cluster->master(source_index);
  auto* state = GetServerMigrationState(&source);
  auto migration = std::make_shared<BaselineMigration>(
      &source, table, start_hash, end_hash, cluster->master(target_index).id(), options,
      std::move(done));
  BaselineMigration* raw = migration.get();
  state->owned.push_back(std::move(migration));
  raw->Start();
  return raw;
}

}  // namespace rocksteady
