// Asynchronous batched PriorityPulls (§3.3).
//
// When the target serves a read for a record that has not arrived, it (1)
// answers the client with "retry at T" instead of stalling a worker, and
// (2) batches the missed key hash into the next PriorityPull. De-duplication
// guarantees the source never serves the same key twice after migration
// starts; at most one PriorityPull is in flight, and new misses accumulate
// until it completes.
//
// The synchronous single-key mode the paper compares against (§4.4 /
// Figures 13-14) is also implemented here: the read holds a target worker
// until the record arrives.
#ifndef ROCKSTEADY_SRC_MIGRATION_PRIORITY_PULL_MANAGER_H_
#define ROCKSTEADY_SRC_MIGRATION_PRIORITY_PULL_MANAGER_H_

#include <deque>
#include <memory>
#include <unordered_set>

#include "src/cluster/master_server.h"
#include "src/log/side_log.h"

namespace rocksteady {

class PriorityPullManager {
 public:
  struct Options {
    // §4.1: "PriorityPulls returned a batch of at most 16 records."
    size_t max_batch = 16;
    bool enabled = true;
  };

  PriorityPullManager(MasterServer* target, NodeId source_node, TableId table,
                      const Options& options)
      : target_(target), source_node_(source_node), table_(table), options_(options) {}

  // Replayed records land here (processed "identically to Pulls", §3).
  void set_side_log(SideLog* side_log) { side_log_ = side_log; }

  // A read missed (table, hash). Schedules the hash (batched) and returns
  // the absolute time the target expects to have the record.
  Tick OnMissingRecord(KeyHash hash);

  bool IsKnownAbsent(KeyHash hash) const { return known_absent_.contains(hash); }

  // Synchronous mode: fetches the single record while holding a worker, then
  // replies to the client read itself. Returns true (always services).
  bool ServiceSynchronously(KeyHash hash, RpcContext* context);

  bool idle() const { return !in_flight_ && pending_.empty(); }
  void Shutdown() { shutdown_ = true; }

  uint64_t batches_issued() const { return batches_issued_; }
  uint64_t records_pulled() const { return records_pulled_; }
  uint64_t not_found_count() const { return not_found_count_; }
  uint64_t sync_pulls() const { return sync_pulls_; }

  // A failed batch is re-driven this many times back-to-back before the
  // manager goes quiet and waits for the next miss (or an abort) to poke it.
  static constexpr int kMaxConsecutiveFailures = 16;

 private:
  void IssueBatch();

  MasterServer* target_;
  NodeId source_node_;
  TableId table_;
  Options options_;
  SideLog* side_log_ = nullptr;
  bool in_flight_ = false;
  bool shutdown_ = false;
  int consecutive_failures_ = 0;
  // All three are bounded by the migrating tablet's distinct key hashes and
  // die with the manager at commit/abort: pending_ is deduped through
  // scheduled_ and drained max_batch entries per batch, scheduled_ entries
  // are erased when their record replays (or proves absent), and
  // known_absent_ only ever holds hashes the source answered "not found".
  std::deque<KeyHash> pending_;
  std::unordered_set<KeyHash> scheduled_;  // Pending or in flight (dedup).
  std::unordered_set<KeyHash> known_absent_;
  uint64_t batches_issued_ = 0;
  uint64_t records_pulled_ = 0;
  uint64_t not_found_count_ = 0;
  uint64_t sync_pulls_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_MIGRATION_PRIORITY_PULL_MANAGER_H_
