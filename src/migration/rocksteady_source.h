// Source-side Rocksteady handlers (§3.1.1, §3.3).
//
// The source keeps *no* migration state: Pull cursors live at the target,
// and the migrating tablet is immutable here. Handlers:
//   kPrepareMigration — mark the tablet immutable, report version horizon +
//                       hash-table geometry.
//   kPull             — lowest priority; scan whole buckets of one hash
//                       partition, return ~20 KB of raw log entries.
//   kPriorityPull     — highest priority; return specific records by hash.
//   kReleaseTablet    — migration finished; drop the local copy.
#ifndef ROCKSTEADY_SRC_MIGRATION_ROCKSTEADY_SOURCE_H_
#define ROCKSTEADY_SRC_MIGRATION_ROCKSTEADY_SOURCE_H_

#include "src/cluster/master_server.h"

namespace rocksteady {

// Registers the source-side migration handlers on `master`. Installed on
// every server by EnableMigration (any server can be a migration source).
void InstallRocksteadySourceHandlers(MasterServer* master);

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_MIGRATION_ROCKSTEADY_SOURCE_H_
