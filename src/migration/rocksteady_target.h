// Target-side Rocksteady migration manager (§3.1.2, §3.1.3, §3.4).
//
// Runs as asynchronous continuations on the target's dispatch core. It
// partitions the source's key-hash space, keeps one pipelined Pull
// outstanding per partition (flow-controlled by replay backlog), replays
// completed Pulls on idle workers at the lowest priority into per-partition
// side logs, and at the end lazily re-replicates + commits the side logs and
// drops the lineage dependency.
//
// Modes (the evaluation's comparisons):
//  * kRocksteady          — full protocol (Figures 9-11a).
//  * kNoPriorityPulls     — ownership transfers but misses only resolve via
//                           background Pulls (Figures 9-11b).
//  * kSourceOwns          — pre-copy: source keeps ownership and keeps
//                           serving; rounds of pulls with synchronous
//                           re-replication, then freeze + delta + switch
//                           (Figures 9-11c).
//  * sync_priority_pulls  — naive synchronous PriorityPulls (Figures 13-14).
#ifndef ROCKSTEADY_SRC_MIGRATION_ROCKSTEADY_TARGET_H_
#define ROCKSTEADY_SRC_MIGRATION_ROCKSTEADY_TARGET_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/master_server.h"
#include "src/migration/priority_pull_manager.h"

namespace rocksteady {

enum class MigrationMode {
  kRocksteady,
  kNoPriorityPulls,
  kSourceOwns,
};

struct RocksteadyOptions {
  MigrationMode mode = MigrationMode::kRocksteady;
  // §4.1: "partition the source's key hash space into 8 parts, with each
  // Pull returning 20 KB of data."
  size_t num_partitions = 8;
  uint32_t pull_budget_bytes = 20 * 1024;
  size_t priority_pull_batch = 16;
  // Figures 13-14: hold a worker per missed read instead of batching.
  bool sync_priority_pulls = false;
  // Figures 13-14 also disable background Pulls entirely.
  bool background_pulls = true;
  // Ablation: replicate replayed data synchronously during migration even
  // in ownership-transfer mode (§4.2 reports lazy is 1.4x faster).
  bool lazy_rereplication = true;
  // Max un-replayed pull responses per partition before pulls pause (the
  // "built-in flow control", §3.1.2).
  size_t max_replay_backlog = 2;

  // --- Adaptive pull pacing (AIMD over the source-load header). ---
  // The target reads the signals the source piggybacks on pull replies.
  // When any signal crosses its threshold (or a pull is shed outright), the
  // pacing window (concurrent pulls) and per-pull byte budget shrink
  // multiplicatively; every healthy reply grows them back additively toward
  // full aggressiveness. An unloaded source never trips a threshold, so
  // pacing leaves a quiet migration's schedule untouched.
  bool adaptive_pacing = true;
  Tick pacing_p999_threshold_ns = 200'000;
  uint32_t pacing_queue_threshold = 16;
  Tick pacing_backlog_threshold_ns = 50'000;
  uint32_t min_pull_budget_bytes = 4 * 1024;
  uint32_t pull_budget_increment_bytes = 2 * 1024;
};

struct MigrationStats {
  Tick start_time = 0;
  Tick end_time = 0;
  uint64_t bytes_pulled = 0;
  uint64_t records_pulled = 0;
  uint64_t pulls_completed = 0;
  uint64_t priority_pull_batches = 0;
  uint64_t priority_pull_records = 0;
  uint64_t rereplicated_bytes = 0;
  uint64_t rounds = 0;  // Pre-copy mode: pull rounds (1 + deltas).
  // Overload / memory-pressure bookkeeping.
  uint64_t pacing_backoffs = 0;          // AIMD multiplicative decreases.
  uint64_t pull_rejections = 0;          // Pulls shed by source admission control.
  uint64_t memory_pauses = 0;            // High-watermark pull pauses.
  uint64_t emergency_clean_segments = 0; // Segments reclaimed while paused.
  bool aborted_over_budget = false;      // Tablet did not fit the budget.
  // When the last Pull completed (before end-of-migration replication /
  // commit); isolates transfer speed from the lazy-replication epilogue.
  Tick last_pull_time = 0;

  double DurationSeconds() const {
    return static_cast<double>(end_time - start_time) / static_cast<double>(kSecond);
  }
  // Effective migration rate over moved record bytes.
  double RateMBps() const {
    const double seconds = DurationSeconds();
    return seconds <= 0 ? 0 : static_cast<double>(bytes_pulled) / 1e6 / seconds;
  }
};

class RocksteadyMigrationManager : public MasterServer::MigrationHooks {
 public:
  RocksteadyMigrationManager(MasterServer* target, TableId table, KeyHash start_hash,
                             KeyHash end_hash, ServerId source, RocksteadyOptions options,
                             std::function<void(const MigrationStats&)> done);
  ~RocksteadyMigrationManager() override;

  void Start();

  // Source crashed: drop all partial state (side logs + hash-table refs);
  // recovery re-homes the tablet.
  void Abort();

  const MigrationStats& stats() const { return stats_; }
  bool finished() const { return finished_; }
  bool aborted() const { return aborted_; }

  // Overload-protection introspection (tests and bench summaries).
  size_t pacing_window() const { return pacing_window_; }
  uint32_t pacing_budget() const { return pacing_budget_; }
  bool memory_paused() const { return memory_paused_; }
  bool abort_requested() const { return abort_requested_; }

  // Coarse progress marker for tests that inject a fault at a specific
  // point in the protocol (e.g. "source crash after ownership transfer,
  // before re-replication completes").
  enum class Phase { kStarting, kPulling, kReplicating, kDone, kAborted };
  Phase phase() const { return phase_; }

  // Invariants: partitions are ordered and disjoint with each pull cursor
  // inside its partition's bucket range (the pulled-hash-bucket frontier
  // only moves forward), replay backlogs within the flow-control bound, and
  // side-log data invisible before commit (empty after commit/abort).
  void AuditInvariants(AuditReport* report) const;

  // Bytes-moved timeline (optional; drives Figure 9-11 rate curves).
  void set_bytes_timeline(CounterTimeline* timeline) { bytes_timeline_ = timeline; }

  // --- MasterServer::MigrationHooks ---
  Tick OnMissingRecord(TableId table, KeyHash hash) override;
  bool IsKnownAbsent(TableId table, KeyHash hash) override;
  bool ServiceReadSynchronously(TableId table, KeyHash hash, RpcContext* context) override;

 private:
  struct Partition {
    uint64_t bucket_begin = 0;
    uint64_t bucket_end = 0;
    uint64_t cursor = 0;
    bool pull_in_flight = false;
    bool source_exhausted = false;
    size_t replay_backlog = 0;  // Completed pulls not yet replayed.
    int pull_retries = 0;       // Consecutive failed pulls (reset on success).

    bool Done() const { return source_exhausted && !pull_in_flight && replay_backlog == 0; }
  };

  // A failed Pull is re-driven this many times (each attempt already
  // retransmits inside the transport) before the partition stalls and the
  // coordinator's recovery / lease watchdog decides the migration's fate.
  static constexpr int kMaxPullRetries = 16;

  // A control-plane RPC (Prepare, dependency registration, ownership,
  // drop/release) is re-issued this many times across crash-restart windows.
  static constexpr int kMaxControlAttempts = 10;

  // Emergency-clean passes in a row with no net memory reduction before the
  // manager concludes the tablet cannot fit the budget and aborts.
  static constexpr int kMaxFutileCleans = 4;

  // Runs `fn` as a migration-manager continuation on the dispatch core.
  void ManagerTick(std::function<void()> fn);

  // Issues a control-plane RPC with bounded re-drive: the transport's
  // at-least-once machinery retransmits within each attempt, and the whole
  // (idempotent) call is re-issued with backoff across attempts. `cb` gets
  // the first delivered response, or the last failure once the attempt
  // budget is spent. The request is rebuilt per attempt via `make_request`.
  void ControlCall(NodeId to, std::function<std::unique_ptr<RpcRequest>()> make_request,
                   std::function<void(Status, std::unique_ptr<RpcResponse>)> cb, int attempt);

  // Renews the coordinator's migration lease every
  // migration_heartbeat_interval_ns until the migration finishes or aborts.
  void HeartbeatLoop();

  void OnPrepared(const PrepareMigrationResponse& response);
  void SetUpPartitions(uint64_t num_buckets);
  void StartRound(Version min_version);
  void PumpPulls();
  void IssuePull(size_t partition_index);
  void OnPullResponse(size_t partition_index, std::unique_ptr<PullResponse> response);
  void OnRoundComplete();
  void FinishLazyReplication();
  void CommitAndComplete();

  // --- Adaptive pacing (AIMD). ---
  size_t InFlightPulls() const;
  // Feeds one source-load observation into the controller. `rejected` marks
  // a pull shed by the source's admission control (always a backoff).
  void OnLoadSignal(const SourceLoadHeader& load, bool rejected);

  // --- Memory budget. ---
  // True if pulls must not proceed: the high watermark was crossed and the
  // manager entered the pause/emergency-clean loop.
  bool CheckMemoryBudget();
  void EnterMemoryPause();
  void ScheduleEmergencyClean();
  void OnEmergencyCleanDone();
  // The tablet cannot fit even after cleaning: graceful abort along the
  // §3.4 lineage paths via the coordinator (source keeps ownership, our
  // durable log tail is replayed there — no acked write lost).
  void AbortOverBudget();
  // Post-commit sweep: committing adopts the side-log segments into the
  // main log, which makes their fragmented tails cleanable for the first
  // time; keeps emergency-cleaning one segment at a time until the target
  // is back under its budget (or cleaning stops making progress).
  void DrainToBudget();

  MasterServer* target_;
  TableId table_;
  KeyHash start_hash_;
  KeyHash end_hash_;
  ServerId source_;
  NodeId source_node_ = 0;
  RocksteadyOptions options_;
  std::function<void(const MigrationStats&)> done_;
  MigrationStats stats_;
  CounterTimeline* bytes_timeline_ = nullptr;

  std::vector<Partition> partitions_;
  std::vector<std::unique_ptr<SideLog>> side_logs_;  // One per partition (+1 for PP).
  std::unique_ptr<PriorityPullManager> priority_pulls_;
  Version round_min_version_ = 0;   // Pre-copy delta filter for this round.
  Version round_start_horizon_ = 0;
  bool frozen_ = false;  // Pre-copy: source has been frozen.
  bool finished_ = false;
  bool aborted_ = false;
  Phase phase_ = Phase::kStarting;

  // Adaptive-pacing state (set up with the partitions; at full
  // aggressiveness these reproduce the unpaced schedule exactly).
  size_t pacing_window_ = 0;    // Max concurrent pulls.
  uint32_t pacing_budget_ = 0;  // Current per-pull byte budget.
  size_t next_partition_ = 0;   // Round-robin fairness under a small window.

  // Memory-budget state.
  bool memory_paused_ = false;
  bool abort_requested_ = false;
  int futile_cleans_ = 0;
  uint64_t pause_min_in_use_ = 0;  // Lowest in-use seen this pause (progress test).
  size_t cleaned_last_ = 0;        // Segments reclaimed by the last clean pass.
};

// Installs kMigrateTablet + all source-side handlers on `master`. Any
// server can then act as source or target.
void InstallRocksteadyHandlers(MasterServer* master);

// Installs Rocksteady (and the baseline migration) on every master of a
// cluster and hooks migration-abort into crash recovery.
void EnableMigration(Cluster* cluster);

// Convenience driver used by experiments and tests: splits the tablet at
// `split_hash`, then asks `target` to migrate [split_hash, end_hash]. The
// manager lives until completion; `done` receives final stats.
RocksteadyMigrationManager* StartRocksteadyMigration(
    Cluster* cluster, TableId table, KeyHash start_hash, KeyHash end_hash, size_t source_index,
    size_t target_index, const RocksteadyOptions& options,
    std::function<void(const MigrationStats&)> done);

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_MIGRATION_ROCKSTEADY_TARGET_H_
