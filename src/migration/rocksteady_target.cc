#include "src/migration/rocksteady_target.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include <bit>

#include "src/common/annotations.h"
#include "src/common/audit.h"
#include "src/common/logging.h"
#include "src/migration/migration_state.h"
#include "src/migration/ramcloud_migration.h"
#include "src/migration/rocksteady_source.h"

namespace rocksteady {

namespace {

// Adds a manager to the server's migration state and returns a raw handle.
RocksteadyMigrationManager* ParkManager(MasterServer* master,
                                        std::shared_ptr<RocksteadyMigrationManager> manager) {
  auto* state = GetServerMigrationState(master);
  state->inbound.push_back(manager.get());
  state->owned.push_back(std::move(manager));
  return state->inbound.back();
}

// Pseudo-segment ids for synchronous re-replication streams (distinct from
// real log segments; only load matters for these replicas).
constexpr uint32_t kSyncReplStreamBase = 0x40000000;

}  // namespace

RocksteadyMigrationManager::RocksteadyMigrationManager(
    MasterServer* target, TableId table, KeyHash start_hash, KeyHash end_hash, ServerId source,
    RocksteadyOptions options, std::function<void(const MigrationStats&)> done)
    : target_(target),
      table_(table),
      start_hash_(start_hash),
      end_hash_(end_hash),
      source_(source),
      options_(std::move(options)),
      done_(std::move(done)) {
  source_node_ = target_->coordinator().NodeOf(source_);
}

RocksteadyMigrationManager::~RocksteadyMigrationManager() = default;

void RocksteadyMigrationManager::ManagerTick(std::function<void()> fn) {
  // §3.1.2: the migration manager runs as an asynchronous continuation on
  // the target's dispatch core; §4.3: it "requires little CPU".
  target_->cores().EnqueueDispatch(target_->costs().dispatch_manager_ns, std::move(fn));
}

void RocksteadyMigrationManager::ControlCall(
    NodeId to, std::function<std::unique_ptr<RpcRequest>()> make_request,
    std::function<void(Status, std::unique_ptr<RpcResponse>)> cb, int attempt) {
  // Build the request before the Call: the callback lambda below moves
  // make_request, and argument evaluation order is unspecified.
  std::unique_ptr<RpcRequest> request = make_request();
  target_->rpc().Call(
      target_->node(), to, std::move(request),
      [this, to, make_request = std::move(make_request), cb = std::move(cb), attempt](
          Status status, std::unique_ptr<RpcResponse> response) mutable {
        if (aborted_ || target_->crashed()) {
          return;
        }
        if (status == Status::kOk || attempt >= kMaxControlAttempts) {
          cb(status, std::move(response));
          return;
        }
        // The peer may be mid-crash-restart; re-issue after a backoff. The
        // server side dedups, so a late duplicate cannot double-apply.
        const Tick backoff = std::min<Tick>(target_->costs().retry_backoff_min_ns << attempt,
                                            target_->costs().wrong_server_backoff_max_ns) +
                             target_->rng().Uniform(target_->costs().retry_backoff_min_ns);
        target_->sim().After(backoff, [this, to, make_request = std::move(make_request),
                                       cb = std::move(cb), attempt]() mutable {
          if (aborted_ || target_->crashed()) {
            return;
          }
          ControlCall(to, std::move(make_request), std::move(cb), attempt + 1);
        });
      },
      target_->costs().migration_rpc_timeout_ns);
}

void RocksteadyMigrationManager::HeartbeatLoop() {
  // Once a budget abort has been requested, stop renewing the lease: if the
  // coordinator is unreachable the lease watchdog becomes the abort path of
  // last resort, and keeping the lease alive would wedge the migration.
  if (finished_ || aborted_ || abort_requested_ || target_->crashed()) {
    return;
  }
  auto heartbeat = std::make_unique<MigrationHeartbeatRequest>();
  heartbeat->source = source_;
  heartbeat->target = target_->id();
  heartbeat->table = table_;
  // Lease renewals double as a piggyback channel: mid-migration, the
  // target's load telemetry reaches the coordinator at heartbeat cadence
  // (faster than the ping sweep), so the planner sees a migration target's
  // load freshly while it matters most.
  if (target_->piggyback_provider) {
    heartbeat->piggyback = target_->piggyback_provider();
  }
  target_->rpc().Call(target_->node(), target_->coordinator().node(), std::move(heartbeat),
                      [](Status, std::unique_ptr<RpcResponse>) {},
                      target_->costs().rpc_timeout_ns);
  target_->sim().After(target_->costs().migration_heartbeat_interval_ns,
                       [this] { HeartbeatLoop(); });
}

void RocksteadyMigrationManager::Start() {
  stats_.start_time = target_->sim().now();
  if (target_->draining()) {
    // A draining master only sheds tablets. Refusing here (not just at the
    // kMigrateTablet handler) also covers direct manager construction and
    // closes the race where the operator drains while a migration request
    // is in flight. Nothing global changed yet; the migration never starts.
    LOG_INFO("migration: target %u is draining; refusing inbound migration", target_->id());
    finished_ = true;
    phase_ = Phase::kDone;
    stats_.end_time = target_->sim().now();
    if (done_) {
      auto done = std::move(done_);
      done_ = nullptr;
      target_->sim().After(0, [done = std::move(done), stats = stats_] { done(stats); });
    }
    return;
  }
  auto make_prepare = [this]() -> std::unique_ptr<RpcRequest> {
    auto prepare = std::make_unique<PrepareMigrationRequest>();
    prepare->table = table_;
    prepare->start_hash = start_hash_;
    prepare->end_hash = end_hash_;
    prepare->target = target_->id();
    prepare->freeze = options_.mode != MigrationMode::kSourceOwns;
    return prepare;
  };
  ControlCall(
      source_node_, std::move(make_prepare),
      [this](Status status, std::unique_ptr<RpcResponse> response) {
        if (status != Status::kOk || response->status != Status::kOk) {
          // The re-drive budget is spent, or the source authoritatively no
          // longer holds the tablet (recovery re-homed it while we were
          // asking). Nothing global changed yet, so the migration just
          // never starts.
          LOG_ERROR("migration: PrepareMigration failed (%d)", static_cast<int>(status));
          finished_ = true;
          phase_ = Phase::kDone;
          stats_.end_time = target_->sim().now();
          if (done_) {
            done_(stats_);
          }
          return;
        }
        OnPrepared(static_cast<PrepareMigrationResponse&>(*response));
      },
      /*attempt=*/1);
}

void RocksteadyMigrationManager::OnPrepared(const PrepareMigrationResponse& response) {
  SetUpPartitions(response.num_hash_buckets);
  round_start_horizon_ = response.version_horizon;
  // Phase boundary: partitions laid out, nothing pulled yet.
  DebugAudit(*this, "migration manager after prepare");

  if (options_.mode == MigrationMode::kSourceOwns) {
    // Pre-copy comparison: no ownership transfer, no lineage; replayed data
    // is synchronously re-replicated. Just start pulling rounds.
    StartRound(0);
    return;
  }

  // Immediate ownership transfer. Seed the version horizon so local writes
  // always beat replayed source records (any-order replay safety).
  target_->objects().RaiseVersionHorizon(response.version_horizon);
  target_->objects().tablets().Add(
      Tablet{table_, start_hash_, end_hash_, TabletState::kMigrationTarget});
  PriorityPullManager::Options pp_options;
  pp_options.max_batch = options_.priority_pull_batch;
  pp_options.enabled = options_.mode == MigrationMode::kRocksteady;
  priority_pulls_ =
      std::make_unique<PriorityPullManager>(target_, source_node_, table_, pp_options);
  priority_pulls_->set_side_log(side_logs_.back().get());
  target_->set_migration_hooks(this);

  // §3.4: register the source's dependency on our log tail at the
  // coordinator, together with the ownership change (one contact). Both
  // RPCs are idempotent at the coordinator, so they re-drive through a
  // coordinator crash-restart window.
  const auto head = target_->objects().log().HeadPosition();
  auto make_register = [this, head]() -> std::unique_ptr<RpcRequest> {
    auto reg = std::make_unique<RegisterDependencyRequest>();
    reg->source = source_;
    reg->target = target_->id();
    reg->table = table_;
    reg->start_hash = start_hash_;
    reg->end_hash = end_hash_;
    reg->target_log_segment = head.first;
    reg->target_log_offset = head.second;
    return reg;
  };
  ControlCall(
      target_->coordinator().node(), std::move(make_register),
      [this](Status status, std::unique_ptr<RpcResponse>) {
        if (status != Status::kOk) {
          // Coordinator unreachable beyond the re-drive budget: unwind the
          // local ownership state rather than serve a range the coordinator
          // never learned we own.
          Abort();
          return;
        }
        HeartbeatLoop();
        auto make_own = [this]() -> std::unique_ptr<RpcRequest> {
          auto own = std::make_unique<UpdateOwnershipRequest>();
          own->table = table_;
          own->start_hash = start_hash_;
          own->end_hash = end_hash_;
          own->new_owner = target_->id();
          return own;
        };
        ControlCall(target_->coordinator().node(), std::move(make_own),
                    [this](Status status, std::unique_ptr<RpcResponse>) {
                      if (status != Status::kOk) {
                        // Dependency registered but ownership never moved;
                        // the lease watchdog will clear the stale row.
                        Abort();
                        return;
                      }
                      StartRound(0);
                    },
                    /*attempt=*/1);
      },
      /*attempt=*/1);
}

void RocksteadyMigrationManager::SetUpPartitions(uint64_t num_buckets) {
  // Map the migrating hash range onto the source's bucket space; §3.1.1:
  // concurrent Pulls work on disjoint bucket regions. num_buckets = 2^k.
  const int log2 = std::countr_zero(num_buckets);
  const uint64_t first_bucket = start_hash_ >> (64 - log2);
  const uint64_t last_bucket = end_hash_ >> (64 - log2);
  const uint64_t begin = first_bucket;
  const uint64_t end = last_bucket + 1;
  partitions_.clear();
  side_logs_.clear();
  const uint64_t span = end - begin;
  const size_t parts = std::min<size_t>(options_.num_partitions, span);
  for (size_t i = 0; i < parts; i++) {
    Partition partition;
    partition.bucket_begin = begin + span * i / parts;
    partition.bucket_end = begin + span * (i + 1) / parts;
    partition.cursor = partition.bucket_begin;
    partitions_.push_back(partition);
    side_logs_.push_back(std::make_unique<SideLog>(&target_->objects().log()));
  }
  // One extra side log for PriorityPull replay.
  side_logs_.push_back(std::make_unique<SideLog>(&target_->objects().log()));
  // Pacing starts at full aggressiveness (window = every partition, full
  // byte budget): with no overload signal the schedule is identical to the
  // unpaced protocol, which is what makes adaptive pacing safe to default on.
  pacing_window_ = partitions_.size();
  pacing_budget_ = options_.pull_budget_bytes;
  next_partition_ = 0;
}

void RocksteadyMigrationManager::StartRound(Version min_version) {
  phase_ = Phase::kPulling;
  round_min_version_ = min_version;
  stats_.rounds++;
  for (auto& partition : partitions_) {
    partition.cursor = partition.bucket_begin;
    partition.source_exhausted = false;
    partition.pull_retries = 0;
  }
  PumpPulls();
}

void RocksteadyMigrationManager::PumpPulls() {
  if (aborted_ || abort_requested_ || !options_.background_pulls) {
    return;
  }
  if (memory_paused_) {
    return;  // The emergency-clean loop re-pumps once below the low watermark.
  }
  if (CheckMemoryBudget()) {
    return;  // Just entered the pause.
  }
  // Issue pulls round-robin from a rotating cursor so a shrunken pacing
  // window still serves every partition fairly instead of starving the
  // high-numbered ones.
  //
  // Under a memory budget, additionally cap concurrency by the headroom
  // left below the high watermark: each in-flight pull can allocate at most
  // one fresh side-log segment, so never keeping more pulls outstanding
  // than whole segments of headroom bounds the overshoot past the
  // watermark to roughly one segment.
  size_t window = pacing_window_;
  const uint64_t budget = target_->config().memory_budget_bytes;
  if (budget != 0) {
    const uint64_t high = static_cast<uint64_t>(
        static_cast<double>(budget) * target_->config().memory_high_watermark);
    const uint64_t in_use = target_->memory_in_use();
    const uint64_t headroom = high > in_use ? high - in_use : 0;
    window = std::min<size_t>(
        window,
        std::max<size_t>(1, headroom / target_->objects().log().segment_size()));
  }
  const size_t n = partitions_.size();
  const size_t base = next_partition_;
  size_t in_flight = InFlightPulls();
  for (size_t step = 0; step < n && in_flight < window; step++) {
    const size_t i = (base + step) % n;
    Partition& partition = partitions_[i];
    if (!partition.pull_in_flight && !partition.source_exhausted &&
        partition.replay_backlog < options_.max_replay_backlog) {
      IssuePull(i);
      in_flight++;
      next_partition_ = (i + 1) % n;
    }
  }
}

size_t RocksteadyMigrationManager::InFlightPulls() const {
  size_t count = 0;
  for (const auto& partition : partitions_) {
    count += partition.pull_in_flight ? 1 : 0;
  }
  return count;
}

void RocksteadyMigrationManager::OnLoadSignal(const SourceLoadHeader& load, bool rejected) {
  if (!options_.adaptive_pacing || partitions_.empty()) {
    return;
  }
  const bool overloaded =
      rejected || (load.valid &&
                   (load.client_queue_depth >= options_.pacing_queue_threshold ||
                    load.dispatch_backlog_ns >= options_.pacing_backlog_threshold_ns ||
                    load.recent_p999_ns >= options_.pacing_p999_threshold_ns));
  if (overloaded) {
    // Multiplicative decrease: halve concurrency and per-pull bytes.
    pacing_window_ = std::max<size_t>(1, pacing_window_ / 2);
    pacing_budget_ = std::max(options_.min_pull_budget_bytes, pacing_budget_ / 2);
    stats_.pacing_backoffs++;
  } else {
    // Additive increase back toward full aggressiveness.
    if (pacing_window_ < partitions_.size()) {
      pacing_window_++;
    }
    pacing_budget_ = std::min(options_.pull_budget_bytes,
                              pacing_budget_ + options_.pull_budget_increment_bytes);
  }
}

void RocksteadyMigrationManager::IssuePull(size_t partition_index) {
  Partition& partition = partitions_[partition_index];
  partition.pull_in_flight = true;
  ManagerTick([this, partition_index] {
    if (aborted_) {
      return;
    }
    Partition& partition = partitions_[partition_index];
    auto request = std::make_unique<PullRequest>();
    request->table = table_;
    request->start_hash = start_hash_;
    request->end_hash = end_hash_;
    request->bucket_begin = partition.bucket_begin;
    request->bucket_end = partition.bucket_end;
    request->cursor = partition.cursor;
    request->budget_bytes = pacing_budget_;
    request->min_version = round_min_version_;
    target_->rpc().Call(
        target_->node(), source_node_, std::move(request),
        [this, partition_index](Status status, std::unique_ptr<RpcResponse> response) {
          if (aborted_ || target_->crashed()) {
            return;
          }
          if (status != Status::kOk) {
            // Source unreachable. Re-drive a bounded number of times — a
            // brief outage or a lost response must not strand the
            // partition — then stall and let the coordinator's recovery or
            // lease watchdog decide the migration's fate.
            Partition& partition = partitions_[partition_index];
            partition.pull_in_flight = false;
            if (++partition.pull_retries <= kMaxPullRetries) {
              target_->sim().After(target_->costs().recovering_retry_hint_ns,
                                   [this, partition_index] {
                                     if (aborted_ || target_->crashed()) {
                                       return;
                                     }
                                     Partition& retry = partitions_[partition_index];
                                     if (!retry.pull_in_flight && !retry.source_exhausted) {
                                       IssuePull(partition_index);
                                     }
                                   });
            }
            return;
          }
          partitions_[partition_index].pull_retries = 0;
          OnPullResponse(partition_index,
                         std::unique_ptr<PullResponse>(
                             static_cast<PullResponse*>(response.release())));
        },
        target_->costs().migration_rpc_timeout_ns);
  });
}

void RocksteadyMigrationManager::OnPullResponse(size_t partition_index,
                                                std::unique_ptr<PullResponse> response) {
  Partition& partition = partitions_[partition_index];
  partition.pull_in_flight = false;
  if (response->status == Status::kRetryLater) {
    // The source's admission control shed this pull at dispatch: the cursor
    // did not move and no bytes came back. Treat it as the strongest
    // congestion signal, then retry at the source's hint plus seeded jitter
    // (through PumpPulls, so the shrunken window decides who goes first).
    stats_.pull_rejections++;
    OnLoadSignal(response->load, /*rejected=*/true);
    const Tick resume_at = std::max(response->retry_after, target_->sim().now());
    const Tick jitter = target_->rng().Uniform(target_->costs().retry_backoff_min_ns);
    target_->sim().At(resume_at + jitter, [this] {
      if (aborted_ || target_->crashed()) {
        return;
      }
      PumpPulls();
    });
    return;
  }
  if (response->status != Status::kOk) {
    // The source delivered an error (e.g. it lost the tablet to recovery
    // mid-pull). Bounded re-drive, same as a transport failure.
    if (++partition.pull_retries <= kMaxPullRetries) {
      target_->sim().After(target_->costs().recovering_retry_hint_ns, [this, partition_index] {
        if (aborted_ || target_->crashed()) {
          return;
        }
        Partition& retry = partitions_[partition_index];
        if (!retry.pull_in_flight && !retry.source_exhausted) {
          PumpPulls();
        }
      });
    }
    return;
  }
  OnLoadSignal(response->load, /*rejected=*/false);
  // §3.1.1: the frontier over the source's hash buckets is monotonic — a
  // Pull response can only advance this partition's cursor, never rewind it
  // (a rewind would re-migrate records and shadow newer versions).
  ROCKSTEADY_DCHECK_GE(response->next_cursor, partition.cursor);
  ROCKSTEADY_DCHECK_LE(response->next_cursor, partition.bucket_end);
  partition.cursor = response->next_cursor;
  partition.source_exhausted = response->done;
  stats_.pulls_completed++;
  stats_.last_pull_time = target_->sim().now();
  stats_.bytes_pulled += response->records.size();
  stats_.records_pulled += response->record_count;
  if (bytes_timeline_ != nullptr) {
    bytes_timeline_->Add(target_->sim().now(), response->records.size());
  }

  const bool sync_rerepl =
      !options_.lazy_rereplication || options_.mode == MigrationMode::kSourceOwns;

  if (response->record_count > 0) {
    partition.replay_backlog++;
    auto shared = std::make_shared<PullResponse>(std::move(*response));
    // §3.1.2/§3.1.3: replay on any idle worker, lowest priority, into this
    // partition's side log (no contention with other replay workers).
    target_->cores().EnqueueWorker(
        {Priority::kMigration,
         [this, shared, partition_index] {
           const HashTable& table = target_->objects().hash_table();
           size_t offset = 0;
           size_t replayed = 0;
           while (offset < shared->records.size()) {
             LogEntryView entry;
             if (!ReadEntry(shared->records.data() + offset, shared->records.size() - offset,
                            &entry)) {
               break;
             }
             // Software pipeline: peek the next record's header (cheap fixed
             // prefix, no checksum) and prefetch its hash bucket so the next
             // Replay's random probe overlaps this one's side-log append.
             const size_t next = offset + entry.header.TotalLength();
             if (next + sizeof(LogEntryHeader) <= shared->records.size()) {
               LogEntryHeader peek;
               std::memcpy(&peek, shared->records.data() + next, sizeof(peek));
               table.PrefetchBucket(peek.key_hash);
             }
             target_->objects().Replay(entry, side_logs_[partition_index].get());
             replayed++;
             offset = next;
           }
           return target_->costs().ReplayCost(replayed, shared->records.size());
         },
         [this, shared, partition_index, sync_rerepl] {
           Partition& partition = partitions_[partition_index];
           if (sync_rerepl) {
             // Fig. 9c / ablation: replicated before this partition's next
             // pull proceeds — re-replication is on the migration fast path.
             const uint32_t stream =
                 kSyncReplStreamBase + static_cast<uint32_t>(partition_index);
             stats_.rereplicated_bytes += shared->records.size();
             target_->cores().EnqueueWorker(
                 {Priority::kReplication,
                  [this, shared] {
                    return target_->costs().ReplicationSrcCost(shared->records.size());
                  },
                  [this, shared, stream, partition_index] {
                    target_->replicas().Replicate(
                        stream, 0, shared->records.data(), shared->records.size(),
                        [this, partition_index](Status) {
                          if (aborted_) {
                            return;
                          }
                          partitions_[partition_index].replay_backlog--;
                          PumpPulls();
                          OnRoundComplete();
                        });
                  }});
             return;
           }
           partition.replay_backlog--;
           PumpPulls();
           OnRoundComplete();
         }});
  }
  PumpPulls();
  OnRoundComplete();
}

bool RocksteadyMigrationManager::CheckMemoryBudget() {
  const uint64_t budget = target_->config().memory_budget_bytes;
  if (budget == 0) {
    return false;
  }
  const uint64_t in_use = target_->memory_in_use();
  const auto high = static_cast<uint64_t>(target_->config().memory_high_watermark *
                                          static_cast<double>(budget));
  if (in_use < high) {
    return false;
  }
  EnterMemoryPause();
  return true;
}

void RocksteadyMigrationManager::EnterMemoryPause() {
  if (memory_paused_ || aborted_ || finished_) {
    return;
  }
  memory_paused_ = true;
  futile_cleans_ = 0;
  pause_min_in_use_ = target_->memory_in_use();
  stats_.memory_pauses++;
  LOG_INFO("migration: target %u over memory high watermark (%llu in use), pausing pulls",
           target_->id(), static_cast<unsigned long long>(pause_min_in_use_));
  ScheduleEmergencyClean();
}

void RocksteadyMigrationManager::ScheduleEmergencyClean() {
  // Emergency cleaning runs as migration-priority worker work charged its
  // modeled cost, so it competes with replay for idle workers rather than
  // happening for free.
  auto cleaned = std::make_shared<size_t>(0);
  target_->cores().EnqueueWorker(
      {Priority::kMigration,
       [this, cleaned] {
         const uint64_t before = target_->objects().cleaner().bytes_relocated();
         *cleaned = target_->objects().RunEmergencyCleaner(1);
         const uint64_t relocated = target_->objects().cleaner().bytes_relocated() - before;
         return target_->costs().CleanSegmentCost(static_cast<size_t>(relocated));
       },
       [this, cleaned] {
         cleaned_last_ = *cleaned;
         stats_.emergency_clean_segments += *cleaned;
         OnEmergencyCleanDone();
       }});
}

void RocksteadyMigrationManager::OnEmergencyCleanDone() {
  if (aborted_ || finished_ || abort_requested_ || target_->crashed()) {
    return;
  }
  const uint64_t budget = target_->config().memory_budget_bytes;
  const uint64_t in_use = target_->memory_in_use();
  const auto low = static_cast<uint64_t>(target_->config().memory_low_watermark *
                                         static_cast<double>(budget));
  if (in_use <= low) {
    memory_paused_ = false;
    LOG_INFO("migration: target %u back under low watermark (%llu in use), resuming pulls",
             target_->id(), static_cast<unsigned long long>(in_use));
    ManagerTick([this] { PumpPulls(); });
    return;
  }
  // Still over the low watermark. "Progress" means a new in-use minimum for
  // this pause — that covers both a pass that cleaned nothing and one that
  // cleaned a segment yet freed no net memory (e.g. relocations re-filled
  // the head as fast as victims were reclaimed).
  if (in_use < pause_min_in_use_) {
    pause_min_in_use_ = in_use;
    futile_cleans_ = 0;
  } else if (++futile_cleans_ >= kMaxFutileCleans) {
    AbortOverBudget();
    return;
  }
  ScheduleEmergencyClean();
}

void RocksteadyMigrationManager::DrainToBudget() {
  const uint64_t budget = target_->config().memory_budget_bytes;
  if (budget == 0 || target_->crashed() || target_->memory_in_use() <= budget) {
    return;
  }
  const uint64_t before_in_use = target_->memory_in_use();
  auto cleaned = std::make_shared<size_t>(0);
  target_->cores().EnqueueWorker(
      {Priority::kMigration,
       [this, cleaned] {
         const uint64_t before = target_->objects().cleaner().bytes_relocated();
         *cleaned = target_->objects().RunEmergencyCleaner(1);
         const uint64_t relocated = target_->objects().cleaner().bytes_relocated() - before;
         return target_->costs().CleanSegmentCost(static_cast<size_t>(relocated));
       },
       [this, cleaned, before_in_use] {
         stats_.emergency_clean_segments += *cleaned;
         // Recurse only while memory actually shrinks: a fully-packed log
         // relocates as many bytes as it frees, and looping on that would
         // never terminate.
         if (*cleaned > 0 && target_->memory_in_use() < before_in_use) {
           DrainToBudget();
         }
       }});
}

void RocksteadyMigrationManager::AbortOverBudget() {
  if (aborted_ || finished_ || abort_requested_) {
    return;
  }
  abort_requested_ = true;
  stats_.aborted_over_budget = true;
  LOG_INFO("migration: tablet does not fit target %u's memory budget, aborting to source",
           target_->id());
  if (options_.mode == MigrationMode::kSourceOwns) {
    // Pre-copy mode: the source never stopped owning or serving the tablet;
    // dropping our partial copy is the whole abort.
    Abort();
    return;
  }
  // Ownership-transfer mode: ask the coordinator to drive the §3.4 lineage
  // abort (ownership back to the source, our durable log tail replayed there
  // from backups — acked writes survive). On success the coordinator's abort
  // path re-enters this manager through the abort_inbound_migration hook. If
  // the coordinator stays unreachable past the re-drive budget, the stopped
  // heartbeats let the lease watchdog abort the migration instead.
  auto make_abort = [this]() -> std::unique_ptr<RpcRequest> {
    auto abort = std::make_unique<AbortMigrationRequest>();
    abort->source = source_;
    abort->target = target_->id();
    abort->table = table_;
    return abort;
  };
  ControlCall(target_->coordinator().node(), std::move(make_abort),
              [](Status, std::unique_ptr<RpcResponse>) {}, /*attempt=*/1);
}

void RocksteadyMigrationManager::AuditInvariants(AuditReport* report) const {
  if (!partitions_.empty() && (pacing_window_ < 1 || pacing_window_ > partitions_.size())) {
    report->Fail("migration: pacing window %zu outside [1, %zu]", pacing_window_,
                 partitions_.size());
  }
  for (size_t i = 0; i < partitions_.size(); i++) {
    const Partition& partition = partitions_[i];
    if (partition.bucket_begin > partition.bucket_end) {
      report->Fail("migration: partition %zu has inverted bucket range [%llu, %llu)", i,
                   static_cast<unsigned long long>(partition.bucket_begin),
                   static_cast<unsigned long long>(partition.bucket_end));
    }
    if (partition.cursor < partition.bucket_begin || partition.cursor > partition.bucket_end) {
      report->Fail("migration: partition %zu cursor %llu outside [%llu, %llu)", i,
                   static_cast<unsigned long long>(partition.cursor),
                   static_cast<unsigned long long>(partition.bucket_begin),
                   static_cast<unsigned long long>(partition.bucket_end));
    }
    if (partition.source_exhausted && partition.cursor < partition.bucket_end) {
      report->Fail("migration: partition %zu exhausted with cursor %llu short of %llu", i,
                   static_cast<unsigned long long>(partition.cursor),
                   static_cast<unsigned long long>(partition.bucket_end));
    }
    if (i + 1 < partitions_.size() &&
        partition.bucket_end > partitions_[i + 1].bucket_begin) {
      report->Fail("migration: partitions %zu and %zu overlap", i, i + 1);
    }
    if (partition.replay_backlog > options_.max_replay_backlog) {
      report->Fail("migration: partition %zu backlog %zu exceeds flow-control bound %zu", i,
                   partition.replay_backlog, options_.max_replay_backlog);
    }
  }
  for (const auto& side_log : side_logs_) {
    if (finished_ || aborted_) {
      // Post-commit/abort, all side-log data must have moved into the main
      // log (or been dropped); lingering pending data would be dark state.
      if (side_log->pending_entries() != 0) {
        report->Fail("migration: side log still holds %zu entries after completion",
                     side_log->pending_entries());
      }
    } else {
      side_log->AuditInvariants(report);
    }
  }
}

void RocksteadyMigrationManager::OnRoundComplete() {
  if (aborted_ || finished_) {
    return;
  }
  for (const auto& partition : partitions_) {
    if (!partition.Done()) {
      return;
    }
  }
  // Phase boundary: all pulls done, before replication/commit.
  DebugAudit(*this, "migration manager at round completion");
  // Wait for in-flight PriorityPulls to drain (their records are duplicates
  // by now, but keep the state machine tidy).
  if (priority_pulls_ != nullptr && !priority_pulls_->idle()) {
    target_->sim().After(10 * kMicrosecond, [this] { OnRoundComplete(); });
    return;
  }

  if (options_.mode == MigrationMode::kSourceOwns) {
    if (!frozen_) {
      // Round 1 done: freeze the source, then pull the delta (records
      // written during round 1 have version > round_start_horizon_).
      frozen_ = true;
      auto make_freeze = [this]() -> std::unique_ptr<RpcRequest> {
        auto prepare = std::make_unique<PrepareMigrationRequest>();
        prepare->table = table_;
        prepare->start_hash = start_hash_;
        prepare->end_hash = end_hash_;
        prepare->target = target_->id();
        prepare->freeze = true;
        return prepare;
      };
      ControlCall(
          source_node_, std::move(make_freeze),
          [this](Status status, std::unique_ptr<RpcResponse> response) {
            if (status != Status::kOk) {
              return;
            }
            const Version frozen_horizon =
                static_cast<PrepareMigrationResponse&>(*response).version_horizon;
            const Version delta_from = round_start_horizon_;
            round_start_horizon_ = frozen_horizon;
            StartRound(delta_from);
          },
          /*attempt=*/1);
      return;
    }
    // Delta round done: switch ownership and go live.
    target_->objects().RaiseVersionHorizon(round_start_horizon_);
    target_->objects().tablets().Add(
        Tablet{table_, start_hash_, end_hash_, TabletState::kNormal});
    auto make_own = [this]() -> std::unique_ptr<RpcRequest> {
      auto own = std::make_unique<UpdateOwnershipRequest>();
      own->table = table_;
      own->start_hash = start_hash_;
      own->end_hash = end_hash_;
      own->new_owner = target_->id();
      return own;
    };
    ControlCall(target_->coordinator().node(), std::move(make_own),
                [this](Status, std::unique_ptr<RpcResponse>) { CommitAndComplete(); },
                /*attempt=*/1);
    return;
  }

  if (options_.lazy_rereplication) {
    FinishLazyReplication();
  } else {
    CommitAndComplete();
  }
}

void RocksteadyMigrationManager::FinishLazyReplication() {
  if (finished_) {
    return;
  }
  finished_ = true;  // Guard against re-entry from late OnRoundComplete calls.
  phase_ = Phase::kReplicating;
  // §3.1.3 / §3.4: "At the end of migration, each side log's segments are
  // lazily replicated, and then the side log is committed into the main
  // log." The replication runs entirely in the background: bounded 64 KB
  // chunks at migration (lowest) priority, so foreground ops — and other
  // masters' foreground replication to this server's backup — never queue
  // behind it.
  struct Chunk {
    const Segment* segment;
    uint32_t offset;
    size_t length;
    bool last;
  };
  std::vector<Chunk> chunks;
  for (const auto& side_log : side_logs_) {
    for (const auto& segment : side_log->segments()) {
      stats_.rereplicated_bytes += segment->used();
      for (size_t offset = 0; offset < segment->used();
           offset += ReplicaManager::kBulkChunkBytes) {
        const size_t length =
            std::min(ReplicaManager::kBulkChunkBytes, segment->used() - offset);
        chunks.push_back(Chunk{segment.get(), static_cast<uint32_t>(offset), length,
                               offset + length >= segment->used()});
      }
    }
  }
  if (chunks.empty()) {
    CommitAndComplete();
    return;
  }
  auto remaining = std::make_shared<size_t>(chunks.size());
  for (const Chunk& chunk : chunks) {
    target_->cores().EnqueueWorker(
        {Priority::kMigration,
         [this, chunk] { return target_->costs().ReplicationSrcCost(chunk.length); },
         [this, chunk, remaining] {
           target_->replicas().ReplicateBulk(chunk.segment->id(), chunk.offset,
                                             chunk.segment->data() + chunk.offset, chunk.length,
                                             chunk.last, [this, remaining](Status) {
                                               if (--*remaining == 0) {
                                                 CommitAndComplete();
                                               }
                                             });
         }});
  }
}

void RocksteadyMigrationManager::CommitAndComplete() {
  finished_ = true;
  phase_ = Phase::kDone;
  for (auto& side_log : side_logs_) {
    side_log->Commit();
  }
  if (priority_pulls_ != nullptr) {
    priority_pulls_->Shutdown();
    stats_.priority_pull_batches = priority_pulls_->batches_issued();
    stats_.priority_pull_records = priority_pulls_->records_pulled();
  }
  if (Tablet* tablet = target_->objects().tablets().Find(table_, start_hash_)) {
    tablet->state = TabletState::kNormal;
  }
  if (target_->migration_hooks() == this) {
    target_->set_migration_hooks(nullptr);
  }
  // Tell the coordinator the lineage dependency is gone... (re-driven; if
  // every attempt dies, the lease watchdog spots the committed migration
  // and drops the stale row itself).
  if (options_.mode != MigrationMode::kSourceOwns) {
    auto make_drop = [this]() -> std::unique_ptr<RpcRequest> {
      auto drop = std::make_unique<DropDependencyRequest>();
      drop->source = source_;
      drop->target = target_->id();
      drop->table = table_;
      return drop;
    };
    ControlCall(target_->coordinator().node(), std::move(make_drop),
                [](Status, std::unique_ptr<RpcResponse>) {}, /*attempt=*/1);
  }
  // ...and tell the source it can free its copy (idempotent at the source).
  auto make_release = [this]() -> std::unique_ptr<RpcRequest> {
    auto release = std::make_unique<ReleaseTabletRequest>();
    release->table = table_;
    release->start_hash = start_hash_;
    release->end_hash = end_hash_;
    return release;
  };
  ControlCall(source_node_, std::move(make_release),
              [](Status, std::unique_ptr<RpcResponse>) {}, /*attempt=*/1);

  stats_.end_time = target_->sim().now();
  // Phase boundary: migration complete. The tablet is normal, the side logs
  // are committed, and the whole target store must be consistent.
  DebugAudit(*this, "migration manager after commit");
  DebugAudit(target_->objects(), "target ObjectManager after commit");
  LOG_INFO("migration done: %.1f MB in %.2f s (%.0f MB/s), %llu pulls, %llu pp batches",
           static_cast<double>(stats_.bytes_pulled) / 1e6, stats_.DurationSeconds(),
           stats_.RateMBps(), static_cast<unsigned long long>(stats_.pulls_completed),
           static_cast<unsigned long long>(stats_.priority_pull_batches));
  if (done_) {
    done_(stats_);
  }
  // The adopted side segments' fragmented tails just became cleanable;
  // consolidate until the target is back under its budget.
  DrainToBudget();
}

void RocksteadyMigrationManager::Abort() {
  if (aborted_ || finished_) {
    return;
  }
  aborted_ = true;
  phase_ = Phase::kAborted;
  if (priority_pulls_ != nullptr) {
    priority_pulls_->Shutdown();
  }
  for (auto& side_log : side_logs_) {
    target_->objects().DropSideLogEntries(*side_log);
    side_log->Abort();
  }
  target_->objects().tablets().Remove(table_, start_hash_, end_hash_);
  if (target_->migration_hooks() == this) {
    target_->set_migration_hooks(nullptr);
  }
  // Phase boundary: after an abort no half-replayed state may survive — all
  // side-log refs dropped from the hash table, side segments deregistered.
  DebugAudit(*this, "migration manager after abort");
  DebugAudit(target_->objects(), "target ObjectManager after abort");
  LOG_INFO("migration aborted on target %u", target_->id());
}

Tick RocksteadyMigrationManager::OnMissingRecord(TableId table, KeyHash hash) {
  assert(table == table_);
  (void)table;
  return priority_pulls_->OnMissingRecord(hash);
}

bool RocksteadyMigrationManager::IsKnownAbsent(TableId table, KeyHash hash) {
  (void)table;
  return priority_pulls_ != nullptr && priority_pulls_->IsKnownAbsent(hash);
}

bool RocksteadyMigrationManager::ServiceReadSynchronously(TableId table, KeyHash hash,
                                                          RpcContext* context) {
  (void)table;
  if (!options_.sync_priority_pulls || priority_pulls_ == nullptr) {
    return false;
  }
  return priority_pulls_->ServiceSynchronously(hash, context);
}

void InstallRocksteadyHandlers(MasterServer* master) {
  InstallRocksteadySourceHandlers(master);
  master->endpoint().Register(Opcode::kMigrateTablet,
                              ROCKSTEADY_IDEMPOTENT("migration control is re-drivable: a second "
                                                    "MigrateTablet for an in-flight range joins "
                                                    "the existing manager instead of restarting")
                              [master](RpcContext context) {
    auto& request = context.As<MigrateTabletRequest>();
    if (master->draining()) {
      // A draining master only sheds tablets; refusing here (rather than at
      // the planner, which already never targets draining servers) closes
      // the race where an operator drains while a MigrateTablet is in
      // flight.
      auto response = std::make_unique<StatusResponse>();
      response->status = Status::kInvalidState;
      context.reply(std::move(response));
      return;
    }
    auto* manager = ParkManager(
        master, std::make_shared<RocksteadyMigrationManager>(
                    master, request.table, request.start_hash, request.end_hash, request.source,
                    RocksteadyOptions{}, nullptr));
    manager->Start();
    context.reply(std::make_unique<StatusResponse>());
  });
}

void EnableMigration(Cluster* cluster) {
  for (size_t i = 0; i < cluster->num_masters(); i++) {
    InstallRocksteadyHandlers(&cluster->master(i));
    InstallBaselineMigrationHandlers(&cluster->master(i));
  }
  cluster->coordinator().abort_inbound_migration = [](MasterServer* target, TableId table) {
    auto* state = GetServerMigrationState(target);
    for (auto* manager : state->inbound) {
      if (!manager->finished()) {
        manager->Abort();
      }
    }
    (void)table;
  };
}

RocksteadyMigrationManager* StartRocksteadyMigration(
    Cluster* cluster, TableId table, KeyHash start_hash, KeyHash end_hash, size_t source_index,
    size_t target_index, const RocksteadyOptions& options,
    std::function<void(const MigrationStats&)> done) {
  // The paper's client first splits the tablet, then issues MigrateTablet.
  // Splits at an existing boundary are no-ops, so kOk is the only legal
  // outcome here: the table exists and no migration overlaps it yet.
  const Status split_low = cluster->coordinator().SplitTablet(table, start_hash);
  ROCKSTEADY_DCHECK(split_low == Status::kOk);
  if (end_hash != ~0ull) {
    const Status split_high = cluster->coordinator().SplitTablet(table, end_hash + 1);
    ROCKSTEADY_DCHECK(split_high == Status::kOk);
  }
  MasterServer& target = cluster->master(target_index);
  auto* manager = ParkManager(
      &target, std::make_shared<RocksteadyMigrationManager>(
                   &target, table, start_hash, end_hash, cluster->master(source_index).id(),
                   options, std::move(done)));
  manager->Start();
  return manager;
}

}  // namespace rocksteady
