#include "src/migration/priority_pull_manager.h"

#include "src/common/logging.h"

namespace rocksteady {

Tick PriorityPullManager::OnMissingRecord(KeyHash hash) {
  Simulator& sim = target_->sim();
  if (!options_.enabled || shutdown_) {
    // Figure 9b mode: the client can only wait for background Pulls. Hint a
    // generous delay so retries don't melt the dispatch core.
    return sim.now() + target_->costs().no_priority_pull_retry_ns;
  }
  if (!scheduled_.contains(hash)) {
    scheduled_.insert(hash);
    pending_.push_back(hash);
    if (!in_flight_) {
      IssueBatch();
    }
  }
  const Tick turnaround = target_->costs().priority_pull_turnaround_ns;
  return sim.now() + turnaround + (in_flight_ ? turnaround : 0);
}

void PriorityPullManager::IssueBatch() {
  if (shutdown_ || in_flight_ || pending_.empty()) {
    return;
  }
  auto request = std::make_unique<PriorityPullRequest>();
  request->table = table_;
  const size_t batch = std::min(options_.max_batch, pending_.size());
  for (size_t i = 0; i < batch; i++) {
    request->hashes.push_back(pending_.front());
    pending_.pop_front();
  }
  in_flight_ = true;
  batches_issued_++;
  auto requested = std::make_shared<std::vector<KeyHash>>(request->hashes);
  target_->rpc().Call(
      target_->node(), source_node_, std::move(request),
      [this, requested](Status status, std::unique_ptr<RpcResponse> response) {
        if (shutdown_ || target_->crashed()) {
          return;
        }
        in_flight_ = false;
        if (status != Status::kOk) {
          // Source unreachable: re-queue the hashes (clients are waiting on
          // them) and re-drive after a pause, a bounded number of times — a
          // genuine source crash aborts us via Shutdown() instead.
          for (const KeyHash hash : *requested) {
            pending_.push_back(hash);
          }
          if (++consecutive_failures_ <= kMaxConsecutiveFailures) {
            target_->sim().After(target_->costs().recovering_retry_hint_ns, [this] {
              if (!shutdown_ && !target_->crashed()) {
                IssueBatch();
              }
            });
          }
          return;
        }
        consecutive_failures_ = 0;
        auto shared =
            std::make_shared<PriorityPullResponse>(static_cast<PriorityPullResponse&&>(*response));
        for (const KeyHash hash : shared->not_found) {
          known_absent_.insert(hash);
          not_found_count_++;
          scheduled_.erase(hash);
        }
        // Replay the batch on any idle worker, above client priority (these
        // records have waiting clients).
        target_->cores().EnqueueWorker(
            {Priority::kPriorityPull,
             [this, shared, requested] {
               size_t offset = 0;
               size_t replayed = 0;
               while (offset < shared->records.size()) {
                 LogEntryView entry;
                 if (!ReadEntry(shared->records.data() + offset,
                                shared->records.size() - offset, &entry)) {
                   break;
                 }
                 target_->objects().Replay(entry, side_log_);
                 scheduled_.erase(entry.key_hash());
                 replayed++;
                 records_pulled_++;
                 offset += entry.header.TotalLength();
               }
               return target_->costs().ReplayCost(replayed, shared->records.size());
             },
             [this] { IssueBatch(); }});
      },
      target_->costs().migration_rpc_timeout_ns);
}

bool PriorityPullManager::ServiceSynchronously(KeyHash hash, RpcContext* context) {
  // Naive design from §4.4: one PriorityPull per key, one worker held for
  // the full round trip.
  auto shared_context = std::make_shared<RpcContext>(std::move(*context));
  sync_pulls_++;
  target_->cores().EnqueueWorkerHeld(
      {Priority::kClient, [this, hash, shared_context](std::function<void(Tick)> finish) {
         auto request = std::make_unique<PriorityPullRequest>();
         request->table = table_;
         request->hashes.push_back(hash);
         target_->rpc().Call(
             target_->node(), source_node_, std::move(request),
             [this, hash, shared_context, finish](Status status,
                                                  std::unique_ptr<RpcResponse> response) {
               auto read_response = std::make_unique<ReadResponse>();
               Tick extra = 500;
               if (status != Status::kOk) {
                 read_response->status = Status::kRetryLater;
                 read_response->retry_after =
                     target_->sim().now() + target_->costs().no_priority_pull_retry_ns;
               } else {
                 auto& pull = static_cast<PriorityPullResponse&>(*response);
                 if (pull.record_count == 0) {
                   known_absent_.insert(hash);
                   read_response->status = Status::kObjectNotFound;
                 } else {
                   LogEntryView entry;
                   if (ReadEntry(pull.records.data(), pull.records.size(), &entry)) {
                     target_->objects().Replay(entry, side_log_);
                     read_response->value.assign(entry.value);
                     read_response->version = entry.version();
                     extra = target_->costs().ReplayCost(1, pull.records.size()) +
                             target_->costs().ReadCost(entry.value.size());
                   } else {
                     read_response->status = Status::kCorruptData;
                   }
                 }
               }
               shared_context->reply(std::move(read_response));
               finish(extra);
             },
             target_->costs().migration_rpc_timeout_ns);
       }});
  return true;
}

}  // namespace rocksteady
