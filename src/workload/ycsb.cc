#include "src/workload/ycsb.h"

#include "src/cluster/cluster.h"

namespace rocksteady {

std::string YcsbWorkload::KeyAt(uint64_t id) const {
  return Cluster::MakeKey(id, config_.key_length);
}

}  // namespace rocksteady
