#include "src/workload/ycsb.h"

#include "src/cluster/cluster.h"

namespace rocksteady {

std::string YcsbWorkload::KeyAt(uint64_t id) const {
  return Cluster::MakeKey(id, config_.key_length);
}

void YcsbWorkload::KeyAtInto(uint64_t id, std::string* out) const {
  Cluster::MakeKeyInto(id, config_.key_length, out);
}

}  // namespace rocksteady
