// Open-loop workload actors.
//
// §4.1: "Clients offer a nearly open load to the cluster". Each actor draws
// Poisson arrivals at its configured rate; arrivals beyond the pipeline
// depth queue in the client (the backlog whose drain produces the paper's
// post-migration throughput overshoot, Figure 9). Latency is measured from
// *intended arrival* to completion, so client-side queueing counts — the
// open-load convention.
#ifndef ROCKSTEADY_SRC_WORKLOAD_CLIENT_ACTOR_H_
#define ROCKSTEADY_SRC_WORKLOAD_CLIENT_ACTOR_H_

#include <deque>
#include <memory>

#include "src/cluster/client.h"
#include "src/common/timeseries.h"
#include "src/workload/ycsb.h"

namespace rocksteady {

struct ClientActorConfig {
  double ops_per_second = 10'000;
  // Maximum requests in flight per actor; arrivals beyond this backlog.
  size_t max_outstanding = 8;
  Tick start_time = 0;
  Tick stop_time = 0;  // No arrivals at/after this time.
};

class ClientActor {
 public:
  ClientActor(TableId table, RamCloudClient* client, YcsbWorkload* workload,
              const ClientActorConfig& config)
      : table_(table), client_(client), workload_(workload), config_(config) {}

  // Optional recorders; any may be null.
  void set_read_latency(LatencyTimeline* timeline) { read_latency_ = timeline; }
  void set_write_latency(LatencyTimeline* timeline) { write_latency_ = timeline; }
  void set_throughput(LatencyTimeline* timeline) { throughput_ = timeline; }

  void Start();

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t failed() const { return failed_; }
  size_t backlog() const { return backlog_.size(); }

 private:
  struct PendingOp {
    YcsbWorkload::Op op;
    Tick arrival = 0;
  };

  void ScheduleNextArrival();
  void PumpBacklog();
  void Issue(const PendingOp& op);
  void Completed(Tick arrival, bool is_read, Status status);

  TableId table_;
  RamCloudClient* client_;
  YcsbWorkload* workload_;
  ClientActorConfig config_;
  LatencyTimeline* read_latency_ = nullptr;
  LatencyTimeline* write_latency_ = nullptr;
  LatencyTimeline* throughput_ = nullptr;

  size_t outstanding_ = 0;
  // Reused when an arrival issues immediately (the common case): the op key
  // is formatted into scratch_'s buffer and the write value is built once,
  // so steady-state op generation allocates nothing. Backlogged arrivals
  // still get their own PendingOp (they must outlive the arrival event).
  PendingOp scratch_;
  std::string write_value_;
  std::deque<PendingOp> backlog_;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_WORKLOAD_CLIENT_ACTOR_H_
