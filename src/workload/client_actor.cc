#include "src/workload/client_actor.h"

#include <cmath>

namespace rocksteady {

void ClientActor::Start() {
  Simulator& sim = client_->sim();
  if (sim.now() < config_.start_time) {
    sim.At(config_.start_time, [this] { ScheduleNextArrival(); });
  } else {
    ScheduleNextArrival();
  }
}

void ClientActor::ScheduleNextArrival() {
  Simulator& sim = client_->sim();
  // Poisson arrivals: exponential interarrival at the configured rate.
  const double u = std::max(1e-12, client_->rng().NextDouble());
  const double gap_seconds = -std::log(u) / config_.ops_per_second;
  const Tick gap = std::max<Tick>(1, static_cast<Tick>(gap_seconds * static_cast<double>(kSecond)));
  const Tick at = sim.now() + gap;
  if (config_.stop_time != 0 && at >= config_.stop_time) {
    return;
  }
  sim.At(at, [this] {
    Simulator& sim2 = client_->sim();
    if (outstanding_ < config_.max_outstanding) {
      workload_->NextOpInto(client_->rng(), &scratch_.op);
      scratch_.arrival = sim2.now();
      Issue(scratch_);
    } else {
      PendingOp pending;
      pending.op = workload_->NextOp(client_->rng());
      pending.arrival = sim2.now();
      backlog_.push_back(std::move(pending));
    }
    ScheduleNextArrival();
  });
}

void ClientActor::PumpBacklog() {
  while (outstanding_ < config_.max_outstanding && !backlog_.empty()) {
    Issue(backlog_.front());
    backlog_.pop_front();
  }
}

void ClientActor::Issue(const PendingOp& op) {
  outstanding_++;
  issued_++;
  // Completion closures capture only {this, arrival} — 16 bytes, inside
  // std::function's inline buffer — and the key/value go down as views the
  // client copies into pooled buffers, so issuing an op allocates nothing.
  const Tick arrival = op.arrival;
  if (op.op.is_read) {
    client_->Read(table_, op.op.key, [this, arrival](Status status, const std::string&) {
      Completed(arrival, /*is_read=*/true, status);
    });
  } else {
    if (write_value_.size() != workload_->config().value_length) {
      write_value_.assign(workload_->config().value_length, 'w');
    }
    client_->Write(table_, op.op.key, write_value_,
                   [this, arrival](Status status) { Completed(arrival, /*is_read=*/false, status); });
  }
}

void ClientActor::Completed(Tick arrival, bool is_read, Status status) {
  Simulator& sim = client_->sim();
  outstanding_--;
  if (status == Status::kOk || (is_read && status == Status::kObjectNotFound)) {
    completed_++;
    const Tick latency = sim.now() - arrival;
    if (is_read) {
      if (read_latency_ != nullptr) {
        read_latency_->Record(sim.now(), latency);
      }
    } else if (write_latency_ != nullptr) {
      write_latency_->Record(sim.now(), latency);
    }
    if (throughput_ != nullptr) {
      throughput_->Record(sim.now(), latency);
    }
  } else {
    failed_++;
  }
  PumpBacklog();
}

}  // namespace rocksteady
