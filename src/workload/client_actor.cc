#include "src/workload/client_actor.h"

#include <cmath>

namespace rocksteady {

void ClientActor::Start() {
  Simulator& sim = client_->coordinator().sim();
  if (sim.now() < config_.start_time) {
    sim.At(config_.start_time, [this] { ScheduleNextArrival(); });
  } else {
    ScheduleNextArrival();
  }
}

void ClientActor::ScheduleNextArrival() {
  Simulator& sim = client_->coordinator().sim();
  // Poisson arrivals: exponential interarrival at the configured rate.
  const double u = std::max(1e-12, sim.rng().NextDouble());
  const double gap_seconds = -std::log(u) / config_.ops_per_second;
  const Tick gap = std::max<Tick>(1, static_cast<Tick>(gap_seconds * static_cast<double>(kSecond)));
  const Tick at = sim.now() + gap;
  if (config_.stop_time != 0 && at >= config_.stop_time) {
    return;
  }
  sim.At(at, [this] {
    Simulator& sim2 = client_->coordinator().sim();
    PendingOp pending;
    pending.op = workload_->NextOp(sim2.rng());
    pending.arrival = sim2.now();
    if (outstanding_ < config_.max_outstanding) {
      Issue(std::move(pending));
    } else {
      backlog_.push_back(std::move(pending));
    }
    ScheduleNextArrival();
  });
}

void ClientActor::PumpBacklog() {
  while (outstanding_ < config_.max_outstanding && !backlog_.empty()) {
    PendingOp pending = std::move(backlog_.front());
    backlog_.pop_front();
    Issue(std::move(pending));
  }
}

void ClientActor::Issue(PendingOp op) {
  outstanding_++;
  issued_++;
  auto shared = std::make_shared<PendingOp>(std::move(op));
  if (shared->op.is_read) {
    client_->Read(table_, shared->op.key, [this, shared](Status status, const std::string&) {
      Completed(*shared, status);
    });
  } else {
    const std::string value(workload_->config().value_length, 'w');
    client_->Write(table_, shared->op.key, value,
                   [this, shared](Status status) { Completed(*shared, status); });
  }
}

void ClientActor::Completed(const PendingOp& op, Status status) {
  Simulator& sim = client_->coordinator().sim();
  outstanding_--;
  if (status == Status::kOk || (op.op.is_read && status == Status::kObjectNotFound)) {
    completed_++;
    const Tick latency = sim.now() - op.arrival;
    if (op.op.is_read) {
      if (read_latency_ != nullptr) {
        read_latency_->Record(sim.now(), latency);
      }
    } else if (write_latency_ != nullptr) {
      write_latency_->Record(sim.now(), latency);
    }
    if (throughput_ != nullptr) {
      throughput_->Record(sim.now(), latency);
    }
  } else {
    failed_++;
  }
  PumpBacklog();
}

}  // namespace rocksteady
