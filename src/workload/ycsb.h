// YCSB workload generation (Cooper et al., SoCC'10), as used in §4.1:
// "8 client machines run the YCSB-B workload (95% reads, 5% writes, keys
// chosen according to a Zipfian distribution with theta = 0.99)".
#ifndef ROCKSTEADY_SRC_WORKLOAD_YCSB_H_
#define ROCKSTEADY_SRC_WORKLOAD_YCSB_H_

#include <string>

#include "src/common/random.h"
#include "src/common/zipfian.h"
#include "src/common/types.h"

namespace rocksteady {

struct YcsbConfig {
  uint64_t num_records = 1'000'000;
  size_t key_length = 30;    // §4.1: 30 B primary keys.
  size_t value_length = 100;  // §4.1: 100 B record payloads.
  double read_fraction = 0.95;
  double theta = 0.99;

  static YcsbConfig WorkloadA() { return YcsbConfig{.read_fraction = 0.5}; }
  static YcsbConfig WorkloadB() { return YcsbConfig{.read_fraction = 0.95}; }
  static YcsbConfig WorkloadC() { return YcsbConfig{.read_fraction = 1.0}; }
};

class YcsbWorkload {
 public:
  struct Op {
    bool is_read = true;
    std::string key;
  };

  explicit YcsbWorkload(const YcsbConfig& config)
      : config_(config), zipf_(config.num_records, config.theta) {}

  Op NextOp(Random& rng) {
    Op op;
    NextOpInto(rng, &op);
    return op;
  }

  // In-place variant for hot paths: identical draws to NextOp, but formats
  // the key into op->key's existing buffer — zero allocations once the
  // buffer has grown to key_length.
  void NextOpInto(Random& rng, Op* op) {
    op->is_read = rng.NextDouble() < config_.read_fraction;
    KeyAtInto(zipf_.Next(rng), &op->key);
  }

  std::string KeyAt(uint64_t id) const;
  void KeyAtInto(uint64_t id, std::string* out) const;

  const YcsbConfig& config() const { return config_; }

 private:
  YcsbConfig config_;
  ScrambledZipfianGenerator zipf_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_WORKLOAD_YCSB_H_
