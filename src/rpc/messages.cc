#include "src/rpc/messages.h"

// Message types are header-only aggregates; this anchor keeps one
// translation unit per library component.

namespace rocksteady {}  // namespace rocksteady
