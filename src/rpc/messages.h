// RPC message types.
//
// All RAMCloud/Rocksteady operations travel as typed request/response objects
// through the simulated fabric. Payloads are real C++ objects (records carry
// real bytes); WireSize() declares how many bytes the message charges against
// link bandwidth, mirroring a compact binary wire format.
#ifndef ROCKSTEADY_SRC_RPC_MESSAGES_H_
#define ROCKSTEADY_SRC_RPC_MESSAGES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/intrusive_ptr.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sim/network.h"

namespace rocksteady {

enum class Opcode : uint8_t {
  kInvalid = 0,
  // Data path.
  kRead,
  kWrite,
  kRemove,
  kMultiGet,       // By full key (Figure 3 workload).
  kMultiGetHash,   // By primary key hash (index-driven reads, Figure 4).
  kIndexLookup,    // Short secondary-index range scan: returns key hashes.
  kIndexInsert,    // Master -> indexlet owner on writes to indexed tables.
  // Replication and recovery.
  kBackupWrite,
  kGetRecoveryData,
  // Coordinator.
  kGetTableConfig,
  kRegisterDependency,
  kDropDependency,
  kUpdateOwnership,
  kPing,                // Coordinator -> server: failure detector probe.
  kMigrationHeartbeat,  // Target manager -> coordinator: lease renewal.
  kAbortMigration,      // Target manager -> coordinator: abort gracefully.
  // Rocksteady migration.
  kMigrateTablet,     // Client -> target: start migration.
  kPrepareMigration,  // Target -> source: mark tablet immutable, get horizon.
  kPull,              // Target -> source: bulk batch (lowest priority).
  kPriorityPull,      // Target -> source: specific hashes (highest priority).
  kReleaseTablet,     // Target -> source: migration done, drop your copy.
  // Baseline (pre-existing RAMCloud) migration.
  kBaselineMigrate,  // Client -> source: start source-driven migration.
  kBaselineReplay,   // Source -> target: batch of records to replay.
  // Cluster operations (drain/decommission protocol). Appended last so the
  // pre-existing opcodes keep their values (recorded bench trace hashes
  // depend on wire timing, not values, but stability costs nothing).
  kBeginDrain,      // Operator -> coordinator: start evacuating a master.
  kActivateServer,  // Operator -> coordinator: admit standby / cancel drain.
  kDrainStatus,     // Operator -> coordinator: poll drain progress.
};

// Fixed per-RPC wire overhead (headers, opcode, ids).
inline constexpr size_t kRpcHeaderBytes = 32;

// Requests are intrusively refcounted: the transport shares one request
// object between the pending-call table and every in-flight (re)transmission
// without a separately-allocated shared_ptr control block.
struct RpcRequest : RefCounted {
  virtual ~RpcRequest() = default;
  virtual Opcode op() const = 0;
  virtual size_t WireSize() const = 0;
};

struct RpcResponse {
  virtual ~RpcResponse() = default;
  virtual size_t WireSize() const { return kRpcHeaderBytes; }
  // Deep copy, used by the transport's duplicate-suppression cache to replay
  // a completed call's response to a retransmitted request. Pure virtual so
  // a new response type cannot silently slice when cached.
  virtual std::unique_ptr<RpcResponse> Clone() const = 0;

  Status status = Status::kOk;
};

// Source-load signals piggybacked on pull replies (adaptive pacing, §4.2):
// the migration target reads these to modulate its in-flight pull count and
// per-pull byte budget with an AIMD controller, backing off when client tail
// latency at the source degrades and ramping up when headroom returns.
struct SourceLoadHeader {
  bool valid = false;                // Set by sources that fill the header.
  uint32_t client_queue_depth = 0;   // Queued kClient-priority worker tasks.
  Tick dispatch_backlog_ns = 0;      // How far behind the dispatch core is.
  Tick recent_p999_ns = 0;           // Recent windowed p99.9 client latency.
};

// --- Generic piggyback blobs (heartbeat/lease payload hook). ---
// Control-plane RPCs that already flow periodically (failure-detector ping
// replies, migration lease heartbeats) can carry one optional opaque payload
// instead of every subsystem growing a parallel RPC. The kind tags the
// payload for routing at the coordinator; a receiver with no handler for the
// kind simply ignores the blob. The bytes are an encoding owned entirely by
// the producing subsystem (e.g. src/rebalance's load-telemetry frames) — the
// RPC layer never interprets them.
enum class PiggybackKind : uint8_t {
  kNone = 0,
  kLoadTelemetry = 1,  // src/rebalance: per-tablet load frame.
};

struct PiggybackBlob {
  PiggybackKind kind = PiggybackKind::kNone;
  std::vector<uint8_t> bytes;

  bool empty() const { return kind == PiggybackKind::kNone || bytes.empty(); }
  // Charged wire bytes: kind tag + length prefix + payload (nothing if unset).
  size_t WireSize() const { return empty() ? 0 : bytes.size() + 3; }
};

// Every concrete response type declares itself copy-cloneable with this.
#define ROCKSTEADY_CLONEABLE_RESPONSE(Type) \
  std::unique_ptr<RpcResponse> Clone() const override { return std::make_unique<Type>(*this); }

// Convenience base: empty response carrying only a status.
struct StatusResponse : RpcResponse {
  ROCKSTEADY_CLONEABLE_RESPONSE(StatusResponse)
};

// ------------------------------------------------------------- Data path.

struct ReadRequest : RpcRequest {
  TableId table = 0;
  std::string key;
  KeyHash hash = 0;

  Opcode op() const override { return Opcode::kRead; }
  size_t WireSize() const override { return kRpcHeaderBytes + key.size() + 8; }
};

struct ReadResponse : RpcResponse {
  std::string value;
  Version version = 0;
  // For Status::kRetryLater: when the target expects the record to be
  // available (absolute simulated time).
  Tick retry_after = 0;

  size_t WireSize() const override { return kRpcHeaderBytes + value.size(); }
  ROCKSTEADY_CLONEABLE_RESPONSE(ReadResponse)
};

struct WriteRequest : RpcRequest {
  TableId table = 0;
  std::string key;
  KeyHash hash = 0;
  std::string value;
  // Secondary key for indexed tables (empty = unindexed).
  std::string secondary_key;

  Opcode op() const override { return Opcode::kWrite; }
  size_t WireSize() const override {
    return kRpcHeaderBytes + key.size() + value.size() + secondary_key.size() + 8;
  }
};

struct WriteResponse : RpcResponse {
  Version version = 0;
  // For Status::kRetryLater (tablet still replaying recovered data):
  // absolute simulated time after which to re-issue.
  Tick retry_after = 0;

  ROCKSTEADY_CLONEABLE_RESPONSE(WriteResponse)
};

struct RemoveRequest : RpcRequest {
  TableId table = 0;
  std::string key;
  KeyHash hash = 0;

  Opcode op() const override { return Opcode::kRemove; }
  size_t WireSize() const override { return kRpcHeaderBytes + key.size() + 8; }
};

struct RemoveResponse : RpcResponse {
  Version version = 0;
  // For Status::kRetryLater (tablet still replaying recovered data):
  // absolute simulated time after which to re-issue.
  Tick retry_after = 0;

  ROCKSTEADY_CLONEABLE_RESPONSE(RemoveResponse)
};

struct MultiGetRequest : RpcRequest {
  TableId table = 0;
  std::vector<std::string> keys;
  std::vector<KeyHash> hashes;

  Opcode op() const override { return Opcode::kMultiGet; }
  size_t WireSize() const override {
    size_t size = kRpcHeaderBytes + hashes.size() * 8;
    for (const auto& key : keys) {
      size += key.size();
    }
    return size;
  }
};

struct MultiGetResponse : RpcResponse {
  std::vector<Status> statuses;
  std::vector<std::string> values;
  Tick retry_after = 0;  // Set when any entry is kRetryLater.

  size_t WireSize() const override {
    size_t size = kRpcHeaderBytes + statuses.size();
    for (const auto& value : values) {
      size += value.size();
    }
    return size;
  }
  ROCKSTEADY_CLONEABLE_RESPONSE(MultiGetResponse)
};

struct MultiGetHashRequest : RpcRequest {
  TableId table = 0;
  std::vector<KeyHash> hashes;

  Opcode op() const override { return Opcode::kMultiGetHash; }
  size_t WireSize() const override { return kRpcHeaderBytes + hashes.size() * 8; }
};

using MultiGetHashResponse = MultiGetResponse;

struct IndexLookupRequest : RpcRequest {
  TableId table = 0;
  uint8_t index_id = 0;
  std::string start_key;  // First secondary key of the scan.
  uint32_t count = 4;     // Figure 4: short 4-record scans.

  Opcode op() const override { return Opcode::kIndexLookup; }
  size_t WireSize() const override { return kRpcHeaderBytes + start_key.size() + 8; }
};

struct IndexLookupResponse : RpcResponse {
  std::vector<KeyHash> hashes;  // Indexes store primary key hashes (Fig. 2).

  size_t WireSize() const override { return kRpcHeaderBytes + hashes.size() * 8; }
  ROCKSTEADY_CLONEABLE_RESPONSE(IndexLookupResponse)
};

struct IndexInsertRequest : RpcRequest {
  TableId table = 0;
  uint8_t index_id = 0;
  std::string secondary_key;
  KeyHash primary_hash = 0;

  Opcode op() const override { return Opcode::kIndexInsert; }
  size_t WireSize() const override { return kRpcHeaderBytes + secondary_key.size() + 8; }
};

// ------------------------------------------------ Replication / recovery.

struct BackupWriteRequest : RpcRequest {
  ServerId master = 0;
  uint32_t segment_id = 0;
  uint32_t offset = 0;
  std::vector<uint8_t> data;  // Real log bytes, replayable at recovery.
  bool seal = false;
  // Bulk (lazy re-replication / recovery) writes are processed at background
  // priority on the backup so durable foreground writes never queue behind
  // them — the deferred-re-replication spirit of §3.4.
  bool bulk = false;

  Opcode op() const override { return Opcode::kBackupWrite; }
  size_t WireSize() const override { return kRpcHeaderBytes + data.size() + 16; }
};

struct GetRecoveryDataRequest : RpcRequest {
  ServerId crashed_master = 0;
  // Only segments with id >= min_segment_id (used for lineage tail replay:
  // the dependency names a log offset, §3.4).
  uint32_t min_segment_id = 0;

  Opcode op() const override { return Opcode::kGetRecoveryData; }
  size_t WireSize() const override { return kRpcHeaderBytes + 8; }
};

struct RecoverySegment {
  uint32_t segment_id = 0;
  std::vector<uint8_t> data;
};

struct GetRecoveryDataResponse : RpcResponse {
  std::vector<RecoverySegment> segments;

  size_t WireSize() const override {
    size_t size = kRpcHeaderBytes;
    for (const auto& segment : segments) {
      size += segment.data.size() + 8;
    }
    return size;
  }
  ROCKSTEADY_CLONEABLE_RESPONSE(GetRecoveryDataResponse)
};

// ------------------------------------------------------------ Coordinator.

struct TabletConfigEntry {
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;
  ServerId owner = 0;
  NodeId owner_node = 0;
};

struct GetTableConfigRequest : RpcRequest {
  TableId table = 0;

  Opcode op() const override { return Opcode::kGetTableConfig; }
  size_t WireSize() const override { return kRpcHeaderBytes; }
};

struct GetTableConfigResponse : RpcResponse {
  std::vector<TabletConfigEntry> tablets;

  size_t WireSize() const override { return kRpcHeaderBytes + tablets.size() * 28; }
  ROCKSTEADY_CLONEABLE_RESPONSE(GetTableConfigResponse)
};

struct RegisterDependencyRequest : RpcRequest {
  // §3.4: "the dependency ... consists of two integers: one indicating which
  // master's log it depends on (the target's), and another indicating the
  // offset into the log where the dependency starts." Plus enough tablet
  // metadata for recovery to act on it.
  ServerId source = 0;
  ServerId target = 0;
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;
  uint32_t target_log_segment = 0;  // Dependency starts at this segment...
  uint32_t target_log_offset = 0;   // ...and offset of the target's log.

  Opcode op() const override { return Opcode::kRegisterDependency; }
  size_t WireSize() const override { return kRpcHeaderBytes + 40; }
};

struct DropDependencyRequest : RpcRequest {
  ServerId source = 0;
  ServerId target = 0;
  TableId table = 0;

  Opcode op() const override { return Opcode::kDropDependency; }
  size_t WireSize() const override { return kRpcHeaderBytes + 16; }
};

struct UpdateOwnershipRequest : RpcRequest {
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;
  ServerId new_owner = 0;

  Opcode op() const override { return Opcode::kUpdateOwnership; }
  size_t WireSize() const override { return kRpcHeaderBytes + 28; }
};

struct PingRequest : RpcRequest {
  Opcode op() const override { return Opcode::kPing; }
  size_t WireSize() const override { return kRpcHeaderBytes; }
};

struct PingResponse : RpcResponse {
  ServerId server = 0;
  // Optional payload riding the existing probe (load telemetry, ...).
  PiggybackBlob piggyback;

  size_t WireSize() const override { return kRpcHeaderBytes + 4 + piggyback.WireSize(); }
  ROCKSTEADY_CLONEABLE_RESPONSE(PingResponse)
};

struct MigrationHeartbeatRequest : RpcRequest {
  // Identifies the migration by its dependency edge; the coordinator renews
  // the lease it tracks for this (source, target, table) tuple.
  ServerId source = 0;
  ServerId target = 0;
  TableId table = 0;
  // Optional payload riding the lease renewal (a migration target's load
  // telemetry reaches the coordinator on this faster cadence mid-migration).
  PiggybackBlob piggyback;

  Opcode op() const override { return Opcode::kMigrationHeartbeat; }
  size_t WireSize() const override { return kRpcHeaderBytes + 16 + piggyback.WireSize(); }
};

struct AbortMigrationRequest : RpcRequest {
  // Target manager -> coordinator: the target cannot finish (e.g. the tablet
  // does not fit its memory budget even after emergency cleaning) and asks
  // for a graceful abort along the §3.4 lineage paths: ownership returns to
  // the source and the target's durable log tail (which holds every acked
  // write since the switch) is replayed there. Identified by the dependency
  // edge, like the heartbeat.
  ServerId source = 0;
  ServerId target = 0;
  TableId table = 0;

  Opcode op() const override { return Opcode::kAbortMigration; }
  size_t WireSize() const override { return kRpcHeaderBytes + 16; }
};

// --- Cluster operations (drain/decommission protocol). ---

struct BeginDrainRequest : RpcRequest {
  // Operator/orchestrator -> coordinator: mark `server` kDraining. The
  // coordinator latches the flag in its quorum-replicated metadata; the
  // rebalance planner then mass-evacuates the server's tablets.
  ServerId server = 0;

  Opcode op() const override { return Opcode::kBeginDrain; }
  size_t WireSize() const override { return kRpcHeaderBytes + 4; }
};

struct ActivateServerRequest : RpcRequest {
  // Operator/orchestrator -> coordinator: move `server` to kActive (admit a
  // standby into placement, cancel a drain, or re-commission).
  ServerId server = 0;

  Opcode op() const override { return Opcode::kActivateServer; }
  size_t WireSize() const override { return kRpcHeaderBytes + 4; }
};

struct DrainStatusRequest : RpcRequest {
  ServerId server = 0;

  Opcode op() const override { return Opcode::kDrainStatus; }
  size_t WireSize() const override { return kRpcHeaderBytes + 4; }
};

struct DrainStatusResponse : RpcResponse {
  // Numeric ServerLifecycle value (the enum lives with the coordinator; the
  // wire carries the raw byte).
  uint8_t lifecycle = 0;
  uint32_t tablets_remaining = 0;       // Map ranges still owned.
  uint32_t dependencies_remaining = 0;  // Lineage edges still naming it.

  size_t WireSize() const override { return kRpcHeaderBytes + 9; }
  ROCKSTEADY_CLONEABLE_RESPONSE(DrainStatusResponse)
};

// ------------------------------------------------- Rocksteady migration.

struct MigrateTabletRequest : RpcRequest {
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;
  ServerId source = 0;

  Opcode op() const override { return Opcode::kMigrateTablet; }
  size_t WireSize() const override { return kRpcHeaderBytes + 28; }
};

struct PrepareMigrationRequest : RpcRequest {
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;
  ServerId target = 0;
  // When true, the source marks the tablet immutable (kMigrationSource) and
  // stops serving it — the normal Rocksteady ownership transfer. When
  // false, the source only reports its horizon and hash-table geometry (the
  // pre-copy "source retains ownership" comparison mode, Figure 9c).
  bool freeze = true;

  Opcode op() const override { return Opcode::kPrepareMigration; }
  size_t WireSize() const override { return kRpcHeaderBytes + 28; }
};

struct PrepareMigrationResponse : RpcResponse {
  // Seeds the target's version horizon above anything the source ever
  // issued, so target writes always win over replayed source records.
  Version version_horizon = 0;
  // The source's hash-table geometry, so the target can partition the
  // source's bucket space for parallel Pulls (§3.1.1).
  uint64_t num_hash_buckets = 0;

  ROCKSTEADY_CLONEABLE_RESPONSE(PrepareMigrationResponse)
};

struct PullRequest : RpcRequest {
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;
  // Bucket range of this partition and the scan cursor within it.
  uint64_t bucket_begin = 0;
  uint64_t bucket_end = 0;
  uint64_t cursor = 0;
  // §4.1: each Pull returns ~20 KB of data.
  uint32_t budget_bytes = 20 * 1024;
  // Only return records with version > min_version (delta rounds of the
  // pre-copy comparison mode; 0 = everything).
  Version min_version = 0;

  Opcode op() const override { return Opcode::kPull; }
  size_t WireSize() const override { return kRpcHeaderBytes + 48; }
};

struct PullResponse : RpcResponse {
  // Concatenated serialized log entries (validated on replay).
  std::vector<uint8_t> records;
  uint32_t record_count = 0;
  uint64_t next_cursor = 0;
  bool done = false;  // Partition exhausted.
  // Piggybacked source-load signals (adaptive pacing).
  SourceLoadHeader load;
  // For Status::kRetryLater (admission control shed the pull): absolute
  // simulated time after which the target should re-issue.
  Tick retry_after = 0;

  size_t WireSize() const override { return kRpcHeaderBytes + records.size() + 16; }
  ROCKSTEADY_CLONEABLE_RESPONSE(PullResponse)
};

struct PriorityPullRequest : RpcRequest {
  TableId table = 0;
  std::vector<KeyHash> hashes;  // Batched (§3.3).

  Opcode op() const override { return Opcode::kPriorityPull; }
  size_t WireSize() const override { return kRpcHeaderBytes + hashes.size() * 8; }
};

struct PriorityPullResponse : RpcResponse {
  std::vector<uint8_t> records;
  uint32_t record_count = 0;
  // Hashes with no record at the source: authoritatively absent (the
  // migrating tablet is immutable at the source).
  std::vector<KeyHash> not_found;
  // Piggybacked source-load signals (adaptive pacing).
  SourceLoadHeader load;

  size_t WireSize() const override {
    return kRpcHeaderBytes + records.size() + not_found.size() * 8;
  }
  ROCKSTEADY_CLONEABLE_RESPONSE(PriorityPullResponse)
};

// ---------------------------------------------------- Baseline migration.

struct BaselineMigrateOptions {
  // Figure 5's knobs, cumulative from the bottom of the ladder up:
  bool skip_rereplication = false;  // Target skips synchronous re-replication.
  bool skip_replay = false;         // Target drops batches without replaying.
  bool skip_tx = false;             // Source does all work but never sends.
  bool skip_copy = false;           // Source only identifies, never copies.
};

struct BaselineMigrateRequest : RpcRequest {
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;
  ServerId target = 0;
  BaselineMigrateOptions options;

  Opcode op() const override { return Opcode::kBaselineMigrate; }
  size_t WireSize() const override { return kRpcHeaderBytes + 32; }
};

struct BaselineReplayRequest : RpcRequest {
  TableId table = 0;
  std::vector<uint8_t> records;
  uint32_t record_count = 0;
  bool last_batch = false;
  bool skip_replay = false;
  bool skip_rereplication = false;
  // On the last batch: the source's version horizon, so the target's
  // versions continue above the source's after the ownership switch.
  Version version_horizon = 0;

  Opcode op() const override { return Opcode::kBaselineReplay; }
  size_t WireSize() const override { return kRpcHeaderBytes + records.size() + 8; }
};

struct ReleaseTabletRequest : RpcRequest {
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;

  Opcode op() const override { return Opcode::kReleaseTablet; }
  size_t WireSize() const override { return kRpcHeaderBytes + 24; }
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_RPC_MESSAGES_H_
