#include "src/rpc/rpc_system.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/logging.h"

namespace rocksteady {

RpcEndpoint* RpcSystem::CreateEndpoint(CoreSet* cores, int lane) {
  const NodeId node = net_->AddNode();
  assert(node == endpoints_.size());
  if (lanes_ != nullptr) {
    lanes_->AssignNode(node, lane);
    next_call_id_node_.push_back(0);
  }
  endpoints_.push_back(std::make_unique<RpcEndpoint>(this, node, cores, SimOfLane(lane)));
  return endpoints_.back().get();
}

void RpcSystem::Call(NodeId from, NodeId to, std::unique_ptr<RpcRequest> request,
                     ResponseCallback cb, Tick timeout) {
  Simulator* csim = SimFor(from);
  const uint64_t call_id =
      lanes_ != nullptr
          ? ((static_cast<uint64_t>(from) + 1) << kCallerShift) | next_call_id_node_[from]++
          : next_call_id_++;
  const Opcode op = request->op();
  const Tick deadline = timeout > 0 ? csim->now() + timeout : 0;

  PendingCall pending;
  pending.caller = from;
  pending.server = to;
  pending.request = IntrusivePtr<RpcRequest>(std::move(request));
  pending.cb = std::move(cb);
  pending.deadline = deadline;
  if (lanes_ != nullptr) {
    pending.wire = pending.request->WireSize();
  }
  PendingFor(call_id)[call_id] = std::move(pending);

  if (timeout > 0) {
    csim->At(deadline, [this, csim, call_id, op, from, to] {
      FlatMap64<PendingCall>& table = PendingFor(call_id);
      PendingCall* pending = table.Find(call_id);
      if (pending == nullptr) {
        return;  // Already completed.
      }
      LOG_DEBUG("rpc timeout: op=%d %u->%u after %d attempts at t=%.6f s", static_cast<int>(op),
                from, to, pending->attempts, static_cast<double>(csim->now()) / 1e9);
      ResponseCallback cb = std::move(pending->cb);
      table.Erase(call_id);
      cb(Status::kServerDown, nullptr);
    });
  }
  SendAttempt(call_id);
}

void RpcSystem::SendAttempt(uint64_t call_id) {
  FlatMap64<PendingCall>& table = PendingFor(call_id);
  PendingCall* pending = table.Find(call_id);
  if (pending == nullptr) {
    return;  // Completed or deadlined while the retransmit timer was armed.
  }
  pending->attempts++;
  if (pending->attempts > 1) {
    if (lanes_ != nullptr) {
      lane_retransmissions_[static_cast<size_t>(lanes_->lane_of(pending->caller))].value++;
    } else {
      retransmissions_++;
    }
  }
  const NodeId from = pending->caller;
  const NodeId to = pending->server;
  const bool retransmittable = pending->deadline != 0;
  // Lane mode must not re-measure the shared request (the server's handler
  // may be moving payload out of it on another lane); legacy re-measures per
  // attempt, matching recorded traces.
  const size_t wire = lanes_ != nullptr ? pending->wire : pending->request->WireSize();
  // The delivery closure holds its own reference and *copies* it into
  // Deliver: the fabric may invoke the closure twice (duplication), so it
  // must not consume its captures.
  IntrusivePtr<RpcRequest> request = pending->request;
  net_->Send(from, to, wire,
             [this, from, to, call_id, retransmittable, request] {
               RpcEndpoint* endpoint = Endpoint(to);
               if (endpoint == nullptr) {
                 return;
               }
               endpoint->Deliver(from, request, call_id, retransmittable);
             });

  if (pending->deadline == 0) {
    return;  // Single attempt; the caller opted out of retransmission.
  }
  // Arm the next retransmission: capped exponential backoff + seeded jitter.
  // Nothing is scheduled at or past the deadline, so a dead server costs
  // exactly the deadline, never a tail of orphan timer events.
  const int shift = std::min(pending->attempts - 1, 20);
  const Tick backoff = std::min(costs_->rpc_retransmit_base_ns << shift,
                                costs_->rpc_retransmit_cap_ns);
  const Tick jitter =
      costs_->rpc_retransmit_jitter_ns > 0
          ? CallerRng(from).Uniform(static_cast<uint64_t>(costs_->rpc_retransmit_jitter_ns) + 1)
          : 0;
  Simulator* csim = SimFor(from);
  const Tick at = csim->now() + backoff + jitter;
  if (at >= pending->deadline) {
    return;
  }
  csim->At(at, [this, call_id] { SendAttempt(call_id); });
}

void RpcEndpoint::Deliver(NodeId from, IntrusivePtr<RpcRequest> request, uint64_t call_id,
                          bool retransmittable) {
  PruneDedup();
  if (DedupEntry* entry = dedup_.Find(call_id); entry != nullptr) {
    if (entry->done) {
      // Retransmission of a completed call: replay the cached response
      // through the normal dispatch-tx path. The original execution already
      // happened exactly once; only the answer is resent.
      responses_replayed_++;
      std::unique_ptr<RpcResponse> replay = entry->response->Clone();
      RpcSystem* system = system_;
      const NodeId server_node = node_;
      auto transmit = [system, server_node, call_id, resp = std::move(replay)]() mutable {
        if (resp != nullptr) {
          system->TransmitResponse(call_id, server_node, std::move(resp));
        }
      };
      if (cores_ != nullptr) {
        cores_->EnqueueDispatch(system_->costs()->dispatch_tx_ns, std::move(transmit));
      } else {
        transmit();
      }
      return;
    }
    if (entry->epoch == CurrentEpoch()) {
      // The handler is still executing this call; drop the duplicate — the
      // response will go out (and be cached) when it finishes.
      duplicates_suppressed_++;
      return;
    }
    // The server crashed mid-execution and restarted: the old execution died
    // with its epoch, so run the call again.
    dedup_.Erase(call_id);
  }

  if (cores_ != nullptr) {
    // The dispatch core polls the request off the NIC before the handler
    // sees it.
    cores_->EnqueueDispatch(
        system_->costs()->dispatch_per_rpc_ns,
        [this, from, call_id, retransmittable, request = std::move(request)]() mutable {
          Execute(from, std::move(request), call_id, retransmittable);
        });
  } else {
    Execute(from, std::move(request), call_id, retransmittable);
  }
}

void RpcEndpoint::Execute(NodeId from, IntrusivePtr<RpcRequest> request, uint64_t call_id,
                          bool retransmittable) {
  const size_t op_index = static_cast<size_t>(request->op());
  if (op_index >= kMaxOpcodes || !handlers_[op_index]) {
    LOG_ERROR("node %u: no handler for opcode %d", node_, static_cast<int>(request->op()));
    return;
  }
  // Re-check dedup at execution time: two copies of one request can both
  // clear the delivery-time check (neither had an entry yet) and sit in the
  // dispatch queue together; only the first may run the handler.
  if (DedupEntry* entry = dedup_.Find(call_id); entry != nullptr) {
    if (entry->done) {
      responses_replayed_++;
      system_->TransmitResponse(call_id, node_, entry->response->Clone());
      return;
    }
    if (entry->epoch == CurrentEpoch()) {
      duplicates_suppressed_++;
      return;
    }
  }
  // Duplicate defense is only needed when a second copy of this call_id can
  // exist: the caller can retransmit, or the fabric has (ever) had an
  // injector that can duplicate in flight. Otherwise skip the dedup entry
  // and the response-clone cache — the bulk of steady-state RPC churn.
  const bool dedupe = retransmittable || system_->net()->faults_ever_installed();
  if (dedupe) {
    // The dedup entry is created here — when execution truly starts — not at
    // delivery: queued dispatch work can be wiped by Halt(), and an entry
    // created then would swallow post-restart retransmissions forever.
    DedupEntry& entry = dedup_[call_id];
    entry.epoch = CurrentEpoch();
    entry.done = false;
    dedup_created_.emplace_back(sim_->now(), call_id);
  }

  const Handler& handler = handlers_[op_index];
  RpcContext context;
  context.sim = sim_;
  context.from = from;
  context.request = std::move(request);
  RpcEndpoint* self = this;
  context.reply = [self, call_id](std::unique_ptr<RpcResponse> response) {
    // Cache a clone for duplicate-request replay (only when a dedup entry
    // was created for this execution), then transmit.
    RpcSystem* system = self->system_;
    if (DedupEntry* entry = self->dedup_.Find(call_id); entry != nullptr) {
      entry->done = true;
      entry->response = response->Clone();
      entry->completed_at = self->sim_->now();
      self->dedup_fifo_.emplace_back(entry->completed_at, call_id);
    }
    const NodeId server_node = self->node_;
    auto transmit = [system, server_node, call_id, resp = std::move(response)]() mutable {
      if (resp != nullptr) {
        system->TransmitResponse(call_id, server_node, std::move(resp));
      }
    };
    if (self->cores_ != nullptr) {
      // The worker hands the response to the dispatch core, which posts it
      // to the transport.
      self->cores_->EnqueueDispatch(system->costs()->dispatch_tx_ns, std::move(transmit));
    } else {
      transmit();
    }
  };
  handler(std::move(context));
}

void RpcEndpoint::PruneDedup() {
  const Tick now = sim_->now();
  const Tick retention = system_->costs()->rpc_dedup_retention_ns;
  while (!dedup_fifo_.empty() && dedup_fifo_.front().first + retention < now) {
    const uint64_t call_id = dedup_fifo_.front().second;
    dedup_fifo_.pop_front();
    if (DedupEntry* entry = dedup_.Find(call_id); entry != nullptr && entry->done) {
      dedup_.Erase(call_id);
    }
  }
  // Entries that never completed — the execution was wiped by a crash, so no
  // reply (and no dedup_fifo_ record) ever happened — would otherwise sit in
  // dedup_ forever. Expire them from the creation-time fifo once past the
  // retention horizon; an entry still executing in the *current* epoch is
  // genuinely in flight and is re-armed for a later look instead.
  while (!dedup_created_.empty() && dedup_created_.front().first + retention < now) {
    const uint64_t call_id = dedup_created_.front().second;
    dedup_created_.pop_front();
    DedupEntry* entry = dedup_.Find(call_id);
    if (entry == nullptr) {
      continue;  // Already expired via the completion fifo.
    }
    if (entry->done) {
      continue;  // The completion fifo owns its expiry.
    }
    if (entry->epoch == CurrentEpoch()) {
      dedup_created_.emplace_back(now, call_id);  // Still executing; re-check later.
      continue;
    }
    dedup_.Erase(call_id);  // Orphaned by a crash; the caller long since timed out.
  }
}

uint64_t RpcEndpoint::CurrentEpoch() const { return cores_ != nullptr ? cores_->epoch() : 0; }

void RpcSystem::TransmitResponse(uint64_t call_id, NodeId server_node,
                                 std::unique_ptr<RpcResponse> response) {
  NodeId caller;
  if (lanes_ != nullptr) {
    // Server lane: the caller's pending table is not ours to read. The
    // call_id carries the caller id; a response to a caller that already
    // gave up is dropped on the caller's own lane below instead of here.
    caller = CallerOf(call_id);
  } else {
    PendingCall* pending = pending_.Find(call_id);
    if (pending == nullptr) {
      return;  // Caller gave up (deadline) or already got an earlier copy.
    }
    caller = pending->caller;
  }
  const size_t wire = response->WireSize();

  // The pending entry survives until the response actually reaches the
  // caller: if the fabric eats this response, a later retransmission (or a
  // server-side replay of the cached response) still has a home to land in.
  // The delivery closure may run twice (fabric duplication): the first copy
  // moves the response out, the loser still goes through dispatch (charging
  // the poll cost, as a real duplicate would) and bails on the null.
  net_->Send(server_node, caller, wire,
             [this, caller, call_id, resp = std::move(response)]() mutable {
               RpcEndpoint* endpoint = Endpoint(caller);
               auto deliver = [this, call_id, resp = std::move(resp)]() mutable {
                 FlatMap64<PendingCall>& table = PendingFor(call_id);
                 PendingCall* pending = table.Find(call_id);
                 if (pending == nullptr) {
                   return;  // A duplicate response; the first copy won.
                 }
                 if (resp == nullptr) {
                   return;  // This network-duplicated copy lost the move race.
                 }
                 ResponseCallback cb = std::move(pending->cb);
                 table.Erase(call_id);
                 cb(Status::kOk, std::move(resp));
               };
               if (endpoint != nullptr && endpoint->cores() != nullptr) {
                 // Responses are polled off the NIC by the caller's dispatch core too.
                 endpoint->cores()->EnqueueDispatch(costs_->dispatch_per_rpc_ns,
                                                   std::move(deliver));
               } else {
                 deliver();
               }
             });
}

}  // namespace rocksteady
