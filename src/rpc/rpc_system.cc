#include "src/rpc/rpc_system.h"

#include <cassert>
#include <utility>

#include "src/common/logging.h"

namespace rocksteady {

RpcEndpoint* RpcSystem::CreateEndpoint(CoreSet* cores) {
  const NodeId node = net_->AddNode();
  assert(node == endpoints_.size());
  endpoints_.push_back(std::make_unique<RpcEndpoint>(this, node, cores));
  return endpoints_.back().get();
}

void RpcSystem::Call(NodeId from, NodeId to, std::unique_ptr<RpcRequest> request,
                     ResponseCallback cb, Tick timeout) {
  const uint64_t call_id = next_call_id_++;
  pending_[call_id] = PendingCall{from, std::move(cb)};

  const size_t wire = request->WireSize();
  // std::function requires copyable callables; stash the request in a
  // shared_ptr for the trip across the fabric.
  auto boxed = std::make_shared<std::unique_ptr<RpcRequest>>(std::move(request));
  net_->Send(from, to, wire, [this, from, to, call_id, boxed] {
    RpcEndpoint* endpoint = Endpoint(to);
    if (endpoint == nullptr) {
      return;
    }
    endpoint->Deliver(from, std::move(*boxed), call_id);
  });

  if (timeout > 0) {
    const Opcode op = (*boxed) != nullptr ? (*boxed)->op() : Opcode::kInvalid;
    sim_->After(timeout, [this, call_id, op, from, to] {
      auto it = pending_.find(call_id);
      if (it == pending_.end()) {
        return;  // Already completed.
      }
      LOG_DEBUG("rpc timeout: op=%d %u->%u at t=%.6f s", static_cast<int>(op), from, to,
                static_cast<double>(sim_->now()) / 1e9);
      ResponseCallback cb = std::move(it->second.cb);
      pending_.erase(it);
      cb(Status::kServerDown, nullptr);
    });
  }
}

void RpcEndpoint::Deliver(NodeId from, std::unique_ptr<RpcRequest> request, uint64_t call_id) {
  auto it = handlers_.find(request->op());
  if (it == handlers_.end()) {
    LOG_ERROR("node %u: no handler for opcode %d", node_, static_cast<int>(request->op()));
    return;
  }
  const Handler& handler = it->second;

  auto run = [this, from, call_id, &handler, request = std::move(request)]() mutable {
    RpcContext context;
    context.sim = system_->sim();
    context.from = from;
    context.request = std::move(request);
    const NodeId server_node = node_;
    RpcSystem* system = system_;
    CoreSet* cores = cores_;
    context.reply = [system, server_node, from, call_id,
                     cores](std::unique_ptr<RpcResponse> response) {
      auto boxed = std::make_shared<std::unique_ptr<RpcResponse>>(std::move(response));
      auto transmit = [system, server_node, call_id, boxed] {
        system->CompleteCall(call_id, server_node, std::move(*boxed));
      };
      if (cores != nullptr) {
        // The worker hands the response to the dispatch core, which posts it
        // to the transport.
        cores->EnqueueDispatch(system->costs()->dispatch_tx_ns, std::move(transmit));
      } else {
        transmit();
      }
    };
    handler(std::move(context));
  };

  if (cores_ != nullptr) {
    // The dispatch core polls the request off the NIC before the handler
    // sees it. Wrap in shared_ptr: the closure must be copyable.
    auto shared_run = std::make_shared<decltype(run)>(std::move(run));
    cores_->EnqueueDispatch(system_->costs()->dispatch_per_rpc_ns,
                            [shared_run] { (*shared_run)(); });
  } else {
    run();
  }
}

void RpcSystem::CompleteCall(uint64_t call_id, NodeId server_node,
                             std::unique_ptr<RpcResponse> response) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) {
    return;  // Timed out earlier.
  }
  const NodeId caller = it->second.caller;
  auto boxed = std::make_shared<std::unique_ptr<RpcResponse>>(std::move(response));
  const size_t wire = (*boxed)->WireSize();
  ResponseCallback cb = std::move(it->second.cb);
  pending_.erase(it);

  auto shared_cb = std::make_shared<ResponseCallback>(std::move(cb));
  net_->Send(server_node, caller, wire, [this, caller, boxed, shared_cb] {
    RpcEndpoint* endpoint = Endpoint(caller);
    auto deliver = [boxed, shared_cb] { (*shared_cb)(Status::kOk, std::move(*boxed)); };
    if (endpoint != nullptr && endpoint->cores() != nullptr) {
      // Responses are polled off the NIC by the caller's dispatch core too.
      endpoint->cores()->EnqueueDispatch(costs_->dispatch_per_rpc_ns, std::move(deliver));
    } else {
      deliver();
    }
  });
}

}  // namespace rocksteady
