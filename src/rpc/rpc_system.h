// RPC over the simulated fabric, with at-least-once delivery.
//
// Mirrors RAMCloud's transport/dispatch integration (§3.1): an inbound RPC
// is polled off the NIC by the destination's dispatch core (charged
// dispatch_per_rpc_ns), handled (handlers usually enqueue worker tasks), and
// the response transmission is posted back through the dispatch core
// (dispatch_tx_ns). Nodes without a CoreSet (client machines, which the
// paper never bottlenecks) deliver straight to the continuation.
//
// Fault tolerance: the fabric may drop, duplicate, or delay any message
// (see FaultInjector), so the transport provides at-least-once semantics.
// A call with a timeout retransmits its request — same call_id — with
// capped exponential backoff plus seeded jitter until a response arrives or
// the overall deadline expires (then the callback fires with
// Status::kServerDown and a null response). The server side suppresses
// duplicate executions per call_id: a retransmission of a completed call
// replays the cached (cloned) response; one that races a still-executing
// handler is dropped. A call with timeout zero is sent exactly once and
// waits forever — the pre-fault-injection behavior.
//
// Hot path: requests are intrusively refcounted (no shared_ptr control
// block), delivery/response closures are inline (no make_shared boxing),
// and the pending-call and dedup tables are flat open-addressed maps — one
// request/response round trip allocates only the message objects themselves.
#ifndef ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_
#define ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_

#include <deque>
#include <functional>
#include <memory>
#include <array>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/intrusive_ptr.h"
#include "src/rpc/messages.h"
#include "src/sim/core_set.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace rocksteady {

class RpcSystem;

// The endpoint's reply closure captures {endpoint, call_id} — 16 bytes; 24
// leaves headroom (tests build fake contexts with a reference capture or
// two) and keeps the ReplyFn object small enough that handler completion
// closures carrying {this, reply, response, arrival} fit a worker DoneFn's
// 64 inline bytes with no heap fallback.
inline constexpr size_t kReplyInlineBytes = 24;
using ReplyFn = InlineFunction<void(std::unique_ptr<RpcResponse>), kReplyInlineBytes>;

// Server-side context for one in-flight RPC. The request is shared with the
// transport (retransmissions deliver the same object), but duplicate
// suppression guarantees the handler runs at most once per call_id, so
// handlers may freely move data out of it. Move-only: the reply closure is
// single-owner (handlers that outlive their stack frame move the context
// into their completion state).
struct RpcContext {
  Simulator* sim = nullptr;
  NodeId from = 0;
  IntrusivePtr<RpcRequest> request;

  // Sends the response (exactly once per execution).
  ReplyFn reply;

  template <typename T>
  T& As() {
    return static_cast<T&>(*request);
  }
};

// One RPC-reachable node: handlers plus an optional CoreSet through which
// inbound requests and outbound responses are dispatched.
class RpcEndpoint {
 public:
  // Handler registration happens once at server construction — cold path, so
  // the copyable std::function shape is fine here.
  using Handler = std::function<void(RpcContext)>;  // lint:allow-churn

  RpcEndpoint(RpcSystem* system, NodeId node, CoreSet* cores)
      : system_(system), node_(node), cores_(cores) {}

  void Register(Opcode op, Handler handler) {
    handlers_[static_cast<size_t>(op)] = std::move(handler);
  }

  NodeId node() const { return node_; }
  CoreSet* cores() const { return cores_; }
  RpcSystem* system() const { return system_; }

  uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  uint64_t responses_replayed() const { return responses_replayed_; }

  // Current duplicate-suppression cache population (regression tests assert
  // this stays bounded over long runs).
  size_t dedup_size() const { return dedup_.size(); }

 private:
  friend class RpcSystem;

  // Per-call_id duplicate suppression. An entry is created when the handler
  // actually starts executing (not at delivery: the dispatch queue may be
  // wiped by a crash first) and stamped with the CoreSet epoch so that an
  // execution cut short by Halt() is re-run, not treated as in flight.
  struct DedupEntry {
    uint64_t epoch = 0;
    bool done = false;
    std::unique_ptr<RpcResponse> response;  // Cached clone once done.
    Tick completed_at = 0;
  };

  // `retransmittable` = the caller armed a timeout, so more copies of this
  // call_id can arrive later. When it is false and the fabric has never had
  // a fault injector, this delivery is provably the only one — the endpoint
  // skips dedup bookkeeping and the response-clone cache entirely.
  void Deliver(NodeId from, IntrusivePtr<RpcRequest> request, uint64_t call_id,
               bool retransmittable);
  void Execute(NodeId from, IntrusivePtr<RpcRequest> request, uint64_t call_id,
               bool retransmittable);
  void PruneDedup();
  uint64_t CurrentEpoch() const;

  RpcSystem* system_;
  NodeId node_;
  CoreSet* cores_;  // Null for unmodeled-CPU nodes (clients).
  // Filled once at server construction; opcode-indexed array so per-RPC
  // handler lookup is one load, not a hash probe.
  static constexpr size_t kMaxOpcodes = 64;
  std::array<Handler, kMaxOpcodes> handlers_;
  // Bounded: every entry is tracked by dedup_created_ from creation and by
  // dedup_fifo_ from completion; PruneDedup expires both after the
  // rpc_dedup_retention_ns horizon, so long chaos runs cannot grow this.
  FlatMap64<DedupEntry> dedup_;
  // Bounded: drained by PruneDedup past the retention horizon.
  std::deque<std::pair<Tick, uint64_t>> dedup_fifo_;  // (completed_at, call_id).
  // Bounded: drained by PruneDedup past the retention horizon. Tracks every
  // entry from creation so executions orphaned by a crash (never completed,
  // stale epoch, hence never in dedup_fifo_) still expire.
  std::deque<std::pair<Tick, uint64_t>> dedup_created_;  // (created_at, call_id).
  uint64_t duplicates_suppressed_ = 0;
  uint64_t responses_replayed_ = 0;
};

class RpcSystem {
 public:
  // Completion callbacks capture up to 88 bytes inline — sized for the
  // widest steady-state caller (a client actor's per-op continuation).
  inline static constexpr size_t kCallbackInlineBytes = 88;
  using ResponseCallback =
      InlineFunction<void(Status, std::unique_ptr<RpcResponse>), kCallbackInlineBytes>;

  RpcSystem(Simulator* sim, Network* net, const CostModel* costs)
      : sim_(sim), net_(net), costs_(costs) {}

  RpcSystem(const RpcSystem&) = delete;
  RpcSystem& operator=(const RpcSystem&) = delete;

  // Creates an endpoint on a fresh network node.
  RpcEndpoint* CreateEndpoint(CoreSet* cores);

  // Issues an RPC. `timeout` of zero means one attempt and no deadline.
  // With a timeout, the request is retransmitted (same call_id) on a capped
  // exponential backoff until the deadline; then the callback receives
  // kServerDown with a null response.
  void Call(NodeId from, NodeId to, std::unique_ptr<RpcRequest> request, ResponseCallback cb,
            Tick timeout = 0);

  RpcEndpoint* Endpoint(NodeId node) const {
    return node < endpoints_.size() ? endpoints_[node].get() : nullptr;
  }

  Simulator* sim() const { return sim_; }
  Network* net() const { return net_; }
  const CostModel* costs() const { return costs_; }

  uint64_t calls_issued() const { return next_call_id_; }
  uint64_t retransmissions() const { return retransmissions_; }

 private:
  friend class RpcEndpoint;

  struct PendingCall {
    NodeId caller = 0;
    NodeId server = 0;
    IntrusivePtr<RpcRequest> request;
    ResponseCallback cb;
    Tick deadline = 0;  // 0 = wait forever, no retransmission.
    int attempts = 0;
  };

  // Transmits one attempt of a pending call and, when a deadline is set,
  // arms the next retransmission.
  void SendAttempt(uint64_t call_id);
  // Server side: routes a response (fresh or replayed) back to the caller.
  // The pending entry is erased only when the response reaches the caller,
  // so a lost response leaves the retransmission path armed.
  void TransmitResponse(uint64_t call_id, NodeId server_node,
                        std::unique_ptr<RpcResponse> response);

  Simulator* sim_;
  Network* net_;
  const CostModel* costs_;
  std::vector<std::unique_ptr<RpcEndpoint>> endpoints_;
  // Bounded by the callers' outstanding RPCs: an entry is erased when its
  // response is delivered, its timeout fires, or its endpoint halts.
  FlatMap64<PendingCall> pending_;
  uint64_t next_call_id_ = 0;
  uint64_t retransmissions_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_
