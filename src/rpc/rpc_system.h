// RPC over the simulated fabric.
//
// Mirrors RAMCloud's transport/dispatch integration (§3.1): an inbound RPC
// is polled off the NIC by the destination's dispatch core (charged
// dispatch_per_rpc_ns), handled (handlers usually enqueue worker tasks), and
// the response transmission is posted back through the dispatch core
// (dispatch_tx_ns). Nodes without a CoreSet (client machines, which the
// paper never bottlenecks) deliver straight to the continuation.
//
// Calls may carry a timeout; if the response has not arrived (e.g. the peer
// crashed and the fabric dropped the message), the callback fires with
// Status::kServerDown and a null response.
#ifndef ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_
#define ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/rpc/messages.h"
#include "src/sim/core_set.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace rocksteady {

class RpcSystem;

// Server-side context for one in-flight RPC.
struct RpcContext {
  Simulator* sim = nullptr;
  NodeId from = 0;
  std::unique_ptr<RpcRequest> request;

  // Sends the response (exactly once).
  std::function<void(std::unique_ptr<RpcResponse>)> reply;

  template <typename T>
  T& As() {
    return static_cast<T&>(*request);
  }
};

// One RPC-reachable node: handlers plus an optional CoreSet through which
// inbound requests and outbound responses are dispatched.
class RpcEndpoint {
 public:
  using Handler = std::function<void(RpcContext)>;

  RpcEndpoint(RpcSystem* system, NodeId node, CoreSet* cores)
      : system_(system), node_(node), cores_(cores) {}

  void Register(Opcode op, Handler handler) { handlers_[op] = std::move(handler); }

  NodeId node() const { return node_; }
  CoreSet* cores() const { return cores_; }
  RpcSystem* system() const { return system_; }

 private:
  friend class RpcSystem;

  void Deliver(NodeId from, std::unique_ptr<RpcRequest> request, uint64_t call_id);

  RpcSystem* system_;
  NodeId node_;
  CoreSet* cores_;  // Null for unmodeled-CPU nodes (clients).
  std::unordered_map<Opcode, Handler> handlers_;
};

class RpcSystem {
 public:
  using ResponseCallback = std::function<void(Status, std::unique_ptr<RpcResponse>)>;

  RpcSystem(Simulator* sim, Network* net, const CostModel* costs)
      : sim_(sim), net_(net), costs_(costs) {}

  RpcSystem(const RpcSystem&) = delete;
  RpcSystem& operator=(const RpcSystem&) = delete;

  // Creates an endpoint on a fresh network node.
  RpcEndpoint* CreateEndpoint(CoreSet* cores);

  // Issues an RPC. `timeout` of zero means no timeout. The callback receives
  // kOk plus the response, or an error status with a null response.
  void Call(NodeId from, NodeId to, std::unique_ptr<RpcRequest> request, ResponseCallback cb,
            Tick timeout = 0);

  RpcEndpoint* Endpoint(NodeId node) const {
    return node < endpoints_.size() ? endpoints_[node].get() : nullptr;
  }

  Simulator* sim() const { return sim_; }
  Network* net() const { return net_; }
  const CostModel* costs() const { return costs_; }

  uint64_t calls_issued() const { return next_call_id_; }

 private:
  friend class RpcEndpoint;

  struct PendingCall {
    NodeId caller = 0;
    ResponseCallback cb;
  };

  // Invoked by the server side to route a response back.
  void CompleteCall(uint64_t call_id, NodeId server_node, std::unique_ptr<RpcResponse> response);

  Simulator* sim_;
  Network* net_;
  const CostModel* costs_;
  std::vector<std::unique_ptr<RpcEndpoint>> endpoints_;
  std::unordered_map<uint64_t, PendingCall> pending_;
  uint64_t next_call_id_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_
