// RPC over the simulated fabric, with at-least-once delivery.
//
// Mirrors RAMCloud's transport/dispatch integration (§3.1): an inbound RPC
// is polled off the NIC by the destination's dispatch core (charged
// dispatch_per_rpc_ns), handled (handlers usually enqueue worker tasks), and
// the response transmission is posted back through the dispatch core
// (dispatch_tx_ns). Nodes without a CoreSet (client machines, which the
// paper never bottlenecks) deliver straight to the continuation.
//
// Fault tolerance: the fabric may drop, duplicate, or delay any message
// (see FaultInjector), so the transport provides at-least-once semantics.
// A call with a timeout retransmits its request — same call_id — with
// capped exponential backoff plus seeded jitter until a response arrives or
// the overall deadline expires (then the callback fires with
// Status::kServerDown and a null response). The server side suppresses
// duplicate executions per call_id: a retransmission of a completed call
// replays the cached (cloned) response; one that races a still-executing
// handler is dropped. A call with timeout zero is sent exactly once and
// waits forever — the pre-fault-injection behavior.
#ifndef ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_
#define ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/rpc/messages.h"
#include "src/sim/core_set.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace rocksteady {

class RpcSystem;

// Server-side context for one in-flight RPC. The request is shared with the
// transport (retransmissions deliver the same object), but duplicate
// suppression guarantees the handler runs at most once per call_id, so
// handlers may freely move data out of it.
struct RpcContext {
  Simulator* sim = nullptr;
  NodeId from = 0;
  std::shared_ptr<RpcRequest> request;

  // Sends the response (exactly once per execution).
  std::function<void(std::unique_ptr<RpcResponse>)> reply;

  template <typename T>
  T& As() {
    return static_cast<T&>(*request);
  }
};

// One RPC-reachable node: handlers plus an optional CoreSet through which
// inbound requests and outbound responses are dispatched.
class RpcEndpoint {
 public:
  using Handler = std::function<void(RpcContext)>;

  RpcEndpoint(RpcSystem* system, NodeId node, CoreSet* cores)
      : system_(system), node_(node), cores_(cores) {}

  void Register(Opcode op, Handler handler) { handlers_[op] = std::move(handler); }

  NodeId node() const { return node_; }
  CoreSet* cores() const { return cores_; }
  RpcSystem* system() const { return system_; }

  uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  uint64_t responses_replayed() const { return responses_replayed_; }

  // Current duplicate-suppression cache population (regression tests assert
  // this stays bounded over long runs).
  size_t dedup_size() const { return dedup_.size(); }

 private:
  friend class RpcSystem;

  // Per-call_id duplicate suppression. An entry is created when the handler
  // actually starts executing (not at delivery: the dispatch queue may be
  // wiped by a crash first) and stamped with the CoreSet epoch so that an
  // execution cut short by Halt() is re-run, not treated as in flight.
  struct DedupEntry {
    uint64_t epoch = 0;
    bool done = false;
    std::unique_ptr<RpcResponse> response;  // Cached clone once done.
    Tick completed_at = 0;
  };

  void Deliver(NodeId from, std::shared_ptr<RpcRequest> request, uint64_t call_id);
  void Execute(NodeId from, std::shared_ptr<RpcRequest> request, uint64_t call_id);
  void PruneDedup();
  uint64_t CurrentEpoch() const;

  RpcSystem* system_;
  NodeId node_;
  CoreSet* cores_;  // Null for unmodeled-CPU nodes (clients).
  // Bounded: handlers_ is filled once at server construction.
  std::unordered_map<Opcode, Handler> handlers_;
  // Bounded: every entry is tracked by dedup_created_ from creation and by
  // dedup_fifo_ from completion; PruneDedup expires both after the
  // rpc_dedup_retention_ns horizon, so long chaos runs cannot grow this.
  std::unordered_map<uint64_t, DedupEntry> dedup_;
  // Bounded: drained by PruneDedup past the retention horizon.
  std::deque<std::pair<Tick, uint64_t>> dedup_fifo_;  // (completed_at, call_id).
  // Bounded: drained by PruneDedup past the retention horizon. Tracks every
  // entry from creation so executions orphaned by a crash (never completed,
  // stale epoch, hence never in dedup_fifo_) still expire.
  std::deque<std::pair<Tick, uint64_t>> dedup_created_;  // (created_at, call_id).
  uint64_t duplicates_suppressed_ = 0;
  uint64_t responses_replayed_ = 0;
};

class RpcSystem {
 public:
  using ResponseCallback = std::function<void(Status, std::unique_ptr<RpcResponse>)>;

  RpcSystem(Simulator* sim, Network* net, const CostModel* costs)
      : sim_(sim), net_(net), costs_(costs) {}

  RpcSystem(const RpcSystem&) = delete;
  RpcSystem& operator=(const RpcSystem&) = delete;

  // Creates an endpoint on a fresh network node.
  RpcEndpoint* CreateEndpoint(CoreSet* cores);

  // Issues an RPC. `timeout` of zero means one attempt and no deadline.
  // With a timeout, the request is retransmitted (same call_id) on a capped
  // exponential backoff until the deadline; then the callback receives
  // kServerDown with a null response.
  void Call(NodeId from, NodeId to, std::unique_ptr<RpcRequest> request, ResponseCallback cb,
            Tick timeout = 0);

  RpcEndpoint* Endpoint(NodeId node) const {
    return node < endpoints_.size() ? endpoints_[node].get() : nullptr;
  }

  Simulator* sim() const { return sim_; }
  Network* net() const { return net_; }
  const CostModel* costs() const { return costs_; }

  uint64_t calls_issued() const { return next_call_id_; }
  uint64_t retransmissions() const { return retransmissions_; }

 private:
  friend class RpcEndpoint;

  struct PendingCall {
    NodeId caller = 0;
    NodeId server = 0;
    std::shared_ptr<RpcRequest> request;
    ResponseCallback cb;
    Tick deadline = 0;  // 0 = wait forever, no retransmission.
    int attempts = 0;
  };

  // Transmits one attempt of a pending call and, when a deadline is set,
  // arms the next retransmission.
  void SendAttempt(uint64_t call_id);
  // Server side: routes a response (fresh or replayed) back to the caller.
  // The pending entry is erased only when the response reaches the caller,
  // so a lost response leaves the retransmission path armed.
  void TransmitResponse(uint64_t call_id, NodeId server_node,
                        std::unique_ptr<RpcResponse> response);

  Simulator* sim_;
  Network* net_;
  const CostModel* costs_;
  std::vector<std::unique_ptr<RpcEndpoint>> endpoints_;
  // Bounded by the callers' outstanding RPCs: an entry is erased when its
  // response is delivered, its timeout fires, or its endpoint halts.
  std::unordered_map<uint64_t, PendingCall> pending_;
  uint64_t next_call_id_ = 0;
  uint64_t retransmissions_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_
