// RPC over the simulated fabric, with at-least-once delivery.
//
// Mirrors RAMCloud's transport/dispatch integration (§3.1): an inbound RPC
// is polled off the NIC by the destination's dispatch core (charged
// dispatch_per_rpc_ns), handled (handlers usually enqueue worker tasks), and
// the response transmission is posted back through the dispatch core
// (dispatch_tx_ns). Nodes without a CoreSet (client machines, which the
// paper never bottlenecks) deliver straight to the continuation.
//
// Fault tolerance: the fabric may drop, duplicate, or delay any message
// (see FaultInjector), so the transport provides at-least-once semantics.
// A call with a timeout retransmits its request — same call_id — with
// capped exponential backoff plus seeded jitter until a response arrives or
// the overall deadline expires (then the callback fires with
// Status::kServerDown and a null response). The server side suppresses
// duplicate executions per call_id: a retransmission of a completed call
// replays the cached (cloned) response; one that races a still-executing
// handler is dropped. A call with timeout zero is sent exactly once and
// waits forever — the pre-fault-injection behavior.
//
// Hot path: requests are intrusively refcounted (no shared_ptr control
// block), delivery/response closures are inline (no make_shared boxing),
// and the pending-call and dedup tables are flat open-addressed maps — one
// request/response round trip allocates only the message objects themselves.
#ifndef ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_
#define ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_

#include <deque>
#include <functional>
#include <memory>
#include <array>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/flat_map.h"
#include "src/common/intrusive_ptr.h"
#include "src/rpc/messages.h"
#include "src/sim/core_set.h"
#include "src/sim/lane_set.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace rocksteady {

class RpcSystem;

// The endpoint's reply closure captures {endpoint, call_id} — 16 bytes; 24
// leaves headroom (tests build fake contexts with a reference capture or
// two) and keeps the ReplyFn object small enough that handler completion
// closures carrying {this, reply, response, arrival} fit a worker DoneFn's
// 64 inline bytes with no heap fallback.
inline constexpr size_t kReplyInlineBytes = 24;
using ReplyFn = InlineFunction<void(std::unique_ptr<RpcResponse>), kReplyInlineBytes>;

// Server-side context for one in-flight RPC. The request is shared with the
// transport (retransmissions deliver the same object), but duplicate
// suppression guarantees the handler runs at most once per call_id, so
// handlers may freely move data out of it. Move-only: the reply closure is
// single-owner (handlers that outlive their stack frame move the context
// into their completion state).
struct RpcContext {
  Simulator* sim = nullptr;
  NodeId from = 0;
  IntrusivePtr<RpcRequest> request;

  // Sends the response (exactly once per execution).
  ReplyFn reply;

  template <typename T>
  T& As() {
    return static_cast<T&>(*request);
  }
};

// One RPC-reachable node: handlers plus an optional CoreSet through which
// inbound requests and outbound responses are dispatched.
class RpcEndpoint {
 public:
  // Handler registration happens once at server construction — cold path, so
  // the copyable std::function shape is fine here.
  using Handler = std::function<void(RpcContext)>;  // lint:allow-churn

  RpcEndpoint(RpcSystem* system, NodeId node, CoreSet* cores, Simulator* sim)
      : system_(system), node_(node), cores_(cores), sim_(sim) {}

  void Register(Opcode op, Handler handler) {
    handlers_[static_cast<size_t>(op)] = std::move(handler);
  }

  NodeId node() const { return node_; }
  CoreSet* cores() const { return cores_; }
  RpcSystem* system() const { return system_; }
  // The simulator this endpoint's events execute on (its lane's, in lane
  // mode; the shared one otherwise).
  Simulator* sim() const { return sim_; }

  uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  uint64_t responses_replayed() const { return responses_replayed_; }

  // Current duplicate-suppression cache population (regression tests assert
  // this stays bounded over long runs).
  size_t dedup_size() const { return dedup_.size(); }

 private:
  friend class RpcSystem;

  // Per-call_id duplicate suppression. An entry is created when the handler
  // actually starts executing (not at delivery: the dispatch queue may be
  // wiped by a crash first) and stamped with the CoreSet epoch so that an
  // execution cut short by Halt() is re-run, not treated as in flight.
  struct DedupEntry {
    uint64_t epoch = 0;
    bool done = false;
    std::unique_ptr<RpcResponse> response;  // Cached clone once done.
    Tick completed_at = 0;
  };

  // `retransmittable` = the caller armed a timeout, so more copies of this
  // call_id can arrive later. When it is false and the fabric has never had
  // a fault injector, this delivery is provably the only one — the endpoint
  // skips dedup bookkeeping and the response-clone cache entirely.
  void Deliver(NodeId from, IntrusivePtr<RpcRequest> request, uint64_t call_id,
               bool retransmittable);
  void Execute(NodeId from, IntrusivePtr<RpcRequest> request, uint64_t call_id,
               bool retransmittable);
  void PruneDedup();
  uint64_t CurrentEpoch() const;

  RpcSystem* system_;
  NodeId node_;
  CoreSet* cores_;  // Null for unmodeled-CPU nodes (clients).
  Simulator* sim_;  // This endpoint's lane simulator.
  // Filled once at server construction; opcode-indexed array so per-RPC
  // handler lookup is one load, not a hash probe.
  static constexpr size_t kMaxOpcodes = 64;
  std::array<Handler, kMaxOpcodes> handlers_;
  // Bounded: every entry is tracked by dedup_created_ from creation and by
  // dedup_fifo_ from completion; PruneDedup expires both after the
  // rpc_dedup_retention_ns horizon, so long chaos runs cannot grow this.
  FlatMap64<DedupEntry> dedup_;
  // Bounded: drained by PruneDedup past the retention horizon.
  std::deque<std::pair<Tick, uint64_t>> dedup_fifo_;  // (completed_at, call_id).
  // Bounded: drained by PruneDedup past the retention horizon. Tracks every
  // entry from creation so executions orphaned by a crash (never completed,
  // stale epoch, hence never in dedup_fifo_) still expire.
  std::deque<std::pair<Tick, uint64_t>> dedup_created_;  // (created_at, call_id).
  uint64_t duplicates_suppressed_ = 0;
  uint64_t responses_replayed_ = 0;
};

class RpcSystem {
 public:
  // Completion callbacks capture up to 88 bytes inline — sized for the
  // widest steady-state caller (a client actor's per-op continuation).
  inline static constexpr size_t kCallbackInlineBytes = 88;
  using ResponseCallback =
      InlineFunction<void(Status, std::unique_ptr<RpcResponse>), kCallbackInlineBytes>;

  RpcSystem(Simulator* sim, Network* net, const CostModel* costs)
      : sim_(sim), net_(net), costs_(costs) {}

  RpcSystem(const RpcSystem&) = delete;
  RpcSystem& operator=(const RpcSystem&) = delete;

  // Lane mode: callers' timers, jitter draws, and pending tables move to
  // per-lane (and per-node) homes so no RPC state is touched from two lanes.
  // Call once at setup, before any CreateEndpoint.
  void SetLanes(LaneSet* lanes) {
    lanes_ = lanes;
    while (pending_lanes_.size() < static_cast<size_t>(lanes->lanes())) {
      pending_lanes_.emplace_back();
    }
    lane_retransmissions_.assign(static_cast<size_t>(lanes->lanes()), PaddedCount{});
  }
  LaneSet* lanes() const { return lanes_; }

  // Creates an endpoint on a fresh network node, placed on `lane` (ignored
  // in legacy mode).
  RpcEndpoint* CreateEndpoint(CoreSet* cores, int lane = 0);

  // Issues an RPC. `timeout` of zero means one attempt and no deadline.
  // With a timeout, the request is retransmitted (same call_id) on a capped
  // exponential backoff until the deadline; then the callback receives
  // kServerDown with a null response.
  void Call(NodeId from, NodeId to, std::unique_ptr<RpcRequest> request, ResponseCallback cb,
            Tick timeout = 0);

  RpcEndpoint* Endpoint(NodeId node) const {
    return node < endpoints_.size() ? endpoints_[node].get() : nullptr;
  }

  Simulator* sim() const { return sim_; }
  Network* net() const { return net_; }
  const CostModel* costs() const { return costs_; }

  // The simulator owning a given lane / a given node's events. In legacy
  // mode both collapse to the single shared simulator.
  Simulator* SimOfLane(int lane) { return lanes_ != nullptr ? &lanes_->lane_sim(lane) : sim_; }
  Simulator* SimFor(NodeId node) { return lanes_ != nullptr ? lanes_->SimFor(node) : sim_; }
  // The RNG a caller draws jitter/backoff from: the node's private stream in
  // lane mode (draws in node event order are lane-invariant), the shared
  // simulator stream otherwise.
  Random& CallerRng(NodeId node) {
    return lanes_ != nullptr ? lanes_->NodeRng(node) : sim_->rng();
  }

  uint64_t calls_issued() const {
    if (lanes_ == nullptr) {
      return next_call_id_;
    }
    uint64_t total = 0;
    for (const uint64_t count : next_call_id_node_) {
      total += count;
    }
    return total;
  }
  uint64_t retransmissions() const {
    uint64_t total = retransmissions_;
    for (const PaddedCount& shard : lane_retransmissions_) {
      total += shard.value;
    }
    return total;
  }

 private:
  friend class RpcEndpoint;

  struct PendingCall {
    NodeId caller = 0;
    NodeId server = 0;
    IntrusivePtr<RpcRequest> request;
    ResponseCallback cb;
    Tick deadline = 0;  // 0 = wait forever, no retransmission.
    int attempts = 0;
    // Lane mode caches the wire size at Call time: the server's handler may
    // be moving payload out of the request on its own lane while the caller
    // retransmits, so attempts must not re-measure the shared object.
    // (Legacy mode re-measures per attempt, preserving recorded traces.)
    size_t wire = 0;
  };

  struct alignas(64) PaddedCount {
    uint64_t value = 0;
  };

  // Lane-mode call_ids carry their caller: ((node + 1) << kCallerShift) | n.
  // The +1 keeps the id space disjoint from legacy's bare counter, and lets
  // the server side recover the caller without touching its pending table.
  static constexpr int kCallerShift = 40;
  static NodeId CallerOf(uint64_t call_id) {
    return static_cast<NodeId>((call_id >> kCallerShift) - 1);
  }
  // The pending table owning `call_id` — the caller's lane's table in lane
  // mode (only ever touched from that lane), the shared one otherwise.
  FlatMap64<PendingCall>& PendingFor(uint64_t call_id) {
    return lanes_ != nullptr
               ? pending_lanes_[static_cast<size_t>(lanes_->lane_of(CallerOf(call_id)))]
               : pending_;
  }

  // Transmits one attempt of a pending call and, when a deadline is set,
  // arms the next retransmission.
  void SendAttempt(uint64_t call_id);
  // Server side: routes a response (fresh or replayed) back to the caller.
  // The pending entry is erased only when the response reaches the caller,
  // so a lost response leaves the retransmission path armed.
  void TransmitResponse(uint64_t call_id, NodeId server_node,
                        std::unique_ptr<RpcResponse> response);

  Simulator* sim_;
  Network* net_;
  const CostModel* costs_;
  LaneSet* lanes_ = nullptr;  // Null in legacy single-queue mode.

  // Appended at setup only; lanes read concurrently through Endpoint().
  ROCKSTEADY_SHARED_GUARDED("grown at setup only; read-only while lanes run")
  std::vector<std::unique_ptr<RpcEndpoint>> endpoints_;

  // Bounded by the callers' outstanding RPCs: an entry is erased when its
  // response is delivered, its timeout fires, or its endpoint halts.
  FlatMap64<PendingCall> pending_;  // Legacy mode.
  // Lane mode: one pending table per lane, touched only from its own lane
  // (responses hop to the caller's lane before the lookup). Bounded like
  // pending_ above; the deque itself is fixed at SetLanes (lane count).
  ROCKSTEADY_SHARED_GUARDED("per-lane tables; each touched only by its owning lane")
  std::deque<FlatMap64<PendingCall>> pending_lanes_;  // lint:bounded — fixed lane count; entries erased on completion.

  uint64_t next_call_id_ = 0;  // Legacy mode.
  // Lane mode: per-node call counters (slot i touched only by node i's lane).
  ROCKSTEADY_SHARED_GUARDED("per-node slots; slot i written only by node i's lane")
  std::vector<uint64_t> next_call_id_node_;

  uint64_t retransmissions_ = 0;  // Legacy mode.
  ROCKSTEADY_SHARED_GUARDED("per-lane shards; each written only by its owning lane")
  std::vector<PaddedCount> lane_retransmissions_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_RPC_RPC_SYSTEM_H_
