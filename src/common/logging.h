// Minimal leveled logger. Experiments run millions of simulated events, so
// logging defaults to kWarning and formatting costs are only paid when a
// message is actually emitted.
#ifndef ROCKSTEADY_SRC_COMMON_LOGGING_H_
#define ROCKSTEADY_SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <string>

namespace rocksteady {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kSilent = 4,
};

// Process-wide log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Emits one formatted line to stderr. Use the LOG macro rather than calling
// this directly so arguments are not evaluated for dropped messages.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

std::string StringPrintf(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rocksteady

#define ROCKSTEADY_LOG(level, ...)                                                  \
  do {                                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::rocksteady::GetLogLevel())) { \
      ::rocksteady::LogMessage(level, __FILE__, __LINE__,                           \
                               ::rocksteady::StringPrintf(__VA_ARGS__));            \
    }                                                                               \
  } while (0)

#define LOG_DEBUG(...) ROCKSTEADY_LOG(::rocksteady::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) ROCKSTEADY_LOG(::rocksteady::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARNING(...) ROCKSTEADY_LOG(::rocksteady::LogLevel::kWarning, __VA_ARGS__)
#define LOG_ERROR(...) ROCKSTEADY_LOG(::rocksteady::LogLevel::kError, __VA_ARGS__)

#endif  // ROCKSTEADY_SRC_COMMON_LOGGING_H_
