// Key hashing.
//
// RAMCloud partitions tables into tablets by 64-bit primary key hash; the
// master's hash table and Rocksteady's Pull partitioning are both keyed by
// this value. We implement MurmurHash3's x64 128-bit variant and use its
// first 64 bits, matching RAMCloud's choice of a fast non-cryptographic hash
// with good avalanche behaviour.
#ifndef ROCKSTEADY_SRC_COMMON_HASH_H_
#define ROCKSTEADY_SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/common/types.h"

namespace rocksteady {

// MurmurHash3 x64_128, returning the low 64 bits. `seed` selects a hash
// family member; key hashing uses seed 0 everywhere so that clients, masters,
// and the coordinator agree on tablet placement.
uint64_t Murmur3_64(const void* data, size_t length, uint64_t seed);

inline KeyHash HashKey(std::string_view key) { return Murmur3_64(key.data(), key.size(), 0); }

// Primary-key hash for a record of `table`. The master's hash table is keyed
// by hash alone (across every table it hosts), so the table id must be mixed
// in — otherwise the same key string in two co-located tables collides and
// the higher-versioned record silently shadows the other. Matches RAMCloud,
// which hashes (tableId, key) together. Table 0 degenerates to HashKey(key).
inline KeyHash HashKey(TableId table, std::string_view key) {
  return Murmur3_64(key.data(), key.size(), table);
}

// Fast 64->64 bit mix (SplitMix64 finalizer). Used for bucket index
// scrambling and synthetic key generation.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_HASH_H_
