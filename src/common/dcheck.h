// Debug-build invariant checks.
//
// ROCKSTEADY_DCHECK and friends are fatal in debug builds and compile to
// nothing in release builds (NDEBUG), so they can guard hot paths — the
// simulated fast path pays zero cost in the builds that produce the paper's
// figures. The ci/check.sh "debug-audit" configuration forces them on
// (-DROCKSTEADY_AUDIT=ON -> ROCKSTEADY_FORCE_DCHECK) so every test runs with
// the full invariant net even at -O2.
#ifndef ROCKSTEADY_SRC_COMMON_DCHECK_H_
#define ROCKSTEADY_SRC_COMMON_DCHECK_H_

#include <sstream>
#include <string>

#if !defined(NDEBUG) || defined(ROCKSTEADY_FORCE_DCHECK)
#define ROCKSTEADY_DCHECK_ENABLED 1
#else
#define ROCKSTEADY_DCHECK_ENABLED 0
#endif

namespace rocksteady {

// Prints the failure and aborts. Out of line so the macro expansion stays
// small at every call site.
[[noreturn]] void DcheckFail(const char* file, int line, const char* expression,
                             const std::string& detail);

template <typename A, typename B>
[[noreturn]] void DcheckOpFail(const char* file, int line, const char* expression, const A& a,
                               const B& b) {
  std::ostringstream detail;
  detail << "(" << a << " vs " << b << ")";
  DcheckFail(file, line, expression, detail.str());
}

}  // namespace rocksteady

#if ROCKSTEADY_DCHECK_ENABLED

#define ROCKSTEADY_DCHECK(condition)                                         \
  do {                                                                       \
    if (!(condition)) {                                                      \
      ::rocksteady::DcheckFail(__FILE__, __LINE__, #condition, std::string()); \
    }                                                                        \
  } while (0)

// Binary comparison with both values in the failure message. `op` is the
// comparison token, e.g. ROCKSTEADY_DCHECK_OP(<=, used, capacity).
#define ROCKSTEADY_DCHECK_OP(op, a, b)                                            \
  do {                                                                            \
    const auto& rocksteady_dcheck_a = (a);                                        \
    const auto& rocksteady_dcheck_b = (b);                                        \
    if (!(rocksteady_dcheck_a op rocksteady_dcheck_b)) {                          \
      ::rocksteady::DcheckOpFail(__FILE__, __LINE__, #a " " #op " " #b,           \
                                 rocksteady_dcheck_a, rocksteady_dcheck_b);       \
    }                                                                             \
  } while (0)

#else

// Disabled: nothing is evaluated, but the operands must still parse (keeps
// release and debug builds honest about what the checks reference).
#define ROCKSTEADY_DCHECK(condition) \
  do {                               \
    (void)sizeof(condition);         \
  } while (0)
#define ROCKSTEADY_DCHECK_OP(op, a, b) \
  do {                                 \
    (void)sizeof((a)op(b));            \
  } while (0)

#endif  // ROCKSTEADY_DCHECK_ENABLED

#define ROCKSTEADY_DCHECK_EQ(a, b) ROCKSTEADY_DCHECK_OP(==, a, b)
#define ROCKSTEADY_DCHECK_NE(a, b) ROCKSTEADY_DCHECK_OP(!=, a, b)
#define ROCKSTEADY_DCHECK_LE(a, b) ROCKSTEADY_DCHECK_OP(<=, a, b)
#define ROCKSTEADY_DCHECK_LT(a, b) ROCKSTEADY_DCHECK_OP(<, a, b)
#define ROCKSTEADY_DCHECK_GE(a, b) ROCKSTEADY_DCHECK_OP(>=, a, b)
#define ROCKSTEADY_DCHECK_GT(a, b) ROCKSTEADY_DCHECK_OP(>, a, b)

#endif  // ROCKSTEADY_SRC_COMMON_DCHECK_H_
