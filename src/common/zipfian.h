// Zipfian key-popularity generator (YCSB's "zipfian" and "scrambled zipfian").
//
// The paper's evaluation uses YCSB-B with Zipfian theta = 0.99 (Figures 9-11,
// 13-14) and sweeps theta in {0, 0.5, 0.99, 1.5} (Figure 12). Figure 4 uses
// theta = 0.5 over index scan start keys. This implements Gray et al.'s
// rejection-free inverse-CDF approximation exactly as YCSB does, plus a
// scrambled variant that decorrelates rank from key id.
#ifndef ROCKSTEADY_SRC_COMMON_ZIPFIAN_H_
#define ROCKSTEADY_SRC_COMMON_ZIPFIAN_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace rocksteady {

class ZipfianGenerator {
 public:
  // Generates ranks in [0, n). theta in [0, 1) uses the YCSB closed form;
  // theta == 0 degenerates to uniform; theta >= 1 (e.g. Figure 12's 1.5)
  // falls back to inverse-CDF sampling over a precomputed table.
  ZipfianGenerator(uint64_t n, double theta);

  // Next rank, most popular item is rank 0.
  uint64_t Next(Random& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  // YCSB closed-form parameters (theta in (0,1)).
  double alpha_ = 0;
  double zetan_ = 0;
  double eta_ = 0;
  double zeta2theta_ = 0;
  // Inverse CDF table for theta >= 1.
  std::vector<double> cdf_;
};

// Decorrelates Zipfian rank from key id so "hot" keys are spread uniformly
// over the key space (YCSB's ScrambledZipfianGenerator). This matters for
// migration experiments: hot records land uniformly across the hash space,
// so both halves of a table carry hot keys.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta) : zipf_(n, theta) {}

  uint64_t Next(Random& rng) { return Mix64(zipf_.Next(rng)) % zipf_.n(); }

  uint64_t n() const { return zipf_.n(); }

 private:
  ZipfianGenerator zipf_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_ZIPFIAN_H_
