// Invariant-audit framework.
//
// Every core structure (Log, Segment, SideLog, HashTable, TabletManager,
// ObjectManager, Coordinator, RocksteadyMigrationManager) exposes
// AuditInvariants(AuditReport*), which checks the invariants the paper's
// safety argument rests on and *reports* violations instead of aborting —
// tests corrupt state on purpose and assert the audit catches it. At
// migration phase boundaries the debug builds upgrade a failed audit to
// fatal via DebugAudit().
#ifndef ROCKSTEADY_SRC_COMMON_AUDIT_H_
#define ROCKSTEADY_SRC_COMMON_AUDIT_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/dcheck.h"

namespace rocksteady {

// Collects invariant violations from one audit pass. Status-returning by
// design: ok() tells the caller whether the structure is consistent, and
// violations() say exactly what broke.
class AuditReport {
 public:
  void Fail(const char* format, ...) __attribute__((format(printf, 2, 3)));

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }

  // All violations joined into one newline-separated block (test output,
  // fatal-audit messages).
  std::string Summary() const;

 private:
  std::vector<std::string> violations_;
};

// Prints every violation and aborts; used when an audit failure must be
// fatal (phase boundaries in debug builds).
[[noreturn]] void AuditFail(const char* what, const AuditReport& report);

// Runs `object.AuditInvariants(&report, args...)` and dies with the full
// violation list if anything failed. Compiled out entirely in release
// builds, so audits of O(table size) are free on the fast path.
template <typename T, typename... Args>
inline void DebugAudit(const T& object, const char* what, Args&&... args) {
#if ROCKSTEADY_DCHECK_ENABLED
  AuditReport report;
  object.AuditInvariants(&report, std::forward<Args>(args)...);
  if (!report.ok()) {
    AuditFail(what, report);
  }
#else
  (void)object;
  (void)what;
  ((void)args, ...);
#endif
}

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_AUDIT_H_
