// Shard-safety and RPC-semantics annotations, consumed by tools/analyze.py.
//
// ROADMAP item 1 partitions the engine into per-shard event lanes that later
// run on real threads. Before that refactor lands, every piece of mutable
// state with static storage duration — the state that would silently become
// cross-thread shared state — must be classified, and every RPC handler must
// state why a late duplicate execution (the at-least-once loophole: the
// per-call_id dedup cache expires after the retention horizon) is safe.
//
// The macros expand to a clang annotate attribute under clang (so the
// libclang frontend of tools/analyze.py sees them in the AST) and to nothing
// under other compilers; the token frontend matches the macro spelling
// directly, so both frontends enforce the same contract.
//
//   ROCKSTEADY_SHARD_LOCAL
//     This variable is (or will be, trivially) per-shard: either it is
//     confined to one shard's lane by construction, or duplicating it per
//     shard is correct. The sharding refactor may replicate it freely.
//
//   ROCKSTEADY_SHARED_GUARDED("why")
//     This variable is genuinely cross-shard. The string must say what
//     guards it today and what the sharded engine must do about it. Every
//     such site is listed in build/shard_state.json — that file is the
//     work-list for ROADMAP item 1.
//
//   ROCKSTEADY_IDEMPOTENT("why")
//     Placed on an RPC handler registration (before the handler argument).
//     Asserts that re-executing the handler for an already-applied call_id —
//     after its dedup entry expired — cannot corrupt state or lose an acked
//     write. The string records the reviewed argument (pure read, versioned
//     write, re-drivable state machine, ...).
//
// Usage:
//   ROCKSTEADY_SHARED_GUARDED("set once at startup") LogLevel g_level = ...;
//   endpoint_->Register(Opcode::kRead,
//                       ROCKSTEADY_IDEMPOTENT("pure read")
//                       [this](RpcContext c) { HandleRead(std::move(c)); });
#ifndef ROCKSTEADY_SRC_COMMON_ANNOTATIONS_H_
#define ROCKSTEADY_SRC_COMMON_ANNOTATIONS_H_

#if defined(__clang__)
#define ROCKSTEADY_SHARD_LOCAL [[clang::annotate("rocksteady::shard_local")]]
#define ROCKSTEADY_SHARED_GUARDED(why) \
  [[clang::annotate("rocksteady::shared_guarded:" why)]]
#else
#define ROCKSTEADY_SHARD_LOCAL
#define ROCKSTEADY_SHARED_GUARDED(why)
#endif

// Expands to nothing everywhere: it decorates an expression position (the
// handler argument of RpcEndpoint::Register), where no attribute is valid
// C++. Both analyzer frontends match the spelling in the registration
// statement's token stream.
#define ROCKSTEADY_IDEMPOTENT(why)

#endif  // ROCKSTEADY_SRC_COMMON_ANNOTATIONS_H_
