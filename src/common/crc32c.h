// CRC32C (Castagnoli) checksums.
//
// Every log entry and replicated segment carries a CRC32C over its header and
// payload, as in RAMCloud's log: replay on the migration target and crash
// recovery both validate checksums before incorporating records. This is a
// software slice-by-8 implementation (the simulated cluster charges checksum
// time through the cost model, so hardware CRC would not change results).
#ifndef ROCKSTEADY_SRC_COMMON_CRC32C_H_
#define ROCKSTEADY_SRC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace rocksteady {

// Extends `crc` (use 0 for a fresh checksum) over `length` bytes.
uint32_t Crc32c(uint32_t crc, const void* data, size_t length);

// Incremental helper with the same semantics as RAMCloud's Crc32C object.
class Crc32cAccumulator {
 public:
  Crc32cAccumulator& Update(const void* data, size_t length) {
    crc_ = Crc32c(crc_, data, length);
    return *this;
  }

  template <typename T>
  Crc32cAccumulator& UpdateValue(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Update(&value, sizeof(value));
  }

  uint32_t result() const { return crc_; }

 private:
  uint32_t crc_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_CRC32C_H_
