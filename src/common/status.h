// Lightweight status codes used on RPC and storage paths.
//
// The store and RPC layers are on the simulated fast path, so errors are plain
// enum values rather than allocated objects; Result<T> carries a value or a
// status without heap allocation.
#ifndef ROCKSTEADY_SRC_COMMON_STATUS_H_
#define ROCKSTEADY_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string_view>
#include <utility>

namespace rocksteady {

enum class Status : uint8_t {
  kOk = 0,
  // The addressed object does not exist.
  kObjectNotFound,
  // The addressed table (or tablet for the given key hash) does not exist.
  kTableNotFound,
  // The contacted server no longer owns the tablet; refresh the tablet map
  // and retry. Returned by a migration source after ownership transfer.
  kWrongServer,
  // The server owns the tablet but the record has not arrived yet; retry
  // after the hinted delay. Returned by a migration target.
  kRetryLater,
  // A conditional write's version precondition failed.
  kVersionMismatch,
  // Checksum validation failed (corrupt log entry or segment).
  kCorruptData,
  // The operation target is in a state that forbids it (e.g. writing a
  // tablet that is mid-migration on the source).
  kInvalidState,
  // Out of log space / segment space.
  kNoSpace,
  // The server is not reachable (crashed in simulation).
  kServerDown,
};

constexpr std::string_view ToString(Status s) {
  switch (s) {
    case Status::kOk:
      return "OK";
    case Status::kObjectNotFound:
      return "OBJECT_NOT_FOUND";
    case Status::kTableNotFound:
      return "TABLE_NOT_FOUND";
    case Status::kWrongServer:
      return "WRONG_SERVER";
    case Status::kRetryLater:
      return "RETRY_LATER";
    case Status::kVersionMismatch:
      return "VERSION_MISMATCH";
    case Status::kCorruptData:
      return "CORRUPT_DATA";
    case Status::kInvalidState:
      return "INVALID_STATE";
    case Status::kNoSpace:
      return "NO_SPACE";
    case Status::kServerDown:
      return "SERVER_DOWN";
  }
  return "UNKNOWN";
}

// A value-or-status pair. On the simulated fast path we avoid exceptions and
// heap allocation; this is a thin wrapper over std::optional.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::kOk), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(status) {                            // NOLINT
    assert(status != Status::kOk);
  }

  bool ok() const { return status_ == Status::kOk; }
  Status status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_STATUS_H_
