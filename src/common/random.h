// Deterministic PRNG for the simulation.
//
// Every source of randomness in an experiment (workload keys, retry jitter,
// network ordering ties) draws from one seeded generator so that each figure
// regenerates bit-identically. xoshiro256** — fast, high quality, and not
// dependent on libstdc++'s unspecified distribution implementations.
#ifndef ROCKSTEADY_SRC_COMMON_RANDOM_H_
#define ROCKSTEADY_SRC_COMMON_RANDOM_H_

#include <cstdint>

#include "src/common/hash.h"

namespace rocksteady {

class Random {
 public:
  explicit Random(uint64_t seed = 1) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed, per xoshiro authors' recommendation.
    for (auto& word : state_) {
      seed = Mix64(seed);
      word = seed;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Unbiased enough for simulation purposes.
  uint64_t Uniform(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform in [lo, hi].
  uint64_t UniformRange(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_RANDOM_H_
