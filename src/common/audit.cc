#include "src/common/audit.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rocksteady {

void AuditReport::Fail(const char* format, ...) {
  va_list args;
  va_start(args, format);
  char buffer[512];
  vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  violations_.emplace_back(buffer);
}

std::string AuditReport::Summary() const {
  std::string summary;
  for (const std::string& violation : violations_) {
    if (!summary.empty()) {
      summary += '\n';
    }
    summary += violation;
  }
  return summary;
}

void AuditFail(const char* what, const AuditReport& report) {
  fprintf(stderr, "AUDIT FAILED [%s]: %zu invariant violation(s)\n", what,
          report.violations().size());
  for (const std::string& violation : report.violations()) {
    fprintf(stderr, "  - %s\n", violation.c_str());
  }
  fflush(stderr);
  abort();
}

void DcheckFail(const char* file, int line, const char* expression, const std::string& detail) {
  fprintf(stderr, "DCHECK failed at %s:%d: %s %s\n", file, line, expression, detail.c_str());
  fflush(stderr);
  abort();
}

}  // namespace rocksteady
