#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace rocksteady {

Histogram::Histogram() {
  // 64 octaves x 64 sub-buckets covers the full uint64_t range.
  buckets_.resize((64 - kSubBucketBits + 1) * kSubBuckets, 0);
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  const int octave = 63 - std::countl_zero(value);  // Highest set bit.
  const int shift = octave - kSubBucketBits + 1;
  const uint64_t sub = value >> shift;  // In [kSubBuckets/2.. kSubBuckets).
  return static_cast<size_t>(octave - kSubBucketBits + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  const size_t octave_group = index / kSubBuckets;
  const uint64_t sub = index % kSubBuckets;
  if (octave_group == 0) {
    return sub;
  }
  const int shift = static_cast<int>(octave_group) - 1 + 1;
  // Inverse of BucketIndex: top of the bucket's value range.
  return ((sub + 1) << shift) - 1;
}

void Histogram::Record(uint64_t value) {
  const size_t index = BucketIndex(value);
  assert(index < buckets_.size());
  buckets_[index]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  assert(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

}  // namespace rocksteady
