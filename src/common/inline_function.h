// Move-only type-erased callable with inline storage — the event loop's
// replacement for std::function.
//
// std::function's small-object buffer (16 bytes in libstdc++) is too small
// for the simulator's callbacks (a typical event captures a `this`, an
// epoch, and a nested callback), so nearly every scheduled event heap-
// allocates its closure and frees it after dispatch. InlineFunction<Sig, N>
// stores any callable of up to N bytes directly inside the object; the
// schedule → dispatch → free cycle then allocates nothing (events live in
// the Simulator's slab pool, closures live inside the events).
//
// Oversized / over-aligned / throwing-move callables still work: they fall
// back to the heap, and the fall-back is counted in a global so the
// allocation regression test can assert the hot path never takes it.
// Move-only by design — copyability is what forces std::function to box;
// callables themselves may be move-only (e.g. lambdas capturing unique_ptr).
#ifndef ROCKSTEADY_SRC_COMMON_INLINE_FUNCTION_H_
#define ROCKSTEADY_SRC_COMMON_INLINE_FUNCTION_H_

#include <atomic>  // lint:allow-nondeterminism — telemetry counter only; never read on the hot path.
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "src/common/annotations.h"

namespace rocksteady {

// Incremented whenever an InlineFunction boxes its callable on the heap.
// Steady-state engine code must keep this flat (see alloc_regression_test);
// registration-time and test code may trip it freely. Atomic with relaxed
// order: any event lane may trip it, it is pure telemetry (never feeds back
// into scheduling), and tests only read it with all lanes parked.
ROCKSTEADY_SHARED_GUARDED("relaxed telemetry counter; any lane increments, read only when lanes are parked")
inline std::atomic<uint64_t> g_inline_fn_heap_fallbacks{0};  // lint:allow-nondeterminism — telemetry only.

inline uint64_t InlineFunctionHeapFallbacks() {
  return g_inline_fn_heap_fallbacks.load(std::memory_order_relaxed);
}

template <typename Sig, size_t InlineBytes>
class InlineFunction;  // Primary template; only the R(Args...) form exists.

template <typename R, typename... Args, size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction& operator=(F&& f) {
    Reset();
    Emplace(std::forward<F>(f));
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) { return f.ops_ == nullptr; }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) { return f.ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(Object(), std::forward<Args>(args)...);
  }

  static constexpr size_t inline_bytes() { return InlineBytes; }

 private:
  struct Ops {
    R (*invoke)(void* obj, Args&&... args);
    // Move-constructs the callable into `dst` from `src` storage and
    // destroys the source (for the inline case; the heap case just moves
    // the pointer).
    void (*relocate)(void* dst_storage, void* src_storage);
    void (*destroy)(void* obj);
    bool heap;  // True when storage_ holds a pointer to the boxed callable.
  };

  template <typename F>
  static constexpr bool kFitsInline = sizeof(F) <= InlineBytes &&
                                      alignof(F) <= alignof(void*) &&
                                      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineOps {
    static R Invoke(void* obj, Args&&... args) {
      return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst_storage, void* src_storage) {
      F* src = static_cast<F*>(src_storage);
      ::new (dst_storage) F(std::move(*src));
      src->~F();
    }
    static void Destroy(void* obj) { static_cast<F*>(obj)->~F(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, /*heap=*/false};
  };

  template <typename F>
  struct HeapOps {
    static R Invoke(void* obj, Args&&... args) {
      return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst_storage, void* src_storage) {
      *static_cast<void**>(dst_storage) = *static_cast<void**>(src_storage);
    }
    static void Destroy(void* obj) { delete static_cast<F*>(obj); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, /*heap=*/true};
  };

  template <typename Raw>
  void Emplace(Raw&& f) {
    using F = std::decay_t<Raw>;
    if constexpr (kFitsInline<F>) {
      ::new (static_cast<void*>(storage_)) F(std::forward<Raw>(f));
      ops_ = &InlineOps<F>::kOps;
    } else {
      g_inline_fn_heap_fallbacks.fetch_add(1, std::memory_order_relaxed);
      *reinterpret_cast<void**>(storage_) = new F(std::forward<Raw>(f));
      ops_ = &HeapOps<F>::kOps;
    }
  }

  void* Object() {
    return ops_->heap ? *reinterpret_cast<void**>(storage_) : static_cast<void*>(storage_);
  }

  void MoveFrom(InlineFunction& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(Object());
      ops_ = nullptr;
    }
  }

  alignas(void*) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_INLINE_FUNCTION_H_
