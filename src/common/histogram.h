// Log-bucketed latency histogram (HDR-histogram style).
//
// The paper reports medians and 99.9th percentiles of microsecond-scale
// latencies; a linear histogram would be either too coarse or too large, so
// buckets grow geometrically: 64 linear sub-buckets per power-of-two range,
// giving <= 1.6% relative error across nanoseconds..seconds at ~4 KB.
#ifndef ROCKSTEADY_SRC_COMMON_HISTOGRAM_H_
#define ROCKSTEADY_SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rocksteady {

class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Value at quantile q in [0, 1]; e.g. 0.5 for the median, 0.999 for the
  // 99.9th percentile. Returns 0 when empty.
  uint64_t Percentile(double q) const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave.
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;

  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_HISTOGRAM_H_
