// Core identifier and time types shared by every subsystem.
#ifndef ROCKSTEADY_SRC_COMMON_TYPES_H_
#define ROCKSTEADY_SRC_COMMON_TYPES_H_

#include <cstdint>

namespace rocksteady {

// Identifies a table in the cluster-wide key space.
using TableId = uint64_t;

// 64-bit hash of a primary key; tablets partition tables by KeyHash range.
using KeyHash = uint64_t;

// Identifies a server (master+backup pair) in the cluster. Zero is invalid.
using ServerId = uint32_t;
inline constexpr ServerId kInvalidServerId = 0;

// Monotonic per-object version; bumped by every write.
using Version = uint64_t;

// Simulated time, in nanoseconds since simulation start.
using Tick = uint64_t;

inline constexpr Tick kMicrosecond = 1'000;
inline constexpr Tick kMillisecond = 1'000'000;
inline constexpr Tick kSecond = 1'000'000'000;

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_TYPES_H_
