#include "src/common/logging.h"

#include <cstdarg>
#include <cstdio>

#include "src/common/annotations.h"

namespace rocksteady {
namespace {

// Set once by test/bench mains before any simulation runs; never written on
// a simulated path, so sharded lanes may read it unsynchronized.
ROCKSTEADY_SHARED_GUARDED("process-wide log threshold, written only at startup")
LogLevel g_level = LogLevel::kWarning;

constexpr const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kSilent:
      return "SILENT";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  // Strip the directory prefix for readability.
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      basename = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), basename, line, message.c_str());
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace rocksteady
