#include "src/common/timeseries.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace rocksteady {

LatencyTimeline::LatencyTimeline(Tick window, size_t max_windows) : window_(window) {
  assert(window > 0);
  windows_.resize(max_windows);
}

void LatencyTimeline::Record(Tick completion_time, Tick latency) {
  const size_t i = static_cast<size_t>(completion_time / window_);
  if (i < windows_.size()) {
    windows_[i].Record(latency);
  }
}

double LatencyTimeline::Throughput(size_t i) const {
  return static_cast<double>(windows_[i].count()) * static_cast<double>(kSecond) /
         static_cast<double>(window_);
}

Histogram LatencyTimeline::Total() const {
  Histogram total;
  for (const auto& w : windows_) {
    total.Merge(w);
  }
  return total;
}

UtilizationTimeline::UtilizationTimeline(Tick window, size_t max_windows) : window_(window) {
  assert(window > 0);
  busy_.resize(max_windows, 0);
}

void UtilizationTimeline::AddBusy(Tick start, Tick duration) {
  while (duration > 0) {
    const size_t i = static_cast<size_t>(start / window_);
    if (i >= busy_.size()) {
      return;
    }
    const Tick window_end = (static_cast<Tick>(i) + 1) * window_;
    const Tick chunk = std::min<Tick>(duration, window_end - start);
    busy_[i] += chunk;
    start += chunk;
    duration -= chunk;
  }
}

CounterTimeline::CounterTimeline(Tick window, size_t max_windows) : window_(window) {
  assert(window > 0);
  counts_.resize(max_windows, 0);
}

void CounterTimeline::Add(Tick when, uint64_t amount) {
  const size_t i = static_cast<size_t>(when / window_);
  if (i < counts_.size()) {
    counts_[i] += amount;
  }
}

uint64_t CounterTimeline::TotalCount() const {
  return std::accumulate(counts_.begin(), counts_.end(), uint64_t{0});
}

}  // namespace rocksteady
