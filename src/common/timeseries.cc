#include "src/common/timeseries.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace rocksteady {

LatencyTimeline::LatencyTimeline(Tick window, size_t max_windows) : window_(window) {
  assert(window > 0);
  windows_.resize(max_windows);
}

void LatencyTimeline::Record(Tick completion_time, Tick latency) {
  const size_t i = static_cast<size_t>(completion_time / window_);
  if (i < windows_.size()) {
    windows_[i].Record(latency);
  }
}

double LatencyTimeline::Throughput(size_t i) const {
  return static_cast<double>(windows_[i].count()) * static_cast<double>(kSecond) /
         static_cast<double>(window_);
}

Histogram LatencyTimeline::Total() const {
  Histogram total;
  for (const auto& w : windows_) {
    total.Merge(w);
  }
  return total;
}

UtilizationTimeline::UtilizationTimeline(Tick window, size_t max_windows) : window_(window) {
  assert(window > 0);
  busy_.resize(max_windows, 0);
}

void UtilizationTimeline::AddBusy(Tick start, Tick duration) {
  while (duration > 0) {
    const size_t i = static_cast<size_t>(start / window_);
    if (i >= busy_.size()) {
      return;
    }
    const Tick window_end = (static_cast<Tick>(i) + 1) * window_;
    const Tick chunk = std::min<Tick>(duration, window_end - start);
    busy_[i] += chunk;
    start += chunk;
    duration -= chunk;
  }
}

SlidingLatencyTracker::SlidingLatencyTracker(Tick bucket_span, size_t num_buckets)
    : bucket_span_(bucket_span) {
  assert(bucket_span > 0);
  assert(num_buckets > 0);
  buckets_.resize(num_buckets);
}

void SlidingLatencyTracker::Advance(Tick now) {
  const uint64_t target = static_cast<uint64_t>(now / bucket_span_);
  if (target <= current_) {
    return;
  }
  if (target - current_ >= buckets_.size()) {
    // Quiet period longer than the whole ring: everything is stale.
    for (auto& bucket : buckets_) {
      bucket.Reset();
    }
  } else {
    for (uint64_t i = current_ + 1; i <= target; ++i) {
      buckets_[i % buckets_.size()].Reset();
    }
  }
  current_ = target;
}

void SlidingLatencyTracker::Record(Tick now, Tick latency) {
  Advance(now);
  buckets_[current_ % buckets_.size()].Record(latency);
}

uint64_t SlidingLatencyTracker::RecentPercentile(Tick now, double q) {
  Advance(now);
  Histogram merged;
  for (const auto& bucket : buckets_) {
    merged.Merge(bucket);
  }
  if (merged.count() == 0) {
    return 0;
  }
  return merged.Percentile(q);
}

uint64_t SlidingLatencyTracker::RecentCount(Tick now) {
  Advance(now);
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.count();
  }
  return total;
}

CounterTimeline::CounterTimeline(Tick window, size_t max_windows) : window_(window) {
  assert(window > 0);
  counts_.resize(max_windows, 0);
}

void CounterTimeline::Add(Tick when, uint64_t amount) {
  const size_t i = static_cast<size_t>(when / window_);
  if (i < counts_.size()) {
    counts_[i] += amount;
  }
}

uint64_t CounterTimeline::TotalCount() const {
  return std::accumulate(counts_.begin(), counts_.end(), uint64_t{0});
}

}  // namespace rocksteady
