#include "src/common/zipfian.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rocksteady {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  if (theta_ <= 0) {
    theta_ = 0;  // Uniform.
    return;
  }
  if (theta_ < 1.0) {
    // YCSB closed form (Gray et al., "Quickly Generating Billion-Record
    // Synthetic Databases").
    zetan_ = Zeta(n_, theta_);
    zeta2theta_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2theta_ / zetan_);
    return;
  }
  // theta >= 1: the closed form diverges; build an explicit CDF table. For
  // the table to be practical we cap it; ranks beyond the cap have vanishing
  // probability at theta >= 1 anyway.
  const uint64_t table_size = std::min<uint64_t>(n_, 1u << 20);
  cdf_.resize(table_size);
  double sum = 0;
  for (uint64_t i = 0; i < table_size; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) {
    v /= sum;
  }
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 0; i < n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Random& rng) {
  if (theta_ == 0) {
    return rng.Uniform(n_);
  }
  if (!cdf_.empty()) {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint64_t>(it - cdf_.begin());
  }
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  return static_cast<uint64_t>(static_cast<double>(n_) *
                               std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace rocksteady
