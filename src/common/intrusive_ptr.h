// Intrusive reference counting for cross-lane fan-out.
//
// std::shared_ptr pays for a separately-allocated control block; the RPC
// layer creates a shared handle per request (retransmissions deliver the
// same object), so that cost is pure waste on the hot path. RefCounted
// embeds the counter in the object; IntrusivePtr is one pointer wide. The
// count is atomic because a request's references live on both the caller's
// and the server's event lanes under sharded execution (relaxed increments;
// acquire/release on the final decrement so the deleter sees all writes) —
// uncontended atomics cost nothing measurable on the single-lane path.
#ifndef ROCKSTEADY_SRC_COMMON_INTRUSIVE_PTR_H_
#define ROCKSTEADY_SRC_COMMON_INTRUSIVE_PTR_H_

#include <atomic>  // lint:allow-nondeterminism — refcount only; lifetime, never event order.
#include <cstdint>
#include <memory>
#include <utility>

namespace rocksteady {

// Base for intrusively refcounted types.
class RefCounted {
 public:
  RefCounted() = default;
  // Copies of a refcounted object start with their own fresh count.
  RefCounted(const RefCounted&) {}
  RefCounted& operator=(const RefCounted&) { return *this; }

 private:
  template <typename T>
  friend class IntrusivePtr;

  mutable std::atomic<uint32_t> ref_count_{0};  // lint:allow-nondeterminism — see header comment.
};

template <typename T>
class IntrusivePtr {
 public:
  IntrusivePtr() = default;
  IntrusivePtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Takes shared ownership of `p` (which may already have other owners).
  explicit IntrusivePtr(T* p) : p_(p) { Ref(); }

  // Adopts sole ownership from a unique_ptr (refcount 0 -> 1).
  explicit IntrusivePtr(std::unique_ptr<T> p) : p_(p.release()) { Ref(); }

  IntrusivePtr(const IntrusivePtr& other) : p_(other.p_) { Ref(); }
  IntrusivePtr(IntrusivePtr&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }

  IntrusivePtr& operator=(const IntrusivePtr& other) {
    if (this != &other) {
      Unref();
      p_ = other.p_;
      Ref();
    }
    return *this;
  }
  IntrusivePtr& operator=(IntrusivePtr&& other) noexcept {
    if (this != &other) {
      Unref();
      p_ = other.p_;
      other.p_ = nullptr;
    }
    return *this;
  }

  ~IntrusivePtr() { Unref(); }

  T* get() const { return p_; }
  T& operator*() const { return *p_; }
  T* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }
  friend bool operator==(const IntrusivePtr& p, std::nullptr_t) { return p.p_ == nullptr; }
  friend bool operator!=(const IntrusivePtr& p, std::nullptr_t) { return p.p_ != nullptr; }

  void reset() { Unref(); p_ = nullptr; }

 private:
  void Ref() {
    if (p_ != nullptr) {
      static_cast<const RefCounted*>(p_)->ref_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void Unref() {
    if (p_ != nullptr &&
        static_cast<const RefCounted*>(p_)->ref_count_.fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      delete p_;
    }
  }

  T* p_ = nullptr;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_INTRUSIVE_PTR_H_
