// Intrusive reference counting for single-threaded fan-out.
//
// std::shared_ptr pays for a separately-allocated control block and atomic
// refcounts; the simulation is single-threaded and the RPC layer creates a
// shared handle per request (retransmissions deliver the same object), so
// both costs are pure waste on the hot path. RefCounted embeds a plain
// counter in the object; IntrusivePtr is one pointer wide.
#ifndef ROCKSTEADY_SRC_COMMON_INTRUSIVE_PTR_H_
#define ROCKSTEADY_SRC_COMMON_INTRUSIVE_PTR_H_

#include <cstdint>
#include <memory>
#include <utility>

namespace rocksteady {

// Base for intrusively refcounted types. Non-atomic by design: the
// simulation kernel is single-threaded.
class RefCounted {
 public:
  RefCounted() = default;
  // Copies of a refcounted object start with their own fresh count.
  RefCounted(const RefCounted&) {}
  RefCounted& operator=(const RefCounted&) { return *this; }

 private:
  template <typename T>
  friend class IntrusivePtr;

  mutable uint32_t ref_count_ = 0;
};

template <typename T>
class IntrusivePtr {
 public:
  IntrusivePtr() = default;
  IntrusivePtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Takes shared ownership of `p` (which may already have other owners).
  explicit IntrusivePtr(T* p) : p_(p) { Ref(); }

  // Adopts sole ownership from a unique_ptr (refcount 0 -> 1).
  explicit IntrusivePtr(std::unique_ptr<T> p) : p_(p.release()) { Ref(); }

  IntrusivePtr(const IntrusivePtr& other) : p_(other.p_) { Ref(); }
  IntrusivePtr(IntrusivePtr&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }

  IntrusivePtr& operator=(const IntrusivePtr& other) {
    if (this != &other) {
      Unref();
      p_ = other.p_;
      Ref();
    }
    return *this;
  }
  IntrusivePtr& operator=(IntrusivePtr&& other) noexcept {
    if (this != &other) {
      Unref();
      p_ = other.p_;
      other.p_ = nullptr;
    }
    return *this;
  }

  ~IntrusivePtr() { Unref(); }

  T* get() const { return p_; }
  T& operator*() const { return *p_; }
  T* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }
  friend bool operator==(const IntrusivePtr& p, std::nullptr_t) { return p.p_ == nullptr; }
  friend bool operator!=(const IntrusivePtr& p, std::nullptr_t) { return p.p_ != nullptr; }

  void reset() { Unref(); p_ = nullptr; }

 private:
  void Ref() {
    if (p_ != nullptr) {
      static_cast<const RefCounted*>(p_)->ref_count_++;
    }
  }
  void Unref() {
    if (p_ != nullptr && --static_cast<const RefCounted*>(p_)->ref_count_ == 0) {
      delete p_;
    }
  }

  T* p_ = nullptr;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_INTRUSIVE_PTR_H_
