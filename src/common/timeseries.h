// Windowed time-series recorders for the experiment timelines.
//
// Figures 9-14 plot running throughput, running median / 99.9th percentile
// latency, and per-window core utilization against experiment time. These
// helpers bucket samples into fixed windows of simulated time and emit one
// row per window.
#ifndef ROCKSTEADY_SRC_COMMON_TIMESERIES_H_
#define ROCKSTEADY_SRC_COMMON_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"

namespace rocksteady {

// Per-window latency distribution + completion count.
class LatencyTimeline {
 public:
  LatencyTimeline(Tick window, size_t max_windows);

  void Record(Tick completion_time, Tick latency);

  size_t NumWindows() const { return windows_.size(); }
  Tick WindowStart(size_t i) const { return static_cast<Tick>(i) * window_; }
  Tick window() const { return window_; }

  uint64_t Count(size_t i) const { return windows_[i].count(); }
  // Completions per second in window i.
  double Throughput(size_t i) const;
  uint64_t Percentile(size_t i, double q) const { return windows_[i].Percentile(q); }

  // Distribution over the whole run.
  Histogram Total() const;

 private:
  Tick window_;
  std::vector<Histogram> windows_;
};

// Per-window accumulation of busy time for a set of cores; reports average
// active cores (busy_time / window) per window, matching Figure 11's
// "Utilization (Active Cores)" axis.
class UtilizationTimeline {
 public:
  UtilizationTimeline(Tick window, size_t max_windows);

  // Charge `duration` of busy time starting at `start` (split across window
  // boundaries as needed).
  void AddBusy(Tick start, Tick duration);

  size_t NumWindows() const { return busy_.size(); }
  Tick window() const { return window_; }
  // Mean number of active cores during window i.
  double ActiveCores(size_t i) const {
    return static_cast<double>(busy_[i]) / static_cast<double>(window_);
  }

 private:
  Tick window_;
  std::vector<uint64_t> busy_;
};

// Per-window scalar accumulation (e.g. bytes migrated per window).
class CounterTimeline {
 public:
  CounterTimeline(Tick window, size_t max_windows);

  void Add(Tick when, uint64_t amount);

  size_t NumWindows() const { return counts_.size(); }
  Tick window() const { return window_; }
  uint64_t Count(size_t i) const { return counts_[i]; }
  // Per-second rate in window i.
  double Rate(size_t i) const {
    return static_cast<double>(counts_[i]) * static_cast<double>(kSecond) /
           static_cast<double>(window_);
  }
  uint64_t TotalCount() const;

 private:
  Tick window_;
  std::vector<uint64_t> counts_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_TIMESERIES_H_
