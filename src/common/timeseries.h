// Windowed time-series recorders for the experiment timelines.
//
// Figures 9-14 plot running throughput, running median / 99.9th percentile
// latency, and per-window core utilization against experiment time. These
// helpers bucket samples into fixed windows of simulated time and emit one
// row per window.
#ifndef ROCKSTEADY_SRC_COMMON_TIMESERIES_H_
#define ROCKSTEADY_SRC_COMMON_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"

namespace rocksteady {

// Per-window latency distribution + completion count.
class LatencyTimeline {
 public:
  LatencyTimeline(Tick window, size_t max_windows);

  void Record(Tick completion_time, Tick latency);

  size_t NumWindows() const { return windows_.size(); }
  Tick WindowStart(size_t i) const { return static_cast<Tick>(i) * window_; }
  Tick window() const { return window_; }

  uint64_t Count(size_t i) const { return windows_[i].count(); }
  // Completions per second in window i.
  double Throughput(size_t i) const;
  uint64_t Percentile(size_t i, double q) const { return windows_[i].Percentile(q); }

  // Distribution over the whole run.
  Histogram Total() const;

 private:
  Tick window_;
  std::vector<Histogram> windows_;
};

// Per-window accumulation of busy time for a set of cores; reports average
// active cores (busy_time / window) per window, matching Figure 11's
// "Utilization (Active Cores)" axis.
class UtilizationTimeline {
 public:
  UtilizationTimeline(Tick window, size_t max_windows);

  // Charge `duration` of busy time starting at `start` (split across window
  // boundaries as needed).
  void AddBusy(Tick start, Tick duration);

  size_t NumWindows() const { return busy_.size(); }
  Tick window() const { return window_; }
  // Mean number of active cores during window i.
  double ActiveCores(size_t i) const {
    return static_cast<double>(busy_[i]) / static_cast<double>(window_);
  }

 private:
  Tick window_;
  std::vector<uint64_t> busy_;
};

// Sliding-window latency tracker for overload signals. Unlike
// LatencyTimeline (which keeps every window of a run for plotting), this
// keeps only the last `num_buckets` sub-windows of `bucket_span` simulated
// time each, recycled in place, and answers "recent p99.9" over them —
// constant memory regardless of run length. The source piggybacks this
// signal on pull replies so the migration target can pace itself (§4.2's
// "adaptively... based on load").
class SlidingLatencyTracker {
 public:
  SlidingLatencyTracker(Tick bucket_span, size_t num_buckets);

  void Record(Tick now, Tick latency);

  // Percentile over samples from roughly the last bucket_span * num_buckets
  // of simulated time. Returns 0 when no recent samples exist.
  uint64_t RecentPercentile(Tick now, double q);
  uint64_t RecentCount(Tick now);

  Tick span() const { return bucket_span_ * static_cast<Tick>(buckets_.size()); }

 private:
  // Rotates the ring forward so every slot holds a window overlapping
  // [now - span, now]; skipped-over slots are reset.
  void Advance(Tick now);

  Tick bucket_span_;
  std::vector<Histogram> buckets_;
  uint64_t current_ = 0;  // Absolute index (now / bucket_span_) of the newest slot.
};

// Per-window scalar accumulation (e.g. bytes migrated per window).
class CounterTimeline {
 public:
  CounterTimeline(Tick window, size_t max_windows);

  void Add(Tick when, uint64_t amount);

  size_t NumWindows() const { return counts_.size(); }
  Tick window() const { return window_; }
  uint64_t Count(size_t i) const { return counts_[i]; }
  // Per-second rate in window i.
  double Rate(size_t i) const {
    return static_cast<double>(counts_[i]) * static_cast<double>(kSecond) /
           static_cast<double>(window_);
  }
  uint64_t TotalCount() const;

 private:
  Tick window_;
  std::vector<uint64_t> counts_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_TIMESERIES_H_
