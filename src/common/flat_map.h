// Open-addressed hash map keyed on uint64_t — the RPC layer's replacement
// for node-based maps on the hot path.
//
// std::map / std::unordered_map allocate one node per entry and chase a
// pointer per probe; the RPC pending table, the dedup cache, and the fault
// injector's per-link tables are touched on every message, so that churn is
// a measurable slice of per-event cost. FlatMap64 keeps keys, values, and a
// one-byte state array in three flat allocations, probes linearly, and
// reuses erased slots via tombstones (rehash drops them).
//
// Determinism: the map deliberately exposes NO iteration — lookup, insert,
// and erase only. Traversal order of an open-addressed table depends on
// insertion history in ways that are easy to misuse; every current client
// (rpc_system, fault_injector) is lookup-only, and keeping it that way is
// what makes this swap trace-hash-neutral. Key 0 is a legal key (call_ids
// start at 0), hence the state bytes instead of a sentinel empty key.
#ifndef ROCKSTEADY_SRC_COMMON_FLAT_MAP_H_
#define ROCKSTEADY_SRC_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/common/dcheck.h"
#include "src/common/hash.h"

namespace rocksteady {

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() { Rehash(kMinCapacity); }

  FlatMap64(const FlatMap64&) = delete;
  FlatMap64& operator=(const FlatMap64&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Returns the value for `key`, or nullptr. Never invalidated by other
  // Finds; invalidated by Insert/operator[] (rehash) and Erase.
  V* Find(uint64_t key) {
    const size_t slot = FindSlot(key);
    return slot != kNoSlot && states_[slot] == kFull ? &values_[slot] : nullptr;
  }
  const V* Find(uint64_t key) const {
    return const_cast<FlatMap64*>(this)->Find(key);
  }

  // Inserts a default-constructed value if absent; returns the value.
  V& operator[](uint64_t key) {
    MaybeGrow();
    size_t slot = ProbeForInsert(key);
    if (states_[slot] != kFull) {
      if (states_[slot] == kTombstone) {
        tombstones_--;
      }
      states_[slot] = kFull;
      keys_[slot] = key;
      values_[slot] = V{};
      size_++;
    }
    return values_[slot];
  }

  bool Erase(uint64_t key) {
    const size_t slot = FindSlot(key);
    if (slot == kNoSlot || states_[slot] != kFull) {
      return false;
    }
    states_[slot] = kTombstone;
    values_[slot] = V{};  // Release held resources now, not at rehash.
    size_--;
    tombstones_++;
    return true;
  }

 private:
  enum : uint8_t { kEmpty = 0, kTombstone = 1, kFull = 2 };
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kNoSlot = ~size_t{0};

  // Returns the slot holding `key`, or kNoSlot. Linear probe from the mixed
  // hash; tombstones keep probing, empty stops.
  size_t FindSlot(uint64_t key) const {
    size_t slot = static_cast<size_t>(Mix64(key)) & mask_;
    while (true) {
      if (states_[slot] == kEmpty) {
        return kNoSlot;
      }
      if (states_[slot] == kFull && keys_[slot] == key) {
        return slot;
      }
      slot = (slot + 1) & mask_;
    }
  }

  // Returns the slot where `key` lives or should be inserted (first
  // tombstone on the probe path if the key is absent).
  size_t ProbeForInsert(uint64_t key) const {
    size_t slot = static_cast<size_t>(Mix64(key)) & mask_;
    size_t first_tombstone = kNoSlot;
    while (true) {
      if (states_[slot] == kEmpty) {
        return first_tombstone != kNoSlot ? first_tombstone : slot;
      }
      if (states_[slot] == kTombstone) {
        if (first_tombstone == kNoSlot) {
          first_tombstone = slot;
        }
      } else if (keys_[slot] == key) {
        return slot;
      }
      slot = (slot + 1) & mask_;
    }
  }

  void MaybeGrow() {
    // Keep full + tombstone occupancy under 3/4 so probes stay short.
    if ((size_ + tombstones_ + 1) * 4 >= capacity_ * 3) {
      size_t target = capacity_;
      // Only enlarge when live entries need it; a tombstone-heavy table
      // rehashes at the same capacity to sweep them out.
      if ((size_ + 1) * 4 >= capacity_ * 2) {
        target = capacity_ * 2;
      }
      Rehash(target);
    }
  }

  void Rehash(size_t new_capacity) {
    auto old_keys = std::move(keys_);
    auto old_values = std::move(values_);
    auto old_states = std::move(states_);
    const size_t old_capacity = capacity_;

    capacity_ = new_capacity;
    mask_ = capacity_ - 1;
    keys_ = std::make_unique<uint64_t[]>(capacity_);
    values_ = std::make_unique<V[]>(capacity_);
    states_ = std::make_unique<uint8_t[]>(capacity_);  // Zeroed = kEmpty.
    tombstones_ = 0;

    for (size_t i = 0; i < old_capacity; i++) {
      if (old_states[i] != kFull) {
        continue;
      }
      size_t slot = static_cast<size_t>(Mix64(old_keys[i])) & mask_;
      while (states_[slot] == kFull) {
        slot = (slot + 1) & mask_;
      }
      states_[slot] = kFull;
      keys_[slot] = old_keys[i];
      values_[slot] = std::move(old_values[i]);
    }
  }

  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
  size_t tombstones_ = 0;
  std::unique_ptr<uint64_t[]> keys_;
  std::unique_ptr<V[]> values_;
  std::unique_ptr<uint8_t[]> states_;
};

// Packs a directed (from, to) link into a FlatMap64 key.
inline constexpr uint64_t PackLink(uint32_t from, uint32_t to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_COMMON_FLAT_MAP_H_
