#include "src/common/crc32c.h"

#include <array>
#include <cstring>
#include <type_traits>

namespace rocksteady {
namespace {

constexpr uint32_t kPolynomial = 0x82f63b78u;  // Reflected CRC32C polynomial.

struct Tables {
  // table[k][b]: CRC contribution of byte value b at lane k, for slice-by-8.
  uint32_t t[8][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int j = 0; j < 8; j++) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; k++) {
      crc = tables.t[0][crc & 0xff] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

const Tables kTables = BuildTables();

#if defined(__x86_64__)
// SSE4.2's crc32 instruction implements exactly this reflected CRC32C
// (Castagnoli) update, so the hardware and table paths return identical
// values for all inputs — dispatching on CPU capability cannot perturb
// determinism, only wall-clock speed.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(uint32_t crc, const uint8_t* p,
                                                          size_t length) {
  while (length > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    length--;
  }
  while (length >= 8) {
    uint64_t block;
    std::memcpy(&block, p, sizeof(block));
    crc = static_cast<uint32_t>(__builtin_ia32_crc32di(crc, block));
    p += 8;
    length -= 8;
  }
  while (length-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
  }
  return crc;
}
#endif

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t length) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
#if defined(__x86_64__)
  static const bool kHasSse42 = __builtin_cpu_supports("sse4.2");
  if (kHasSse42) {
    return ~Crc32cHardware(crc, p, length);
  }
#endif

  // Align to 8 bytes.
  while (length > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    length--;
  }

  // Slice-by-8 over the aligned middle.
  while (length >= 8) {
    uint64_t block;
    std::memcpy(&block, p, sizeof(block));
    block ^= crc;
    crc = kTables.t[7][block & 0xff] ^ kTables.t[6][(block >> 8) & 0xff] ^
          kTables.t[5][(block >> 16) & 0xff] ^ kTables.t[4][(block >> 24) & 0xff] ^
          kTables.t[3][(block >> 32) & 0xff] ^ kTables.t[2][(block >> 40) & 0xff] ^
          kTables.t[1][(block >> 48) & 0xff] ^ kTables.t[0][(block >> 56) & 0xff];
    p += 8;
    length -= 8;
  }

  while (length-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace rocksteady
