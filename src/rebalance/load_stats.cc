#include "src/rebalance/load_stats.h"

#include <algorithm>

namespace rocksteady {
namespace {

// Inclusive hash range covered by bin `b`.
inline KeyHash BinLo(size_t b) { return static_cast<KeyHash>(b) << kHotspotBinShift; }
inline KeyHash BinHi(size_t b) {
  return b + 1 == kHotspotBins ? ~KeyHash{0} : BinLo(b + 1) - 1;
}

// count * overlap / bin_span without overflow (overlap <= bin_span = 2^58,
// counts can be large; the product needs 128 bits).
inline uint64_t Prorate(uint64_t count, KeyHash overlap) {
  if (overlap >= kHotspotBinSpan) {
    return count;
  }
  return static_cast<uint64_t>(static_cast<unsigned __int128>(count) * overlap /
                               kHotspotBinSpan);
}

}  // namespace

TabletLoadTracker::TabletLoadTracker(Tick bucket_span, size_t num_buckets)
    : bucket_span_(bucket_span), buckets_(num_buckets) {}

void TabletLoadTracker::Advance(Tick now) {
  const uint64_t target = static_cast<uint64_t>(now / bucket_span_);
  if (target <= current_) {
    return;
  }
  const uint64_t steps = target - current_;
  if (steps >= buckets_.size()) {
    for (auto& bucket : buckets_) {
      bucket.clear();
    }
  } else {
    for (uint64_t s = 1; s <= steps; s++) {
      buckets_[(current_ + s) % buckets_.size()].clear();
    }
  }
  current_ = target;
}

void TabletLoadTracker::Record(Tick now, TableId table, KeyHash hash, bool is_write,
                               size_t bytes) {
  Advance(now);
  BinCounters& bin =
      buckets_[current_ % buckets_.size()][table][hash >> kHotspotBinShift];
  if (is_write) {
    bin.writes++;
  } else {
    bin.reads++;
  }
  bin.bytes += bytes;
}

RangeLoad TabletLoadTracker::Sum(Tick now, TableId table, KeyHash start_hash,
                                 KeyHash end_hash) {
  Advance(now);
  RangeLoad load;
  for (const auto& bucket : buckets_) {
    auto it = bucket.find(table);
    if (it == bucket.end()) {
      continue;
    }
    for (size_t b = start_hash >> kHotspotBinShift; b < kHotspotBins; b++) {
      if (BinLo(b) > end_hash) {
        break;
      }
      const BinCounters& bin = it->second[b];
      if (bin.reads == 0 && bin.writes == 0 && bin.bytes == 0) {
        continue;
      }
      const KeyHash lo = std::max(start_hash, BinLo(b));
      const KeyHash hi = std::min(end_hash, BinHi(b));
      const KeyHash overlap = hi - lo + 1;
      load.reads += Prorate(bin.reads, overlap);
      load.writes += Prorate(bin.writes, overlap);
      load.bytes += Prorate(bin.bytes, overlap);
    }
  }
  return load;
}

std::array<uint64_t, kHotspotBins> TabletLoadTracker::BinOps(Tick now, TableId table,
                                                             KeyHash start_hash,
                                                             KeyHash end_hash) {
  Advance(now);
  std::array<uint64_t, kHotspotBins> ops{};
  for (const auto& bucket : buckets_) {
    auto it = bucket.find(table);
    if (it == bucket.end()) {
      continue;
    }
    for (size_t b = start_hash >> kHotspotBinShift; b < kHotspotBins; b++) {
      if (BinLo(b) > end_hash) {
        break;
      }
      const BinCounters& bin = it->second[b];
      const uint64_t bin_ops = bin.reads + bin.writes;
      if (bin_ops == 0) {
        continue;
      }
      const KeyHash lo = std::max(start_hash, BinLo(b));
      const KeyHash hi = std::min(end_hash, BinHi(b));
      ops[b] += Prorate(bin_ops, hi - lo + 1);
    }
  }
  return ops;
}

}  // namespace rocksteady
