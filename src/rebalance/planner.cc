#include "src/rebalance/planner.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rocksteady {
namespace {

inline uint64_t AbsDiff(uint64_t a, uint64_t b) { return a > b ? a - b : b - a; }

}  // namespace

RebalancePlanner::RebalancePlanner(Cluster* cluster, const RebalancerOptions& options)
    : cluster_(cluster),
      options_(options),
      frames_(cluster->num_masters()),
      alive_(std::make_shared<bool>(true)) {
  cluster_->coordinator().RegisterPiggybackHandler(
      PiggybackKind::kLoadTelemetry, [this](ServerId from, const PiggybackBlob& blob) {
        LoadTelemetryFrame frame;
        if (!DecodeLoadFrame(blob.bytes, &frame) || frame.server != from) {
          return;  // Malformed or misattributed: drop, never trust.
        }
        InjectFrame(frame);
      });
}

RebalancePlanner::~RebalancePlanner() {
  *alive_ = false;
  running_ = false;
  cluster_->coordinator().ClearPiggybackHandler(PiggybackKind::kLoadTelemetry);
}

void RebalancePlanner::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ScheduleRound();
}

void RebalancePlanner::Stop() { running_ = false; }

void RebalancePlanner::ScheduleRound() {
  cluster_->sim().After(options_.planner_interval_ns, [this, alive = alive_] {
    if (!*alive || !running_) {
      return;
    }
    PlanOnce();
    ScheduleRound();
  });
}

void RebalancePlanner::InjectFrame(const LoadTelemetryFrame& frame) {
  if (frame.server == 0 || frame.server > frames_.size()) {
    return;
  }
  frames_[frame.server - 1] = frame;
}

size_t RebalancePlanner::MasterIndexOf(ServerId id) const {
  for (size_t i = 0; i < cluster_->num_masters(); i++) {
    if (cluster_->master(i).id() == id) {
      return i;
    }
  }
  return cluster_->num_masters();
}

bool RebalancePlanner::CollectLoads(std::vector<uint64_t>* loads, std::vector<bool>* fresh,
                                    Tick now) {
  const size_t n = cluster_->num_masters();
  loads->assign(n, 0);
  fresh->assign(n, false);
  size_t fresh_count = 0;
  for (size_t i = 0; i < n; i++) {
    MasterServer& master = cluster_->master(i);
    if (master.crashed() ||
        cluster_->coordinator().lifecycle(master.id()) != ServerLifecycle::kActive) {
      // Hot-spot balancing is an active-members game: standbys have no load
      // to report, draining masters are drain mode's responsibility, and a
      // decommissioned server's idle frame would only drag down the mean.
      continue;
    }
    const auto& frame = frames_[master.id() - 1];
    if (!frame.has_value() || now - frame->sampled_at > options_.telemetry_staleness_ns) {
      continue;
    }
    (*fresh)[i] = true;
    (*loads)[i] = frame->TotalOpsPerSec();
    fresh_count++;
  }
  return fresh_count >= kMinFreshFrames;
}

KeyHash RebalancePlanner::ChooseSplitBoundary(const TabletLoadSample& tablet,
                                              uint64_t desired_ops) const {
  const uint64_t total_rate = tablet.ops_per_sec();
  uint64_t total_window = 0;
  for (uint64_t ops : tablet.bin_ops) {
    total_window += ops;
  }
  if (total_rate == 0 || total_window == 0 || desired_ops >= total_rate) {
    return 0;
  }
  // Window-count threshold proportional to the desired share of the rate.
  const uint64_t target = static_cast<uint64_t>(
      static_cast<unsigned __int128>(total_window) * desired_ops / total_rate);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kHotspotBins - 1; b++) {
    cumulative += tablet.bin_ops[b];
    if (cumulative < target || cumulative == 0) {
      continue;
    }
    const KeyHash boundary = static_cast<KeyHash>(b + 1) << kHotspotBinShift;
    if (boundary > tablet.start_hash && boundary <= tablet.end_hash) {
      return boundary;
    }
  }
  return 0;
}

std::optional<TabletLoadSample> RebalancePlanner::PickTablet(
    const LoadTelemetryFrame& source_frame, uint64_t desired_ops, bool* acted) {
  *acted = false;
  const uint64_t cap = static_cast<uint64_t>(static_cast<double>(desired_ops) *
                                             options_.split_overshoot_fraction);
  const TabletLoadSample* best = nullptr;      // Best fit within the overshoot cap.
  const TabletLoadSample* smallest = nullptr;  // Least-loaded active tablet.
  for (const auto& tablet : source_frame.tablets) {
    if (tablet.ops_per_sec() == 0) {
      continue;
    }
    if (smallest == nullptr || tablet.ops_per_sec() < smallest->ops_per_sec()) {
      smallest = &tablet;
    }
    if (tablet.ops_per_sec() <= cap &&
        (best == nullptr || AbsDiff(tablet.ops_per_sec(), desired_ops) <
                                AbsDiff(best->ops_per_sec(), desired_ops))) {
      best = &tablet;
    }
  }
  if (best != nullptr) {
    return *best;
  }
  if (smallest == nullptr || !options_.allow_splits) {
    return std::nullopt;
  }
  // Every active tablet overshoots the desired move: carve the least
  // overshooting one at the histogram boundary closest to the desired rate,
  // then let the next rounds act on the halves.
  const KeyHash boundary = ChooseSplitBoundary(*smallest, desired_ops);
  if (boundary == 0) {
    return std::nullopt;
  }
  const Status status =
      cluster_->coordinator().SplitTabletChecked(smallest->table, boundary);
  if (status == Status::kOk) {
    stats_.splits_requested++;
    *acted = true;
    LOG_INFO("planner: split table %llu at %llx for rebalance",
             static_cast<unsigned long long>(smallest->table),
             static_cast<unsigned long long>(boundary));
  } else if (status == Status::kRetryLater) {
    // Cluster mid-transition (recovery, in-flight migration): abort the
    // round entirely and re-evaluate on fresh telemetry.
    stats_.split_retries++;
    *acted = true;
  }
  return std::nullopt;
}

bool RebalancePlanner::TargetEligible(const LoadTelemetryFrame& frame,
                                      const TabletLoadSample& tablet) const {
  if (frame.recent_p999_ns > options_.target_p999_ceiling_ns ||
      frame.client_queue_depth > options_.target_queue_ceiling ||
      frame.dispatch_backlog_ns > options_.target_backlog_ceiling_ns) {
    return false;  // Overloaded right now; never migrate into it.
  }
  if (frame.memory_budget_bytes > 0) {
    const double limit = options_.target_memory_fraction *
                         static_cast<double>(frame.memory_budget_bytes);
    if (static_cast<double>(frame.memory_in_use) +
            static_cast<double>(tablet.resident_bytes) >
        limit) {
      return false;  // The move would land past the budget headroom.
    }
  }
  return true;
}

void RebalancePlanner::LaunchMigration(const TabletLoadSample& tablet, ServerId source,
                                       ServerId target) {
  Coordinator& coordinator = cluster_->coordinator();
  // The frame may be up to a staleness window old; re-validate against the
  // authoritative map before acting on it: the exact range must still exist
  // and still belong to the claimed source.
  bool exact_range = false;
  for (const auto& entry : coordinator.GetAllTablets()) {
    if (entry.table == tablet.table && entry.start_hash == tablet.start_hash &&
        entry.end_hash == tablet.end_hash) {
      exact_range = entry.owner == source;
      break;
    }
  }
  if (!exact_range) {
    stats_.skipped_no_candidate++;
    return;
  }
  const size_t source_index = MasterIndexOf(source);
  const size_t target_index = MasterIndexOf(target);
  if (source_index >= cluster_->num_masters() || target_index >= cluster_->num_masters()) {
    stats_.skipped_no_candidate++;
    return;
  }
  LOG_INFO("planner: migrate table %llu [%llx, %llx] %u -> %u (%llu ops/s, %.1f MB)",
           static_cast<unsigned long long>(tablet.table),
           static_cast<unsigned long long>(tablet.start_hash),
           static_cast<unsigned long long>(tablet.end_hash), source, target,
           static_cast<unsigned long long>(tablet.ops_per_sec()),
           static_cast<double>(tablet.resident_bytes) / 1e6);
  stats_.migrations_started++;
  state_ = State::kMigrating;
  imbalanced_rounds_ = 0;
  migration_deadline_ = cluster_->sim().now() + options_.migration_deadline_ns;
  StartRocksteadyMigration(
      cluster_, tablet.table, tablet.start_hash, tablet.end_hash, source_index, target_index,
      options_.migration, [this, alive = alive_](const MigrationStats&) {
        if (!*alive) {
          return;
        }
        stats_.migrations_completed++;
        if (state_ == State::kMigrating) {
          state_ = State::kCooldown;
          cooldown_until_ = cluster_->sim().now() + options_.cooldown_ns;
        }
      });
}

bool RebalancePlanner::DrainTargetFree(ServerId target) const {
  Coordinator& coordinator = cluster_->coordinator();
  const size_t index = MasterIndexOf(target);
  if (index >= cluster_->num_masters() || cluster_->master(index).crashed() ||
      coordinator.lifecycle(target) != ServerLifecycle::kActive) {
    return false;
  }
  // One inbound migration manager per target at a time: skip anyone already
  // named as a target by a lineage dependency (an in-flight migration,
  // whoever started it) or by one of our own outstanding flights (which
  // covers the pre-registration window).
  for (const auto& d : coordinator.dependencies()) {
    if (d.target == target) {
      return false;
    }
  }
  for (const auto& flight : drain_flights_) {
    if (flight.target == target) {
      return false;
    }
  }
  return true;
}

bool RebalancePlanner::PlanDrain(Tick now) {
  Coordinator& coordinator = cluster_->coordinator();
  // Flights whose done callback never fired by the deadline are abandoned to
  // the lease watchdog (same division of labor as the hot-spot path).
  std::erase_if(drain_flights_, [&](const DrainFlight& flight) {
    if (now < flight.deadline) {
      return false;
    }
    stats_.drain_migrations_timed_out++;
    return true;
  });
  bool any_draining = false;
  std::vector<ServerId> draining;  // Alive draining masters, ascending id.
  for (size_t i = 0; i < cluster_->num_masters(); i++) {
    const ServerId id = cluster_->master(i).id();
    if (coordinator.lifecycle(id) == ServerLifecycle::kDraining) {
      any_draining = true;
      if (!cluster_->master(i).crashed()) {
        draining.push_back(id);  // Crashed ones are recovery's problem.
      }
    }
  }
  if (!any_draining && drain_flights_.empty()) {
    return false;
  }
  stats_.drain_rounds++;
  if (state_ == State::kMigrating) {
    // A hot-spot migration is outstanding and its target is not in the
    // drain books; wait it out so two inbound migrations never share a
    // target. No new hot-spot moves start while drain mode owns the loop.
    if (now >= migration_deadline_) {
      stats_.migrations_timed_out++;
      state_ = State::kCooldown;
      cooldown_until_ = now + options_.cooldown_ns;
    }
    return true;
  }

  int capacity = options_.drain_concurrency - static_cast<int>(drain_flights_.size());
  if (capacity <= 0 || draining.empty()) {
    return true;
  }

  // Rank eligible targets: telemetry-fresh ones by reported load (skipping
  // any past the overload ceilings), then telemetry-silent ones by how many
  // map ranges they already own — the drain must make progress even before
  // a just-activated standby has ever reported a frame. Ties break by id.
  struct TargetRank {
    ServerId id = 0;
    bool has_frame = false;
    uint64_t key = 0;
  };
  std::vector<TargetRank> ranked;
  for (size_t i = 0; i < cluster_->num_masters(); i++) {
    const ServerId id = cluster_->master(i).id();
    if (!DrainTargetFree(id)) {
      continue;
    }
    const auto& frame = frames_[id - 1];
    if (frame.has_value() && now - frame->sampled_at <= options_.telemetry_staleness_ns) {
      if (!TargetEligible(*frame, TabletLoadSample{})) {
        continue;  // Overloaded right now; let it breathe this round.
      }
      ranked.push_back({id, true, frame->TotalOpsPerSec()});
    } else {
      uint64_t owned = 0;
      for (const auto& entry : coordinator.GetAllTablets()) {
        owned += entry.owner == id ? 1 : 0;
      }
      ranked.push_back({id, false, owned});
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const TargetRank& a, const TargetRank& b) {
    if (a.has_frame != b.has_frame) {
      return a.has_frame;  // Fresh telemetry outranks guessing.
    }
    return a.key != b.key ? a.key < b.key : a.id < b.id;
  });

  size_t next_target = 0;
  bool starved = false;
  for (const ServerId source : draining) {
    // The evacuation list: every map range still owned by the draining
    // master and not already on the move (dependency or flight overlap),
    // in deterministic (table, start) order.
    std::vector<Coordinator::OwnedTablet> pending;
    for (const auto& entry : coordinator.GetAllTablets()) {
      if (entry.owner != source) {
        continue;
      }
      bool moving = false;
      for (const auto& d : coordinator.dependencies()) {
        if (d.table == entry.table && d.start_hash <= entry.end_hash &&
            entry.start_hash <= d.end_hash) {
          moving = true;
          break;
        }
      }
      for (size_t f = 0; !moving && f < drain_flights_.size(); f++) {
        moving = drain_flights_[f].table == entry.table &&
                 drain_flights_[f].start_hash <= entry.end_hash &&
                 entry.start_hash <= drain_flights_[f].end_hash;
      }
      if (!moving) {
        pending.push_back(entry);
      }
    }
    std::sort(pending.begin(), pending.end(),
              [](const Coordinator::OwnedTablet& a, const Coordinator::OwnedTablet& b) {
                return a.table != b.table ? a.table < b.table : a.start_hash < b.start_hash;
              });
    for (const auto& entry : pending) {
      if (capacity <= 0 || next_target >= ranked.size()) {
        starved = !pending.empty();
        break;
      }
      const ServerId target = ranked[next_target++].id;
      const size_t source_index = MasterIndexOf(source);
      const size_t target_index = MasterIndexOf(target);
      stats_.drain_migrations_started++;
      capacity--;
      const DrainFlight flight{source,           target,
                               entry.table,      entry.start_hash,
                               entry.end_hash,   now + options_.drain_flight_deadline_ns};
      drain_flights_.push_back(flight);
      LOG_INFO("planner: drain-evacuate table %llu [%llx, %llx] %u -> %u",
               static_cast<unsigned long long>(entry.table),
               static_cast<unsigned long long>(entry.start_hash),
               static_cast<unsigned long long>(entry.end_hash), source, target);
      StartRocksteadyMigration(
          cluster_, entry.table, entry.start_hash, entry.end_hash, source_index, target_index,
          options_.migration, [this, alive = alive_, flight](const MigrationStats&) {
            if (!*alive) {
              return;
            }
            stats_.drain_migrations_completed++;
            std::erase_if(drain_flights_, [&](const DrainFlight& f) {
              return f.source == flight.source && f.target == flight.target &&
                     f.table == flight.table && f.start_hash == flight.start_hash;
            });
          });
    }
  }
  if (starved && next_target >= ranked.size()) {
    stats_.drain_skipped_no_target++;
  }
  return true;
}

void RebalancePlanner::PlanOnce() {
  stats_.rounds++;
  const Tick now = cluster_->sim().now();
  Coordinator& coordinator = cluster_->coordinator();
  if (coordinator.crashed()) {
    return;  // No map to plan against; frames keep accumulating.
  }

  // Drain evacuation outranks hot-spot chasing: while any master is
  // draining (or drain flights are still landing) the hot-spot machinery
  // stands down entirely.
  if (PlanDrain(now)) {
    return;
  }

  if (state_ == State::kMigrating) {
    if (now >= migration_deadline_) {
      // The done callback never fired: the migration wedged or aborted.
      // Stand down; the coordinator's lease watchdog owns the repair.
      stats_.migrations_timed_out++;
      state_ = State::kCooldown;
      cooldown_until_ = now + options_.cooldown_ns;
    }
    return;
  }
  if (state_ == State::kCooldown) {
    if (now < cooldown_until_) {
      return;
    }
    state_ = State::kIdle;
    imbalanced_rounds_ = 0;
  }

  std::vector<uint64_t> loads;
  std::vector<bool> fresh;
  if (!CollectLoads(&loads, &fresh, now)) {
    stats_.skipped_stale++;
    imbalanced_rounds_ = 0;
    state_ = State::kIdle;
    return;
  }

  uint64_t total = 0;
  size_t fresh_count = 0;
  size_t hottest = cluster_->num_masters();
  for (size_t i = 0; i < loads.size(); i++) {
    if (!fresh[i]) {
      continue;
    }
    total += loads[i];
    fresh_count++;
    if (hottest >= loads.size() || loads[i] > loads[hottest]) {
      hottest = i;
    }
  }
  const double mean = static_cast<double>(total) / static_cast<double>(fresh_count);
  const uint64_t max_load = loads[hottest];
  const bool imbalanced = max_load >= options_.min_imbalance_ops_per_sec &&
                          static_cast<double>(max_load) > options_.imbalance_ratio * mean;
  if (!imbalanced) {
    stats_.skipped_balanced++;
    imbalanced_rounds_ = 0;
    state_ = State::kIdle;
    return;
  }

  imbalanced_rounds_++;
  state_ = State::kArming;
  if (imbalanced_rounds_ < options_.hysteresis_rounds) {
    return;  // Arming: the imbalance must persist before the planner acts.
  }

  const ServerId source = cluster_->master(hottest).id();
  // Targets in ascending load order (ties by index: deterministic).
  std::vector<size_t> targets;
  for (size_t i = 0; i < loads.size(); i++) {
    if (fresh[i] && i != hottest) {
      targets.push_back(i);
    }
  }
  std::sort(targets.begin(), targets.end(), [&](size_t a, size_t b) {
    return loads[a] != loads[b] ? loads[a] < loads[b] : a < b;
  });

  // Move enough to bring the source down toward the mean without pushing
  // the best target past it.
  const uint64_t mean_ops = static_cast<uint64_t>(mean);
  const uint64_t source_excess = max_load - mean_ops;
  const uint64_t target_headroom =
      mean_ops > loads[targets.front()] ? mean_ops - loads[targets.front()] : 0;
  const uint64_t desired_ops = std::min(source_excess, target_headroom);
  if (desired_ops < options_.min_imbalance_ops_per_sec / 2) {
    // Everything else is already at the mean; moving a sliver churns for
    // nothing.
    stats_.skipped_balanced++;
    return;
  }

  bool acted = false;
  const auto tablet = PickTablet(*frames_[source - 1], desired_ops, &acted);
  if (!tablet.has_value()) {
    if (!acted) {
      stats_.skipped_no_candidate++;
    }
    return;
  }

  for (size_t t : targets) {
    const ServerId target = cluster_->master(t).id();
    if (TargetEligible(*frames_[target - 1], *tablet)) {
      LaunchMigration(*tablet, source, target);
      return;
    }
  }
  stats_.skipped_no_target++;
}

}  // namespace rocksteady
