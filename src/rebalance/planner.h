// The coordinator-side rebalance planner.
//
// A deterministic policy loop that closes the telemetry -> decision ->
// Rocksteady-migration loop: it watches per-master load frames (piggybacked
// on ping replies and migration heartbeats), detects a sustained imbalance,
// optionally splits the hot tablet at a histogram-chosen boundary, and
// drives one Rocksteady migration at a time from the hottest master to the
// least-loaded eligible target.
//
// Policy properties:
//  * Every threshold is a named constant (the determinism lint enforces
//    this for src/rebalance policy code) and overridable per run via
//    RebalancerOptions — no magic numbers in decisions.
//  * Hysteresis + cooldown: an imbalance must persist for
//    kHysteresisRounds consecutive planning rounds before acting, and a
//    completed (or timed-out) migration is followed by a cooldown so the
//    planner reacts to post-move telemetry, not its own wake.
//  * Overload/budget aware: a master is never chosen as target while its
//    recent p99.9, client queue, or dispatch backlog exceed the ceilings,
//    or when the candidate tablet would push it past its memory-budget
//    fraction. A kRetryLater from the split path aborts the round.
//  * One migration in flight, with a deadline: if the done callback never
//    fires (wedged endpoint), the planner stands down to cooldown and
//    leaves repair to the coordinator's lease watchdog — it never "fixes"
//    data paths itself.
#ifndef ROCKSTEADY_SRC_REBALANCE_PLANNER_H_
#define ROCKSTEADY_SRC_REBALANCE_PLANNER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/migration/rocksteady_target.h"
#include "src/rebalance/telemetry.h"

namespace rocksteady {

// --- Policy thresholds (all named; RebalancerOptions mirrors them). ---
// Planning cadence; one decision per round, at most.
inline constexpr Tick kPlannerIntervalNs = 10 * kMillisecond;
// Frames older than this are ignored (a silent master is not a candidate).
inline constexpr Tick kTelemetryStalenessNs = 50 * kMillisecond;
// Planning needs at least this many fresh frames (one has nothing to
// balance against).
inline constexpr size_t kMinFreshFrames = 2;
// Act only when the hottest master exceeds the cluster mean by this factor.
inline constexpr double kImbalanceRatio = 1.3;
// ...and by at least this absolute rate (don't chase idle-cluster noise).
inline constexpr uint64_t kMinImbalanceOpsPerSec = 20'000;
// Consecutive imbalanced rounds required before acting.
inline constexpr int kHysteresisRounds = 2;
// Pause after a migration completes (or times out) before re-planning.
inline constexpr Tick kCooldownNs = 20 * kMillisecond;
// A planner-started migration that has not completed by this deadline is
// abandoned to the lease watchdog.
inline constexpr Tick kMigrationDeadlineNs = 2 * kSecond;
// Target eligibility ceilings (the PR-3 overload signals).
inline constexpr Tick kTargetP999CeilingNs = 300'000;
inline constexpr uint32_t kTargetQueueCeiling = 16;
inline constexpr Tick kTargetBacklogCeilingNs = 50'000;
// A move may not push the target past this fraction of its memory budget
// (matches the migration manager's low watermark — land with headroom).
inline constexpr double kTargetMemoryFraction = 0.75;
// Best-fit slack: a tablet whose rate exceeds the desired move by more than
// this factor is split rather than moved whole.
inline constexpr double kSplitOvershootFraction = 1.25;
// Drain evacuation: concurrent outbound migrations per planning loop while
// any master is kDraining. Each flight goes to a *distinct* target (a target
// master hosts one inbound migration manager at a time), so concurrency is
// also capped by the number of eligible targets.
inline constexpr int kDrainConcurrency = 2;
// A drain evacuation flight that has not completed by this deadline is
// dropped from the planner's books (the lease watchdog owns the repair) so
// the drain keeps making progress past a wedged endpoint.
inline constexpr Tick kDrainFlightDeadlineNs = 2 * kSecond;

struct RebalancerOptions {
  Tick planner_interval_ns = kPlannerIntervalNs;
  Tick telemetry_staleness_ns = kTelemetryStalenessNs;
  double imbalance_ratio = kImbalanceRatio;
  uint64_t min_imbalance_ops_per_sec = kMinImbalanceOpsPerSec;
  int hysteresis_rounds = kHysteresisRounds;
  Tick cooldown_ns = kCooldownNs;
  Tick migration_deadline_ns = kMigrationDeadlineNs;
  Tick target_p999_ceiling_ns = kTargetP999CeilingNs;
  uint32_t target_queue_ceiling = kTargetQueueCeiling;
  Tick target_backlog_ceiling_ns = kTargetBacklogCeilingNs;
  double target_memory_fraction = kTargetMemoryFraction;
  double split_overshoot_fraction = kSplitOvershootFraction;
  bool allow_splits = true;
  int drain_concurrency = kDrainConcurrency;
  Tick drain_flight_deadline_ns = kDrainFlightDeadlineNs;
  // Options for the Rocksteady migrations the planner launches.
  RocksteadyOptions migration;
};

struct PlannerStats {
  uint64_t rounds = 0;
  uint64_t migrations_started = 0;
  uint64_t migrations_completed = 0;
  uint64_t migrations_timed_out = 0;
  uint64_t splits_requested = 0;
  uint64_t split_retries = 0;       // Split refused kRetryLater (round aborted).
  uint64_t skipped_balanced = 0;    // No actionable imbalance this round.
  uint64_t skipped_stale = 0;       // Too few fresh frames to judge.
  uint64_t skipped_no_candidate = 0;  // No movable/splittable tablet fits.
  uint64_t skipped_no_target = 0;     // No eligible target (overload/budget).
  // Drain evacuation (rounds where some master is kDraining).
  uint64_t drain_rounds = 0;
  uint64_t drain_migrations_started = 0;
  uint64_t drain_migrations_completed = 0;
  uint64_t drain_migrations_timed_out = 0;
  uint64_t drain_skipped_no_target = 0;  // Tablets left waiting for a target.
};

class RebalancePlanner {
 public:
  enum class State { kIdle, kArming, kMigrating, kCooldown };

  RebalancePlanner(Cluster* cluster, const RebalancerOptions& options = {});
  ~RebalancePlanner();

  RebalancePlanner(const RebalancePlanner&) = delete;
  RebalancePlanner& operator=(const RebalancePlanner&) = delete;

  // Starts the periodic planning loop (frames are consumed whether or not
  // the loop runs; Start is what makes decisions happen).
  void Start();
  void Stop();

  // Test hook: feed a frame directly, bypassing the piggyback path.
  void InjectFrame(const LoadTelemetryFrame& frame);

  // Test hook: run one planning round immediately.
  void PlanOnce();

  const PlannerStats& stats() const { return stats_; }
  State state() const { return state_; }
  const std::optional<LoadTelemetryFrame>& frame(ServerId server) const {
    return frames_[server - 1];
  }

 private:
  struct Candidate {
    TabletLoadSample tablet;
    ServerId source = 0;
  };

  // One outstanding drain evacuation migration.
  struct DrainFlight {
    ServerId source = 0;
    ServerId target = 0;
    TableId table = 0;
    KeyHash start_hash = 0;
    KeyHash end_hash = 0;
    Tick deadline = 0;
  };

  void ScheduleRound();
  // Drain evacuation. Returns true when drain mode owns this round (a
  // kDraining master exists or drain flights are outstanding) — the hot-spot
  // logic then stands down entirely, which also guarantees drain and
  // hot-spot migrations never race for the same target.
  bool PlanDrain(Tick now);
  // True if `target` may receive a drain flight now: alive, kActive, not
  // named by any lineage dependency as a target, and not already holding one
  // of our outstanding flights.
  bool DrainTargetFree(ServerId target) const;
  // Frames fresh enough to plan on, one per alive master; empty entries for
  // the rest. Also returns the loads (ops/s) for present frames.
  bool CollectLoads(std::vector<uint64_t>* loads, std::vector<bool>* fresh, Tick now);
  // Picks the tablet to move from `source`'s frame given the desired rate;
  // may request a split (returns nullopt for "acted by splitting" or "no
  // candidate" — `acted` distinguishes them).
  std::optional<TabletLoadSample> PickTablet(const LoadTelemetryFrame& source_frame,
                                             uint64_t desired_ops, bool* acted);
  // Chooses a histogram bin boundary inside `tablet` where cumulative ops
  // reach `desired_ops`, or 0 if no interior bin boundary exists.
  KeyHash ChooseSplitBoundary(const TabletLoadSample& tablet, uint64_t desired_ops) const;
  bool TargetEligible(const LoadTelemetryFrame& frame,
                      const TabletLoadSample& tablet) const;
  size_t MasterIndexOf(ServerId id) const;
  void LaunchMigration(const TabletLoadSample& tablet, ServerId source, ServerId target);

  Cluster* cluster_;
  RebalancerOptions options_;
  PlannerStats stats_;
  State state_ = State::kIdle;
  bool running_ = false;
  int imbalanced_rounds_ = 0;
  Tick cooldown_until_ = 0;
  Tick migration_deadline_ = 0;
  std::vector<DrainFlight> drain_flights_;
  std::vector<std::optional<LoadTelemetryFrame>> frames_;  // Index = ServerId - 1.
  // Guards the migration-done callback across planner destruction.
  std::shared_ptr<bool> alive_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_REBALANCE_PLANNER_H_
