// Load-telemetry frames: how per-tablet load statistics travel from each
// master to the coordinator.
//
// No new periodic RPC exists for this. The frames ride as PiggybackBlobs on
// control traffic that flows anyway — the failure detector's ping replies
// (every master, every ping interval) and migration lease heartbeats (the
// target mid-migration, every heartbeat interval). The coordinator routes
// each received blob by PiggybackKind to whoever registered for it (the
// rebalance planner).
//
// ClusterTelemetry is the master-side half: it installs the on_access tap
// and the piggyback_provider on every master of a cluster, so frames start
// flowing as soon as the coordinator's failure detector is running.
#ifndef ROCKSTEADY_SRC_REBALANCE_TELEMETRY_H_
#define ROCKSTEADY_SRC_REBALANCE_TELEMETRY_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/rebalance/load_stats.h"

namespace rocksteady {

// One tablet's load sample inside a frame. Rates are per second of
// simulated time, derived from the tracker's sliding window.
struct TabletLoadSample {
  TableId table = 0;
  KeyHash start_hash = 0;
  KeyHash end_hash = 0;  // Inclusive.
  uint64_t reads_per_sec = 0;
  uint64_t writes_per_sec = 0;
  uint64_t bytes_per_sec = 0;
  // Live log bytes resident in this range (sizes a candidate move against a
  // budget-limited target).
  uint64_t resident_bytes = 0;
  // Hot-spot histogram: window ops clipped to this tablet's range, per
  // global hash bin (see load_stats.h). Picks split boundaries.
  std::array<uint64_t, kHotspotBins> bin_ops{};

  uint64_t ops_per_sec() const { return reads_per_sec + writes_per_sec; }
};

// One master's full telemetry frame. Besides per-tablet load it carries the
// same overload signals a pull reply's SourceLoadHeader does, plus the
// memory-budget position — everything the planner needs to keep a migration
// out of an overloaded or budget-pressed master.
struct LoadTelemetryFrame {
  ServerId server = 0;
  Tick sampled_at = 0;
  Tick recent_p999_ns = 0;
  Tick dispatch_backlog_ns = 0;
  uint32_t client_queue_depth = 0;
  uint64_t memory_in_use = 0;
  uint64_t memory_budget_bytes = 0;  // 0 = unlimited.
  std::vector<TabletLoadSample> tablets;

  uint64_t TotalOpsPerSec() const {
    uint64_t total = 0;
    for (const auto& t : tablets) {
      total += t.ops_per_sec();
    }
    return total;
  }
};

// Wire codec (little-endian, non-zero histogram bins only). Decode returns
// false on any truncation or malformed count — a bad frame is dropped, not
// trusted.
std::vector<uint8_t> EncodeLoadFrame(const LoadTelemetryFrame& frame);
bool DecodeLoadFrame(const std::vector<uint8_t>& bytes, LoadTelemetryFrame* frame);

// Installs load telemetry on every master of `cluster`: an on_access tap
// feeding a per-master TabletLoadTracker, and a piggyback_provider that
// snapshots a LoadTelemetryFrame on demand. Must outlive the cluster's use
// of the hooks (destructor uninstalls them).
class ClusterTelemetry {
 public:
  explicit ClusterTelemetry(Cluster* cluster);
  ~ClusterTelemetry();

  ClusterTelemetry(const ClusterTelemetry&) = delete;
  ClusterTelemetry& operator=(const ClusterTelemetry&) = delete;

  // Snapshot of master `master_index`'s frame right now (what the provider
  // piggybacks; also used directly by benches for load-spread metrics).
  LoadTelemetryFrame BuildFrame(size_t master_index);

  TabletLoadTracker& tracker(size_t master_index) { return *trackers_[master_index]; }

 private:
  Cluster* cluster_;
  std::vector<std::unique_ptr<TabletLoadTracker>> trackers_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_REBALANCE_TELEMETRY_H_
