// Per-tablet load telemetry (rebalancer input).
//
// Each master taps its worker path (MasterServer::on_access) into a
// TabletLoadTracker: a sliding ring of short sub-windows (the
// SlidingLatencyTracker idiom from src/common/timeseries.h), each holding
// per-table access counters bucketed into a coarse hash-range histogram.
// The tracker answers two questions the coordinator's planner needs:
//   * how hot is an arbitrary hash range right now (ops/s, read/write mix,
//     bytes touched), and
//   * where inside a hot tablet does the load sit (the per-bin histogram
//     that picks a split boundary).
// Constant memory regardless of run length; all window parameters are named
// constants below.
#ifndef ROCKSTEADY_SRC_REBALANCE_LOAD_STATS_H_
#define ROCKSTEADY_SRC_REBALANCE_LOAD_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "src/common/types.h"

namespace rocksteady {

// Hot-spot histogram resolution: the hash space is cut into 2^6 = 64
// fixed bins (bin = hash >> kHotspotBinShift). Coarser than the narrowest
// checked split (Coordinator::kMinSplitSpan) by design: split boundaries
// always land on bin edges, so the planner never manufactures ranges the
// histogram cannot see.
inline constexpr size_t kHotspotBins = 64;
inline constexpr int kHotspotBinShift = 58;
inline constexpr KeyHash kHotspotBinSpan = KeyHash{1} << kHotspotBinShift;

// Telemetry window: 8 sub-windows of 2 ms = a 16 ms sliding view. Short
// enough to track a shifting hot spot at the planner's cadence, long enough
// that per-tablet rates are not dominated by sampling noise.
inline constexpr Tick kTelemetryBucketSpanNs = 2 * kMillisecond;
inline constexpr size_t kTelemetryBuckets = 8;

// Aggregated load over one hash range of one table.
struct RangeLoad {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes = 0;

  uint64_t ops() const { return reads + writes; }
};

class TabletLoadTracker {
 public:
  TabletLoadTracker(Tick bucket_span = kTelemetryBucketSpanNs,
                    size_t num_buckets = kTelemetryBuckets);

  // Records one served access at simulated time `now`.
  void Record(Tick now, TableId table, KeyHash hash, bool is_write, size_t bytes);

  // Load over [start_hash, end_hash] of `table` across the whole sliding
  // window. Bins partially covered by the range contribute pro-rata (the
  // access stream inside one bin is modelled as uniform — bins are the
  // histogram's resolution floor).
  RangeLoad Sum(Tick now, TableId table, KeyHash start_hash, KeyHash end_hash);

  // Per-bin ops over the window, clipped to [start_hash, end_hash] the same
  // pro-rata way; bins outside the range are zero. This is the hot-spot
  // histogram the planner walks to choose a split boundary.
  std::array<uint64_t, kHotspotBins> BinOps(Tick now, TableId table, KeyHash start_hash,
                                            KeyHash end_hash);

  // Total window span (for converting window counts to per-second rates).
  Tick span() const { return bucket_span_ * static_cast<Tick>(buckets_.size()); }

 private:
  struct BinCounters {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t bytes = 0;
  };
  using TableBins = std::array<BinCounters, kHotspotBins>;
  // Ordered map: iteration order (and thus every derived statistic) is
  // deterministic across runs.
  using Bucket = std::map<TableId, TableBins>;

  // Rotates the ring so every slot holds a sub-window overlapping
  // [now - span, now]; skipped-over slots are reset.
  void Advance(Tick now);

  Tick bucket_span_;
  std::vector<Bucket> buckets_;
  uint64_t current_ = 0;  // Absolute index (now / bucket_span_) of the newest slot.
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_REBALANCE_LOAD_STATS_H_
