#include "src/rebalance/telemetry.h"

#include <cstring>

namespace rocksteady {
namespace {

// Little-endian scalar append/read helpers.
template <typename T>
void Put(std::vector<uint8_t>* out, T value) {
  for (size_t i = 0; i < sizeof(T); i++) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

template <typename T>
bool Get(const std::vector<uint8_t>& in, size_t* pos, T* value) {
  if (*pos + sizeof(T) > in.size()) {
    return false;
  }
  T v = 0;
  for (size_t i = 0; i < sizeof(T); i++) {
    v |= static_cast<T>(in[*pos + i]) << (8 * i);
  }
  *pos += sizeof(T);
  *value = v;
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeLoadFrame(const LoadTelemetryFrame& frame) {
  std::vector<uint8_t> out;
  Put<uint32_t>(&out, frame.server);
  Put<uint64_t>(&out, frame.sampled_at);
  Put<uint64_t>(&out, frame.recent_p999_ns);
  Put<uint64_t>(&out, frame.dispatch_backlog_ns);
  Put<uint32_t>(&out, frame.client_queue_depth);
  Put<uint64_t>(&out, frame.memory_in_use);
  Put<uint64_t>(&out, frame.memory_budget_bytes);
  Put<uint32_t>(&out, static_cast<uint32_t>(frame.tablets.size()));
  for (const auto& t : frame.tablets) {
    Put<uint64_t>(&out, t.table);
    Put<uint64_t>(&out, t.start_hash);
    Put<uint64_t>(&out, t.end_hash);
    Put<uint64_t>(&out, t.reads_per_sec);
    Put<uint64_t>(&out, t.writes_per_sec);
    Put<uint64_t>(&out, t.bytes_per_sec);
    Put<uint64_t>(&out, t.resident_bytes);
    uint8_t nonzero = 0;
    for (uint64_t ops : t.bin_ops) {
      if (ops != 0) {
        nonzero++;
      }
    }
    Put<uint8_t>(&out, nonzero);
    for (size_t b = 0; b < kHotspotBins; b++) {
      if (t.bin_ops[b] != 0) {
        Put<uint8_t>(&out, static_cast<uint8_t>(b));
        Put<uint64_t>(&out, t.bin_ops[b]);
      }
    }
  }
  return out;
}

bool DecodeLoadFrame(const std::vector<uint8_t>& bytes, LoadTelemetryFrame* frame) {
  size_t pos = 0;
  uint32_t server = 0;
  if (!Get(bytes, &pos, &server)) {
    return false;
  }
  frame->server = server;
  if (!Get(bytes, &pos, &frame->sampled_at) || !Get(bytes, &pos, &frame->recent_p999_ns) ||
      !Get(bytes, &pos, &frame->dispatch_backlog_ns) ||
      !Get(bytes, &pos, &frame->client_queue_depth) ||
      !Get(bytes, &pos, &frame->memory_in_use) ||
      !Get(bytes, &pos, &frame->memory_budget_bytes)) {
    return false;
  }
  uint32_t num_tablets = 0;
  if (!Get(bytes, &pos, &num_tablets)) {
    return false;
  }
  frame->tablets.clear();
  frame->tablets.reserve(num_tablets);
  for (uint32_t i = 0; i < num_tablets; i++) {
    TabletLoadSample t;
    if (!Get(bytes, &pos, &t.table) || !Get(bytes, &pos, &t.start_hash) ||
        !Get(bytes, &pos, &t.end_hash) || !Get(bytes, &pos, &t.reads_per_sec) ||
        !Get(bytes, &pos, &t.writes_per_sec) || !Get(bytes, &pos, &t.bytes_per_sec) ||
        !Get(bytes, &pos, &t.resident_bytes)) {
      return false;
    }
    uint8_t nonzero = 0;
    if (!Get(bytes, &pos, &nonzero)) {
      return false;
    }
    for (uint8_t n = 0; n < nonzero; n++) {
      uint8_t bin = 0;
      uint64_t ops = 0;
      if (!Get(bytes, &pos, &bin) || !Get(bytes, &pos, &ops) || bin >= kHotspotBins) {
        return false;
      }
      t.bin_ops[bin] = ops;
    }
    frame->tablets.push_back(t);
  }
  return pos == bytes.size();
}

ClusterTelemetry::ClusterTelemetry(Cluster* cluster) : cluster_(cluster) {
  trackers_.reserve(cluster_->num_masters());
  for (size_t i = 0; i < cluster_->num_masters(); i++) {
    trackers_.push_back(std::make_unique<TabletLoadTracker>());
    MasterServer& master = cluster_->master(i);
    TabletLoadTracker* tracker = trackers_.back().get();
    master.on_access = [&master, tracker](TableId table, KeyHash hash, bool is_write,
                                          size_t bytes) {
      tracker->Record(master.sim().now(), table, hash, is_write, bytes);
    };
    master.piggyback_provider = [this, i]() {
      PiggybackBlob blob;
      blob.kind = PiggybackKind::kLoadTelemetry;
      blob.bytes = EncodeLoadFrame(BuildFrame(i));
      return blob;
    };
  }
}

ClusterTelemetry::~ClusterTelemetry() {
  for (size_t i = 0; i < cluster_->num_masters(); i++) {
    cluster_->master(i).on_access = nullptr;
    cluster_->master(i).piggyback_provider = nullptr;
  }
}

LoadTelemetryFrame ClusterTelemetry::BuildFrame(size_t master_index) {
  MasterServer& master = cluster_->master(master_index);
  TabletLoadTracker& tracker = *trackers_[master_index];
  const Tick now = master.sim().now();

  LoadTelemetryFrame frame;
  frame.server = master.id();
  frame.sampled_at = now;
  SourceLoadHeader load;
  master.FillLoadHeader(&load);
  frame.recent_p999_ns = load.recent_p999_ns;
  frame.dispatch_backlog_ns = load.dispatch_backlog_ns;
  frame.client_queue_depth = load.client_queue_depth;
  frame.memory_in_use = master.memory_in_use();
  frame.memory_budget_bytes = master.config().memory_budget_bytes;

  const Tick span = tracker.span();
  for (const Tablet& tablet : master.objects().tablets().tablets()) {
    // Only steady-state tablets are rebalance candidates; mid-migration or
    // recovering ranges are already in motion.
    if (tablet.state != TabletState::kNormal) {
      continue;
    }
    TabletLoadSample sample;
    sample.table = tablet.table_id;
    sample.start_hash = tablet.start_hash;
    sample.end_hash = tablet.end_hash;
    const RangeLoad window =
        tracker.Sum(now, tablet.table_id, tablet.start_hash, tablet.end_hash);
    sample.reads_per_sec = window.reads * kSecond / span;
    sample.writes_per_sec = window.writes * kSecond / span;
    sample.bytes_per_sec = window.bytes * kSecond / span;
    sample.resident_bytes =
        master.objects().EstimateRangeBytes(tablet.table_id, tablet.start_hash, tablet.end_hash);
    sample.bin_ops = tracker.BinOps(now, tablet.table_id, tablet.start_hash, tablet.end_hash);
    frame.tablets.push_back(std::move(sample));
  }
  return frame;
}

}  // namespace rocksteady
