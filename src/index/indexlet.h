// Indexlets: range partitions of a secondary index (Figure 2).
//
// An index over a table is range-partitioned by secondary key into
// indexlets, each hosted by some server. Indexlets map secondary keys to
// primary key hashes; a range scan asks one indexlet for hashes, then
// multigets the backing tablets.
#ifndef ROCKSTEADY_SRC_INDEX_INDEXLET_H_
#define ROCKSTEADY_SRC_INDEX_INDEXLET_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/index/btree.h"

namespace rocksteady {

class Indexlet {
 public:
  // Covers secondary keys in [start_key, end_key); an empty end_key means
  // "to the end of the key space".
  Indexlet(TableId table, uint8_t index_id, std::string start_key, std::string end_key)
      : table_(table),
        index_id_(index_id),
        start_key_(std::move(start_key)),
        end_key_(std::move(end_key)) {}

  bool ContainsKey(std::string_view secondary_key) const {
    return secondary_key >= start_key_ && (end_key_.empty() || secondary_key < end_key_);
  }

  bool Insert(std::string_view secondary_key, KeyHash primary_hash) {
    return tree_.Insert(secondary_key, primary_hash);
  }
  bool Erase(std::string_view secondary_key, KeyHash primary_hash) {
    return tree_.Erase(secondary_key, primary_hash);
  }

  // Returns up to `count` primary key hashes for secondary keys >= start,
  // staying inside this indexlet's range.
  std::vector<KeyHash> Scan(std::string_view start, size_t count) const;

  TableId table() const { return table_; }
  uint8_t index_id() const { return index_id_; }
  const std::string& start_key() const { return start_key_; }
  const std::string& end_key() const { return end_key_; }
  size_t size() const { return tree_.size(); }
  const BTree& tree() const { return tree_; }

 private:
  TableId table_;
  uint8_t index_id_;
  std::string start_key_;
  std::string end_key_;
  BTree tree_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_INDEX_INDEXLET_H_
