#include "src/index/btree.h"

#include <algorithm>
#include <cassert>

namespace rocksteady {

namespace {
constexpr size_t kMaxLeafItems = 32;
constexpr size_t kMaxPivots = 32;
}  // namespace

struct BTree::Node {
  bool leaf = true;
  // Leaf state: sorted items plus the next-leaf chain for range scans.
  std::vector<Item> items;
  Node* next = nullptr;
  // Internal state: children.size() == pivots.size() + 1. Subtree i holds
  // items < pivots[i]; the last subtree holds items >= pivots.back().
  // Pivots are full (key, value) items so duplicate keys order exactly.
  std::vector<Item> pivots;
  std::vector<std::unique_ptr<Node>> children;
};

namespace {

// Index of the child subtree covering `item`.
size_t ChildIndexFor(const BTree::Item& item, const std::vector<BTree::Item>& pivots) {
  size_t index = pivots.size();
  for (size_t i = 0; i < pivots.size(); i++) {
    if (item < pivots[i]) {
      index = i;
      break;
    }
  }
  return index;
}

}  // namespace

BTree::BTree() : root_(std::make_unique<Node>()) {}
BTree::~BTree() = default;

std::optional<BTree::SplitResult> BTree::InsertInto(Node* node, Item item, bool* inserted) {
  if (node->leaf) {
    auto it = std::lower_bound(node->items.begin(), node->items.end(), item);
    if (it != node->items.end() && *it == item) {
      *inserted = false;
      return std::nullopt;
    }
    node->items.insert(it, std::move(item));
    *inserted = true;
    if (node->items.size() <= kMaxLeafItems) {
      return std::nullopt;
    }
    // Split the leaf in half; the right sibling joins the leaf chain and its
    // first item becomes the separating pivot.
    auto right = std::make_unique<Node>();
    const size_t mid = node->items.size() / 2;
    right->items.assign(std::make_move_iterator(node->items.begin() + static_cast<long>(mid)),
                        std::make_move_iterator(node->items.end()));
    node->items.resize(mid);
    right->next = node->next;
    node->next = right.get();
    SplitResult result{right->items.front(), std::move(right)};
    return result;
  }

  const size_t child_index = ChildIndexFor(item, node->pivots);
  auto child_split = InsertInto(node->children[child_index].get(), std::move(item), inserted);
  if (!child_split.has_value()) {
    return std::nullopt;
  }
  node->pivots.insert(node->pivots.begin() + static_cast<long>(child_index),
                      std::move(child_split->pivot));
  node->children.insert(node->children.begin() + static_cast<long>(child_index) + 1,
                        std::move(child_split->right));
  if (node->pivots.size() <= kMaxPivots) {
    return std::nullopt;
  }
  // Split this internal node: the middle pivot is promoted upward.
  const size_t mid = node->pivots.size() / 2;
  auto right = std::make_unique<Node>();
  right->leaf = false;
  right->pivots.assign(std::make_move_iterator(node->pivots.begin() + static_cast<long>(mid) + 1),
                       std::make_move_iterator(node->pivots.end()));
  right->children.assign(
      std::make_move_iterator(node->children.begin() + static_cast<long>(mid) + 1),
      std::make_move_iterator(node->children.end()));
  Item promoted = std::move(node->pivots[mid]);
  node->pivots.resize(mid);
  node->children.resize(mid + 1);
  SplitResult result{std::move(promoted), std::move(right)};
  return result;
}

bool BTree::Insert(std::string_view key, uint64_t value) {
  bool inserted = false;
  auto split = InsertInto(root_.get(), Item{std::string(key), value}, &inserted);
  if (split.has_value()) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->pivots.push_back(std::move(split->pivot));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  if (inserted) {
    size_++;
  }
  return inserted;
}

const BTree::Node* BTree::FindLeaf(std::string_view key) const {
  const Item probe{std::string(key), 0};
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[ChildIndexFor(probe, node->pivots)].get();
  }
  return node;
}

bool BTree::Erase(std::string_view key, uint64_t value) {
  const Item item{std::string(key), value};
  Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[ChildIndexFor(item, node->pivots)].get();
  }
  auto it = std::lower_bound(node->items.begin(), node->items.end(), item);
  if (it == node->items.end() || !(*it == item)) {
    return false;
  }
  node->items.erase(it);
  size_--;
  // No rebalancing: underfull (even empty) leaves stay on the chain. Erases
  // are rare in the evaluated workloads; scans tolerate empty leaves.
  return true;
}

bool BTree::Contains(std::string_view key, uint64_t value) const {
  const Item item{std::string(key), value};
  const Node* leaf = FindLeaf(key);
  while (leaf != nullptr) {
    auto it = std::lower_bound(leaf->items.begin(), leaf->items.end(), item);
    if (it != leaf->items.end()) {
      return *it == item;
    }
    leaf = leaf->next;
  }
  return false;
}

size_t BTree::ScanFrom(std::string_view key, size_t count,
                       const std::function<void(const Item&)>& fn) const {
  const Item probe{std::string(key), 0};
  const Node* leaf = FindLeaf(key);
  size_t visited = 0;
  auto it = std::lower_bound(leaf->items.begin(), leaf->items.end(), probe);
  while (visited < count && leaf != nullptr) {
    for (; it != leaf->items.end() && visited < count; ++it) {
      fn(*it);
      visited++;
    }
    if (it == leaf->items.end()) {
      leaf = leaf->next;
      if (leaf != nullptr) {
        it = leaf->items.begin();
      }
    }
  }
  return visited;
}

void BTree::ForEach(const std::function<void(const Item&)>& fn) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
  }
  for (; node != nullptr; node = node->next) {
    for (const auto& item : node->items) {
      fn(item);
    }
  }
}

size_t BTree::Height() const {
  size_t height = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    height++;
  }
  return height;
}

bool BTree::CheckInvariants() const {
  size_t counted = 0;
  bool ok = true;
  bool have_previous = false;
  Item previous;
  ForEach([&](const Item& item) {
    if (have_previous && !(previous < item)) {
      ok = false;
    }
    previous = item;
    have_previous = true;
    counted++;
  });
  return ok && counted == size_;
}

}  // namespace rocksteady
