#include "src/index/indexlet.h"

namespace rocksteady {

std::vector<KeyHash> Indexlet::Scan(std::string_view start, size_t count) const {
  std::vector<KeyHash> hashes;
  hashes.reserve(count);
  tree_.ScanFrom(start, count, [&](const BTree::Item& item) {
    if (end_key_.empty() || item.key < end_key_) {
      hashes.push_back(item.value);
    }
  });
  return hashes;
}

}  // namespace rocksteady
