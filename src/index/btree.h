// B+tree mapping secondary keys to primary key hashes.
//
// RAMCloud's SLIK-style secondary indexes (Figure 2) store (secondary key ->
// primary key hash) pairs, range-partitioned into indexlets. Duplicate
// secondary keys are allowed (many users share a first name), so the tree
// orders entries by the (key, value) pair.
#ifndef ROCKSTEADY_SRC_INDEX_BTREE_H_
#define ROCKSTEADY_SRC_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rocksteady {

class BTree {
 public:
  struct Item {
    std::string key;
    uint64_t value;

    friend bool operator<(const Item& a, const Item& b) {
      return a.key != b.key ? a.key < b.key : a.value < b.value;
    }
    friend bool operator==(const Item& a, const Item& b) {
      return a.key == b.key && a.value == b.value;
    }
  };

  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Inserts (key, value); duplicates of the exact pair are ignored.
  // Returns true if inserted.
  bool Insert(std::string_view key, uint64_t value);

  // Removes the exact (key, value) pair; returns true if found.
  bool Erase(std::string_view key, uint64_t value);

  bool Contains(std::string_view key, uint64_t value) const;

  // Visits up to `count` items with item >= (key, 0) in order; returns the
  // number visited. This is the indexlet scan primitive.
  size_t ScanFrom(std::string_view key, size_t count,
                  const std::function<void(const Item&)>& fn) const;

  // Visits every item in order.
  void ForEach(const std::function<void(const Item&)>& fn) const;

  size_t size() const { return size_; }
  // Tree height (1 = a single leaf); for structural tests.
  size_t Height() const;
  // Validates ordering and pivot invariants; for tests.
  bool CheckInvariants() const;

 private:
  struct Node;

  struct SplitResult {
    Item pivot;  // Separator: first item of (or promoted from) the right sibling.
    std::unique_ptr<Node> right;
  };

  std::optional<SplitResult> InsertInto(Node* node, Item item, bool* inserted);
  const Node* FindLeaf(std::string_view key) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_INDEX_BTREE_H_
