#include "src/sim/lane_set.h"

#include <algorithm>
#include <utility>

#include "src/common/dcheck.h"
#include "src/common/hash.h"

namespace rocksteady {

LaneSet::LaneSet(const Config& config) : config_(config) {
  ROCKSTEADY_DCHECK_GE(config.lanes, 1);
  ROCKSTEADY_DCHECK_GE(config.lookahead, Tick{1});
  const int n = config.lanes;
  for (int l = 0; l < n; l++) {
    sims_.push_back(std::make_unique<Simulator>(Mix64(config.seed ^ static_cast<uint64_t>(l))));
    sims_.back()->BeginLaneMode(this, l, &next_seq_);
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  mail_.resize(static_cast<size_t>(n) * static_cast<size_t>(n));
  merge_cursor_.resize(static_cast<size_t>(n));
  merge_front_time_.resize(static_cast<size_t>(n));
  merge_front_seq_.resize(static_cast<size_t>(n));
}

LaneSet::~LaneSet() { StopWorkers(); }

void LaneSet::AssignNode(NodeId node, int lane) {
  ROCKSTEADY_DCHECK_GE(lane, 0);
  ROCKSTEADY_DCHECK(lane < lanes());
  ROCKSTEADY_DCHECK_EQ(static_cast<size_t>(node), lane_of_.size());
  lane_of_.push_back(lane);
  // One private stream per node, derived from the run seed: the stream a
  // draw comes from depends on *which node* draws, not on lane placement,
  // so the draw sequence is invariant across lane counts and threading.
  node_rng_.emplace_back(Mix64(config_.seed + 0x9E3779B97F4A7C15ull * (node + 1)));
}

void LaneSet::PostCrossLane(Simulator* src, int dst_lane, Tick deliver, EventFn fn) {
  Simulator* dst = sims_[static_cast<size_t>(dst_lane)].get();
  if (!src->in_window_) {
    // Root context (setup / safe-point task): every lane is parked, so the
    // delivery can enter the destination queue directly with its canonical
    // seq — identical to what a single lane would have scheduled.
    ROCKSTEADY_DCHECK_GE(deliver, dst->now_);
    Simulator::Event* e = dst->AllocEvent();
    e->time = deliver;
    e->seq = next_seq_++;
    e->fn = std::move(fn);
    dst->InsertQueued(e);
    return;
  }
  // In-window: the conservative horizon guarantees the delivery cannot land
  // inside the current window on any lane.
  ROCKSTEADY_DCHECK_GE(deliver, src->window_end_);
  std::vector<CrossEntry>& cell =
      mail_[static_cast<size_t>(src->lane_) * static_cast<size_t>(lanes()) +
            static_cast<size_t>(dst_lane)];
  cell.push_back(CrossEntry{deliver, 0, std::move(fn)});
  src->LaneLogCrossOp(static_cast<uint32_t>(dst_lane),
                      static_cast<uint32_t>(cell.size() - 1));
}

void LaneSet::AtSafePoint(Tick t, std::function<void()> fn) {  // lint:allow-churn — cold, a handful per run.
  SafePoint sp{t, safe_point_order_++, std::move(fn)};
  auto pos = std::upper_bound(
      safe_points_.begin(), safe_points_.end(), sp,
      [](const SafePoint& a, const SafePoint& b) {
        return a.t != b.t ? a.t < b.t : a.order < b.order;
      });
  safe_points_.insert(pos, std::move(sp));
}

Tick LaneSet::GlobalMinEventTime() {
  Tick gm = kNoEvent;
  for (auto& sim : sims_) {
    Tick t;
    if (sim->PeekMinTime(&t) && t < gm) {
      gm = t;
    }
  }
  return gm;
}

size_t LaneSet::events_processed() const {
  size_t total = 0;
  for (const auto& sim : sims_) {
    total += sim->events_processed();
  }
  return total;
}

void LaneSet::LoadMergeFront(int lane) {
  Simulator* sim = sims_[static_cast<size_t>(lane)].get();
  const size_t i = merge_cursor_[static_cast<size_t>(lane)];
  if (i >= sim->win_log_.size()) {
    merge_front_time_[static_cast<size_t>(lane)] = kNoEvent;
    merge_front_seq_[static_cast<size_t>(lane)] = ~0ull;
    return;
  }
  const Simulator::DispatchRecord& rec = sim->win_log_[i];
  merge_front_time_[static_cast<size_t>(lane)] = rec.time;
  merge_front_seq_[static_cast<size_t>(lane)] =
      (rec.seq & Simulator::kProvSeqBit) != 0
          ? sim->prov_seq_[rec.seq & ~Simulator::kProvSeqBit]
          : rec.seq;
}

void LaneSet::MergeWindow() {
  // K-way merge of the lanes' window dispatch logs in canonical
  // (time, seq) order, resolving provisional seqs through each lane's
  // prov_seq_ table. A provisional front record's parent always appears
  // earlier in the same lane's log (only local callbacks create provisional
  // events), so by the time a record reaches its lane's cursor its seq is
  // resolvable — LoadMergeFront resolves each front exactly once per cursor
  // advance. Lane counts are tiny (<= 8 in practice): a linear scan of the
  // cached fronts beats a heap.
  const int n = lanes();
  for (int l = 0; l < n; l++) {
    merge_cursor_[static_cast<size_t>(l)] = 0;
    LoadMergeFront(l);
  }
  for (;;) {
    int best = 0;
    Tick best_time = merge_front_time_[0];
    uint64_t best_seq = merge_front_seq_[0];
    for (int l = 1; l < n; l++) {
      const Tick t = merge_front_time_[static_cast<size_t>(l)];
      const uint64_t seq = merge_front_seq_[static_cast<size_t>(l)];
      if (t < best_time || (t == best_time && seq < best_seq)) {
        best = l;
        best_time = t;
        best_seq = seq;
      }
    }
    if (best_time == kNoEvent && best_seq == ~0ull) {
      break;  // Every lane exhausted.
    }
    Simulator* sim = sims_[static_cast<size_t>(best)].get();
    const Simulator::DispatchRecord& rec =
        sim->win_log_[merge_cursor_[static_cast<size_t>(best)]++];
    // The canonical dispatch: mix the trace exactly as the single-lane
    // engine would have at this event's dispatch.
    trace_hash_ = (trace_hash_ ^ best_time) * 0x100000001b3ull;
    trace_hash_ = (trace_hash_ ^ best_seq) * 0x100000001b3ull;
    // Assign canonical seqs to this dispatch's scheduling ops, in op order —
    // the order the single-lane engine would have drawn them from next_seq_.
    for (uint32_t k = 0; k < rec.op_count; k++) {
      Simulator::OpRecord& op = sim->op_log_[rec.op_begin + k];
      switch (op.kind) {
        case Simulator::OpKind::kLocal:
          sim->prov_seq_[op.index] = next_seq_++;
          break;
        case Simulator::OpKind::kDeferred:
          op.deferred->seq = next_seq_++;
          break;
        case Simulator::OpKind::kCross:
          mail_[static_cast<size_t>(best) * static_cast<size_t>(n) + op.dst_lane][op.index]
              .seq = next_seq_++;
          break;
      }
    }
    // After the ops: the lane's next front may be provisional with THIS
    // dispatch as its parent, so its seq only became resolvable just now.
    LoadMergeFront(best);
  }
}

void LaneSet::PostPhase(int lane) {
  Simulator* sim = sims_[static_cast<size_t>(lane)].get();
  sim->InsertDeferred();
  // Adopt inbound cross-lane deliveries (canonical seqs already stamped).
  const int n = lanes();
  for (int src = 0; src < n; src++) {
    std::vector<CrossEntry>& cell =
        mail_[static_cast<size_t>(src) * static_cast<size_t>(n) + static_cast<size_t>(lane)];
    for (CrossEntry& entry : cell) {
      Simulator::Event* e = sim->AllocEvent();
      e->time = entry.time;
      e->seq = entry.seq;
      e->fn = std::move(entry.fn);
      sim->InsertQueued(e);
    }
    cell.clear();  // Capacity is retained: steady state allocates nothing.
  }
}

void LaneSet::StartWorkers() {
  if (workers_started_) {
    return;
  }
  workers_started_ = true;
  for (int l = 1; l < lanes(); l++) {
    workers_.emplace_back([this, l] { WorkerLoop(l); });
  }
}

void LaneSet::StopWorkers() {
  if (!workers_started_) {
    return;
  }
  barrier_epoch_++;
  for (int l = 1; l < lanes(); l++) {
    slots_[static_cast<size_t>(l)]->cmd = 3;
    slots_[static_cast<size_t>(l)]->go.store(barrier_epoch_, std::memory_order_release);
  }
  for (std::thread& worker : workers_) {  // lint:allow-nondeterminism — joining persistent lane workers.
    worker.join();
  }
  workers_.clear();
  workers_started_ = false;
}

void LaneSet::WorkerLoop(int lane) {
  WorkerSlot& slot = *slots_[static_cast<size_t>(lane)];
  uint64_t seen = 0;
  for (;;) {
    while (slot.go.load(std::memory_order_acquire) == seen) {
      std::this_thread::yield();
    }
    seen = slot.go.load(std::memory_order_acquire);
    if (slot.cmd == 3) {
      slot.done.store(seen, std::memory_order_release);
      return;
    }
    if (slot.cmd == 1) {
      sims_[static_cast<size_t>(lane)]->RunWindow(slot.window_end);
    } else {
      PostPhase(lane);
    }
    slot.done.store(seen, std::memory_order_release);
  }
}

void LaneSet::RunLanePhase(int cmd, Tick window_end) {
  // Fan a phase out to the workers (lanes 1..N-1), run lane 0 on the driving
  // thread, then wait for every worker's epoch acknowledgement.
  barrier_epoch_++;
  for (int l = 1; l < lanes(); l++) {
    WorkerSlot& slot = *slots_[static_cast<size_t>(l)];
    slot.cmd = cmd;
    slot.window_end = window_end;
    slot.go.store(barrier_epoch_, std::memory_order_release);
  }
  if (cmd == 1) {
    sims_[0]->RunWindow(window_end);
  } else {
    PostPhase(0);
  }
  for (int l = 1; l < lanes(); l++) {
    WorkerSlot& slot = *slots_[static_cast<size_t>(l)];
    while (slot.done.load(std::memory_order_acquire) != barrier_epoch_) {
      std::this_thread::yield();
    }
  }
}

size_t LaneSet::Run() {
  const size_t before = events_processed();
  RunLoop(false, 0);
  Tick end = now_;
  for (auto& sim : sims_) {
    end = std::max(end, sim->now());
  }
  now_ = end;
  return events_processed() - before;
}

size_t LaneSet::RunUntil(Tick t) {
  ROCKSTEADY_DCHECK_GE(t, now_);
  const size_t before = events_processed();
  RunLoop(true, t);
  for (auto& sim : sims_) {
    if (sim->now_ < t) {
      sim->now_ = t;
    }
  }
  now_ = t;
  return events_processed() - before;
}

void LaneSet::RunLoop(bool bounded, Tick until) {
  const bool threaded = config_.threads && lanes() > 1;
  if (threaded) {
    StartWorkers();
  }
  for (;;) {
    Tick gm = GlobalMinEventTime();
    // Run due safe-point tasks: everything before sp.t has executed, nothing
    // at/after sp.t has.
    while (!safe_points_.empty() && safe_points_.front().t <= gm &&
           (!bounded || safe_points_.front().t <= until)) {
      SafePoint sp = std::move(safe_points_.front());
      safe_points_.erase(safe_points_.begin());
      now_ = std::max(now_, sp.t);
      // Advance every lane's clock to the safe point before the task runs:
      // task code schedules relative to now() (directly or through
      // Network::Send), and a lane's last-dispatch time depends on the
      // partition — sp.t is the only lane-count-invariant base. Legal
      // because every pending event is at >= gm >= sp.t.
      for (auto& sim : sims_) {
        sim->now_ = std::max(sim->now_, sp.t);
      }
      sp.fn();
      gm = GlobalMinEventTime();  // The task may have scheduled new events.
    }
    if (gm == kNoEvent || (bounded && gm > until)) {
      break;
    }
    // Conservative window: every event in [gm, E) can only produce
    // cross-lane deliveries at/after E, so lanes run it independently.
    Tick end = gm + config_.lookahead;
    if (end < gm) {
      end = kNoEvent;  // Saturate.
    }
    if (!safe_points_.empty()) {
      end = std::min(end, safe_points_.front().t);
    }
    if (bounded) {
      end = std::min(end, until + 1);  // RunUntil is inclusive of `until`.
    }
    window_end_ = end;
    if (threaded) {
      RunLanePhase(1, end);
      MergeWindow();
      RunLanePhase(2, end);
    } else {
      for (int l = 0; l < lanes(); l++) {
        if (hooks_.lane_begin) {
          hooks_.lane_begin(l);
        }
        sims_[static_cast<size_t>(l)]->RunWindow(end);
        if (hooks_.lane_end) {
          hooks_.lane_end(l);
        }
      }
      if (hooks_.merge_begin) {
        hooks_.merge_begin();
      }
      MergeWindow();
      if (hooks_.merge_end) {
        hooks_.merge_end();
      }
      for (int l = 0; l < lanes(); l++) {
        PostPhase(l);
      }
    }
    windows_run_++;
  }
}

}  // namespace rocksteady
