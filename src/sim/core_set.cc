#include "src/sim/core_set.h"

#include <cassert>
#include <utility>

namespace rocksteady {

CoreSet::CoreSet(Simulator* sim, int num_workers)
    : sim_(sim), num_workers_(num_workers), idle_workers_(num_workers) {
  assert(num_workers >= 1);
}

void CoreSet::EnqueueDispatch(Tick cost, DispatchFn fn) {
  if (halted_) {
    return;
  }
  cost = Slow(cost);
  const Tick start = std::max(sim_->now(), dispatch_free_at_);
  dispatch_free_at_ = start + cost;
  if (dispatch_util_ != nullptr) {
    dispatch_util_->AddBusy(start, cost);
  }
  total_dispatch_busy_ += cost;
  const uint64_t epoch = epoch_;
  sim_->At(dispatch_free_at_, [this, epoch, fn = std::move(fn)]() mutable {
    if (halted_ || epoch != epoch_) {
      return;
    }
    fn();
  });
}

void CoreSet::EnqueueWorker(WorkerTask task) {
  Enqueue(AnyTask{task.priority, std::move(task.work), std::move(task.done), nullptr});
}

void CoreSet::EnqueueWorkerHeld(HeldTask task) {
  Enqueue(AnyTask{task.priority, nullptr, nullptr, std::move(task.work)});
}

void CoreSet::Enqueue(AnyTask task) {
  if (halted_) {
    return;
  }
  if (idle_workers_ > 0) {
    StartWorker(std::move(task));
    return;
  }
  queues_[static_cast<size_t>(task.priority)].push_back(std::move(task));
}

void CoreSet::StartWorker(AnyTask task) {
  assert(idle_workers_ > 0);
  idle_workers_--;
  const uint64_t epoch = epoch_;

  if (task.held_work != nullptr) {
    // Held task: the worker stays busy until the external finish callback
    // fires; busy time is charged at release.
    const Tick start = sim_->now();
    auto finish = [this, epoch, start](Tick extra_cost) {
      sim_->After(Slow(extra_cost), [this, epoch, start] {
        if (epoch != epoch_) {
          return;
        }
        const Tick busy = sim_->now() - start;
        if (worker_util_ != nullptr) {
          worker_util_->AddBusy(start, busy);
        }
        total_worker_busy_ += busy;
        WorkerFinished({}, epoch);
      });
    };
    task.held_work(std::move(finish));
    return;
  }

  // Timed task: real state mutation happens now; the worker is then busy for
  // the returned service time.
  const Tick cost = Slow(task.work());
  if (worker_util_ != nullptr) {
    worker_util_->AddBusy(sim_->now(), cost);
  }
  total_worker_busy_ += cost;
  sim_->After(cost, [this, epoch, done = std::move(task.done)]() mutable {
    WorkerFinished(std::move(done), epoch);
  });
}

void CoreSet::WorkerFinished(DoneFn done, uint64_t epoch) {
  if (epoch != epoch_) {
    return;  // The server crashed while this task was in flight.
  }
  idle_workers_++;
  if (done) {
    done();
  }
  PumpQueues();
}

void CoreSet::PumpQueues() {
  if (halted_) {
    return;
  }
  // Pull from the highest-priority queue with entries.
  for (auto& queue : queues_) {
    while (!queue.empty() && idle_workers_ > 0) {
      AnyTask next = std::move(queue.front());
      queue.pop_front();
      StartWorker(std::move(next));
    }
    if (idle_workers_ == 0) {
      return;
    }
  }
}

void CoreSet::Halt() {
  halted_ = true;
  epoch_++;
  for (auto& queue : queues_) {
    queue.clear();
  }
  idle_workers_ = num_workers_;
  dispatch_free_at_ = sim_->now();
}

void CoreSet::Restart() { halted_ = false; }

}  // namespace rocksteady
