#include "src/sim/simulator.h"

#include <utility>

namespace rocksteady {

void Simulator::At(Tick t, std::function<void()> fn) {
  // Scheduling in the past would silently reorder the event ahead of
  // already-queued same-tick work; treat it as a bug, and clamp in release
  // so the clock still never rewinds.
  ROCKSTEADY_DCHECK_GE(t, now_);
  if (t < now_) {
    t = now_;
  }
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

size_t Simulator::Run() {
  size_t processed = 0;
  while (!queue_.empty()) {
    // Move the event out before popping; the callback may schedule more.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    ROCKSTEADY_DCHECK_GE(event.time, now_);
    now_ = event.time;
    MixTrace(event);
    event.fn();
    processed++;
  }
  events_processed_ += processed;
  return processed;
}

size_t Simulator::RunUntil(Tick t) {
  // The clock never rewinds: RunUntil into the past is a checked error and
  // a no-op in release (no events run, now() is unchanged).
  ROCKSTEADY_DCHECK_GE(t, now_);
  size_t processed = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    ROCKSTEADY_DCHECK_GE(event.time, now_);
    now_ = event.time;
    MixTrace(event);
    event.fn();
    processed++;
  }
  if (now_ < t) {
    now_ = t;
  }
  events_processed_ += processed;
  return processed;
}

}  // namespace rocksteady
