#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace rocksteady {

// Overflow heap order: min (time, seq) at the front.
bool Simulator::EventLater(const Event* a, const Event* b) {
  return a->time != b->time ? a->time > b->time : a->seq > b->seq;
}

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

Simulator::~Simulator() {
  // Slab destruction runs every Event's destructor, releasing any state
  // still captured by pending callbacks. Nothing else to do.
}

Simulator::Event* Simulator::AllocEvent() {
  if (free_list_ == nullptr) {
    slabs_.push_back(std::make_unique<Event[]>(kSlabEvents));
    slab_allocations_++;
    Event* slab = slabs_.back().get();
    // Thread the new slab onto the free list in reverse so events hand out
    // in index order (no behavioral significance; just tidy).
    for (size_t i = kSlabEvents; i-- > 0;) {
      slab[i].next = free_list_;
      free_list_ = &slab[i];
    }
    free_count_ += kSlabEvents;
  }
  Event* e = free_list_;
  free_list_ = e->next;
  free_count_--;
  e->prev = nullptr;
  e->next = nullptr;
  return e;
}

void Simulator::FreeEvent(Event* e) {
  // The callback must already be destroyed (fn = nullptr) by the caller so
  // captured resources are released before the event idles in the pool.
  e->next = free_list_;
  free_list_ = e;
  free_count_++;
}

void Simulator::InsertRing(Event* e, uint64_t ab) {
  BucketList& bucket = buckets_[ab & kBucketMask];
  // Insert sorted by (time, seq), scanning from the tail: seq is globally
  // monotone, so a fresh event nearly always appends in O(1); only overflow
  // adoptions and release-mode past-clamps ever walk.
  Event* after = bucket.tail;
  while (after != nullptr &&
         (after->time > e->time || (after->time == e->time && after->seq > e->seq))) {
    after = after->prev;
  }
  if (after == nullptr) {
    e->next = bucket.head;
    e->prev = nullptr;
    if (bucket.head != nullptr) {
      bucket.head->prev = e;
    } else {
      bucket.tail = e;
    }
    bucket.head = e;
  } else {
    e->next = after->next;
    e->prev = after;
    if (after->next != nullptr) {
      after->next->prev = e;
    } else {
      bucket.tail = e;
    }
    after->next = e;
  }
  const size_t slot = ab & kBucketMask;
  occupancy_[slot >> 6] |= 1ull << (slot & 63);
  ring_count_++;
}

void Simulator::AdvanceWindowTo(uint64_t new_base) {
  ROCKSTEADY_DCHECK_GE(new_base, win_base_);
  win_base_ = new_base;
  scan_ab_ = std::max(scan_ab_, win_base_);
  // Adopt every overflow event that now falls inside the window. They pop
  // in (time, seq) order, so each lands at its bucket's tail in O(1).
  while (!overflow_.empty() && BucketOf(overflow_.front()->time) < win_base_ + kNumBuckets) {
    std::pop_heap(overflow_.begin(), overflow_.end(), &EventLater);
    Event* e = overflow_.back();
    overflow_.pop_back();
    InsertRing(e, BucketOf(e->time));
  }
}

uint64_t Simulator::FirstOccupiedBucket() {
  ROCKSTEADY_DCHECK_GE(ring_count_, 1u);
  // Scan the occupancy bitmap in ring order starting at scan_ab_'s slot.
  // Every remaining event's bucket is >= scan_ab_, and slot distance from
  // the cursor equals bucket distance, so the first set bit is the minimum.
  const size_t start_slot = scan_ab_ & kBucketMask;
  const size_t base_slot = win_base_ & kBucketMask;
  size_t word = start_slot >> 6;
  uint64_t bits = occupancy_[word] & (~0ull << (start_slot & 63));
  for (size_t i = 0; i <= kOccupancyWords; i++) {
    if (bits != 0) {
      const size_t slot = (word << 6) + static_cast<size_t>(__builtin_ctzll(bits));
      return win_base_ + ((slot - base_slot) & kBucketMask);
    }
    word = (word + 1) & (kOccupancyWords - 1);
    bits = occupancy_[word];
  }
  ROCKSTEADY_DCHECK(false);  // ring_count_ > 0 guarantees a set bit.
  return scan_ab_;
}

Simulator::Event* Simulator::PopMin() {
  if (ring_count_ == 0) {
    if (overflow_.empty()) {
      return nullptr;
    }
    AdvanceWindowTo(BucketOf(overflow_.front()->time));
  }
  const uint64_t ab = FirstOccupiedBucket();
  scan_ab_ = ab;
  const size_t slot = ab & kBucketMask;
  BucketList& bucket = buckets_[slot];
  Event* e = bucket.head;
  bucket.head = e->next;
  if (bucket.head != nullptr) {
    bucket.head->prev = nullptr;
  } else {
    bucket.tail = nullptr;
    occupancy_[slot >> 6] &= ~(1ull << (slot & 63));
  }
  ring_count_--;
  return e;
}

bool Simulator::PeekMinTime(Tick* t) {
  if (ring_count_ > 0) {
    const uint64_t ab = FirstOccupiedBucket();
    scan_ab_ = ab;  // Cursor cache only; peeking never slides the window.
    *t = buckets_[ab & kBucketMask].head->time;
    return true;
  }
  if (!overflow_.empty()) {
    *t = overflow_.front()->time;
    return true;
  }
  return false;
}

void Simulator::InsertQueued(Event* e) {
  const uint64_t ab = BucketOf(e->time);
  if (ab < win_base_ + kNumBuckets) {
    InsertRing(e, ab);
    // PeekMinTime parks the scan cursor at the current minimum's bucket; a
    // RunUntil that stops short of that minimum can then legally schedule
    // here, behind the cursor. Rewind so the occupancy scan can't skip it.
    if (ab < scan_ab_) {
      scan_ab_ = ab;
    }
  } else {
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), &EventLater);
  }
}

void Simulator::At(Tick t, EventFn fn) {
  // Scheduling in the past would silently reorder the event ahead of
  // already-queued same-tick work; treat it as a bug, and clamp in release
  // so the clock still never rewinds.
  ROCKSTEADY_DCHECK_GE(t, now_);
  if (t < now_) {
    t = now_;
  }
  if (lane_mode_) {
    LaneAt(t, std::move(fn));
    return;
  }
  Event* e = AllocEvent();
  e->time = t;
  e->seq = next_seq_++;
  e->fn = std::move(fn);
  InsertQueued(e);
}

// --- Lane mode (driven by LaneSet; see lane_set.cc for the merge). ---

void Simulator::BeginLaneMode(LaneSet* lane_set, int lane, uint64_t* lane_seq) {
  lane_mode_ = true;
  lane_set_ = lane_set;
  lane_ = lane;
  lane_seq_ = lane_seq;
}

void Simulator::LaneAt(Tick t, EventFn fn) {
  if (!in_window_) {
    // Root context: every lane is parked (setup, a safe-point task, between
    // runs), so the canonical counter is directly assignable — this is
    // exactly what the single-lane engine would have done.
    Event* e = AllocEvent();
    e->time = t;
    e->seq = (*lane_seq_)++;
    e->fn = std::move(fn);
    InsertQueued(e);
    return;
  }
  if (t < window_end_) {
    // Executes within this window: provisional seq now, canonical at merge.
    Event* e = AllocEvent();
    e->time = t;
    e->seq = kProvSeqBit | static_cast<uint64_t>(prov_seq_.size());
    e->fn = std::move(fn);
    op_log_.push_back(
        OpRecord{OpKind::kLocal, 0, static_cast<uint32_t>(prov_seq_.size()), nullptr});
    prov_seq_.push_back(0);
    InsertQueued(e);
    return;
  }
  // At/past the horizon: held until the merge stamps its canonical seq.
  Event* e = AllocEvent();
  e->time = t;
  e->seq = 0;
  e->fn = std::move(fn);
  op_log_.push_back(OpRecord{OpKind::kDeferred, 0, 0, e});
}

size_t Simulator::RunWindow(Tick end) {
  win_log_.clear();
  op_log_.clear();
  prov_seq_.clear();
  in_window_ = true;
  window_end_ = end;
  size_t processed = 0;
  Tick min_time;
  while (PeekMinTime(&min_time) && min_time < end) {
    Event* e = PopMin();
    ROCKSTEADY_DCHECK_GE(e->time, now_);
    now_ = e->time;
    win_log_.push_back(
        DispatchRecord{e->time, e->seq, static_cast<uint32_t>(op_log_.size()), 0});
    const size_t rec = win_log_.size() - 1;
    e->fn();
    win_log_[rec].op_count = static_cast<uint32_t>(op_log_.size()) - win_log_[rec].op_begin;
    e->fn = nullptr;
    FreeEvent(e);
    processed++;
  }
  in_window_ = false;
  events_processed_ += processed;
  return processed;
}

void Simulator::InsertDeferred() {
  for (const OpRecord& op : op_log_) {
    if (op.kind == OpKind::kDeferred) {
      InsertQueued(op.deferred);
    }
  }
}

size_t Simulator::Run() {
  size_t processed = 0;
  Event* e;
  while ((e = PopMin()) != nullptr) {
    ROCKSTEADY_DCHECK_GE(e->time, now_);
    now_ = e->time;
    MixTrace(e->time, e->seq);
    e->fn();
    e->fn = nullptr;  // Release captures before the event idles in the pool.
    FreeEvent(e);
    processed++;
  }
  events_processed_ += processed;
  return processed;
}

size_t Simulator::RunUntil(Tick t) {
  // The clock never rewinds: RunUntil into the past is a checked error and
  // a no-op in release (no events run, now() is unchanged).
  ROCKSTEADY_DCHECK_GE(t, now_);
  size_t processed = 0;
  Tick min_time;
  while (PeekMinTime(&min_time) && min_time <= t) {
    Event* e = PopMin();
    ROCKSTEADY_DCHECK_GE(e->time, now_);
    now_ = e->time;
    MixTrace(e->time, e->seq);
    e->fn();
    e->fn = nullptr;
    FreeEvent(e);
    processed++;
  }
  if (now_ < t) {
    now_ = t;
  }
  events_processed_ += processed;
  return processed;
}

}  // namespace rocksteady
