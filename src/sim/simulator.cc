#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace rocksteady {

void Simulator::At(Tick t, std::function<void()> fn) {
  assert(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

size_t Simulator::Run() {
  size_t processed = 0;
  while (!queue_.empty()) {
    // Move the event out before popping; the callback may schedule more.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    event.fn();
    processed++;
  }
  events_processed_ += processed;
  return processed;
}

size_t Simulator::RunUntil(Tick t) {
  size_t processed = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    event.fn();
    processed++;
  }
  if (now_ < t) {
    now_ = t;
  }
  events_processed_ += processed;
  return processed;
}

}  // namespace rocksteady
