#include "src/sim/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rocksteady {

Network::SharedDelivery* Network::AllocShared() {
  if (shared_free_ == nullptr) {
    shared_storage_.push_back(std::make_unique<SharedDelivery>());
    shared_free_ = shared_storage_.back().get();
  }
  SharedDelivery* shared = shared_free_;
  shared_free_ = shared->next_free;
  shared->next_free = nullptr;
  return shared;
}

void Network::ReleaseShared(SharedDelivery* shared) {
  shared->fn = nullptr;  // Drop captured state while the node idles.
  shared->next_free = shared_free_;
  shared_free_ = shared;
}

void Network::Send(NodeId from, NodeId to, size_t wire_bytes, NetFn on_delivery) {
  assert(from < egress_free_at_.size() && to < egress_free_at_.size());
  if (node_down_[from]) {
    dropped_from_down_node_++;
    return;
  }
  const Tick serialization = costs_->Serialization(wire_bytes) + costs_->net_per_message_ns;
  std::vector<Tick>& track =
      wire_bytes >= kBulkThresholdBytes ? egress_bulk_free_at_ : egress_free_at_;
  const Tick depart = std::max(sim_->now(), track[from]) + serialization;
  track[from] = depart;
  total_bytes_sent_ += wire_bytes;
  total_messages_++;

  // In-flight faults: the sender has paid for serialization either way; the
  // injector decides how many copies (0 = lost) arrive and with what extra
  // delay. Loss is modeled on the wire, not at the NIC.
  FaultInjector::Decision decision;
  if (fault_injector_ != nullptr) {
    decision = fault_injector_->OnMessage(from, to);
    if (decision.copies == 0) {
      injected_drops_++;
      return;
    }
    if (decision.copies > 1) {
      injected_duplicates_ += static_cast<uint64_t>(decision.copies - 1);
    }
  }

  const Tick arrive = depart + costs_->net_propagation_ns;
  if (decision.copies == 1 && decision.extra_delay_ns[0] == 0) {
    sim_->At(arrive, [this, to, fn = std::move(on_delivery)]() mutable {
      if (node_down_[to]) {
        dropped_to_down_node_++;
        return;  // Dropped on the floor; RPC timeouts handle the rest.
      }
      fn();
    });
    return;
  }
  // Duplicated and/or delayed copies share one pooled delivery node; each
  // copy invokes the same callable, and the last one returns the node to
  // the pool.
  SharedDelivery* shared = AllocShared();
  shared->fn = std::move(on_delivery);
  shared->refs = decision.copies;
  for (int copy = 0; copy < decision.copies; copy++) {
    const Tick extra = decision.extra_delay_ns[static_cast<size_t>(copy)];
    if (extra > 0) {
      injected_delays_++;
    }
    sim_->At(arrive + extra, [this, to, shared] {
      if (!node_down_[to]) {
        shared->fn();
      } else {
        dropped_to_down_node_++;
      }
      if (--shared->refs == 0) {
        ReleaseShared(shared);
      }
    });
  }
}

}  // namespace rocksteady
