#include "src/sim/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rocksteady {

Network::SharedDelivery* Network::AllocShared(size_t pool) {
  LanePool& p = pools_[pool];
  if (p.free_list == nullptr) {
    p.storage.push_back(std::make_unique<SharedDelivery>());
    p.free_list = p.storage.back().get();
  }
  SharedDelivery* shared = p.free_list;
  p.free_list = shared->next_free;
  shared->next_free = nullptr;
  return shared;
}

void Network::ReleaseShared(size_t pool, SharedDelivery* shared) {
  shared->fn = nullptr;  // Drop captured state while the node idles.
  LanePool& p = pools_[pool];
  shared->next_free = p.free_list;
  p.free_list = shared;
}

void Network::ScheduleDelivery(Simulator* src, NodeId to, Tick arrive, EventFn ev) {
  if (lanes_ != nullptr) {
    const int dst_lane = lanes_->lane_of(to);
    if (&lanes_->lane_sim(dst_lane) != src) {
      // The conservative horizon guarantees arrive >= the current window's
      // end (serialization >= net_per_message_ns, plus propagation), so the
      // mailbox post is always legal.
      lanes_->PostCrossLane(src, dst_lane, arrive, std::move(ev));
      return;
    }
  }
  src->At(arrive, std::move(ev));
}

void Network::Send(NodeId from, NodeId to, size_t wire_bytes, NetFn on_delivery) {
  assert(from < egress_free_at_.size() && to < egress_free_at_.size());
  Simulator* src = lanes_ != nullptr ? lanes_->SimFor(from) : sim_;
  Counters& stats = counters_[LaneOf(from)];
  if (node_down_[from]) {
    stats.dropped_from_down_node++;
    return;
  }
  const Tick serialization = costs_->Serialization(wire_bytes) + costs_->net_per_message_ns;
  std::vector<Tick>& track =
      wire_bytes >= kBulkThresholdBytes ? egress_bulk_free_at_ : egress_free_at_;
  const Tick depart = std::max(src->now(), track[from]) + serialization;
  track[from] = depart;
  stats.total_bytes_sent += wire_bytes;
  stats.total_messages++;

  // In-flight faults: the sender has paid for serialization either way; the
  // injector decides how many copies (0 = lost) arrive and with what extra
  // delay. Loss is modeled on the wire, not at the NIC.
  FaultInjector::Decision decision;
  if (fault_injector_ != nullptr) {
    decision = fault_injector_->OnMessage(from, to);
    if (decision.copies == 0) {
      stats.injected_drops++;
      return;
    }
    if (decision.copies > 1) {
      stats.injected_duplicates += static_cast<uint64_t>(decision.copies - 1);
    }
  }

  const Tick arrive = depart + costs_->net_propagation_ns;
  if (decision.copies == 1 && decision.extra_delay_ns[0] == 0) {
    ScheduleDelivery(src, to, arrive, [this, to, fn = std::move(on_delivery)]() mutable {
      if (node_down_[to]) {
        counters_[LaneOf(to)].dropped_to_down_node++;
        return;  // Dropped on the floor; RPC timeouts handle the rest.
      }
      fn();
    });
    return;
  }
  // Duplicated and/or delayed copies share one pooled delivery node; each
  // copy invokes the same callable, and the last one — which runs on the
  // receiver's lane — returns the node to the receiver's pool.
  SharedDelivery* shared = AllocShared(LaneOf(from));
  shared->fn = std::move(on_delivery);
  shared->refs = decision.copies;
  for (int copy = 0; copy < decision.copies; copy++) {
    const Tick extra = decision.extra_delay_ns[static_cast<size_t>(copy)];
    if (extra > 0) {
      stats.injected_delays++;
    }
    ScheduleDelivery(src, to, arrive + extra, [this, to, shared] {
      if (!node_down_[to]) {
        shared->fn();
      } else {
        counters_[LaneOf(to)].dropped_to_down_node++;
      }
      if (--shared->refs == 0) {
        ReleaseShared(LaneOf(to), shared);
      }
    });
  }
}

}  // namespace rocksteady
