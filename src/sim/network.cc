#include "src/sim/network.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

namespace rocksteady {

void Network::Send(NodeId from, NodeId to, size_t wire_bytes, std::function<void()> on_delivery) {
  assert(from < egress_free_at_.size() && to < egress_free_at_.size());
  if (node_down_[from]) {
    dropped_from_down_node_++;
    return;
  }
  const Tick serialization = costs_->Serialization(wire_bytes) + costs_->net_per_message_ns;
  std::vector<Tick>& track =
      wire_bytes >= kBulkThresholdBytes ? egress_bulk_free_at_ : egress_free_at_;
  const Tick depart = std::max(sim_->now(), track[from]) + serialization;
  track[from] = depart;
  total_bytes_sent_ += wire_bytes;
  total_messages_++;

  // In-flight faults: the sender has paid for serialization either way; the
  // injector decides how many copies (0 = lost) arrive and with what extra
  // delay. Loss is modeled on the wire, not at the NIC.
  FaultInjector::Decision decision;
  if (fault_injector_ != nullptr) {
    decision = fault_injector_->OnMessage(from, to);
    if (decision.copies == 0) {
      injected_drops_++;
      return;
    }
    if (decision.copies > 1) {
      injected_duplicates_ += static_cast<uint64_t>(decision.copies - 1);
    }
  }

  const Tick arrive = depart + costs_->net_propagation_ns;
  if (decision.copies == 1 && decision.extra_delay_ns[0] == 0) {
    sim_->At(arrive, [this, to, fn = std::move(on_delivery)] {
      if (node_down_[to]) {
        dropped_to_down_node_++;
        return;  // Dropped on the floor; RPC timeouts handle the rest.
      }
      fn();
    });
    return;
  }
  // Duplicated and/or delayed copies share one delivery closure.
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(on_delivery));
  for (int copy = 0; copy < decision.copies; copy++) {
    const Tick extra = decision.extra_delay_ns[static_cast<size_t>(copy)];
    if (extra > 0) {
      injected_delays_++;
    }
    sim_->At(arrive + extra, [this, to, shared_fn] {
      if (node_down_[to]) {
        dropped_to_down_node_++;
        return;
      }
      (*shared_fn)();
    });
  }
}

}  // namespace rocksteady
