#include "src/sim/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rocksteady {

void Network::Send(NodeId from, NodeId to, size_t wire_bytes, std::function<void()> on_delivery) {
  assert(from < egress_free_at_.size() && to < egress_free_at_.size());
  if (node_down_[from]) {
    return;
  }
  const Tick serialization = costs_->Serialization(wire_bytes) + costs_->net_per_message_ns;
  std::vector<Tick>& track =
      wire_bytes >= kBulkThresholdBytes ? egress_bulk_free_at_ : egress_free_at_;
  const Tick depart = std::max(sim_->now(), track[from]) + serialization;
  track[from] = depart;
  total_bytes_sent_ += wire_bytes;
  total_messages_++;
  const Tick arrive = depart + costs_->net_propagation_ns;
  sim_->At(arrive, [this, to, fn = std::move(on_delivery)] {
    if (node_down_[to]) {
      return;  // Dropped on the floor; RPC timeouts handle the rest.
    }
    fn();
  });
}

}  // namespace rocksteady
